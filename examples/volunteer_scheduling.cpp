// Volunteer-computing scheduling study — the workload the paper's
// introduction motivates: a project operator wants to know how much
// utility four very different applications (Table IX) extract from the
// host population of a given year, and how that changes as hardware
// evolves.
//
//   ./volunteer_scheduling [hosts-per-year]
//
// For each year 2006-2014, synthesizes a population from the published
// correlated model, allocates it to the applications with the greedy
// round-robin scheduler, and reports per-application utility shares and
// the per-host utility growth relative to 2006.
#include <iostream>
#include <string>

#include "core/host_generator.h"
#include "sim/allocator.h"
#include "sim/baseline_models.h"
#include "util/table.h"

using namespace resmodel;

int main(int argc, char** argv) {
  std::size_t hosts_per_year = 20000;
  if (argc > 1) {
    hosts_per_year = static_cast<std::size_t>(std::stoul(argv[1]));
  }

  const sim::CorrelatedModel model(core::paper_params());
  const auto apps = sim::paper_applications();
  util::Rng rng(7);

  std::cout << "Greedy round-robin allocation of " << hosts_per_year
            << " synthesized hosts per year across the Table-IX "
               "applications.\n\n";

  std::vector<double> base_per_host(apps.size(), 0.0);
  util::Table table({"Year", "SETI util/host", "Folding util/host",
                     "Climate util/host", "P2P util/host",
                     "Growth vs 2006"});
  for (int year = 2006; year <= 2014; ++year) {
    const sim::HostResourcesSoA hosts = model.synthesize_soa(
        util::ModelDate::from_ymd(year, 1, 1), hosts_per_year, rng);
    const sim::AllocationResult alloc = sim::allocate_round_robin(apps, hosts);

    std::vector<std::string> cells = {std::to_string(year)};
    double total_growth = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const double per_host =
          alloc.hosts_assigned[a] > 0
              ? alloc.total_utility[a] /
                    static_cast<double>(alloc.hosts_assigned[a])
              : 0.0;
      if (year == 2006) base_per_host[a] = per_host;
      cells.push_back(util::Table::num(per_host, 1));
      total_growth += per_host / base_per_host[a];
    }
    cells.push_back(
        util::Table::num(total_growth / static_cast<double>(apps.size()), 2) +
        "x");
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout
      << "\nReading the table: P2P utility/host grows fastest (disk grows "
         "+27%/yr in the\nmodel), Folding@home benefits from multicore "
         "adoption, SETI@home — dominated by\nsingle-core floating point — "
         "grows slowest. This is exactly the kind of\ncapacity question the "
         "paper built the model to answer.\n";
  return 0;
}

// Volunteer-computing scheduling study — the workload the paper's
// introduction motivates: a project operator wants to know how much
// utility four very different applications (Table IX) extract from the
// host population of a given year, and how that changes as hardware
// evolves — and how the same populations behave under the bag-of-tasks
// scheduling policies.
//
//   ./volunteer_scheduling [hosts-per-year]
//
// For each year 2006-2014, synthesizes a population from the published
// correlated model, allocates it to the applications with the greedy
// round-robin scheduler, and reports per-application utility shares and
// the per-host utility growth relative to 2006. The per-year populations
// are synthesized once and shared with sim::run_policy_sweep, which runs
// the year x policy makespan grid on a worker pool instead of the old
// serial per-year loop.
#include <algorithm>
#include <iostream>
#include <string>

#include "core/host_generator.h"
#include "sim/allocator.h"
#include "sim/bag_of_tasks.h"
#include "sim/baseline_models.h"
#include "util/table.h"

using namespace resmodel;

int main(int argc, char** argv) {
  std::size_t hosts_per_year = 20000;
  if (argc > 1) {
    hosts_per_year = static_cast<std::size_t>(std::stoul(argv[1]));
  }

  const sim::CorrelatedModel model(core::paper_params());
  const auto apps = sim::paper_applications();
  util::Rng rng(7);

  std::cout << "Greedy round-robin allocation of " << hosts_per_year
            << " synthesized hosts per year across the Table-IX "
               "applications.\n\n";

  // One population per year, drawn from a single rng stream (same hosts
  // the old serial loop synthesized), reused by both studies below.
  std::vector<sim::SweepPopulation> populations;
  for (int year = 2006; year <= 2014; ++year) {
    populations.push_back(
        {std::to_string(year),
         model.synthesize_soa(util::ModelDate::from_ymd(year, 1, 1),
                              hosts_per_year, rng)});
  }

  std::vector<double> base_per_host(apps.size(), 0.0);
  util::Table table({"Year", "SETI util/host", "Folding util/host",
                     "Climate util/host", "P2P util/host",
                     "Growth vs 2006"});
  for (const sim::SweepPopulation& pop : populations) {
    const sim::AllocationResult alloc =
        sim::allocate_round_robin(apps, pop.hosts);

    std::vector<std::string> cells = {pop.name};
    double total_growth = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const double per_host =
          alloc.hosts_assigned[a] > 0
              ? alloc.total_utility[a] /
                    static_cast<double>(alloc.hosts_assigned[a])
              : 0.0;
      if (pop.name == "2006") base_per_host[a] = per_host;
      cells.push_back(util::Table::num(per_host, 1));
      total_growth += per_host / base_per_host[a];
    }
    cells.push_back(
        util::Table::num(total_growth / static_cast<double>(apps.size()), 2) +
        "x");
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout
      << "\nReading the table: P2P utility/host grows fastest (disk grows "
         "+27%/yr in the\nmodel), Folding@home benefits from multicore "
         "adoption, SETI@home — dominated by\nsingle-core floating point — "
         "grows slowest. This is exactly the kind of\ncapacity question the "
         "paper built the model to answer.\n\n";

  // The same populations, scheduling-side: how fast does each vintage
  // chew through an identical bag of tasks under each policy? The whole
  // year x policy grid is one parallel sweep.
  sim::PolicySweepConfig sweep;
  sweep.policies = {
      sim::SchedulingPolicy::kStaticRoundRobin,
      sim::SchedulingPolicy::kDynamicPull,
      sim::SchedulingPolicy::kDynamicEct,
  };
  sweep.task_counts = {10000};
  sweep.workload_seed = 7;
  const sim::PolicySweepResult grid = sim::run_policy_sweep(populations, sweep);

  util::Table makespans({"Year", "static RR makespan", "dynamic pull",
                         "dynamic ECT"});
  for (std::size_t p = 0; p < populations.size(); ++p) {
    std::vector<std::string> cells = {populations[p].name};
    for (std::size_t pol = 0; pol < sweep.policies.size(); ++pol) {
      cells.push_back(
          util::Table::num(grid.at(p, pol, 0).result.makespan_days, 1) + "d");
    }
    makespans.add_row(std::move(cells));
  }
  std::cout << "Makespan of the same 10,000-task bag on each year's hosts:\n";
  makespans.print(std::cout);
  std::cout
      << "\nHardware progress compresses every policy's makespan year over "
         "year, but the\ngap between knowledge-free striping and ECT stays "
         "wide — model realism, not\njust model vintage, drives scheduling "
         "conclusions.\n\n";

  // Third study: couple availability to hardware. The same 2010
  // population is scheduled under churn (real ON/OFF intervals) with the
  // availability driver rank-coupled to host speed at three Spearman
  // levels: rho < 0 makes the fast hosts the flaky ones, rho > 0 makes
  // them the steady ones. ECT-family schedulers lean on the fast hosts,
  // so the makespan must fall monotonically as rho rises.
  const sim::SweepPopulation& pop_2010 = populations[4];  // year 2010
  util::Table coupling({"speed-avail rho", "derate ECT", "churn ckpt",
                        "churn restart", "churn abandon",
                        "interruptions"});
  for (const double rho : {-0.5, 0.0, 0.5}) {
    sim::PolicySweepConfig churn_sweep;
    churn_sweep.policies = {
        sim::SchedulingPolicy::kDynamicEct,
        sim::SchedulingPolicy::kChurnEctCheckpoint,
        sim::SchedulingPolicy::kChurnEctRestart,
        sim::SchedulingPolicy::kChurnEctAbandon,
    };
    churn_sweep.task_counts = {10000};
    churn_sweep.workload_seed = 7;
    churn_sweep.base.model_availability = true;  // derate ECT column
    churn_sweep.base.availability_coupled = true;
    churn_sweep.base.availability_coupling.speed_rho = rho;
    const sim::PolicySweepResult churn_grid =
        sim::run_policy_sweep({&pop_2010, 1}, churn_sweep);

    std::vector<std::string> cells = {util::Table::num(rho, 1)};
    std::uint64_t interruptions = 0;
    for (std::size_t pol = 0; pol < churn_sweep.policies.size(); ++pol) {
      const sim::BagOfTasksResult& r = churn_grid.at(0, pol, 0).result;
      cells.push_back(util::Table::num(r.makespan_days, 1) + "d");
      interruptions += r.interruptions;
    }
    cells.push_back(std::to_string(interruptions));
    coupling.add_row(std::move(cells));
  }
  std::cout << "Availability coupled to speed (2010 population, "
               "10,000-task bag, churn\nscheduling against the actual "
               "ON/OFF intervals):\n";
  coupling.print(std::cout);
  std::cout
      << "\nReading down the columns: fast-but-flaky (rho = -0.5) hurts "
         "every\ncompletion-time scheduler most and fast-and-steady (rho = "
         "+0.5) helps most.\nThe restart and abandon columns additionally "
         "pay an interval-structure penalty\nthe scalar derate cannot "
         "express — tens of thousands of heavy-tailed ON\nsessions die "
         "under tasks and burn their attempts. This is the paper's "
         "§VIII\nextension made executable: resources tied to availability, "
         "not overlaid on it.\n\n";

  // Fourth study: the churn kernel's lookahead-depth knob
  // (--churn-levels on the CLI). All depth variants consume ONE
  // availability realization — drawn once below and passed into every
  // run — the same draw-sharing contract the sweep gives derate/churn
  // cells, so the comparison isolates the knob. Depth is a performance
  // knob: the makespans agree to FP noise while the kernel prunes very
  // differently (see src/churn/README.md for the measured shapes).
  const std::vector<double> speed = sim::base_host_rates(pop_2010.hosts);
  sim::BagOfTasksConfig levels_config;
  levels_config.task_count = 10000;
  util::Rng avail_rng(7);
  const sim::AvailabilityRealization realization =
      sim::realize_availability(speed, levels_config, avail_rng);
  util::Table depth_table({"churn-levels", "churn ckpt makespan"});
  for (const std::size_t levels : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    levels_config.churn_lookahead_levels = levels;
    util::Rng task_rng = avail_rng;  // same post-realization task stream
    const sim::BagOfTasksResult r = sim::run_bag_of_tasks(
        pop_2010.hosts, realization, levels_config,
        sim::SchedulingPolicy::kChurnEctCheckpoint, task_rng);
    depth_table.add_row({std::to_string(levels),
                         util::Table::num(r.makespan_days, 6) + "d"});
  }
  std::cout << "Lookahead-depth knob on one shared availability "
               "realization (2010 hosts):\n";
  depth_table.print(std::cout);
  std::cout
      << "\nThe makespans match to floating-point noise: the depth only "
         "moves work\nbetween resident-column formulas and timeline "
         "searches inside the kernel.\n";
  return 0;
}

// Scheduling study on modeled hosts — the research workflow from the
// paper's introduction: evaluate bag-of-tasks scheduling policies on a
// realistic host population, with and without the availability overlay.
//
//   ./scheduling_study [hosts] [tasks]
#include <iostream>
#include <string>

#include "core/host_generator.h"
#include "sim/bag_of_tasks.h"
#include "sim/baseline_models.h"
#include "util/table.h"

using namespace resmodel;

namespace {

sim::HostResourcesSoA make_hosts(std::size_t n, int year) {
  const core::HostGenerator gen(core::paper_params());
  util::Rng rng(2024);
  return sim::HostResourcesSoA::from_batch(
      gen.generate_batch(util::ModelDate::from_ymd(year, 1, 1), n, rng));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t host_count = 1000;
  std::size_t task_count = 10000;
  if (argc > 1) host_count = std::stoul(argv[1]);
  if (argc > 2) task_count = std::stoul(argv[2]);

  const sim::SchedulingPolicy policies[] = {
      sim::SchedulingPolicy::kStaticRoundRobin,
      sim::SchedulingPolicy::kStaticSpeedWeighted,
      sim::SchedulingPolicy::kDynamicPull,
      sim::SchedulingPolicy::kDynamicEct,
  };

  std::cout << "Bag of " << task_count << " tasks on " << host_count
            << " hosts generated from the published correlated model.\n\n";

  for (const int year : {2006, 2010, 2014}) {
    const auto hosts = make_hosts(host_count, year);
    util::Table table({"Policy (" + std::to_string(year) + " hosts)",
                       "Makespan (days)", "Makespan w/ availability",
                       "Hosts used"});
    for (const sim::SchedulingPolicy policy : policies) {
      sim::BagOfTasksConfig config;
      config.task_count = task_count;
      util::Rng rng(1);
      const auto plain = sim::run_bag_of_tasks(hosts, config, policy, rng);

      config.model_availability = true;
      util::Rng rng2(1);
      const auto avail = sim::run_bag_of_tasks(hosts, config, policy, rng2);

      table.add_row({to_string(policy),
                     util::Table::num(plain.makespan_days, 1),
                     util::Table::num(avail.makespan_days, 1),
                     std::to_string(plain.hosts_used)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout
      << "Observations: knowledge-free static striping degrades severely on "
         "the\nheterogeneous (correlated) population; ECT is robust; naive "
         "pull sits in\nbetween, exposed to slow-host stragglers; the "
         "availability overlay stretches\nevery policy's makespan by "
         "roughly the inverse mean ON fraction. Hardware\nprogress "
         "2006 -> 2014 shortens the same bag by the model's compound "
         "speed\ngrowth.\n";
  return 0;
}

// Scheduling study on modeled hosts — the research workflow from the
// paper's introduction: evaluate bag-of-tasks scheduling policies on a
// realistic host population, with and without the availability overlay.
//
//   ./scheduling_study [hosts] [tasks]
//
// The policy x host-vintage grid runs through sim::run_policy_sweep (one
// deterministic cell per combination, executed on a worker pool) — twice,
// once per availability setting, so no policy loop is serial.
#include <iostream>
#include <string>

#include "core/host_generator.h"
#include "sim/bag_of_tasks.h"
#include "sim/baseline_models.h"
#include "util/table.h"

using namespace resmodel;

namespace {

sim::HostResourcesSoA make_hosts(std::size_t n, int year) {
  const core::HostGenerator gen(core::paper_params());
  util::Rng rng(2024);
  return sim::HostResourcesSoA::from_batch(
      gen.generate_batch(util::ModelDate::from_ymd(year, 1, 1), n, rng));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t host_count = 1000;
  std::size_t task_count = 10000;
  if (argc > 1) host_count = std::stoul(argv[1]);
  if (argc > 2) task_count = std::stoul(argv[2]);

  std::cout << "Bag of " << task_count << " tasks on " << host_count
            << " hosts generated from the published correlated model.\n\n";

  std::vector<sim::SweepPopulation> populations;
  for (const int year : {2006, 2010, 2014}) {
    populations.push_back(
        {std::to_string(year), make_hosts(host_count, year)});
  }

  sim::PolicySweepConfig sweep;
  sweep.policies = {
      sim::SchedulingPolicy::kStaticRoundRobin,
      sim::SchedulingPolicy::kStaticSpeedWeighted,
      sim::SchedulingPolicy::kDynamicPull,
      sim::SchedulingPolicy::kDynamicEct,
  };
  sweep.task_counts = {task_count};
  sweep.workload_seed = 1;

  const sim::PolicySweepResult plain = sim::run_policy_sweep(populations, sweep);
  sweep.base.model_availability = true;
  const sim::PolicySweepResult derated =
      sim::run_policy_sweep(populations, sweep);

  for (std::size_t p = 0; p < populations.size(); ++p) {
    util::Table table({"Policy (" + populations[p].name + " hosts)",
                       "Makespan (days)", "Makespan w/ availability",
                       "Hosts used"});
    for (std::size_t pol = 0; pol < sweep.policies.size(); ++pol) {
      const sim::BagOfTasksResult& fast = plain.at(p, pol, 0).result;
      const sim::BagOfTasksResult& slow = derated.at(p, pol, 0).result;
      table.add_row({to_string(sweep.policies[pol]),
                     util::Table::num(fast.makespan_days, 1),
                     util::Table::num(slow.makespan_days, 1),
                     std::to_string(fast.hosts_used)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout
      << "Observations: knowledge-free static striping degrades severely on "
         "the\nheterogeneous (correlated) population; ECT is robust; naive "
         "pull sits in\nbetween, exposed to slow-host stragglers; the "
         "availability overlay stretches\nevery policy's makespan by "
         "roughly the inverse mean ON fraction. Hardware\nprogress "
         "2006 -> 2014 shortens the same bag by the model's compound "
         "speed\ngrowth.\n";
  return 0;
}

// The full Section-IV loop in one program:
//
//   1. run the BOINC-style master-worker collection simulation
//      (virtual clients measure themselves and contact the server);
//   2. dump the server's public trace file (CSV);
//   3. fit the correlated model from the dump;
//   4. generate hosts from the fitted model and validate them against the
//      collected population.
//
//   ./end_to_end_collection [target-active-hosts]
#include <iostream>
#include <string>

#include "boinc/simulation.h"
#include "core/fit_pipeline.h"
#include "core/host_generator.h"
#include "core/validation.h"
#include "trace/csv_io.h"
#include "util/table.h"

using namespace resmodel;

int main(int argc, char** argv) {
  boinc::CollectionConfig config;
  config.population.seed = 20110620;  // ICDCS'11 week
  config.population.target_active_hosts = 2000;
  if (argc > 1) {
    config.population.target_active_hosts =
        static_cast<std::size_t>(std::stoul(argv[1]));
  }

  std::cout << "1. Running the measurement substrate ("
            << config.population.sim_start.to_string() << " .. "
            << config.population.sim_end.to_string() << ", target "
            << config.population.target_active_hosts
            << " active hosts)...\n";
  const boinc::CollectionResult collected = boinc::run_collection(config);
  std::cout << "   hosts: " << collected.hosts_created
            << ", scheduler contacts: " << collected.total_contacts
            << ", work units granted: " << collected.total_units_granted
            << ", credit: " << collected.total_credit_granted << "\n";

  const std::string dump_path = "collected_trace.csv";
  trace::write_csv_file(collected.trace, dump_path);
  std::cout << "2. Server dump written to " << dump_path << " ("
            << collected.trace.size() << " host records)\n";

  std::cout << "3. Fitting the correlated model from the dump...\n";
  const trace::TraceStore reloaded = trace::read_csv_file(dump_path);
  const core::FitReport report = core::fit_model(reloaded);
  std::cout << "   discarded by plausibility rules: "
            << report.discarded_hosts << "; fitted hosts: "
            << report.fitted_hosts << "\n   1:2 core ratio law: a = "
            << report.core_ratios[0].law.a
            << ", b = " << report.core_ratios[0].law.b << " (paper: 3.369, "
            << "-0.5004)\n";

  std::cout << "4. Validating generated hosts against the collected "
               "population (Jan 2010):\n";
  const core::HostGenerator generator(report.params);
  const util::ModelDate date = util::ModelDate::from_ymd(2010, 1, 1);
  trace::TraceStore filtered;
  for (const trace::HostRecord& h : reloaded.hosts()) filtered.add(h);
  filtered.discard_implausible();
  const trace::ResourceSnapshot actual = filtered.snapshot(date);
  util::Rng rng(1);
  const core::GeneratedHostBatch generated =
      generator.generate_batch(date, actual.size(), rng);

  util::Table table({"Resource", "mu actual", "mu generated", "diff"});
  for (const core::ResourceComparison& c :
       core::compare_resources(actual, generated)) {
    table.add_row({c.name, util::Table::num(c.mean_actual, 1),
                   util::Table::num(c.mean_generated, 1),
                   util::Table::pct(c.mean_diff_fraction)});
  }
  table.print(std::cout);
  std::cout << "\nDone: collection -> public dump -> model fit -> host "
               "generation, end to end.\n";
  return 0;
}

// Capacity planning with model-based prediction (§VI-C): what will the
// host population look like through 2014, and what are the best/worst
// hosts an application can expect?
//
//   ./capacity_planning
#include <iostream>

#include "core/model_params.h"
#include "core/prediction.h"
#include "util/table.h"

using namespace resmodel;

int main() {
  const core::ModelParams params = core::paper_params();
  // Memory predictions use the §V-E six-value per-core chain (see
  // core/prediction.h for why).
  const core::ModelParams memory_params =
      core::with_memory_capped(params, 2048.0);

  std::cout << "Predicted host composition, 2010-2014 (published model):\n\n";
  util::Table table({"Year", "Mean cores", "1-core share", ">=8-core share",
                     "Mean mem (GB)", "Dhry mean", "Whet mean",
                     "Disk mean (GB)"});
  for (int year = 2010; year <= 2014; ++year) {
    const double t = year - 2006.0;
    const auto fractions = core::predicted_core_fractions(params, {t});
    const double ge8 = fractions[3][0] + fractions[4][0];
    table.add_row(
        {std::to_string(year),
         util::Table::num(core::predicted_mean_cores(params, t), 2),
         util::Table::pct(fractions[0][0]), util::Table::pct(ge8),
         util::Table::num(
             core::predicted_mean_memory_mb(memory_params, t) / 1024.0, 2),
         util::Table::num(core::predicted_dhrystone(params, t).mean, 0),
         util::Table::num(core::predicted_whetstone(params, t).mean, 0),
         util::Table::num(core::predicted_disk_gb(params, t).mean, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper's 2014 checkpoints: 4.6 mean cores, 6.8 GB mean "
               "memory, Dhrystone\n(8100, 4419), Whetstone (2975, 868), "
               "disk (272.0, 434.5).\n";

  // Best/worst host prediction (the §VI-C sketch).
  std::cout << "\nBest/median/worst widely-available host in 2014 "
               "(1%/50%/99% quantiles):\n";
  util::Table quantiles({"Quantile", "Cores", "Memory (MB)", "Whetstone",
                         "Dhrystone", "Disk (GB)"});
  for (const auto& [label, q] :
       {std::pair<const char*, double>{"Worst (1%)", 0.01},
        {"Median", 0.50},
        {"Best (99%)", 0.99}}) {
    const core::QuantileHost h =
        core::predicted_quantile_host(params, 8.0, q);
    quantiles.add_row({label, util::Table::num(h.cores, 0),
                       util::Table::num(h.memory_mb, 0),
                       util::Table::num(h.whetstone_mips, 0),
                       util::Table::num(h.dhrystone_mips, 0),
                       util::Table::num(h.disk_avail_gb, 1)});
  }
  quantiles.print(std::cout);

  std::cout << "\nPlanning guidance: an application needing >= 4 cores and "
               ">= 4 GB can target\nthe majority of hosts by 2014; one "
               "needing > 1 TB of free disk can only count\non the top few "
               "percent.\n";
  return 0;
}

// Measure the machine this program runs on, exactly the way the BOINC
// client measured the paper's 2.7 million hosts: probe cores/memory/disk
// through OS APIs and run Dhrystone/Whetstone on all cores simultaneously,
// then place the result in the model's population.
//
//   ./measure_local_host [benchmark-seconds]
#include <iostream>
#include <string>

#include "bench_suite/local_probe.h"
#include "core/model_params.h"
#include "core/prediction.h"
#include "util/table.h"

using namespace resmodel;

int main(int argc, char** argv) {
  double seconds = 1.0;
  if (argc > 1) seconds = std::stod(argv[1]);

  std::cout << "Measuring this host (benchmarks run " << seconds
            << "s on every core simultaneously, as BOINC does)...\n\n";
  const bench_suite::LocalMeasurement m =
      bench_suite::measure_local_host(seconds);

  util::Table table({"Measurement", "Value"});
  table.add_row({"OS", m.info.os_name});
  table.add_row({"Processing cores", std::to_string(m.info.n_cores)});
  table.add_row({"Memory (MB)", util::Table::num(m.info.memory_mb, 0)});
  table.add_row({"Disk total (GB)", util::Table::num(m.info.disk_total_gb, 1)});
  table.add_row({"Disk available (GB)",
                 util::Table::num(m.info.disk_avail_gb, 1)});
  table.add_row({"Dhrystone MIPS/core (avg)",
                 util::Table::num(m.dhrystone_mips, 0)});
  table.add_row({"Whetstone MIPS/core (avg)",
                 util::Table::num(m.whetstone_mips, 0)});
  table.print(std::cout);

  // Where would this machine have ranked in the paper's 2010 population?
  const core::ModelParams params = core::paper_params();
  const double t2010 = 4.67;  // Sep 2010
  const auto dhry = core::predicted_dhrystone(params, t2010);
  const auto whet = core::predicted_whetstone(params, t2010);
  std::cout << "\nRelative to the modeled September 2010 population:\n"
            << "  Dhrystone: " << util::Table::num(m.dhrystone_mips, 0)
            << " vs population mean " << util::Table::num(dhry.mean, 0)
            << " (z = "
            << util::Table::num((m.dhrystone_mips - dhry.mean) / dhry.stddev,
                                1)
            << ")\n"
            << "  Whetstone: " << util::Table::num(m.whetstone_mips, 0)
            << " vs population mean " << util::Table::num(whet.mean, 0)
            << " (z = "
            << util::Table::num((m.whetstone_mips - whet.mean) / whet.stddev,
                                1)
            << ")\n"
            << "\n(Modern hardware typically lands several sigma above the "
               "2010 mean —\nthe exponential laws in Table X are about "
               "population mixture, not Moore's law\nper-machine.)\n";
  return 0;
}

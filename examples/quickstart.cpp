// Quickstart: generate a realistic set of Internet end hosts for a date.
//
//   ./quickstart [YYYY-MM-DD] [count]
//
// Uses the published model parameters (Table X of the paper) to synthesize
// hosts with correlated resources, prints a few of them and the summary
// statistics of the batch.
#include <iostream>
#include <string>

#include "core/host_generator.h"
#include "core/model_params.h"
#include "stats/descriptive.h"
#include "util/model_date.h"
#include "util/rng.h"
#include "util/table.h"

using namespace resmodel;

int main(int argc, char** argv) {
  util::ModelDate date = util::ModelDate::from_ymd(2010, 9, 1);
  std::size_t count = 10000;
  try {
    if (argc > 1) date = util::ModelDate::parse(argv[1]);
    if (argc > 2) count = static_cast<std::size_t>(std::stoul(argv[2]));
  } catch (const std::exception& e) {
    std::cerr << "usage: quickstart [YYYY-MM-DD] [count]\n" << e.what()
              << '\n';
    return 1;
  }

  // 1. The published model (fit your own with core::fit_model instead).
  const core::ModelParams params = core::paper_params();

  // 2. A generator and a deterministic random stream.
  const core::HostGenerator generator(params);
  util::Rng rng(42);

  // 3. Hosts, through the batched structure-of-arrays engine.
  const core::GeneratedHostBatch hosts =
      generator.generate_batch(date, count, rng);

  std::cout << "Generated " << hosts.size() << " hosts for "
            << date.to_string() << " (t = " << date.t()
            << " years since 2006).\n\nFirst five hosts:\n";
  util::Table sample({"Cores", "Memory (MB)", "Whetstone", "Dhrystone",
                      "Avail disk (GB)"});
  for (std::size_t i = 0; i < 5 && i < hosts.size(); ++i) {
    const core::GeneratedHost h = hosts.host(i);
    sample.add_row({std::to_string(h.n_cores),
                    util::Table::num(h.memory_mb, 0),
                    util::Table::num(h.whetstone_mips, 0),
                    util::Table::num(h.dhrystone_mips, 0),
                    util::Table::num(h.disk_avail_gb, 1)});
  }
  sample.print(std::cout);

  const core::GeneratedColumns cols = core::columns_of(hosts);
  std::cout << "\nBatch statistics:\n";
  util::Table summary({"Resource", "Mean", "Stddev", "Median"});
  const auto row = [&summary](const std::string& name,
                              const std::vector<double>& values, int prec) {
    const stats::Summary s = stats::summarize(values);
    summary.add_row({name, util::Table::num(s.mean, prec),
                     util::Table::num(s.stddev, prec),
                     util::Table::num(s.median, prec)});
  };
  row("Cores", cols.cores, 2);
  row("Memory (MB)", cols.memory_mb, 0);
  row("Whetstone MIPS", cols.whetstone_mips, 0);
  row("Dhrystone MIPS", cols.dhrystone_mips, 0);
  row("Avail disk (GB)", cols.disk_avail_gb, 1);
  summary.print(std::cout);

  std::cout << "\nThe model file format (save/load with "
               "ModelParams::serialize/deserialize):\n"
            << params.serialize().substr(0, 400) << "...\n";
  return 0;
}

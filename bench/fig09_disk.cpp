// Figure 9: distributions of available disk space in 2006 / 2008 / 2010.
// Paper: mean/median/stddev (GB) — 2006: 32.89/15.61/60.25; 2008:
// 52.01/24.45/87.13; 2010: 98.13/43.74/157.8. Log-normal fits best with
// subsampled p-values 0.43-0.51.
#include <cmath>
#include <iostream>

#include "common.h"
#include "stats/descriptive.h"
#include "stats/fitting.h"
#include "stats/histogram.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Figure 9", "Available disk space over time");

  struct Anchor {
    int year;
    double mean, median, stddev;
  };
  static constexpr Anchor kAnchors[] = {
      {2006, 32.89, 15.61, 60.25},
      {2008, 52.01, 24.45, 87.13},
      {2010, 98.13, 43.74, 157.8},
  };

  for (const Anchor& anchor : kAnchors) {
    const trace::ResourceSnapshot snap = bench::bench_trace().snapshot(
        util::ModelDate::from_ymd(anchor.year, 1, 1));
    const stats::Summary s = stats::summarize(snap.disk_avail_gb);
    std::cout << "\n--- " << anchor.year << " ---\n";
    util::Table table({"Available disk (GB)", "Measured", "Paper"});
    table.add_row({"Mean", util::Table::num(s.mean, 2),
                   util::Table::num(anchor.mean, 2)});
    table.add_row({"Median", util::Table::num(s.median, 2),
                   util::Table::num(anchor.median, 2)});
    table.add_row({"Stddev", util::Table::num(s.stddev, 2),
                   util::Table::num(anchor.stddev, 2)});
    const auto ranked = stats::select_best_distribution(snap.disk_avail_gb);
    if (!ranked.empty()) {
      table.add_row({"Best family (subsampled KS)",
                     stats::family_name(ranked.front().family) + " p=" +
                         util::Table::num(ranked.front().avg_p_value, 2),
                     "log-normal, p 0.43-0.51"});
    }
    table.print(std::cout);

    // The figure plots log10(disk); print the density over that axis.
    std::vector<double> log_disk;
    log_disk.reserve(snap.disk_avail_gb.size());
    for (double v : snap.disk_avail_gb) {
      if (v > 0) log_disk.push_back(std::log10(v));
    }
    stats::Histogram hist(-2.0, 4.0, 24);
    hist.add_all(log_disk);
    std::vector<double> centers;
    for (std::size_t b = 0; b < hist.bin_count(); ++b) {
      centers.push_back(hist.bin_center(b));
    }
    util::AsciiChart chart(
        "log10(available disk GB) density, " + std::to_string(anchor.year),
        centers);
    chart.add_series({"density", hist.density()});
    chart.print(std::cout, 60, 10);
  }
  return 0;
}

// Performance microbenchmarks (google-benchmark) plus the copula ablation
// called out in DESIGN.md: correlated vs independent sampling, showing why
// the Cholesky step is cheap enough to be the default.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "backend/backend.h"
#include "churn/churn_scheduler.h"
#include "engine/checkpoint.h"
#include "churn/interval_timeline.h"
#include "core/fit_pipeline.h"
#include "core/host_generator.h"
#include "engine/service_engine.h"
#include "model/empirical_rank_copula.h"
#include "model/factory.h"
#include "sim/allocator.h"
#include "sim/bag_of_tasks.h"
#include "sim/baseline_models.h"
#include "sim/schedule_state.h"
#include "stats/correlation.h"
#include "stats/fitting.h"
#include "stats/kstest.h"
#include "stats/matrix.h"
#include "store/adapters.h"
#include "store/snapshot.h"
#include "synth/population.h"
#include "util/rng.h"

namespace {

using namespace resmodel;

void BM_HostGeneration(benchmark::State& state) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(1);
  const auto date = util::ModelDate::from_ymd(2010, 9, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate(date, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostGeneration);

// The acceptance pair for the SoA engine: per-host generate() in a loop
// vs generate_batch for the same host count. The batch path hoists every
// date-dependent table (pmfs, moments, the disk log-normal) out of the
// loop and fills contiguous columns; at 1M hosts it must be >= 2x faster.
void BM_HostGenerationLoopAoS(benchmark::State& state) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(2);
  const auto date = util::ModelDate::from_ymd(2010, 9, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate_many(date, n, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HostGenerationLoopAoS)
    ->Arg(1000)->Arg(10000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_HostGenerationBatchSoA(benchmark::State& state) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(2);
  const auto date = util::ModelDate::from_ymd(2010, 9, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate_batch(date, n, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HostGenerationBatchSoA)
    ->Arg(1000)->Arg(10000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_HostGenerationBatchParallel(benchmark::State& state) {
  const core::HostGenerator generator(core::paper_params());
  const auto date = util::ModelDate::from_ymd(2010, 9, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate_batch_parallel(date, n, 2, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HostGenerationBatchParallel)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// One triple draw through each pluggable dependence structure.
void BM_CorrelationModelSample(benchmark::State& state) {
  const core::ModelParams params = core::paper_params();
  std::unique_ptr<model::CorrelationModel> m;
  switch (state.range(0)) {
    case 0:
      m = model::make_correlation_model(model::CorrelationKind::kCholesky,
                                        params.resource_correlation);
      state.SetLabel("cholesky");
      break;
    case 1:
      m = model::make_correlation_model(model::CorrelationKind::kIndependent,
                                        params.resource_correlation);
      state.SetLabel("independent");
      break;
    default: {
      const core::HostGenerator generator(params);
      util::Rng fit_rng(10);
      const auto batch = generator.generate_batch(
          util::ModelDate::from_ymd(2010, 1, 1), 4000, fit_rng);
      const std::vector<std::vector<double>> cols = {
          batch.memory_per_core_mb, batch.whetstone_mips,
          batch.dhrystone_mips};
      m = std::make_unique<model::EmpiricalRankCopula>(
          model::EmpiricalRankCopula::fit(cols));
      state.SetLabel("empirical");
      break;
    }
  }
  util::Rng rng(11);
  double z[3];
  for (auto _ : state) {
    m->sample_normals(4.0, rng, z);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_CorrelationModelSample)->Arg(0)->Arg(1)->Arg(2);

void BM_Cholesky3x3(benchmark::State& state) {
  const stats::Matrix r = stats::Matrix::from_rows({
      {1.0, 0.250, 0.306},
      {0.250, 1.0, 0.639},
      {0.306, 0.639, 1.0},
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::cholesky(r));
  }
}
BENCHMARK(BM_Cholesky3x3);

// Ablation: correlated triple vs three independent normals. The copula
// costs only the L*z multiply; this quantifies it.
void BM_CorrelatedTriple(benchmark::State& state) {
  const auto lower = stats::cholesky(stats::Matrix::from_rows({
      {1.0, 0.250, 0.306},
      {0.250, 1.0, 0.639},
      {0.306, 0.639, 1.0},
  }));
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::correlated_normals(rng, *lower));
  }
}
BENCHMARK(BM_CorrelatedTriple);

void BM_IndependentTriple(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) {
    double v[3] = {rng.normal(), rng.normal(), rng.normal()};
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_IndependentTriple);

void BM_KsTestSubsampled(benchmark::State& state) {
  const stats::NormalDist dist(2056.0, 1046.0);
  util::Rng rng(5);
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (double& x : xs) x = dist.sample(rng);
  for (auto _ : state) {
    util::Rng sub_rng(6);
    benchmark::DoNotOptimize(
        stats::subsampled_ks_p_value(xs, dist, 100, 50, sub_rng));
  }
}
BENCHMARK(BM_KsTestSubsampled)->Arg(10000)->Arg(100000);

void BM_WeibullMle(benchmark::State& state) {
  const stats::WeibullDist truth(0.58, 135.0);
  util::Rng rng(7);
  std::vector<double> xs(static_cast<std::size_t>(state.range(0)));
  for (double& x : xs) x = truth.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_weibull(xs));
  }
}
BENCHMARK(BM_WeibullMle)->Arg(10000);

void BM_PopulationGeneration(benchmark::State& state) {
  synth::PopulationConfig config;
  config.target_active_hosts = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::generate_population(config));
  }
}
BENCHMARK(BM_PopulationGeneration)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_FitPipeline(benchmark::State& state) {
  synth::PopulationConfig config;
  config.target_active_hosts = 2000;
  const trace::TraceStore store = synth::generate_population(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit_model(store));
  }
  state.counters["hosts"] = static_cast<double>(store.size());
}
BENCHMARK(BM_FitPipeline)->Unit(benchmark::kMillisecond);

// The acceptance pair for the SoA allocator: the retained pre-SoA
// implementation (per-pair std::pow + comparator index sort) against the
// columnar log-domain path. Both consume the same generated host set; at
// 100k hosts the SoA path must be >= 5x faster in the same Release run.
void BM_RoundRobinAllocationAoS(benchmark::State& state) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(8);
  const std::vector<sim::HostResources> hosts =
      sim::to_host_resources(generator.generate_batch(
          util::ModelDate::from_ymd(2010, 1, 1),
          static_cast<std::size_t>(state.range(0)), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::allocate_round_robin_reference(sim::paper_applications(), hosts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundRobinAllocationAoS)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_RoundRobinAllocation(benchmark::State& state) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(8);
  const sim::HostResourcesSoA hosts =
      sim::HostResourcesSoA::from_batch(generator.generate_batch(
          util::ModelDate::from_ymd(2010, 1, 1),
          static_cast<std::size_t>(state.range(0)), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::allocate_round_robin(sim::paper_applications(), hosts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundRobinAllocation)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Arg(1000000)->Unit(benchmark::kMillisecond);

// --- Bag-of-tasks policy kernels (Release CI perf smoke runs these). ---

sim::HostResourcesSoA scheduling_hosts(std::size_t n) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(12);
  return sim::HostResourcesSoA::from_batch(generator.generate_batch(
      util::ModelDate::from_ymd(2010, 1, 1), n, rng));
}

// The acceptance pair for the blocked-MCT rewrite: the retained scalar
// kDynamicEct scan vs the blocked + lower-bound-pruned kernel over the
// columnar ScheduleState, identical hosts and workload (and bit-identical
// results — tests/sim/ enforces that). At 100k hosts / 100k tasks the
// blocked path must be >= 3x faster in the same Release run.
void BM_BagOfTasksEctReference(benchmark::State& state) {
  const sim::HostResourcesSoA hosts =
      scheduling_hosts(static_cast<std::size_t>(state.range(0)));
  sim::BagOfTasksConfig config;
  config.task_count = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    util::Rng rng(99);
    benchmark::DoNotOptimize(sim::run_bag_of_tasks_reference(
        hosts, config, sim::SchedulingPolicy::kDynamicEct, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_BagOfTasksEctReference)
    ->Args({10000, 10000})->Args({100000, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_BagOfTasksEctBlocked(benchmark::State& state) {
  const sim::HostResourcesSoA hosts =
      scheduling_hosts(static_cast<std::size_t>(state.range(0)));
  sim::BagOfTasksConfig config;
  config.task_count = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    util::Rng rng(99);
    benchmark::DoNotOptimize(sim::run_bag_of_tasks(
        hosts, config, sim::SchedulingPolicy::kDynamicEct, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_BagOfTasksEctBlocked)
    ->Args({10000, 10000})->Args({100000, 100000})
    ->Unit(benchmark::kMillisecond);

// The churn acceptance pair: the derate ECT (scalar availability, same
// interval realizations drawn and averaged away) vs the interval-aware
// churn ECT that walks the ON/OFF structure. Both include availability
// realization in the timed region — the delta is the timeline compile
// plus the pruned interval walks, and at 100k hosts / 100k tasks the
// churn path must stay within 3x of the derate path in the same Release
// run.
void BM_BagOfTasksEctDerate(benchmark::State& state) {
  const sim::HostResourcesSoA hosts =
      scheduling_hosts(static_cast<std::size_t>(state.range(0)));
  sim::BagOfTasksConfig config;
  config.task_count = static_cast<std::size_t>(state.range(1));
  config.model_availability = true;
  for (auto _ : state) {
    util::Rng rng(99);
    benchmark::DoNotOptimize(sim::run_bag_of_tasks(
        hosts, config, sim::SchedulingPolicy::kDynamicEct, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_BagOfTasksEctDerate)
    ->Args({10000, 10000})->Args({100000, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_BagOfTasksChurn(benchmark::State& state) {
  const sim::HostResourcesSoA hosts =
      scheduling_hosts(static_cast<std::size_t>(state.range(0)));
  sim::BagOfTasksConfig config;
  config.task_count = static_cast<std::size_t>(state.range(1));
  const sim::SchedulingPolicy policy =
      state.range(2) == 0   ? sim::SchedulingPolicy::kChurnEctCheckpoint
      : state.range(2) == 1 ? sim::SchedulingPolicy::kChurnEctRestart
                            : sim::SchedulingPolicy::kChurnEctAbandon;
  state.SetLabel(state.range(2) == 0   ? "checkpoint"
                 : state.range(2) == 1 ? "restart"
                                       : "abandon");
  for (auto _ : state) {
    util::Rng rng(99);
    benchmark::DoNotOptimize(sim::run_bag_of_tasks(hosts, config, policy,
                                                   rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_BagOfTasksChurn)
    ->Args({10000, 10000, 0})->Args({10000, 10000, 1})
    ->Args({10000, 10000, 2})
    ->Args({100000, 100000, 0})
    ->Unit(benchmark::kMillisecond);

// The fault-tolerant distribution layer: 2-of-3 quorum replication with
// deadline re-issue over a population with 14% faulty hosts (crash /
// straggler / corrupter). Beyond the wall time, this exports the outcome
// counters as deterministic metrics — in particular lost_tasks, the
// zero-silently-lost-tasks invariant (issued minus the three resolution
// codes), which the CI counter gate holds at exactly zero.
void BM_BagOfTasksReplicated(benchmark::State& state) {
  const sim::HostResourcesSoA hosts =
      scheduling_hosts(static_cast<std::size_t>(state.range(0)));
  sim::BagOfTasksConfig config;
  config.task_count = static_cast<std::size_t>(state.range(1));
  config.replication.enabled = true;
  config.replication.quorum = 2;
  config.replication.replicas = 3;
  config.replication.deadline_days = 4.0;
  config.fault_mix.crash_fraction = 0.06;
  config.fault_mix.straggler_fraction = 0.04;
  config.fault_mix.corrupter_fraction = 0.04;
  const sim::SchedulingPolicy policy =
      state.range(2) == 0 ? sim::SchedulingPolicy::kDynamicEct
                          : sim::SchedulingPolicy::kChurnEctCheckpoint;
  state.SetLabel(state.range(2) == 0 ? "ect" : "churn-checkpoint");
  sim::BagOfTasksResult result;
  for (auto _ : state) {
    util::Rng rng(99);
    result = sim::run_bag_of_tasks(hosts, config, policy, rng);
    benchmark::DoNotOptimize(result);
  }
  const sim::ReplicationOutcome& o = result.replication;
  state.counters["tasks_issued"] = static_cast<double>(o.tasks_issued);
  state.counters["tasks_validated"] = static_cast<double>(o.tasks_validated);
  state.counters["tasks_invalid"] = static_cast<double>(o.tasks_invalid);
  state.counters["tasks_missed_deadline"] =
      static_cast<double>(o.tasks_missed_deadline);
  state.counters["lost_tasks"] = static_cast<double>(
      o.tasks_issued -
      (o.tasks_validated + o.tasks_invalid + o.tasks_missed_deadline));
  state.counters["reissues"] = static_cast<double>(o.reissues);
  state.counters["wasted_replica_cpu_days"] = o.wasted_replica_cpu_days;
  state.counters["makespan_days"] = result.makespan_days;
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_BagOfTasksReplicated)
    ->Args({10000, 10000, 0})->Args({10000, 10000, 1})
    ->Args({100000, 100000, 0})->Args({100000, 100000, 1})
    ->Unit(benchmark::kMillisecond);

// The sharded virtual-time service engine (src/engine/) end to end:
// cohort construction plus the full N-clients x D-virtual-days drain,
// with a representative fault mix. items/s is requests served per wall
// second — the paper-scale acceptance number the recorded BENCH_*.json
// reports at 1M clients x 7 days. The exported counters are
// deterministic and shard/thread-invariant (the engine oracle tests
// prove bit-identity), so tools/compare_bench.py diffs them in CI;
// engine_units_unaccounted is the conservation invariant held at zero.
// Args: {clients, virtual days, shards}. The 1M-client row is the
// recorded-bench headline and is excluded from the CI perf smoke.
void BM_EngineServe(benchmark::State& state) {
  engine::EngineConfig config;
  config.cohort_clients = static_cast<std::uint64_t>(state.range(0));
  config.cohort_horizon_days = static_cast<double>(state.range(1));
  config.shards = static_cast<std::uint32_t>(state.range(2));
  config.threads = 0;  // all cores
  config.collection.population.seed = 424242;
  config.collection.client.mean_contact_interval_days = 1.0;
  config.collection.client.model_availability = true;
  config.collection.fault_mix.crash_fraction = 0.06;
  config.collection.fault_mix.straggler_fraction = 0.04;
  config.collection.fault_mix.corrupter_fraction = 0.04;
  engine::EngineResult result;
  for (auto _ : state) {
    result = engine::run_service_engine(config);
    benchmark::DoNotOptimize(result);
  }
  state.counters["engine_requests"] =
      static_cast<double>(result.total_contacts);
  state.counters["engine_units_granted"] =
      static_cast<double>(result.total_units_granted);
  state.counters["engine_units_reported"] =
      static_cast<double>(result.total_units_reported);
  state.counters["engine_units_unaccounted"] =
      static_cast<double>(result.units_unaccounted());
  state.counters["requests_per_second"] = result.requests_per_second;
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(result.total_contacts));
}
BENCHMARK(BM_EngineServe)
    ->Args({100000, 7, 1})->Args({100000, 7, 8})->Args({1000000, 7, 8})
    ->Unit(benchmark::kMillisecond);

// The BM_EngineServe cohort with checkpointing riding the day barriers
// (epoch every 2 virtual days): the serve-throughput price of crash
// safety, read against BM_EngineServe/100000/7/8 in the same run.
// Separate name on purpose — adding args to BM_EngineServe would change
// its recorded-baseline names and break compare_bench.py matching.
void BM_EngineServeCheckpointed(benchmark::State& state) {
  engine::EngineConfig config;
  config.cohort_clients = static_cast<std::uint64_t>(state.range(0));
  config.cohort_horizon_days = static_cast<double>(state.range(1));
  config.shards = static_cast<std::uint32_t>(state.range(2));
  config.threads = 0;
  config.collection.population.seed = 424242;
  config.collection.client.mean_contact_interval_days = 1.0;
  config.collection.client.model_availability = true;
  config.collection.fault_mix.crash_fraction = 0.06;
  config.collection.fault_mix.straggler_fraction = 0.04;
  config.collection.fault_mix.corrupter_fraction = 0.04;
  config.checkpoint_path = "/tmp/resmodel_bench_serve_ck.snap";
  config.checkpoint_every_days = 2;
  engine::EngineResult result;
  for (auto _ : state) {
    result = engine::run_service_engine(config);
    benchmark::DoNotOptimize(result);
  }
  state.counters["engine_requests"] =
      static_cast<double>(result.total_contacts);
  state.counters["engine_units_unaccounted"] =
      static_cast<double>(result.units_unaccounted());
  state.counters["checkpoint_epochs"] =
      static_cast<double>(result.checkpoints_written);
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(result.total_contacts));
  std::remove(config.checkpoint_path.c_str());
}
BENCHMARK(BM_EngineServeCheckpointed)
    ->Args({100000, 7, 8})->Unit(benchmark::kMillisecond);

/// Publishes a mid-run (day 3 of 7) checkpoint of the BM_EngineServe
/// cohort and returns its path — shared setup for the checkpoint-write
/// and resume benchmarks below.
std::string engine_bench_checkpoint(std::int64_t clients,
                                    engine::EngineConfig* out_config) {
  engine::EngineConfig config;
  config.cohort_clients = static_cast<std::uint64_t>(clients);
  config.cohort_horizon_days = 7.0;
  config.shards = 8;
  config.threads = 0;
  config.collection.population.seed = 424242;
  config.collection.client.mean_contact_interval_days = 1.0;
  config.collection.client.model_availability = true;
  config.collection.fault_mix.crash_fraction = 0.06;
  config.collection.fault_mix.straggler_fraction = 0.04;
  config.collection.fault_mix.corrupter_fraction = 0.04;
  if (out_config) *out_config = config;
  engine::EngineConfig killed = config;
  killed.checkpoint_path =
      "/tmp/resmodel_bench_engine_ck_" + std::to_string(clients) + ".snap";
  killed.checkpoint_every_days = 4;
  killed.stop_after_day = 3;
  engine::run_service_engine(killed);
  return killed.checkpoint_path;
}

// Serialization + atomic publish of the complete 100k-client engine
// state (MB/s is the headline: bytes = the published snapshot's size).
void BM_EngineCheckpoint(benchmark::State& state) {
  const std::string path =
      engine_bench_checkpoint(state.range(0), nullptr);
  engine::CheckpointState ck = engine::load_checkpoint(path);
  const std::string out = path + ".rewrite";
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    engine::write_checkpoint(out, ck.meta, ck.shards, ck.coordinator.get());
    benchmark::DoNotOptimize(out);
  }
  {
    std::ifstream in(out, std::ios::binary | std::ios::ate);
    bytes = static_cast<std::uint64_t>(in.tellg());
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  std::remove(out.c_str());
  std::remove(path.c_str());
}
BENCHMARK(BM_EngineCheckpoint)->Arg(100000)->Unit(benchmark::kMillisecond);

// Resume latency: reconstruct the full run from the mid-run checkpoint
// and drain the remaining virtual days. engine_resume_divergence is the
// summed absolute distance between the resumed run's final counters and
// an uninterrupted run's — recorded at 0 and pinned there by the CI
// zero-baseline counter gate (bit-identity as a benchmark counter).
void BM_EngineResume(benchmark::State& state) {
  engine::EngineConfig uninterrupted;
  const std::string path =
      engine_bench_checkpoint(state.range(0), &uninterrupted);
  const engine::EngineResult reference =
      engine::run_service_engine(uninterrupted);
  engine::EngineConfig resume;
  resume.resume_path = path;
  resume.threads = 0;
  engine::EngineResult result;
  for (auto _ : state) {
    result = engine::run_service_engine(resume);
    benchmark::DoNotOptimize(result);
  }
  const auto dist = [](std::uint64_t a, std::uint64_t b) {
    return static_cast<double>(a > b ? a - b : b - a);
  };
  const double divergence =
      dist(result.total_contacts, reference.total_contacts) +
      dist(result.total_units_granted, reference.total_units_granted) +
      dist(result.total_units_reported, reference.total_units_reported) +
      dist(result.total_units_lost, reference.total_units_lost) +
      dist(result.total_units_expired, reference.total_units_expired) +
      dist(result.total_invalid_result_units,
           reference.total_invalid_result_units) +
      dist(result.units_in_flight, reference.units_in_flight) +
      (result.total_credit_granted == reference.total_credit_granted ? 0.0
                                                                     : 1.0);
  state.counters["engine_resume_divergence"] = divergence;
  state.counters["engine_requests"] =
      static_cast<double>(result.total_contacts);
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(result.total_contacts));
  std::remove(path.c_str());
}
BENCHMARK(BM_EngineResume)->Arg(100000)->Unit(benchmark::kMillisecond);

// kDynamicPull: the flat 4-ary heap vs the std::priority_queue oracle,
// benchmarked at the kernel level on a prebuilt ScheduleState and task
// vector — end-to-end runs bury the heap delta under task sampling and
// rate derivation.
std::vector<double> pull_bench_rates(std::size_t n) {
  const sim::HostResourcesSoA hosts = scheduling_hosts(n);
  sim::BagOfTasksConfig config;
  util::Rng rng(99);
  return sim::compute_host_rates(hosts, config, rng);
}

std::vector<double> pull_bench_tasks(std::size_t n) {
  std::vector<double> tasks(n);
  util::Rng rng(7);
  for (double& t : tasks) t = 500.0 + rng.uniform() * 8000.0;
  return tasks;
}

void BM_PullKernelPriorityQueue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> rates = pull_bench_rates(n);
  const std::vector<double> tasks = pull_bench_tasks(n);
  for (auto _ : state) {
    sim::ScheduleState sched = sim::ScheduleState::from_rates(rates);
    benchmark::DoNotOptimize(sim::pull_schedule_reference(sched, tasks));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PullKernelPriorityQueue)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_PullKernelDaryHeap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> rates = pull_bench_rates(n);
  const std::vector<double> tasks = pull_bench_tasks(n);
  for (auto _ : state) {
    sim::ScheduleState sched = sim::ScheduleState::from_rates(rates);
    benchmark::DoNotOptimize(sim::pull_schedule_dary(sched, tasks));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PullKernelDaryHeap)->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// The interval-walking kernels in isolation (prebuilt state + timeline,
// no availability realization or task sampling in the timed region).
// Mode 0/1/2 is the gate ablation the churn perf PR ships — the default
// envelope gate with float32-packed columns, the envelope gate over
// double columns, and the PR-4-style global bucket gate — mode 3 the
// full-walk scalar oracle. All four produce bit-identical schedules; the
// exported counters are deterministic kernel-shape telemetry
// (tools/compare_bench.py diffs them machine-independently in CI).
void BM_ChurnKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> rates = pull_bench_rates(n);
  const std::vector<double> tasks = pull_bench_tasks(n);
  util::Rng tl_rng(17);
  const churn::IntervalTimeline timeline = churn::IntervalTimeline::generate(
      synth::AvailabilityModel{}, n, 0.0, 100.0, tl_rng);
  const int mode = static_cast<int>(state.range(1));
  churn::ChurnSchedulerConfig config;
  bool reference = false;
  switch (mode) {
    case 0:
      state.SetLabel("envelope-f32");
      break;
    case 1:
      config.float32_columns = false;
      state.SetLabel("envelope-f64");
      break;
    case 2:
      config.gate_mode = churn::GateMode::kBucket;
      config.float32_columns = false;
      state.SetLabel("bucket-f64");
      break;
    default:
      reference = true;
      state.SetLabel("reference");
      break;
  }
  churn::ChurnScheduleTotals totals;
  for (auto _ : state) {
    sim::ScheduleState sched = sim::ScheduleState::from_rates(rates);
    churn::ChurnScheduler scheduler(sched, timeline, config);
    totals = reference
                 ? scheduler.run_reference(
                       tasks, churn::InterruptionPolicy::kCheckpoint)
                 : scheduler.run(tasks, churn::InterruptionPolicy::kCheckpoint);
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  const double per_task = 1.0 / static_cast<double>(tasks.size());
  state.counters["makespan_days"] = totals.makespan_days;
  state.counters["swept_blocks_per_task"] =
      static_cast<double>(totals.swept_blocks) * per_task;
  state.counters["resolved_lanes_per_task"] =
      static_cast<double>(totals.resolved_lanes) * per_task;
}
BENCHMARK(BM_ChurnKernel)
    ->Args({10000, 0})->Args({10000, 1})->Args({10000, 2})->Args({10000, 3})
    ->Args({100000, 0})->Args({100000, 1})->Args({100000, 2})
    ->Unit(benchmark::kMillisecond);

// --- Backend-arm pairs (src/backend/): blocked autovectorized kernels
// vs the explicit-SIMD intrinsic arms, same inputs, bit-identical
// results (the counters and makespans below are the cross-arm identity
// witness tools/compare_bench.py checks). Arm arg: 0 = blocked, 1 =
// simd (resolved against the CPU; on hardware without AVX2/AVX-512 the
// simd request falls back to blocked and the label says so).

backend::Backend bench_backend(benchmark::State& state, int arm) {
  if (arm == 0) {
    state.SetLabel("blocked");
    return backend::Backend::kBlocked;
  }
  const backend::ResolvedBackend rb = backend::resolve(backend::Backend::kSimd);
  state.SetLabel(rb.arm == backend::Backend::kSimd
                     ? "simd-" + backend::to_string(rb.simd)
                     : "simd-fallback-blocked");
  return backend::Backend::kSimd;
}

// The ECT scan kernel per arm: prebuilt rate-sorted state copied per
// iteration (column memcpy — the same warm start run_policy_sweep uses),
// so the timed region is the blocked/SIMD min-reduction sweep itself. At
// 100k hosts / 100k tasks the simd arm must be >= 1.4x the blocked arm
// in the same Release run, with identical makespans.
void BM_EctKernelBackend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> rates = pull_bench_rates(n);
  const std::vector<double> tasks = pull_bench_tasks(n);
  sim::ScheduleState base = sim::ScheduleState::from_rates(rates);
  base.ensure_ect_caches();
  base.backend = bench_backend(state, static_cast<int>(state.range(1)));
  sim::DynamicScheduleTotals totals;
  for (auto _ : state) {
    sim::ScheduleState sched = base;
    totals = sim::ect_schedule_blocked(sched, tasks);
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["makespan_days"] = totals.makespan_days;
}
BENCHMARK(BM_EctKernelBackend)
    ->Args({10000, 0})->Args({10000, 1})
    ->Args({100000, 0})->Args({100000, 1})
    ->Unit(benchmark::kMillisecond);

// The churn gate sweep per arm (envelope gate, float32 columns — the
// default configuration BM_ChurnKernel measures across gate modes). Same
// >= 1.4x acceptance at 100k/100k, with identical swept_blocks_per_task /
// resolved_lanes_per_task / makespan_days counters across arms.
void BM_ChurnKernelBackend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> rates = pull_bench_rates(n);
  const std::vector<double> tasks = pull_bench_tasks(n);
  util::Rng tl_rng(17);
  const churn::IntervalTimeline timeline = churn::IntervalTimeline::generate(
      synth::AvailabilityModel{}, n, 0.0, 100.0, tl_rng);
  churn::ChurnSchedulerConfig config;
  config.backend = bench_backend(state, static_cast<int>(state.range(1)));
  churn::ChurnScheduleTotals totals;
  for (auto _ : state) {
    sim::ScheduleState sched = sim::ScheduleState::from_rates(rates);
    churn::ChurnScheduler scheduler(sched, timeline, config);
    totals = scheduler.run(tasks, churn::InterruptionPolicy::kCheckpoint);
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  const double per_task = 1.0 / static_cast<double>(tasks.size());
  state.counters["makespan_days"] = totals.makespan_days;
  state.counters["swept_blocks_per_task"] =
      static_cast<double>(totals.swept_blocks) * per_task;
  state.counters["resolved_lanes_per_task"] =
      static_cast<double>(totals.resolved_lanes) * per_task;
}
BENCHMARK(BM_ChurnKernelBackend)
    ->Args({10000, 0})->Args({10000, 1})
    ->Args({100000, 0})->Args({100000, 1})
    ->Unit(benchmark::kMillisecond);

// The allocator's fused score+pack sweep per arm (the sort and selection
// phases are shared code, so the arm delta is diluted by design — this
// measures the end-to-end effect a caller sees).
void BM_RoundRobinAllocationBackend(benchmark::State& state) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(8);
  const sim::HostResourcesSoA hosts =
      sim::HostResourcesSoA::from_batch(generator.generate_batch(
          util::ModelDate::from_ymd(2010, 1, 1),
          static_cast<std::size_t>(state.range(0)), rng));
  const backend::Backend arm =
      bench_backend(state, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::allocate_round_robin(
        sim::paper_applications(), hosts, /*threads=*/0, arm));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundRobinAllocationBackend)
    ->Args({100000, 0})->Args({100000, 1})
    ->Unit(benchmark::kMillisecond);

// One full policy x dependence-structure grid through the parallel sweep
// runner (the CLI `sweep` command's engine).
void BM_PolicySweepGrid(benchmark::State& state) {
  std::vector<sim::SweepPopulation> populations;
  populations.push_back({"hosts", scheduling_hosts(
      static_cast<std::size_t>(state.range(0)))});
  sim::PolicySweepConfig sweep;
  sweep.policies = {
      sim::SchedulingPolicy::kStaticRoundRobin,
      sim::SchedulingPolicy::kDynamicPull,
      sim::SchedulingPolicy::kDynamicEct,
  };
  sweep.task_counts = {static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_policy_sweep(populations, sweep));
  }
}
BENCHMARK(BM_PolicySweepGrid)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_PearsonCorrelation(benchmark::State& state) {
  util::Rng rng(9);
  std::vector<double> xs(100000), ys(100000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = 0.5 * xs[i] + rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::pearson(xs, ys));
  }
}
BENCHMARK(BM_PearsonCorrelation);

// --- columnar snapshot store (src/store/): pack / unpack / verify ----------
// Throughput of the durable artifact path `resmodel pack/unpack` uses;
// SetBytesProcessed reports logical column bytes (44 B/host), so bytes/s
// is comparable across shard sizes and row counts.

core::GeneratedHostBatch snapshot_bench_population(std::size_t n) {
  util::Rng rng(0xBE7C);
  core::GeneratedHostBatch batch;
  batch.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.n_cores[i] = 1 + static_cast<int>(rng.uniform_index(16));
    batch.memory_per_core_mb[i] =
        static_cast<double>(rng.uniform_index(1u << 20)) / 256.0;
    batch.memory_mb[i] = batch.memory_per_core_mb[i] * batch.n_cores[i];
    batch.whetstone_mips[i] = static_cast<double>(rng.uniform_index(1u << 22));
    batch.dhrystone_mips[i] = static_cast<double>(rng.uniform_index(1u << 22));
    batch.disk_avail_gb[i] =
        static_cast<double>(rng.uniform_index(1u << 18)) / 4.0;
  }
  return batch;
}

constexpr std::size_t kSnapshotBytesPerHost = sizeof(int) + 5 * sizeof(double);

void BM_SnapshotPackPopulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::GeneratedHostBatch batch = snapshot_bench_population(n);
  const std::string path = "/tmp/resmodel_bench_pack.snap";
  for (auto _ : state) {
    store::write_population_snapshot(path, batch, /*shard_rows=*/1u << 18);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * n * kSnapshotBytesPerHost));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotPackPopulation)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotUnpackPopulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string path = "/tmp/resmodel_bench_unpack.snap";
  store::write_population_snapshot(path, snapshot_bench_population(n),
                                   1u << 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::read_population_snapshot(path));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * n * kSnapshotBytesPerHost));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotUnpackPopulation)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotVerify(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string path = "/tmp/resmodel_bench_verify.snap";
  store::write_population_snapshot(path, snapshot_bench_population(n),
                                   1u << 18);
  for (auto _ : state) {
    store::SnapshotReader reader(path);
    benchmark::DoNotOptimize(reader.verify());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * n * kSnapshotBytesPerHost));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotVerify)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): records whether *this* binary
// (and therefore the statically linked resmodel library) was compiled with
// NDEBUG. The stock "library_build_type" context key describes the
// system-packaged google-benchmark shared library — Debian builds it
// without NDEBUG, so it reports "debug" regardless of our flags;
// "resmodel_build_type" is the key tools/run_bench.sh asserts on.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("resmodel_build_type", "release");
#else
  benchmark::AddCustomContext("resmodel_build_type", "debug");
#endif
  // What the dispatch layer resolved on this machine (after any
  // RESMODEL_SIMD cap): the default arm every kAuto caller gets, and the
  // feature set it picked from — so a recorded BENCH_*.json says which
  // kernels produced it.
  {
    namespace be = resmodel::backend;
    const be::ResolvedBackend rb = be::resolve(be::Backend::kAuto);
    std::string arm = be::to_string(rb.arm);
    if (rb.arm == be::Backend::kSimd) arm += "-" + be::to_string(rb.simd);
    benchmark::AddCustomContext("resmodel_backend", arm);
    benchmark::AddCustomContext("resmodel_cpu_features",
                                be::cpu_feature_string());
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

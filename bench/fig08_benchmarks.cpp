// Figure 8: Dhrystone/Whetstone histograms over time with the KS-based
// model selection.
// Paper anchors (mean/median/stddev): Dhrystone 2006 (2056/1943/1046),
// 2008 (2715/2417/1450), 2010 (3880/3534/2061); Whetstone 2006
// (1136/1168/472.1), 2008 (1408/1355/555.8), 2010 (1771/1733/669.5).
// The normal distribution fits best with subsampled p-values 0.19-0.43.
#include <iostream>

#include "common.h"
#include "stats/descriptive.h"
#include "stats/fitting.h"
#include "stats/histogram.h"

using namespace resmodel;

namespace {

struct PaperMoments {
  double mean, median, stddev;
};

void report(const std::string& name, const std::vector<double>& values,
            const PaperMoments& paper) {
  const stats::Summary s = stats::summarize(values);
  util::Table table({name, "Measured", "Paper"});
  table.add_row({"Mean", util::Table::num(s.mean, 0),
                 util::Table::num(paper.mean, 0)});
  table.add_row({"Median", util::Table::num(s.median, 0),
                 util::Table::num(paper.median, 0)});
  table.add_row({"Stddev", util::Table::num(s.stddev, 0),
                 util::Table::num(paper.stddev, 1)});
  const auto ranked = stats::select_best_distribution(values);
  if (!ranked.empty()) {
    table.add_row({"Best family (subsampled KS)",
                   stats::family_name(ranked.front().family) + " p=" +
                       util::Table::num(ranked.front().avg_p_value, 2),
                   "normal, p 0.19-0.43"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_header("Figure 8",
                      "Dhrystone/Whetstone benchmark histograms over time");

  struct Anchor {
    int year;
    PaperMoments dhry, whet;
  };
  static constexpr Anchor kAnchors[] = {
      {2006, {2056, 1943, 1046}, {1136, 1168, 472.1}},
      {2008, {2715, 2417, 1450}, {1408, 1355, 555.8}},
      {2010, {3880, 3534, 2061}, {1771, 1733, 669.5}},
  };

  for (const Anchor& anchor : kAnchors) {
    const trace::ResourceSnapshot snap = bench::bench_trace().snapshot(
        util::ModelDate::from_ymd(anchor.year, 1, 1));
    std::cout << "\n--- " << anchor.year << " (" << snap.size()
              << " active hosts) ---\n";
    report("Dhrystone MIPS", snap.dhrystone_mips, anchor.dhry);
    report("Whetstone MIPS", snap.whetstone_mips, anchor.whet);

    stats::Histogram hist(0.0, 10000.0, 20);
    hist.add_all(snap.dhrystone_mips);
    const std::vector<double> density = hist.density();
    std::cout << "Dhrystone density (x1e-4 per MIPS): ";
    for (std::size_t b = 0; b < hist.bin_count(); b += 2) {
      std::cout << util::Table::num(density[b] * 1e4, 1) << ' ';
    }
    std::cout << '\n';
  }
  return 0;
}

// Table VI: the exponential prediction laws for benchmark and disk-space
// moments, fitted from the trace.
// Paper: Dhry mean (2064, 0.1709, r=0.9946), Dhry var (1.379e6, 0.3313,
// 0.9937), Whet mean (1179, 0.1157, 0.9981), Whet var (3.237e5, 0.1057,
// 0.8795), Disk mean (31.59, 0.2691, 0.9955), Disk var (2890, 0.5224,
// 0.9954).
#include <iostream>

#include "common.h"
#include "stats/bootstrap.h"
#include "stats/regression.h"
#include "util/rng.h"

using namespace resmodel;

int main() {
  bench::print_header("Table VI",
                      "Benchmark and disk space prediction law values");

  const core::FitReport& fit = bench::bench_fit();
  struct Row {
    const char* name;
    const core::MomentSeries* series;
    double a, b, r;
  };
  const Row rows[] = {
      {"Dhrystone Mean (MIPS)", &fit.dhrystone_mean, 2064, 0.1709, 0.9946},
      {"Dhrystone Variance", &fit.dhrystone_variance, 1.379e6, 0.3313,
       0.9937},
      {"Whetstone Mean (MIPS)", &fit.whetstone_mean, 1179, 0.1157, 0.9981},
      {"Whetstone Variance", &fit.whetstone_variance, 3.237e5, 0.1057,
       0.8795},
      {"Disk Space Mean (GB)", &fit.disk_mean, 31.59, 0.2691, 0.9955},
      {"Disk Space Variance", &fit.disk_variance, 2890, 0.5224, 0.9954},
  };

  // 95% bootstrap CI on b, resampling snapshot points jointly.
  util::Rng rng(6);
  const auto b_interval = [&rng](const core::MomentSeries& series) {
    return stats::bootstrap_ci_paired(
        series.t, series.value,
        [](std::span<const double> ts, std::span<const double> ys) {
          return stats::ExponentialLaw::fit(ts, ys).b;
        },
        500, 0.95, rng);
  };

  util::Table table({"Quantity", "a (measured)", "a (paper)", "b (measured)",
                     "b 95% CI", "b (paper)", "r (measured)", "r (paper)"});
  for (const Row& row : rows) {
    const stats::BootstrapInterval ci = b_interval(*row.series);
    table.add_row({row.name, util::Table::sci(row.series->law.a, 3),
                   util::Table::sci(row.a, 3),
                   util::Table::num(row.series->law.b, 4),
                   "[" + util::Table::num(ci.lo, 3) + ", " +
                       util::Table::num(ci.hi, 3) + "]",
                   util::Table::num(row.b, 4),
                   util::Table::num(row.series->law.r, 4),
                   util::Table::num(row.r, 4)});
  }
  table.print(std::cout);

  std::cout << "\nPer-snapshot moment series (t = years since 2006):\n";
  util::Table series({"t", "Dhry mean", "Whet mean", "Disk mean (GB)"});
  for (std::size_t j = 0; j < fit.dhrystone_mean.t.size(); ++j) {
    series.add_row({util::Table::num(fit.dhrystone_mean.t[j], 2),
                    util::Table::num(fit.dhrystone_mean.value[j], 0),
                    util::Table::num(fit.whetstone_mean.value[j], 0),
                    util::Table::num(fit.disk_mean.value[j], 1)});
  }
  series.print(std::cout);
  return 0;
}

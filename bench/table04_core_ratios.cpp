// Table IV + Figure 5: core-count ratios over time and their exponential
// fits a*e^(b(year-2006)).
// Paper: 1:2 a=3.369 b=-0.5004 r=-0.9984; 2:4 a=17.49 b=-0.3217 r=-0.9730;
// 4:8 a=12.8 b=-0.2377 r=-0.9557.
#include <iostream>

#include "common.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Table IV / Figure 5",
                      "Core ratio model values and fits");

  struct PaperRow {
    const char* name;
    double a, b, r;
  };
  static constexpr PaperRow kPaper[] = {
      {"1:2", 3.369, -0.5004, -0.9984},
      {"2:4", 17.49, -0.3217, -0.9730},
      {"4:8", 12.8, -0.2377, -0.9557},
      {"8:16", 12.0, -0.2, 0.0},  // §VI-C estimate, no fit r published
  };

  const auto& series = bench::bench_fit().core_ratios;
  util::Table table({"Ratio", "a", "b", "r"});
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& s = series[i];
    const PaperRow& p = kPaper[i];
    table.add_row(
        {std::to_string(static_cast<int>(s.numerator_value)) + ":" +
             std::to_string(static_cast<int>(s.denominator_value)),
         bench::vs_paper(s.law.a, p.a, 3), bench::vs_paper(s.law.b, p.b, 4),
         bench::vs_paper(s.law.r, p.r, 4)});
  }
  table.print(std::cout);

  // Figure 5's series: observed ratios (log scale) with the fit.
  std::cout << "\nObserved ratio series (Figure 5, log-y):\n";
  util::Table obs({"t (yr)", "1:2 obs", "1:2 fit", "2:4 obs", "2:4 fit",
                   "4:8 obs", "4:8 fit"});
  for (std::size_t j = 0; j < series[0].t.size(); ++j) {
    std::vector<std::string> cells = {util::Table::num(series[0].t[j], 2)};
    for (std::size_t s = 0; s < 3; ++s) {
      // Snapshot grids are shared, so index j aligns across series.
      if (j < series[s].ratio.size()) {
        cells.push_back(util::Table::num(series[s].ratio[j], 2));
        cells.push_back(util::Table::num(series[s].law(series[s].t[j]), 2));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }
    obs.add_row(std::move(cells));
  }
  obs.print(std::cout);

  util::AsciiChart chart("Core ratios over time (log scale)", series[0].t);
  for (std::size_t s = 0; s < 3; ++s) {
    if (series[s].ratio.size() == series[0].t.size()) {
      chart.add_series({std::string(kPaper[s].name) + " ratio",
                        series[s].ratio});
    }
  }
  chart.set_log_y(true);
  chart.print(std::cout, 64, 14);
  return 0;
}

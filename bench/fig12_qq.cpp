// Figure 12 companion: the QQ plots the paper generated but omitted "for
// space reasons" (§VI-B). Two-sample QQ of generated vs actual hosts for
// September 2010, one panel per resource.
#include <iostream>

#include "common.h"
#include "core/host_generator.h"
#include "stats/qq.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Figure 12 (QQ companion)",
                      "QQ plots of generated vs actual resources, Sep 2010");

  const core::HostGenerator generator(bench::bench_fit().params);
  const util::ModelDate sep2010 = util::ModelDate::from_ymd(2010, 9, 1);
  const trace::ResourceSnapshot actual =
      bench::bench_trace().snapshot(sep2010);
  util::Rng rng(7);
  const core::GeneratedColumns cols = core::columns_of(
      generator.generate_batch(sep2010, actual.size(), rng));

  struct Panel {
    const char* name;
    const std::vector<double>* actual;
    const std::vector<double>* generated;
  };
  const Panel panels[] = {
      {"Cores", &actual.cores, &cols.cores},
      {"Memory (MB)", &actual.memory_mb, &cols.memory_mb},
      {"Whetstone MIPS", &actual.whetstone_mips, &cols.whetstone_mips},
      {"Dhrystone MIPS", &actual.dhrystone_mips, &cols.dhrystone_mips},
      {"Avail disk (GB)", &actual.disk_avail_gb, &cols.disk_avail_gb},
  };

  util::Table summary({"Resource", "max |QQ deviation| (normalized)"});
  for (const Panel& panel : panels) {
    const auto points =
        stats::qq_points_two_sample(*panel.actual, *panel.generated, 99);
    summary.add_row({panel.name,
                     util::Table::num(
                         stats::qq_max_relative_deviation(points), 4)});

    // Print a decile table per panel (the numeric series behind the plot).
    util::Table deciles({std::string(panel.name) + " quantile",
                         "actual", "generated"});
    for (std::size_t i = 9; i < points.size(); i += 20) {
      deciles.add_row({util::Table::num((i + 0.5) / points.size(), 2),
                       util::Table::num(points[i].first, 1),
                       util::Table::num(points[i].second, 1)});
    }
    deciles.print(std::cout);
  }
  std::cout << "\nDeviation summary (0 = generated quantiles exactly on "
               "actual):\n";
  summary.print(std::cout);
  std::cout << "\nThe paper: \"We also generated QQ-plots ... and visually "
               "confirmed the fit of\nthe generated hosts.\"\n";
  return 0;
}

// Figure 4: fraction of hosts with different core counts over time.
// Paper: 1-core hosts dominate in 2006 (ratio 3.3:1 over 2-core) and the
// ratio inverts to 1:2.5 by 2010, when 18% of hosts have more than 4
// cores.
#include <array>
#include <iostream>

#include "common.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Figure 4", "Host multicore distribution over time");

  std::vector<util::ModelDate> dates;
  for (int y = 2006; y <= 2010; ++y) {
    for (int m : {1, 7}) {
      if (y == 2010 && m > 7) break;
      dates.push_back(util::ModelDate::from_ymd(y, m, 1));
    }
  }

  // The figure's bands: 1, 2-3, 4-7, 8-15 cores.
  util::Table table({"Date", "1 core", "2-3 cores", "4-7 cores",
                     "8-15 cores"});
  std::vector<double> ts;
  std::vector<std::vector<double>> bands(4);
  for (const util::ModelDate& d : dates) {
    const trace::ResourceSnapshot snap = bench::bench_trace().snapshot(d);
    std::array<double, 4> counts = {0, 0, 0, 0};
    for (double c : snap.cores) {
      if (c < 2) counts[0] += 1;
      else if (c < 4) counts[1] += 1;
      else if (c < 8) counts[2] += 1;
      else if (c < 16) counts[3] += 1;
    }
    const double total = static_cast<double>(snap.size());
    table.add_row({d.to_string(), util::Table::pct(counts[0] / total),
                   util::Table::pct(counts[1] / total),
                   util::Table::pct(counts[2] / total),
                   util::Table::pct(counts[3] / total)});
    ts.push_back(d.year());
    for (int b = 0; b < 4; ++b) bands[static_cast<std::size_t>(b)].push_back(counts[static_cast<std::size_t>(b)] / total);
  }
  table.print(std::cout);

  // The paper's two anchors.
  const trace::ResourceSnapshot s2006 =
      bench::bench_trace().snapshot(util::ModelDate::from_ymd(2006, 1, 1));
  const trace::ResourceSnapshot s2010 =
      bench::bench_trace().snapshot(util::ModelDate::from_ymd(2010, 1, 1));
  const auto ratio_12 = [](const trace::ResourceSnapshot& s) {
    double one = 0, two = 0;
    for (double c : s.cores) {
      if (c == 1) ++one;
      if (c == 2) ++two;
    }
    return one / two;
  };
  double ge4_2010 = 0;
  for (double c : s2010.cores) {
    if (c >= 4) ++ge4_2010;
  }
  std::cout << "\n1:2 core ratio 2006 = "
            << util::Table::num(ratio_12(s2006), 2) << " (paper 3.3:1); "
            << "2010 = " << util::Table::num(ratio_12(s2010), 2)
            << " (paper inverts to 1:2.5, i.e. 0.4)\n"
            << "Hosts with >= 4 cores in 2010: "
            << util::Table::pct(ge4_2010 / s2010.size())
            << " (paper: \"18% of hosts had more than 4 cores\" by 2010;\n"
               "  the published Table-IV laws put >4-core hosts at ~3% and "
               ">=4-core at ~15%,\n  so the paper's phrase must mean >= 4)\n";

  util::AsciiChart chart("Core-count bands over time", ts);
  chart.add_series({"1 core", bands[0]});
  chart.add_series({"2-3 cores", bands[1]});
  chart.add_series({"4-7 cores", bands[2]});
  chart.add_series({"8-15 cores", bands[3]});
  chart.print(std::cout, 64, 14);
  return 0;
}

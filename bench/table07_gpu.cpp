// Table VII + Figure 10: GPU types among GPU-equipped hosts and the GPU
// memory distribution, September 2009 vs September 2010.
// Paper: GPU hosts 12.7% -> 23.8% of active hosts. Types: GeForce 82.5 ->
// 63.6%, Radeon 12.2 -> 31.5%, Quadro 4.7 -> 4.0%, Other 0.6 -> 0.8%.
// GPU memory mean 592.7 -> 659.4 MB, median 512 MB, >=1GB share 19 -> 31%.
#include <iostream>

#include "common.h"
#include "stats/descriptive.h"
#include "trace/composition.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Table VII / Figure 10", "GPU analysis");

  const std::vector<util::ModelDate> dates = {
      util::ModelDate::from_ymd(2009, 9, 1),
      util::ModelDate::from_ymd(2010, 8, 31)};
  const trace::GpuComposition gpu =
      trace::gpu_composition(bench::bench_trace(), dates);

  std::cout << "GPU-equipped fraction of active hosts:\n";
  util::Table adoption({"Date", "Measured", "Paper"});
  adoption.add_row({"Sep 2009", util::Table::pct(gpu.gpu_host_fraction[0]),
                    "12.7%"});
  adoption.add_row({"Sep 2010", util::Table::pct(gpu.gpu_host_fraction[1]),
                    "23.8%"});
  adoption.print(std::cout);

  static constexpr double kPaperTypes[4][2] = {
      {82.5, 63.6}, {12.2, 31.5}, {4.7, 4.0}, {0.6, 0.8}};
  std::cout << "\nGPU types among GPU-equipped hosts (% of GPU hosts):\n";
  util::Table types({"Type", "Sep 2009", "Sep 2010"});
  for (std::size_t r = 0; r < gpu.types.categories.size(); ++r) {
    types.add_row(
        {gpu.types.categories[r],
         util::Table::num(gpu.types.shares[r][0] * 100.0, 1) + " (" +
             util::Table::num(kPaperTypes[r][0], 1) + ")",
         util::Table::num(gpu.types.shares[r][1] * 100.0, 1) + " (" +
             util::Table::num(kPaperTypes[r][1], 1) + ")"});
  }
  types.print(std::cout);

  std::cout << "\nGPU memory distribution (Figure 10):\n";
  util::Table memory({"Statistic", "Sep 2009", "Sep 2010", "Paper"});
  std::vector<stats::Summary> summaries;
  std::vector<double> ge_1gb;
  for (const util::ModelDate& d : dates) {
    const std::vector<double> mem =
        bench::bench_trace().gpu_memory_snapshot(d);
    summaries.push_back(stats::summarize(mem));
    double count = 0;
    for (double v : mem) {
      if (v >= 1024.0) ++count;
    }
    ge_1gb.push_back(mem.empty() ? 0.0 : count / mem.size());
  }
  memory.add_row({"Mean (MB)", util::Table::num(summaries[0].mean, 1),
                  util::Table::num(summaries[1].mean, 1),
                  "592.7 -> 659.4"});
  memory.add_row({"Median (MB)", util::Table::num(summaries[0].median, 0),
                  util::Table::num(summaries[1].median, 0), "512 -> 512"});
  memory.add_row({"Stddev (MB)", util::Table::num(summaries[0].stddev, 1),
                  util::Table::num(summaries[1].stddev, 1),
                  "329.7 -> 362.7"});
  memory.add_row({">= 1GB share", util::Table::pct(ge_1gb[0]),
                  util::Table::pct(ge_1gb[1]), "19% -> 31%"});
  memory.print(std::cout);

  // Bar chart of the Sep 2010 distribution.
  const std::vector<double> mem2010 =
      bench::bench_trace().gpu_memory_snapshot(dates[1]);
  std::vector<std::pair<std::string, double>> bars;
  for (double value : {128.0, 256.0, 512.0, 768.0, 1024.0, 1536.0, 2048.0}) {
    double count = 0;
    for (double v : mem2010) {
      if (v == value) ++count;
    }
    bars.emplace_back(util::Table::num(value, 0) + " MB",
                      mem2010.empty() ? 0.0 : 100.0 * count / mem2010.size());
  }
  util::print_bar_chart(std::cout, "\nGPU memory, Sep 2010 (% of GPU hosts):",
                        bars, 40);
  return 0;
}

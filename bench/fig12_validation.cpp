// Figure 12: comparison of generated and actual data for September 2010.
// The model is fitted on the 2006-2010 window, then generates hosts for
// Sep 1, 2010 (outside the window); the paper reports mean differences of
// 0.5% (cores) to 13.0% (memory) and stddev differences of 3.5%
// (Whetstone) to 32.7% (memory).
#include <cmath>
#include <iostream>

#include "common.h"
#include "core/host_generator.h"
#include "core/validation.h"
#include "stats/chi_square.h"

using namespace resmodel;

int main() {
  bench::print_header(
      "Figure 12", "Generated vs actual resource comparison for Sep 2010");

  const core::HostGenerator generator(bench::bench_fit().params);
  const util::ModelDate sep2010 = util::ModelDate::from_ymd(2010, 9, 1);
  const trace::ResourceSnapshot actual =
      bench::bench_trace().snapshot(sep2010);
  util::Rng rng(12);
  const core::GeneratedHostBatch generated =
      generator.generate_batch(sep2010, actual.size(), rng);

  // The paper's Figure-12 panel annotations.
  struct PaperPanel {
    const char* name;
    double mean_actual, mean_gen, sd_actual, sd_gen;
  };
  static constexpr PaperPanel kPaper[] = {
      {"Cores", 2.441, 2.453, 1.719, 1.903},
      {"Memory (MB)", 2726, 3080, 2066, 2741},
      {"Whetstone MIPS", 2001, 2033, 716.2, 740.4},
      {"Dhrystone MIPS", 4408, 4644, 2068, 2175},
      {"Avail Disk (GB)", 122.3, 111, 184.8, 178.4},
  };

  const auto comparisons = core::compare_resources(actual, generated);
  util::Table table({"Resource", "mu actual", "mu gen", "mu diff",
                     "sd actual", "sd gen", "sd diff", "2-sample KS"});
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const core::ResourceComparison& c = comparisons[i];
    table.add_row({c.name, util::Table::num(c.mean_actual, 1),
                   util::Table::num(c.mean_generated, 1),
                   util::Table::pct(c.mean_diff_fraction),
                   util::Table::num(c.stddev_actual, 1),
                   util::Table::num(c.stddev_generated, 1),
                   util::Table::pct(c.stddev_diff_fraction),
                   util::Table::num(c.ks_statistic, 3)});
  }
  std::cout << "Measured (" << actual.size() << " actual hosts, "
            << generated.size() << " generated):\n";
  table.print(std::cout);

  std::cout << "\nPaper's Figure 12 annotations (full-scale trace):\n";
  util::Table paper({"Resource", "mu actual", "mu gen", "sd actual",
                     "sd gen"});
  for (const PaperPanel& p : kPaper) {
    paper.add_row({p.name, util::Table::num(p.mean_actual, 1),
                   util::Table::num(p.mean_gen, 1),
                   util::Table::num(p.sd_actual, 1),
                   util::Table::num(p.sd_gen, 1)});
  }
  paper.print(std::cout);
  std::cout << "\nPaper's reported ranges: mean diffs 0.5%-13.0%, stddev "
               "diffs 3.5%-32.7%.\n";

  // Discrete composition check (chi-square homogeneity on core counts) —
  // the quantitative version of the Figure-12 "Cores" CDF panel.
  const std::vector<double> core_values = {1, 2, 4, 8, 16};
  std::vector<std::uint64_t> actual_counts(core_values.size(), 0);
  std::vector<std::uint64_t> generated_counts(core_values.size(), 0);
  for (double c : actual.cores) {
    for (std::size_t j = 0; j < core_values.size(); ++j) {
      if (std::fabs(c - core_values[j]) < 1e-9) ++actual_counts[j];
    }
  }
  for (const int cores : generated.n_cores) {
    for (std::size_t j = 0; j < core_values.size(); ++j) {
      if (cores == static_cast<int>(core_values[j])) {
        ++generated_counts[j];
      }
    }
  }
  const stats::ChiSquareResult chi =
      stats::chi_square_two_sample(actual_counts, generated_counts);
  std::cout << "\nCore-count composition, chi-square homogeneity: X2 = "
            << util::Table::num(chi.statistic, 2) << " (df "
            << chi.degrees_of_freedom << "), p = "
            << util::Table::num(chi.p_value, 3)
            << (chi.p_value > 0.01 ? "  -> compositions indistinguishable\n"
                                   : "  -> compositions differ\n");
  return 0;
}

// Table III: Pearson correlation coefficients between host measurements.
// Paper: cores-memory 0.606, memory-mem/core 0.627, whet-dhry 0.639,
// mem/core-whet 0.250, mem/core-dhry 0.306, disk ~uncorrelated with all.
#include <array>
#include <iostream>

#include "common.h"

using namespace resmodel;

int main() {
  bench::print_header("Table III",
                      "Correlation coefficients between host measurements");

  static constexpr std::array<std::array<double, 6>, 6> kPaper = {{
      {1.000, 0.606, -0.010, 0.161, 0.130, 0.089},
      {0.606, 1.000, 0.627, 0.230, 0.271, 0.114},
      {-0.010, 0.627, 1.000, 0.250, 0.306, 0.065},
      {0.161, 0.230, 0.250, 1.000, 0.639, -0.016},
      {0.130, 0.271, 0.306, 0.639, 1.000, -0.004},
      {0.089, 0.114, 0.065, -0.016, -0.004, 1.000},
  }};

  const stats::Matrix& m = bench::bench_fit().full_correlation;
  const auto labels = core::full_correlation_labels();

  util::Table table({"", labels[0], labels[1], labels[2], labels[3],
                     labels[4], labels[5]});
  for (std::size_t r = 0; r < 6; ++r) {
    std::vector<std::string> cells = {labels[r]};
    for (std::size_t c = 0; c < 6; ++c) {
      cells.push_back(util::Table::num(m(r, c), 3));
    }
    table.add_row(std::move(cells));
  }
  std::cout << "Measured (pooled over all plausible hosts):\n";
  table.print(std::cout);

  util::Table paper({"", labels[0], labels[1], labels[2], labels[3],
                     labels[4], labels[5]});
  for (std::size_t r = 0; r < 6; ++r) {
    std::vector<std::string> cells = {labels[r]};
    for (std::size_t c = 0; c < 6; ++c) {
      cells.push_back(util::Table::num(kPaper[r][c], 3));
    }
    paper.add_row(std::move(cells));
  }
  std::cout << "\nPaper's Table III:\n";
  paper.print(std::cout);

  std::cout << "\nStructure checks: cores-memory and whet-dhry > 0.6; "
               "cores vs mem/core ~ 0; disk uncorrelated with everything.\n";
  return 0;
}

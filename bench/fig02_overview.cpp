// Figure 2: overview of host statistics over time — active host count and
// mean/stddev of cores, memory, per-core benchmark speeds, available disk.
// Paper growth 2006 -> 2010: cores 1.28 -> 2.17 (+70%), memory 846 ->
// 2376 MB (+181%), Whetstone 1200 -> 1861 (+55%), Dhrystone 2168 -> 4120
// (+90%), disk 32.9 -> 98.0 GB (+198%).
#include <iostream>

#include "common.h"
#include "stats/descriptive.h"
#include "util/ascii_plot.h"

using namespace resmodel;

namespace {

struct Row {
  double t;
  std::size_t active;
  stats::Summary cores, memory, whet, dhry, disk;
};

}  // namespace

int main() {
  bench::print_header("Figure 2", "Overview of host statistics 2006-2010");

  std::vector<Row> rows;
  std::vector<util::ModelDate> dates;
  for (int year = 2006; year <= 2010; ++year) {
    for (int month : {1, 7}) {
      if (year == 2010 && month > 7) break;
      dates.push_back(util::ModelDate::from_ymd(year, month, 1));
    }
  }
  for (const util::ModelDate& d : dates) {
    const trace::ResourceSnapshot snap = bench::bench_trace().snapshot(d);
    Row row;
    row.t = d.t();
    row.active = snap.size();
    row.cores = stats::summarize(snap.cores);
    row.memory = stats::summarize(snap.memory_mb);
    row.whet = stats::summarize(snap.whetstone_mips);
    row.dhry = stats::summarize(snap.dhrystone_mips);
    row.disk = stats::summarize(snap.disk_avail_gb);
    rows.push_back(row);
  }

  util::Table table({"Date", "Active", "Cores", "Mem (MB)", "Whet", "Dhry",
                     "Disk (GB)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const auto cell = [](const stats::Summary& s, int prec) {
      return util::Table::num(s.mean, prec) + " ± " +
             util::Table::num(s.stddev, prec);
    };
    table.add_row({dates[i].to_string(),
                   util::Table::num(static_cast<double>(r.active), 0),
                   cell(r.cores, 2), cell(r.memory, 0), cell(r.whet, 0),
                   cell(r.dhry, 0), cell(r.disk, 1)});
  }
  table.print(std::cout);

  const Row& first = rows.front();
  const Row& last = rows.back();
  const auto growth = [](double a, double b) { return (b / a - 1.0) * 100.0; };
  std::cout << "\nGrowth Jan 2006 -> mid 2010 (measured vs paper):\n";
  util::Table g({"Resource", "2006 mean", "2010 mean", "Growth",
                 "Paper growth"});
  g.add_row({"Cores", util::Table::num(first.cores.mean, 2),
             util::Table::num(last.cores.mean, 2),
             util::Table::num(growth(first.cores.mean, last.cores.mean), 0) +
                 "%",
             "+70% (1.28 -> 2.17)"});
  g.add_row({"Memory (MB)", util::Table::num(first.memory.mean, 0),
             util::Table::num(last.memory.mean, 0),
             util::Table::num(growth(first.memory.mean, last.memory.mean), 0) +
                 "%",
             "+181% (846 -> 2376)"});
  g.add_row({"Whetstone", util::Table::num(first.whet.mean, 0),
             util::Table::num(last.whet.mean, 0),
             util::Table::num(growth(first.whet.mean, last.whet.mean), 0) +
                 "%",
             "+55% (1200 -> 1861)"});
  g.add_row({"Dhrystone", util::Table::num(first.dhry.mean, 0),
             util::Table::num(last.dhry.mean, 0),
             util::Table::num(growth(first.dhry.mean, last.dhry.mean), 0) +
                 "%",
             "+90% (2168 -> 4120)"});
  g.add_row({"Disk (GB)", util::Table::num(first.disk.mean, 1),
             util::Table::num(last.disk.mean, 1),
             util::Table::num(growth(first.disk.mean, last.disk.mean), 0) +
                 "%",
             "+198% (32.9 -> 98.0)"});
  g.print(std::cout);

  std::vector<double> ts, active;
  for (const Row& r : rows) {
    ts.push_back(2006.0 + r.t);
    active.push_back(static_cast<double>(r.active));
  }
  util::AsciiChart chart("Active hosts (paper: fluctuates 300k-350k; scaled)",
                         ts);
  chart.add_series({"active hosts", active});
  chart.print(std::cout, 64, 12);
  return 0;
}

// Table X: the condensed summary of the model — every a/b pair, fitted
// from the trace and printed next to the published values.
#include <iostream>

#include "common.h"

using namespace resmodel;

int main() {
  bench::print_header("Table X", "Summary of model parameters");

  const core::ModelParams& fitted = bench::bench_fit().params;
  const core::ModelParams paper = core::paper_params();

  util::Table table({"Resource", "Value", "Method", "a (fit)", "a (paper)",
                     "b (fit)", "b (paper)"});

  const auto chain_rows = [&table](const std::string& resource,
                                   const core::DiscreteRatioChain& fit_chain,
                                   const core::DiscreteRatioChain& paper_chain,
                                   const std::string& unit) {
    for (std::size_t i = 0; i < fit_chain.ratios.size(); ++i) {
      const auto label = [&](double v) {
        if (unit == "MB" && v >= 1024) {
          return util::Table::num(v / 1024.0, v == 1536 ? 1 : 0) + "GB";
        }
        return util::Table::num(v, 0) + unit;
      };
      table.add_row({i == 0 ? resource : "",
                     label(fit_chain.values[i]) + ":" +
                         label(fit_chain.values[i + 1]),
                     "Relative Ratio",
                     util::Table::num(fit_chain.ratios[i].a, 3),
                     i < paper_chain.ratios.size()
                         ? util::Table::num(paper_chain.ratios[i].a, 3)
                         : "-",
                     util::Table::num(fit_chain.ratios[i].b, 4),
                     i < paper_chain.ratios.size()
                         ? util::Table::num(paper_chain.ratios[i].b, 4)
                         : "-"});
    }
  };
  chain_rows("Cores", fitted.cores, paper.cores, "");
  table.add_separator();
  chain_rows("Mem/Core", fitted.memory_per_core_mb, paper.memory_per_core_mb,
             "MB");
  table.add_separator();

  const auto moment_rows = [&table](const std::string& resource,
                                    const core::MomentLaws& fit_laws,
                                    const core::MomentLaws& paper_laws,
                                    const std::string& dist) {
    table.add_row({resource, "Mean", dist,
                   util::Table::num(fit_laws.mean_law.a, 1),
                   util::Table::num(paper_laws.mean_law.a, 1),
                   util::Table::num(fit_laws.mean_law.b, 4),
                   util::Table::num(paper_laws.mean_law.b, 4)});
    table.add_row({"", "Variance", dist,
                   util::Table::sci(fit_laws.variance_law.a, 3),
                   util::Table::sci(paper_laws.variance_law.a, 3),
                   util::Table::num(fit_laws.variance_law.b, 4),
                   util::Table::num(paper_laws.variance_law.b, 4)});
  };
  moment_rows("Dhrystone", fitted.dhrystone, paper.dhrystone, "Normal Dist.");
  moment_rows("Whetstone", fitted.whetstone, paper.whetstone, "Normal Dist.");
  moment_rows("Disk Space", fitted.disk_gb, paper.disk_gb, "Lognorm Dist.");

  table.print(std::cout);

  std::cout << "\nCorrelation matrix R over {mem/core, whet, dhry} "
               "(fit vs paper):\n";
  util::Table corr({"", "Mem/Core", "Whet", "Dhry"});
  const char* names[3] = {"Mem/Core", "Whet", "Dhry"};
  for (std::size_t r = 0; r < 3; ++r) {
    corr.add_row({names[r],
                  bench::vs_paper(fitted.resource_correlation(r, 0),
                                  paper.resource_correlation(r, 0), 3),
                  bench::vs_paper(fitted.resource_correlation(r, 1),
                                  paper.resource_correlation(r, 1), 3),
                  bench::vs_paper(fitted.resource_correlation(r, 2),
                                  paper.resource_correlation(r, 2), 3)});
  }
  corr.print(std::cout);

  std::cout << "\nSerialized model (the public tool's output format):\n"
            << fitted.serialize();
  return 0;
}

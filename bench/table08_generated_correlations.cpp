// Table VIII: correlation coefficients between generated hosts.
// Paper: cores-memory 0.727 (actual 0.606), whet-dhry 0.505 (actual
// 0.639), mem/core-whet 0.307, disk ~0 with everything.
#include <algorithm>
#include <array>
#include <cmath>
#include <iostream>

#include "common.h"
#include "core/host_generator.h"
#include "core/validation.h"

using namespace resmodel;

int main() {
  bench::print_header("Table VIII",
                      "Correlation coefficients between generated hosts");

  static constexpr std::array<std::array<double, 6>, 6> kPaper = {{
      {1.000, 0.727, 0.014, 0.004, 0.011, -0.003},
      {0.727, 1.000, 0.544, 0.162, 0.139, -0.002},
      {0.014, 0.544, 1.000, 0.307, 0.251, -0.002},
      {0.004, 0.162, 0.307, 1.000, 0.505, -0.002},
      {0.011, 0.139, 0.251, 0.505, 1.000, -0.003},
      {-0.003, -0.002, -0.002, -0.002, -0.003, 1.000},
  }};

  const core::HostGenerator generator(bench::bench_fit().params);
  util::Rng rng(8);
  const core::GeneratedHostBatch generated = generator.generate_batch(
      util::ModelDate::from_ymd(2010, 9, 1), 50000, rng);
  const stats::Matrix m = core::generated_correlation_matrix(generated);
  const auto labels = core::full_correlation_labels();

  util::Table table({"", labels[0], labels[1], labels[2], labels[3],
                     labels[4], labels[5]});
  for (std::size_t r = 0; r < 6; ++r) {
    std::vector<std::string> cells = {labels[r]};
    for (std::size_t c = 0; c < 6; ++c) {
      cells.push_back(util::Table::num(m(r, c), 3) + " (" +
                      util::Table::num(kPaper[r][c], 3) + ")");
    }
    table.add_row(std::move(cells));
  }
  std::cout << "Measured (paper's Table VIII value in parentheses):\n";
  table.print(std::cout);

  std::cout
      << "\nStructure checks (the paper's §VI-B observations):\n"
      << "  cores-memory ~0.7 without explicit coupling: "
      << util::Table::num(m(0, 1), 3) << "\n"
      << "  whet-dhry strongly positive (paper 0.505; exact renormalization"
         " keeps the latent 0.639): "
      << util::Table::num(m(3, 4), 3) << "\n"
      << "  disk uncorrelated with everything: max |r| = "
      << util::Table::num(
             std::max({std::fabs(m(5, 0)), std::fabs(m(5, 1)),
                       std::fabs(m(5, 2)), std::fabs(m(5, 3)),
                       std::fabs(m(5, 4))}),
             3)
      << "\n";
  return 0;
}

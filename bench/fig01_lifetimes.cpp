// Figure 1: distribution of host lifetimes.
// Paper: mean 192.4 days, median 71.14 days; best Weibull fit k = 0.58,
// lambda = 135, i.e. a decreasing dropout rate.
#include <iostream>

#include "common.h"
#include "stats/descriptive.h"
#include "stats/fitting.h"
#include "stats/histogram.h"
#include "trace/lifetime.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Figure 1", "Distribution of host lifetimes");

  // The paper excludes hosts that connected after July 1, 2010.
  std::vector<double> lifetimes = trace::host_lifetimes(
      bench::bench_trace(), util::ModelDate::from_ymd(2010, 7, 1));
  std::erase_if(lifetimes, [](double v) { return v <= 0.0; });

  const stats::Summary summary = stats::summarize(lifetimes);
  util::Table stats_table({"Statistic", "Measured", "Paper"});
  stats_table.add_row({"Hosts", util::Table::num(
                                    static_cast<double>(summary.count), 0),
                       "~2.7M (full scale)"});
  stats_table.add_row({"Mean (days)", util::Table::num(summary.mean, 1),
                       "192.4"});
  stats_table.add_row({"Median (days)", util::Table::num(summary.median, 2),
                       "71.14"});
  stats_table.print(std::cout);

  const auto weibull = stats::fit_weibull(lifetimes);
  util::Table fit_table({"Weibull MLE", "Measured", "Paper"});
  if (weibull) {
    fit_table.add_row({"k (shape)", util::Table::num(weibull->k(), 3),
                       "0.58"});
    fit_table.add_row({"lambda (scale)", util::Table::num(weibull->lambda(), 1),
                       "135"});
    fit_table.add_row(
        {"k < 1 (decreasing dropout)", weibull->k() < 1.0 ? "yes" : "NO",
         "yes"});
  }
  fit_table.print(std::cout);

  // Model selection over the seven families (the paper reports Weibull).
  const auto ranked = stats::select_best_distribution(lifetimes);
  util::Table sel({"Family", "avg p-value", "KS D"});
  for (const auto& r : ranked) {
    sel.add_row({stats::family_name(r.family),
                 util::Table::num(r.avg_p_value, 3),
                 util::Table::num(r.ks_statistic, 4)});
  }
  std::cout << "\nBest-fit family ranking (paper's 100x50 subsampled KS):\n";
  sel.print(std::cout);

  // PDF / CDF series (the figure's two curves).
  stats::Histogram hist(0.0, 1400.0, 28);
  hist.add_all(lifetimes);
  std::vector<double> centers, pdf;
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    centers.push_back(hist.bin_center(b));
  }
  pdf = hist.density();
  const std::vector<double> cdf = hist.cumulative();

  std::cout << "\nLifetime PDF/CDF (days, bin width 50):\n";
  util::Table series({"Bin center", "PDF", "CDF"});
  for (std::size_t b = 0; b < hist.bin_count(); b += 2) {
    series.add_row({util::Table::num(centers[b], 0),
                    util::Table::sci(pdf[b], 2), util::Table::num(cdf[b], 3)});
  }
  series.print(std::cout);

  util::AsciiChart chart("CDF of host lifetimes", centers);
  chart.add_series({"CDF", cdf});
  chart.print(std::cout, 64, 14);
  return 0;
}

// Table I: host processor families over time (% of active hosts).
#include <array>
#include <iostream>

#include "common.h"
#include "trace/composition.h"

using namespace resmodel;

int main() {
  bench::print_header("Table I", "Host processors over time (% of total)");

  // The paper's published shares for 2006..2010 (row order = CpuFamily).
  static constexpr std::array<std::array<double, 5>, 13> kPaper = {{
      {5.1, 6.5, 4.7, 3.5, 2.7},       // PowerPC
      {12.3, 9.0, 6.2, 4.0, 2.5},      // Athlon XP
      {6.5, 9.5, 11.4, 11.6, 10.2},    // Athlon 64
      {8.3, 8.2, 7.8, 7.9, 9.5},       // Other AMD
      {36.8, 33.0, 27.2, 20.7, 15.5},  // Pentium 4
      {5.4, 5.5, 4.3, 3.1, 2.1},       // Pentium M
      {0.7, 3.0, 4.2, 3.9, 3.1},       // Pentium D
      {4.1, 2.6, 2.1, 3.3, 5.2},       // Other Pentium
      {0.9, 3.3, 13.2, 24.8, 32.0},    // Intel Core 2
      {5.6, 6.4, 6.3, 5.9, 4.9},       // Intel Celeron
      {2.1, 2.8, 3.3, 3.9, 4.3},       // Intel Xeon
      {9.9, 7.7, 7.6, 6.1, 5.1},       // Other x86
      {2.3, 2.6, 1.6, 1.3, 2.9},       // Other
  }};

  const trace::CompositionTable comp =
      trace::cpu_composition(bench::bench_trace(), bench::yearly_dates());

  util::Table table({"Family", "2006", "2007", "2008", "2009", "2010"});
  for (std::size_t r = 0; r < comp.categories.size(); ++r) {
    std::vector<std::string> cells = {comp.categories[r]};
    for (std::size_t c = 0; c < comp.dates.size(); ++c) {
      cells.push_back(util::Table::num(comp.shares[r][c] * 100.0, 1) + " (" +
                      util::Table::num(kPaper[r][c], 1) + ")");
    }
    table.add_row(std::move(cells));
  }
  std::cout << "Measured share, paper's Table I value in parentheses.\n";
  table.print(std::cout);

  std::cout << "\nShape checks: Pentium 4 declines (paper 36.8 -> 15.5), "
               "Intel Core 2 rises (0.9 -> 32.0).\n";
  return 0;
}

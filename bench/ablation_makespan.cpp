// Ablation: does the choice of host model change the *conclusions* of
// scheduling research? (§I: "the performance of such algorithms are
// arguably tied to the assumed distributions.")
//
// The same bag-of-tasks workload is scheduled on populations from the
// actual trace, the correlated model, the uncorrelated-normal model and
// the Grid model. We report the makespan of each policy — if a simpler
// host model predicts materially different makespans (or a different
// policy ranking) than the actual hosts, experiments built on it mislead.
#include <algorithm>
#include <iostream>

#include "common.h"
#include "sim/bag_of_tasks.h"
#include "sim/experiment.h"
#include "stats/descriptive.h"
#include "trace/lifetime.h"
#include "util/rng.h"

using namespace resmodel;

int main() {
  bench::print_header("Ablation",
                      "Bag-of-tasks makespan under different host models");

  constexpr std::size_t kHosts = 2000;
  const auto date = util::ModelDate::from_ymd(2010, 6, 1);

  // Actual hosts from the (filtered) trace snapshot, truncated to kHosts.
  sim::HostResourcesSoA actual = sim::HostResourcesSoA::from_snapshot(
      bench::bench_trace().snapshot(date));
  if (actual.size() > kHosts) actual.resize(kHosts);

  // Model-synthesized populations of the same size.
  const core::FitReport& fit = bench::bench_fit();
  const sim::CorrelatedModel correlated(fit.params);
  const auto normal = sim::NormalDistributionModel::fit(bench::bench_trace(),
                                                        bench::yearly_dates());
  const std::vector<double> lifetimes = trace::host_lifetimes(
      bench::bench_trace(), util::ModelDate::from_ymd(2010, 7, 1));
  const sim::GridResourceModel grid(fit.params,
                                    stats::mean(lifetimes) / 365.25);

  util::Rng rng(123);
  std::vector<sim::SweepPopulation> populations;
  populations.push_back({"Actual trace", actual});
  populations.push_back({"Correlated model",
                         correlated.synthesize_soa(date, actual.size(), rng)});
  populations.push_back(
      {"Normal model", normal.synthesize_soa(date, actual.size(), rng)});
  populations.push_back(
      {"Grid model", grid.synthesize_soa(date, actual.size(), rng)});

  // The whole population x policy grid runs on the sweep's worker pool;
  // every cell reseeds the same workload seed, so policies are still
  // compared on identical sampled workloads.
  sim::PolicySweepConfig sweep;
  sweep.policies = {
      sim::SchedulingPolicy::kStaticRoundRobin,
      sim::SchedulingPolicy::kStaticSpeedWeighted,
      sim::SchedulingPolicy::kDynamicPull,
      sim::SchedulingPolicy::kDynamicEct,
      sim::SchedulingPolicy::kChurnEctCheckpoint,
      sim::SchedulingPolicy::kChurnEctRestart,
      sim::SchedulingPolicy::kChurnEctAbandon,
  };
  sweep.task_counts = {20000};
  sweep.workload_seed = 999;
  const sim::PolicySweepResult grid_result =
      sim::run_policy_sweep(populations, sweep);

  util::Table table({"Population", "static RR", "speed-weighted",
                     "dynamic pull", "dynamic ECT", "churn ckpt",
                     "churn restart", "churn abandon"});
  for (std::size_t p = 0; p < populations.size(); ++p) {
    std::vector<std::string> cells = {populations[p].name};
    for (std::size_t pol = 0; pol < sweep.policies.size(); ++pol) {
      cells.push_back(
          util::Table::num(grid_result.at(p, pol, 0).result.makespan_days, 1) +
          "d");
    }
    table.add_row(std::move(cells));
  }
  std::cout << "Makespan of a 20,000-task bag (log-normal cost, mean 4000 "
               "MIPS-days) on\n"
            << actual.size() << " hosts at " << date.to_string() << ":\n";
  table.print(std::cout);

  std::cout
      << "\nReading: the correlated model's row should track the actual "
         "row closely\n(same heterogeneity, same straggler tail), while "
         "the uncorrelated-normal and\nGrid rows misjudge the slow-host "
         "tail that dominates static striping and\nnaive pull — the "
         "quantitative version of the paper's motivation that\nscheduling "
         "conclusions depend on the host model. The churn columns "
         "schedule\nagainst the actual ON/OFF interval structure "
         "(checkpoint / restart / abandon\nsemantics) instead of an "
         "always-on population; restart pays for every\nheavy-tailed "
         "session that dies under a long task.\n\n";

  // Churn-levels ablation: every depth variant of one population
  // consumes the SAME availability realization (drawn once, passed in),
  // so the knob sweep is draw-comparable by construction — the contract
  // run_policy_sweep gives derate/churn cells, extended to kernel knobs.
  util::Table levels_table({"Population", "ckpt L=1", "ckpt L=4",
                            "ckpt L=8 (default)"});
  for (const sim::SweepPopulation& pop : populations) {
    const std::vector<double> speed = sim::base_host_rates(pop.hosts);
    sim::BagOfTasksConfig config = sweep.base;
    config.task_count = 20000;
    util::Rng avail_rng(sweep.workload_seed);
    const sim::AvailabilityRealization realization =
        sim::realize_availability(speed, config, avail_rng);
    std::vector<std::string> cells = {pop.name};
    for (const std::size_t levels : {std::size_t{1}, std::size_t{4},
                                     std::size_t{8}}) {
      config.churn_lookahead_levels = levels;
      util::Rng task_rng = avail_rng;  // shared post-realization stream
      const sim::BagOfTasksResult r = sim::run_bag_of_tasks(
          pop.hosts, realization, config,
          sim::SchedulingPolicy::kChurnEctCheckpoint, task_rng);
      cells.push_back(util::Table::num(r.makespan_days, 4) + "d");
    }
    levels_table.add_row(std::move(cells));
  }
  std::cout << "Churn lookahead-depth ablation (one shared availability "
               "realization per\npopulation, identical workloads):\n";
  levels_table.print(std::cout);
  std::cout
      << "\nEqual makespans down each row confirm the depth knob is pure "
         "kernel\nperformance — the schedule itself is draw- and "
         "decision-identical.\n";
  return 0;
}

// Table V + Figures 6-7: per-core-memory composition and the ratio laws.
// Paper Table V: 256:512 a=0.5829 b=-0.2517; 512:768 a=4.89 b=-0.1292;
// 768:1GB a=0.3821 b=-0.1709; 1:1.5GB a=3.98 b=-0.1367; 1.5:2GB a=1.51
// b=-0.0925; 2:4GB a=4.951 b=-0.1008 (all r < -0.97).
#include <cmath>
#include <iostream>

#include "common.h"

using namespace resmodel;

int main() {
  bench::print_header("Table V / Figures 6-7",
                      "Per-core-memory composition and ratio fits");

  struct PaperRow {
    const char* name;
    double a, b, r;
  };
  static constexpr PaperRow kPaper[] = {
      {"256MB:512MB", 0.5829, -0.2517, -0.9984},
      {"512MB:768MB", 4.89, -0.1292, -0.9748},
      {"768MB:1GB", 0.3821, -0.1709, -0.9801},
      {"1GB:1.5GB", 3.98, -0.1367, -0.9833},
      {"1.5GB:2GB", 1.51, -0.0925, -0.9897},
      {"2GB:4GB", 4.951, -0.1008, -0.9880},
  };

  const auto& series = bench::bench_fit().memory_ratios;
  util::Table table({"Ratio", "a", "b", "r"});
  for (std::size_t i = 0; i < series.size() && i < std::size(kPaper); ++i) {
    const PaperRow& p = kPaper[i];
    table.add_row({p.name, bench::vs_paper(series[i].law.a, p.a, 4),
                   bench::vs_paper(series[i].law.b, p.b, 4),
                   bench::vs_paper(series[i].law.r, p.r, 4)});
  }
  table.print(std::cout);

  // Figure 6: distribution of per-core memory at 2006 / 2008 / 2010.
  // Paper: <=256MB/core falls 19% -> 4%; 1024MB rises 21% -> 32%;
  // 2048MB rises 2% -> 10%.
  const std::vector<double> grid = {256, 512, 768, 1024, 1536, 2048, 4096};
  std::cout << "\nPer-core-memory composition (% of snapped hosts):\n";
  util::Table dist({"Value (MB)", "2006", "2008", "2010"});
  std::vector<std::vector<double>> shares(grid.size(),
                                          std::vector<double>(3, 0.0));
  const std::vector<util::ModelDate> dates = {
      util::ModelDate::from_ymd(2006, 1, 1),
      util::ModelDate::from_ymd(2008, 1, 1),
      util::ModelDate::from_ymd(2010, 1, 1)};
  for (std::size_t c = 0; c < dates.size(); ++c) {
    const trace::ResourceSnapshot snap = bench::bench_trace().snapshot(dates[c]);
    double total = 0.0;
    std::vector<double> counts(grid.size(), 0.0);
    for (double v : snap.memory_per_core_mb) {
      for (std::size_t g = 0; g < grid.size(); ++g) {
        if (std::fabs(v - grid[g]) < 1e-6) {
          counts[g] += 1;
          total += 1;
        }
      }
    }
    for (std::size_t g = 0; g < grid.size(); ++g) {
      shares[g][c] = total > 0 ? counts[g] / total : 0.0;
    }
  }
  for (std::size_t g = 0; g < grid.size(); ++g) {
    dist.add_row({util::Table::num(grid[g], 0),
                  util::Table::pct(shares[g][0]),
                  util::Table::pct(shares[g][1]),
                  util::Table::pct(shares[g][2])});
  }
  dist.print(std::cout);
  std::cout << "\nPaper's Figure 6/7 anchors: <=256MB/core 19% -> 4%; "
               "1024MB 21% -> 32%; 2048MB 2% -> 10%.\n";
  return 0;
}

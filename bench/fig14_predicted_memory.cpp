// Figure 14: predicted future host memory distribution, 2009-2014.
// Paper: average 6.8 GB per host by 2014 (vs 6.6 GB by extrapolating
// Figure 2); the bands are <=1GB, <=2GB, <=4GB, <=8GB, >8GB of total
// memory. §V-E's model keeps the six per-core values {256..2048} MB —
// with that chain the 6.8 GB prediction reproduces; the full Table-X
// chain (2GB:4GB ratio included) predicts ~8.1 GB.
#include <iostream>

#include "common.h"
#include "core/prediction.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Figure 14", "Predicted future host memory distribution");

  const core::ModelParams full = core::paper_params();
  const core::ModelParams six = core::with_memory_capped(full, 2048.0);

  const std::vector<double> thresholds = {1024, 2048, 4096, 8192};
  std::vector<double> ts;
  for (double t = 3.0; t <= 8.01; t += 0.5) ts.push_back(t);

  util::Table table({"Year", "<=1GB", "<=2GB", "<=4GB", "<=8GB", ">8GB",
                     "mean (GB)"});
  std::vector<std::vector<double>> bands(5);
  std::vector<double> years;
  for (double t : ts) {
    const auto cdf = core::predicted_memory_cdf_at(six, t, thresholds);
    table.add_row({util::Table::num(2006.0 + t, 1), util::Table::pct(cdf[0]),
                   util::Table::pct(cdf[1]), util::Table::pct(cdf[2]),
                   util::Table::pct(cdf[3]),
                   util::Table::pct(1.0 - cdf[3]),
                   util::Table::num(
                       core::predicted_mean_memory_mb(six, t) / 1024.0, 2)});
    years.push_back(2006.0 + t);
    bands[0].push_back(cdf[0]);
    for (int b = 1; b < 4; ++b) {
      bands[static_cast<std::size_t>(b)].push_back(
          cdf[static_cast<std::size_t>(b)] -
          cdf[static_cast<std::size_t>(b - 1)]);
    }
    bands[4].push_back(1.0 - cdf[3]);
  }
  std::cout << "Six-value per-core-memory chain (the §V-E model):\n";
  table.print(std::cout);

  std::cout << "\n2014 mean memory: six-value chain "
            << util::Table::num(
                   core::predicted_mean_memory_mb(six, 8.0) / 1024.0, 2)
            << " GB (paper 6.8; extrapolation 6.6); full Table-X chain "
            << util::Table::num(
                   core::predicted_mean_memory_mb(full, 8.0) / 1024.0, 2)
            << " GB\n";

  util::AsciiChart chart("Total-memory bands over time", years);
  chart.add_series({"<=1GB", bands[0]});
  chart.add_series({"1-2GB", bands[1]});
  chart.add_series({"2-4GB", bands[2]});
  chart.add_series({"4-8GB", bands[3]});
  chart.add_series({">8GB", bands[4]});
  chart.print(std::cout, 64, 14);
  return 0;
}

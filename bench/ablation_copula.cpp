// Ablation (DESIGN.md decision 2): how much of the Figure-15 accuracy is
// bought by the dependence structure specifically?
//
// Runs the utility experiment with three generators that share every
// marginal law and differ only in the src/model/ CorrelationModel plugged
// into the host generator:
//   (a) cholesky    — the paper's Gaussian copula over the fitted R;
//   (b) independent — the copula removed (identity R): per-core memory,
//                     Whetstone and Dhrystone drawn independently;
//   (c) empirical   — a Gaussian copula refitted from the trace's Spearman
//                     rank correlations (r = 2 sin(pi rho_s / 6)).
// The paper's claim is that correlations matter for correlation-sensitive
// applications (Folding@home, Climate Prediction) — this isolates that
// effect from the marginal-shape differences that dominate Figure 15.
#include <iostream>
#include <memory>

#include "common.h"
#include "model/factory.h"
#include "sim/experiment.h"
#include "util/rng.h"

using namespace resmodel;

int main() {
  bench::print_header("Ablation",
                      "Utility accuracy across correlation models");

  const core::FitReport& fit = bench::bench_fit();
  const std::vector<util::ModelDate> dates = {
      util::ModelDate::from_ymd(2010, 2, 1),
      util::ModelDate::from_ymd(2010, 5, 1),
      util::ModelDate::from_ymd(2010, 8, 1)};

  const auto make = [&](model::CorrelationKind kind, std::string label) {
    return sim::CorrelatedModel(
        fit.params,
        model::make_correlation_model(kind, fit.params.resource_correlation,
                                      &bench::bench_trace(), dates),
        std::move(label));
  };
  const sim::CorrelatedModel full = make(model::CorrelationKind::kCholesky,
                                         "Cholesky copula (paper)");
  const sim::CorrelatedModel no_copula =
      make(model::CorrelationKind::kIndependent, "No copula");
  const sim::CorrelatedModel empirical =
      make(model::CorrelationKind::kEmpirical, "Empirical rank copula");

  const std::vector<const sim::HostSynthesisModel*> models = {
      &full, &no_copula, &empirical};
  util::Rng rng(77);
  const sim::UtilityExperimentResult result = sim::run_utility_experiment(
      bench::bench_trace(), models, sim::paper_applications(), dates, rng);

  util::Table table({"Application", "Cholesky (paper)", "No copula",
                     "Empirical rank copula"});
  for (std::size_t a = 0; a < result.app_names.size(); ++a) {
    std::vector<std::string> cells = {result.app_names[a]};
    for (std::size_t m = 0; m < models.size(); ++m) {
      double sum = 0.0;
      for (double v : result.diff_percent[m][a]) sum += v;
      cells.push_back(
          util::Table::num(sum / static_cast<double>(dates.size()), 1) + "%");
    }
    table.add_row(std::move(cells));
  }
  std::cout << "Mean % utility difference vs actual (3 months of 2010):\n";
  table.print(std::cout);

  std::cout
      << "\nReading: removing the copula (column 2) costs several points of "
         "accuracy on\nevery CPU-bound application even though all marginals "
         "are identical — the\ngreedy allocator is sensitive to the joint "
         "tail (fast hosts that also have\nmemory). That joint-tail effect "
         "is the paper's argument for modelling\ncorrelations explicitly. "
         "The empirical rank copula (column 3) needs no\npublished R at "
         "all — refitting the dependence from the trace's ranks\nrecovers "
         "nearly the same accuracy as the paper's Pearson matrix.\n";
  return 0;
}

// Ablation (DESIGN.md decision 2): how much of the Figure-15 accuracy is
// bought by the Cholesky copula specifically?
//
// Runs the utility experiment with three generators that share every
// marginal law and differ only in the correlation structure:
//   (a) the full correlated model (the paper's);
//   (b) the same model with the copula removed (identity R): per-core
//       memory, Whetstone and Dhrystone drawn independently;
//   (c) the same model with memory decoupled from cores as well
//       (total memory drawn from the marginal product distribution
//       independently of the host's core count).
// The paper's claim is that correlations matter for correlation-sensitive
// applications (Folding@home, Climate Prediction) — this isolates that
// effect from the marginal-shape differences that dominate Figure 15.
#include <iostream>

#include "common.h"
#include "core/prediction.h"
#include "sim/experiment.h"
#include "util/rng.h"

using namespace resmodel;

namespace {

/// (b): identity copula — same marginals, independent draws.
class UncorrelatedCopulaModel final : public sim::HostSynthesisModel {
 public:
  explicit UncorrelatedCopulaModel(core::ModelParams params)
      : generator_([&params] {
          params.resource_correlation = stats::Matrix::identity(3);
          return core::HostGenerator(std::move(params));
        }()) {}
  std::string name() const override { return "No copula"; }
  std::vector<sim::HostResources> synthesize(util::ModelDate date,
                                             std::size_t count,
                                             util::Rng& rng) const override {
    std::vector<sim::HostResources> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const core::GeneratedHost g = generator_.generate(date, rng);
      out.push_back({static_cast<double>(g.n_cores), g.memory_mb,
                     g.dhrystone_mips, g.whetstone_mips, g.disk_avail_gb});
    }
    return out;
  }

 private:
  core::HostGenerator generator_;
};

/// (c): additionally break the memory = per-core x cores coupling by
/// shuffling memory across hosts of the batch.
class DecoupledMemoryModel final : public sim::HostSynthesisModel {
 public:
  explicit DecoupledMemoryModel(core::ModelParams params)
      : inner_(std::move(params)) {}
  std::string name() const override { return "No copula, shuffled memory"; }
  std::vector<sim::HostResources> synthesize(util::ModelDate date,
                                             std::size_t count,
                                             util::Rng& rng) const override {
    std::vector<sim::HostResources> hosts =
        inner_.synthesize(date, count, rng);
    // Fisher-Yates over the memory column only.
    for (std::size_t i = hosts.size(); i > 1; --i) {
      const std::size_t j = rng.uniform_index(i);
      std::swap(hosts[i - 1].memory_mb, hosts[j].memory_mb);
    }
    return hosts;
  }

 private:
  UncorrelatedCopulaModel inner_;
};

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "Utility accuracy with the copula removed");

  const core::FitReport& fit = bench::bench_fit();
  const sim::CorrelatedModel full(fit.params);
  const UncorrelatedCopulaModel no_copula(fit.params);
  const DecoupledMemoryModel decoupled(fit.params);

  const std::vector<const sim::HostSynthesisModel*> models = {
      &full, &no_copula, &decoupled};
  util::Rng rng(77);
  const std::vector<util::ModelDate> dates = {
      util::ModelDate::from_ymd(2010, 2, 1),
      util::ModelDate::from_ymd(2010, 5, 1),
      util::ModelDate::from_ymd(2010, 8, 1)};
  const sim::UtilityExperimentResult result = sim::run_utility_experiment(
      bench::bench_trace(), models, sim::paper_applications(), dates, rng);

  util::Table table({"Application", "Full model", "No copula",
                     "No copula + shuffled memory"});
  for (std::size_t a = 0; a < result.app_names.size(); ++a) {
    std::vector<std::string> cells = {result.app_names[a]};
    for (std::size_t m = 0; m < models.size(); ++m) {
      double sum = 0.0;
      for (double v : result.diff_percent[m][a]) sum += v;
      cells.push_back(
          util::Table::num(sum / static_cast<double>(dates.size()), 1) + "%");
    }
    table.add_row(std::move(cells));
  }
  std::cout << "Mean % utility difference vs actual (3 months of 2010):\n";
  table.print(std::cout);

  std::cout
      << "\nReading: removing the copula (column 2) costs several points of "
         "accuracy on\nevery CPU-bound application even though all marginals "
         "are identical — the\ngreedy allocator is sensitive to the joint "
         "tail (fast hosts that also have\nmemory). That joint-tail effect "
         "is the paper's argument for modelling\ncorrelations explicitly; "
         "column 3 shows per-application sensitivity to the\ncores-memory "
         "coupling on top of that.\n";
  return 0;
}

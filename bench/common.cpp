#include "common.h"

#include <cstdio>
#include <cstdlib>

namespace resmodel::bench {

synth::PopulationConfig bench_config() {
  synth::PopulationConfig config;
  config.seed = 2011;
  config.target_active_hosts = 8000;
  if (const char* env = std::getenv("RESMODEL_BENCH_HOSTS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 100) config.target_active_hosts = static_cast<std::size_t>(v);
  }
  return config;
}

namespace {
struct TraceCache {
  trace::TraceStore store;
  std::size_t discarded = 0;
  TraceCache() {
    store = synth::generate_population(bench_config());
    discarded = store.discard_implausible();
  }
};
const TraceCache& cache() {
  static const TraceCache kCache;
  return kCache;
}
}  // namespace

const trace::TraceStore& bench_trace() { return cache().store; }

std::size_t bench_discarded() { return cache().discarded; }

const core::FitReport& bench_fit() {
  static const core::FitReport kReport = core::fit_model(bench_trace());
  return kReport;
}

std::vector<util::ModelDate> yearly_dates() {
  std::vector<util::ModelDate> dates;
  for (int y = 2006; y <= 2010; ++y) {
    dates.push_back(util::ModelDate::from_ymd(y, 1, 1));
  }
  return dates;
}

void print_header(const std::string& experiment, const std::string& caption) {
  std::cout << "==============================================================="
               "=================\n"
            << experiment << " — " << caption << '\n'
            << "Synthetic SETI@home-substitute trace: "
            << bench_trace().size() << " hosts (+" << bench_discarded()
            << " discarded by the §V-B rules), seed "
            << bench_config().seed << '\n'
            << "==============================================================="
               "=================\n";
}

std::string vs_paper(double measured, double paper, int precision) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.*f (paper %.*f)", precision, measured,
                precision, paper);
  return buf;
}

}  // namespace resmodel::bench

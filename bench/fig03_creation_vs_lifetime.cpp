// Figure 3: host creation date vs. average lifetime.
// Paper: a clear negative trend — newer hosts live shorter (~330 days for
// 2005 cohorts falling toward ~100-150 for 2009/2010 cohorts), which
// under-represents up-to-date hosts in the model.
#include <iostream>

#include "common.h"
#include "stats/regression.h"
#include "trace/lifetime.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Figure 3", "Host creation date vs. average lifetime");

  const auto bins = trace::creation_date_vs_lifetime(
      bench::bench_trace(), util::ModelDate::from_ymd(2005, 1, 1),
      util::ModelDate::from_ymd(2010, 1, 1), 91,
      util::ModelDate::from_ymd(2009, 7, 1));

  util::Table table({"Cohort start", "Hosts", "Mean lifetime (days)"});
  std::vector<double> xs, ys;
  for (const trace::CreationLifetimeBin& bin : bins) {
    if (bin.host_count == 0) continue;
    table.add_row({bin.start.to_string(),
                   util::Table::num(static_cast<double>(bin.host_count), 0),
                   util::Table::num(bin.mean_lifetime_days, 1)});
    xs.push_back(bin.start.year());
    ys.push_back(bin.mean_lifetime_days);
  }
  table.print(std::cout);

  const stats::LinearFit fit = stats::ols(xs, ys);
  std::cout << "\nLinear trend: " << util::Table::num(fit.slope, 1)
            << " days per year (r = " << util::Table::num(fit.r, 3)
            << "); paper shows a clearly negative trend.\n";

  util::AsciiChart chart("Mean lifetime by creation cohort", xs);
  chart.add_series({"mean lifetime (days)", ys});
  chart.print(std::cout, 64, 12);
  return 0;
}

// Table II: host operating systems over time (% of active hosts).
#include <array>
#include <iostream>

#include "common.h"
#include "trace/composition.h"

using namespace resmodel;

int main() {
  bench::print_header("Table II", "Host OS over time (% of total)");

  static constexpr std::array<std::array<double, 5>, 8> kPaper = {{
      {69.8, 71.5, 68.6, 62.5, 52.9},  // Windows XP
      {0.0, 0.0, 6.7, 14.0, 15.9},     // Windows Vista
      {0.0, 0.0, 0.0, 0.0, 9.2},       // Windows 7
      {12.9, 8.5, 5.5, 3.4, 2.0},      // Windows 2000
      {6.3, 6.1, 4.8, 4.8, 3.4},       // Other Windows
      {5.4, 7.8, 7.9, 8.5, 9.0},       // Mac OS X
      {5.1, 5.7, 6.0, 6.4, 7.3},       // Linux
      {0.4, 0.4, 0.4, 0.3, 0.3},       // Other
  }};

  const trace::CompositionTable comp =
      trace::os_composition(bench::bench_trace(), bench::yearly_dates());

  util::Table table({"OS", "2006", "2007", "2008", "2009", "2010"});
  for (std::size_t r = 0; r < comp.categories.size(); ++r) {
    std::vector<std::string> cells = {comp.categories[r]};
    for (std::size_t c = 0; c < comp.dates.size(); ++c) {
      cells.push_back(util::Table::num(comp.shares[r][c] * 100.0, 1) + " (" +
                      util::Table::num(kPaper[r][c], 1) + ")");
    }
    table.add_row(std::move(cells));
  }
  std::cout << "Measured share, paper's Table II value in parentheses.\n";
  table.print(std::cout);

  std::cout << "\nShape checks: Windows XP declines (69.8 -> 52.9), "
               "Vista+7 rise to ~25%, Mac and Linux grow steadily.\n";
  return 0;
}

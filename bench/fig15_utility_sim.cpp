// Figure 15 (+ Table IX): the utility-simulation validation.
// For each month Jan-Sep 2010, each model synthesizes a host population
// matching the actual active count, the greedy round-robin scheduler
// allocates hosts to the four Table-IX applications, and the total utility
// per application is compared against the allocation on the actual hosts.
// Paper's reported difference bands vs actual:
//   SETI@home:          correlated 3-10%,  grid 3-9%,   normal 9-17%
//   Folding@home:       correlated 0-7%,   grid 5-15%,  normal 20-31%
//   Climate Prediction: correlated 0-7%,   grid 3-14%,  normal 14-28%
//   P2P:                correlated 0-5%,   grid 46-57%, normal 0-11%
#include <algorithm>
#include <iostream>

#include "common.h"
#include "sim/experiment.h"
#include "stats/descriptive.h"
#include "trace/lifetime.h"

using namespace resmodel;

int main() {
  bench::print_header("Figure 15 / Table IX",
                      "Utility simulation difference vs actual data (%)");

  // Table IX (inputs).
  std::cout << "Table IX — application utility exponents:\n";
  util::Table apps_table(
      {"Application", "Cores a", "Memory b", "Dhry g", "Whet d", "Disk e"});
  for (const sim::ApplicationSpec& app : sim::paper_applications()) {
    apps_table.add_row({app.name, util::Table::num(app.alpha, 2),
                        util::Table::num(app.beta, 2),
                        util::Table::num(app.gamma, 2),
                        util::Table::num(app.delta, 2),
                        util::Table::num(app.epsilon, 2)});
  }
  apps_table.print(std::cout);

  // Build the three models exactly as §VII describes: the correlated model
  // from the fitted params; the normal model from linear extrapolation of
  // the Figure-2 series; the Grid model re-parameterized with our fitted
  // values and an age mixture from the average host lifetime.
  const core::FitReport& fit = bench::bench_fit();
  const sim::CorrelatedModel correlated(fit.params);
  const auto normal = sim::NormalDistributionModel::fit(bench::bench_trace(),
                                                        bench::yearly_dates());
  const std::vector<double> lifetimes = trace::host_lifetimes(
      bench::bench_trace(), util::ModelDate::from_ymd(2010, 7, 1));
  const double mean_lifetime_years = stats::mean(lifetimes) / 365.25;
  const sim::GridResourceModel grid(fit.params, mean_lifetime_years);

  const std::vector<const sim::HostSynthesisModel*> models = {
      &normal, &grid, &correlated};
  util::Rng rng(15);
  const sim::UtilityExperimentResult result = sim::run_utility_experiment(
      bench::bench_trace(), models, sim::paper_applications(),
      sim::default_experiment_dates(), rng);

  static constexpr const char* kPaperBands[4][3] = {
      {"9-17%", "3-9%", "3-10%"},    // SETI@home: normal, grid, correlated
      {"20-31%", "5-15%", "0-7%"},   // Folding@home
      {"14-28%", "3-14%", "0-7%"},   // Climate Prediction
      {"0-11%", "46-57%", "0-5%"},   // P2P
  };

  for (std::size_t a = 0; a < result.app_names.size(); ++a) {
    std::cout << "\n--- " << result.app_names[a]
              << " — % difference vs actual utility ---\n";
    util::Table table({"Month", result.model_names[0], result.model_names[1],
                       result.model_names[2]});
    for (std::size_t d = 0; d < result.dates.size(); ++d) {
      table.add_row({result.dates[d].to_string(),
                     util::Table::num(result.diff_percent[0][a][d], 1) + "%",
                     util::Table::num(result.diff_percent[1][a][d], 1) + "%",
                     util::Table::num(result.diff_percent[2][a][d], 1) + "%"});
    }
    std::vector<std::string> range_cells = {"Range (paper)"};
    for (std::size_t m = 0; m < models.size(); ++m) {
      const auto& series = result.diff_percent[m][a];
      const auto [lo, hi] = std::minmax_element(series.begin(), series.end());
      range_cells.push_back(util::Table::num(*lo, 1) + "-" +
                            util::Table::num(*hi, 1) + "% (" +
                            kPaperBands[a][m] + ")");
    }
    table.add_separator();
    table.add_row(std::move(range_cells));
    table.print(std::cout);
  }

  // The headline: who wins on average.
  std::cout << "\nMean difference across apps and months:\n";
  util::Table summary({"Model", "Mean diff"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& app_series : result.diff_percent[m]) {
      for (double v : app_series) {
        sum += v;
        ++n;
      }
    }
    summary.add_row({result.model_names[m],
                     util::Table::num(sum / static_cast<double>(n), 1) + "%"});
  }
  summary.print(std::cout);
  std::cout << "\nPaper's conclusion: the correlated model is the most "
               "accurate overall;\nthe Grid model collapses on P2P (disk "
               "overestimate); the normal model\nmisses correlation-"
               "sensitive apps (Folding, Climate) by 14-31%.\n";
  return 0;
}

// Shared setup for the per-table/per-figure bench binaries.
//
// Every bench regenerates its data from the same synthetic ground-truth
// trace (the SETI@home substitute) so the printed rows are deterministic,
// then prints the paper's published values next to the measured ones.
// Scale can be overridden with RESMODEL_BENCH_HOSTS (default 8000 active).
#pragma once

#include <iostream>
#include <vector>

#include "core/fit_pipeline.h"
#include "synth/population.h"
#include "trace/trace_store.h"
#include "util/table.h"

namespace resmodel::bench {

/// The bench-wide population config (seed 2011, scaled active count).
synth::PopulationConfig bench_config();

/// The shared trace, generated once per process and filtered with the
/// §V-B plausibility rules (as the paper does before all analysis).
const trace::TraceStore& bench_trace();

/// Count of records the plausibility filter removed from bench_trace().
std::size_t bench_discarded();

/// The fit of the full pipeline on bench_trace().
const core::FitReport& bench_fit();

/// Yearly snapshot dates Jan 1 2006..2010 (the tables' columns).
std::vector<util::ModelDate> yearly_dates();

/// Prints the standard bench header naming the experiment.
void print_header(const std::string& experiment, const std::string& caption);

/// Formats "measured (paper X)" cells.
std::string vs_paper(double measured, double paper, int precision = 3);

}  // namespace resmodel::bench

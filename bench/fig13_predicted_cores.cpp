// Figure 13: predicted future multicore distribution, 2009-2014.
// Paper: single-core hosts become negligible within three years; 2-core
// hosts still ~40% in 2014; average 4.6 cores per host in 2014 (vs 3.7 by
// naive linear extrapolation of Figure 2).
#include <iostream>

#include "common.h"
#include "core/prediction.h"
#include "util/ascii_plot.h"

using namespace resmodel;

int main() {
  bench::print_header("Figure 13", "Predicted future multicore distribution");

  // Use the published model (the prediction section extends the fitted
  // laws; Table X + the 8:16 estimate a=12, b=-0.2).
  const core::ModelParams params = core::paper_params();

  std::vector<double> ts;
  for (double t = 3.0; t <= 8.01; t += 0.5) ts.push_back(t);
  const auto fractions = core::predicted_core_fractions(params, ts);

  util::Table table({"Year", "1 core", ">=2 cores", ">=4 cores", ">=8 cores",
                     ">=16 cores", "mean cores"});
  std::vector<double> years;
  for (std::size_t j = 0; j < ts.size(); ++j) {
    const double f1 = fractions[0][j];
    const double f2 = fractions[1][j];
    const double f4 = fractions[2][j];
    const double f8 = fractions[3][j];
    const double f16 = fractions[4][j];
    table.add_row({util::Table::num(2006.0 + ts[j], 1),
                   util::Table::pct(f1), util::Table::pct(f2 + f4 + f8 + f16),
                   util::Table::pct(f4 + f8 + f16),
                   util::Table::pct(f8 + f16), util::Table::pct(f16),
                   util::Table::num(core::predicted_mean_cores(params, ts[j]),
                                    2)});
    years.push_back(2006.0 + ts[j]);
  }
  table.print(std::cout);

  std::cout << "\nPaper checkpoints: 1-core negligible by ~2013; 2-core ~40% "
               "of hosts in 2014;\n  mean cores 2014 = "
            << util::Table::num(core::predicted_mean_cores(params, 8.0), 2)
            << " (paper 4.6; naive extrapolation gives 3.7)\n";

  util::AsciiChart chart("Predicted core-count fractions", years);
  chart.add_series({"1 core", fractions[0]});
  chart.add_series({"2 cores", fractions[1]});
  chart.add_series({"4 cores", fractions[2]});
  chart.add_series({"8 cores", fractions[3]});
  chart.add_series({"16 cores", fractions[4]});
  chart.print(std::cout, 64, 14);
  return 0;
}

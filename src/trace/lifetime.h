// Host lifetime analysis (Figures 1 and 3 of the paper).
#pragma once

#include <vector>

#include "trace/trace_store.h"
#include "util/model_date.h"

namespace resmodel::trace {

/// Lifetimes (days) of all hosts created on or before `cutoff`.
/// The paper excludes hosts that connected after July 1, 2010 to avoid
/// biasing toward short lifetimes; pass that date as the cutoff.
std::vector<double> host_lifetimes(const TraceStore& store,
                                   util::ModelDate cutoff);

/// One bin of the Figure-3 analysis: hosts created in [start, end) and
/// their mean lifetime.
struct CreationLifetimeBin {
  util::ModelDate start;
  util::ModelDate end;
  std::size_t host_count = 0;
  double mean_lifetime_days = 0.0;
};

/// Bins hosts by creation date (bins of `bin_days`, spanning [from, to))
/// and reports the mean lifetime per bin. Hosts created after `cutoff`
/// are excluded, mirroring host_lifetimes().
std::vector<CreationLifetimeBin> creation_date_vs_lifetime(
    const TraceStore& store, util::ModelDate from, util::ModelDate to,
    int bin_days, util::ModelDate cutoff);

}  // namespace resmodel::trace

// Trace persistence: the BOINC server "periodically writes host data to
// publicly available files" (Section IV). This is that file format — one
// CSV row per host, stable column order, round-trip exact.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace_store.h"

namespace resmodel::trace {

/// Writes the full store (header + one row per host).
void write_csv(const TraceStore& store, std::ostream& out);
void write_csv_file(const TraceStore& store, const std::string& path);

/// Reads a trace written by write_csv. Throws std::runtime_error on
/// malformed input (wrong header, bad field counts, unparsable numbers).
TraceStore read_csv(std::istream& in);
TraceStore read_csv_file(const std::string& path);

}  // namespace resmodel::trace

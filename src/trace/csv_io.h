// Trace persistence: the BOINC server "periodically writes host data to
// publicly available files" (Section IV). This is that file format — one
// CSV row per host, stable column order, round-trip exact.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/trace_store.h"

namespace resmodel::trace {

/// Malformed trace CSV: carries the file (or "<stream>") and the 1-based
/// logical row number where parsing failed — the header is line 1, data
/// row i is line 1+i. Derives from std::runtime_error so existing
/// catch-all sites keep working; new callers can catch the type and read
/// path()/line() directly.
class CsvError : public std::runtime_error {
 public:
  CsvError(std::string path, std::size_t line, const std::string& detail)
      : std::runtime_error("trace csv " + path + ":" + std::to_string(line) +
                           ": " + detail),
        path_(std::move(path)),
        line_(line) {}

  const std::string& path() const noexcept { return path_; }
  std::size_t line() const noexcept { return line_; }

 private:
  std::string path_;
  std::size_t line_;
};

/// The column header write_csv emits and read_csv requires, in order.
const std::vector<std::string>& csv_header();

/// Writes the full store (header + one row per host).
void write_csv(const TraceStore& store, std::ostream& out);
void write_csv_file(const TraceStore& store, const std::string& path);

/// Reads a trace written by write_csv. Throws CsvError on malformed
/// input (wrong header, bad field counts, unparsable or non-finite
/// numbers, out-of-range enums, broken quoting), pinpointing the file
/// and line. `path` only labels error messages for the stream overload.
TraceStore read_csv(std::istream& in, const std::string& path = "<stream>");
TraceStore read_csv_file(const std::string& path);

}  // namespace resmodel::trace

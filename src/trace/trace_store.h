// In-memory host trace with the snapshot queries every experiment uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/host_record.h"
#include "util/model_date.h"

namespace resmodel::trace {

/// The per-resource column vectors of one point-in-time snapshot. Index i
/// across all vectors refers to the same host.
struct ResourceSnapshot {
  std::vector<double> cores;
  std::vector<double> memory_mb;
  std::vector<double> memory_per_core_mb;
  std::vector<double> whetstone_mips;
  std::vector<double> dhrystone_mips;
  std::vector<double> disk_avail_gb;

  std::size_t size() const noexcept { return cores.size(); }
};

/// Owning container of HostRecords plus snapshot/composition queries.
class TraceStore {
 public:
  TraceStore() = default;

  void add(HostRecord host) { hosts_.push_back(host); }
  void reserve(std::size_t n) { hosts_.reserve(n); }

  std::size_t size() const noexcept { return hosts_.size(); }
  bool empty() const noexcept { return hosts_.empty(); }
  std::span<const HostRecord> hosts() const noexcept { return hosts_; }
  const HostRecord& host(std::size_t i) const { return hosts_.at(i); }

  /// Removes records failing is_plausible(); returns how many were removed
  /// (the paper discarded 3361 hosts, 0.12% of its data set).
  std::size_t discard_implausible();

  /// Number of hosts active at the given date.
  std::size_t active_count(util::ModelDate date) const noexcept;

  /// Indices of hosts active at the given date.
  std::vector<std::size_t> active_indices(util::ModelDate date) const;

  /// Resource columns of all hosts active at the given date.
  ResourceSnapshot snapshot(util::ModelDate date) const;

  /// snapshot() with the §V-B plausibility filter applied on the fly:
  /// records failing is_plausible() are skipped without mutating or
  /// copying the store (the const counterpart of discard_implausible()).
  ResourceSnapshot snapshot_plausible(util::ModelDate date) const;

  /// Counts of active hosts per CPU family / OS / GPU type at a date.
  /// Indexable by static_cast<size_t>(enum value).
  std::vector<std::size_t> cpu_family_counts(util::ModelDate date) const;
  std::vector<std::size_t> os_family_counts(util::ModelDate date) const;
  std::vector<std::size_t> gpu_type_counts(util::ModelDate date) const;

  /// GPU memory (MB) of active GPU-equipped hosts at a date.
  std::vector<double> gpu_memory_snapshot(util::ModelDate date) const;

 private:
  std::vector<HostRecord> hosts_;
};

}  // namespace resmodel::trace

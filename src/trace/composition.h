// Categorical composition tables over time (Tables I, II and VII).
#pragma once

#include <string>
#include <vector>

#include "trace/trace_store.h"
#include "util/model_date.h"

namespace resmodel::trace {

/// Share-by-category for a sequence of dates: row r = category r,
/// column c = share (fraction of the relevant population) at dates[c].
struct CompositionTable {
  std::vector<std::string> categories;
  std::vector<util::ModelDate> dates;
  /// shares[r][c]; each column sums to ~1 over categories (0 if empty).
  std::vector<std::vector<double>> shares;
};

/// CPU-family shares among active hosts at each date (Table I).
CompositionTable cpu_composition(const TraceStore& store,
                                 const std::vector<util::ModelDate>& dates);

/// OS shares among active hosts at each date (Table II).
CompositionTable os_composition(const TraceStore& store,
                                const std::vector<util::ModelDate>& dates);

/// GPU-type shares *among GPU-equipped active hosts* at each date
/// (Table VII), plus the fraction of all active hosts reporting a GPU.
struct GpuComposition {
  CompositionTable types;                 ///< GeForce/Radeon/Quadro/Other
  std::vector<double> gpu_host_fraction;  ///< per date, over all active hosts
};
GpuComposition gpu_composition(const TraceStore& store,
                               const std::vector<util::ModelDate>& dates);

}  // namespace resmodel::trace

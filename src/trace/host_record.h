// The per-host trace schema (Section IV of the paper).
//
// Each record is one host as the BOINC server sees it: static hardware
// measurements plus first/last contact days. Day indices are relative to
// 2006-01-01 (util::ModelDate); hosts created before the measurement window
// carry negative creation days.
#pragma once

#include <cstdint>
#include <string>

namespace resmodel::trace {

/// Processor families tracked in Table I.
enum class CpuFamily : std::uint8_t {
  kPowerPc,       // PowerPC G3/G4/G5
  kAthlonXp,
  kAthlon64,
  kOtherAmd,
  kPentium4,
  kPentiumM,
  kPentiumD,
  kOtherPentium,
  kIntelCore2,
  kIntelCeleron,
  kIntelXeon,
  kOtherX86,
  kOther,
};
inline constexpr int kCpuFamilyCount = 13;

/// Operating systems tracked in Table II.
enum class OsFamily : std::uint8_t {
  kWindowsXp,
  kWindowsVista,
  kWindows7,
  kWindows2000,
  kOtherWindows,
  kMacOsX,
  kLinux,
  kOther,
};
inline constexpr int kOsFamilyCount = 8;

/// GPU vendors tracked in Table VII. kNone means the host reported no GPU
/// (or predates GPU reporting, which began September 2009).
enum class GpuType : std::uint8_t {
  kNone,
  kGeForce,
  kRadeon,
  kQuadro,
  kOther,
};
inline constexpr int kGpuTypeCount = 5;

std::string to_string(CpuFamily f);
std::string to_string(OsFamily f);
std::string to_string(GpuType f);

/// One host in the trace.
struct HostRecord {
  std::uint64_t id = 0;
  std::int32_t created_day = 0;       ///< first server contact
  std::int32_t last_contact_day = 0;  ///< most recent server contact

  std::int32_t n_cores = 1;      ///< primary processing cores (no GPU cores)
  double memory_mb = 0.0;        ///< volatile memory
  double dhrystone_mips = 0.0;   ///< integer speed, per core
  double whetstone_mips = 0.0;   ///< floating point speed, per core
  double disk_avail_gb = 0.0;    ///< unused space visible to the client
  double disk_total_gb = 0.0;    ///< total space visible to the client

  CpuFamily cpu = CpuFamily::kOther;
  OsFamily os = OsFamily::kOther;
  GpuType gpu = GpuType::kNone;
  double gpu_memory_mb = 0.0;  ///< 0 when gpu == kNone

  /// Active at day T: first contact strictly before T, last contact after T
  /// (Section V-A's definition, with day granularity).
  bool active_at(std::int32_t day) const noexcept {
    return created_day <= day && last_contact_day >= day;
  }

  /// Lifetime in days: time between first and last contact.
  std::int32_t lifetime_days() const noexcept {
    return last_contact_day - created_day;
  }

  double memory_per_core_mb() const noexcept {
    return n_cores > 0 ? memory_mb / n_cores : 0.0;
  }
};

/// The paper's §V-B plausibility thresholds: hosts reporting more than
/// 128 cores, 1e5 Whetstone MIPS, 1e5 Dhrystone MIPS, 100 GB of memory or
/// 1e4 GB of available disk are discarded (0.12% of their data set).
/// Non-positive resource values are also invalid.
bool is_plausible(const HostRecord& host) noexcept;

}  // namespace resmodel::trace

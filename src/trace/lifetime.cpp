#include "trace/lifetime.h"

namespace resmodel::trace {

std::vector<double> host_lifetimes(const TraceStore& store,
                                   util::ModelDate cutoff) {
  std::vector<double> out;
  out.reserve(store.size());
  const std::int32_t cutoff_day = cutoff.day_index();
  for (const HostRecord& h : store.hosts()) {
    if (h.created_day > cutoff_day) continue;
    out.push_back(static_cast<double>(h.lifetime_days()));
  }
  return out;
}

std::vector<CreationLifetimeBin> creation_date_vs_lifetime(
    const TraceStore& store, util::ModelDate from, util::ModelDate to,
    int bin_days, util::ModelDate cutoff) {
  std::vector<CreationLifetimeBin> bins;
  for (util::ModelDate start = from; start < to;
       start = start.plus_days(bin_days)) {
    CreationLifetimeBin bin;
    bin.start = start;
    bin.end = start.plus_days(bin_days);
    bins.push_back(bin);
  }
  const std::int32_t from_day = from.day_index();
  const std::int32_t cutoff_day = cutoff.day_index();
  std::vector<double> sums(bins.size(), 0.0);
  for (const HostRecord& h : store.hosts()) {
    if (h.created_day > cutoff_day) continue;
    if (h.created_day < from_day) continue;
    const auto idx = static_cast<std::size_t>((h.created_day - from_day) /
                                              bin_days);
    if (idx >= bins.size()) continue;
    ++bins[idx].host_count;
    sums[idx] += static_cast<double>(h.lifetime_days());
  }
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i].host_count > 0) {
      bins[i].mean_lifetime_days =
          sums[i] / static_cast<double>(bins[i].host_count);
    }
  }
  return bins;
}

}  // namespace resmodel::trace

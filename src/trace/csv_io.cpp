#include "trace/csv_io.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "util/csv.h"

namespace resmodel::trace {

namespace {

const std::vector<std::string> kHeader = {
    "id",          "created_day", "last_contact_day", "n_cores",
    "memory_mb",   "dhrystone",   "whetstone",        "disk_avail_gb",
    "disk_total_gb", "cpu",       "os",               "gpu",
    "gpu_memory_mb"};

double parse_double(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error(std::string("trace csv: bad ") + what + ": '" +
                             s + "'");
  }
  return v;
}

long long parse_int(const std::string& s, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error(std::string("trace csv: bad ") + what + ": '" +
                             s + "'");
  }
  return v;
}

template <typename Enum>
Enum parse_enum(const std::string& s, int count, const char* what) {
  const long long v = parse_int(s, what);
  if (v < 0 || v >= count) {
    throw std::runtime_error(std::string("trace csv: out-of-range ") + what +
                             ": '" + s + "'");
  }
  return static_cast<Enum>(v);
}

}  // namespace

void write_csv(const TraceStore& store, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row(kHeader);
  for (const HostRecord& h : store.hosts()) {
    writer.write_row({
        util::CsvWriter::field(static_cast<long long>(h.id)),
        util::CsvWriter::field(static_cast<long long>(h.created_day)),
        util::CsvWriter::field(static_cast<long long>(h.last_contact_day)),
        util::CsvWriter::field(static_cast<long long>(h.n_cores)),
        util::CsvWriter::field(h.memory_mb),
        util::CsvWriter::field(h.dhrystone_mips),
        util::CsvWriter::field(h.whetstone_mips),
        util::CsvWriter::field(h.disk_avail_gb),
        util::CsvWriter::field(h.disk_total_gb),
        util::CsvWriter::field(static_cast<long long>(h.cpu)),
        util::CsvWriter::field(static_cast<long long>(h.os)),
        util::CsvWriter::field(static_cast<long long>(h.gpu)),
        util::CsvWriter::field(h.gpu_memory_mb),
    });
  }
}

void write_csv_file(const TraceStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace csv: cannot open for writing: " + path);
  }
  write_csv(store, out);
}

TraceStore read_csv(std::istream& in) {
  util::CsvReader reader(in);
  util::CsvRow row;
  if (!reader.read_row(row) || row != kHeader) {
    throw std::runtime_error("trace csv: missing or wrong header");
  }
  TraceStore store;
  while (reader.read_row(row)) {
    if (row.size() != kHeader.size()) {
      throw std::runtime_error("trace csv: wrong field count");
    }
    HostRecord h;
    h.id = static_cast<std::uint64_t>(parse_int(row[0], "id"));
    h.created_day = static_cast<std::int32_t>(parse_int(row[1], "created_day"));
    h.last_contact_day =
        static_cast<std::int32_t>(parse_int(row[2], "last_contact_day"));
    h.n_cores = static_cast<std::int32_t>(parse_int(row[3], "n_cores"));
    h.memory_mb = parse_double(row[4], "memory_mb");
    h.dhrystone_mips = parse_double(row[5], "dhrystone");
    h.whetstone_mips = parse_double(row[6], "whetstone");
    h.disk_avail_gb = parse_double(row[7], "disk_avail_gb");
    h.disk_total_gb = parse_double(row[8], "disk_total_gb");
    h.cpu = parse_enum<CpuFamily>(row[9], kCpuFamilyCount, "cpu");
    h.os = parse_enum<OsFamily>(row[10], kOsFamilyCount, "os");
    h.gpu = parse_enum<GpuType>(row[11], kGpuTypeCount, "gpu");
    h.gpu_memory_mb = parse_double(row[12], "gpu_memory_mb");
    store.add(h);
  }
  return store;
}

TraceStore read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("trace csv: cannot open for reading: " + path);
  }
  return read_csv(in);
}

}  // namespace resmodel::trace

#include "trace/csv_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "util/csv.h"

namespace resmodel::trace {

namespace {

const std::vector<std::string> kHeader = {
    "id",          "created_day", "last_contact_day", "n_cores",
    "memory_mb",   "dhrystone",   "whetstone",        "disk_avail_gb",
    "disk_total_gb", "cpu",       "os",               "gpu",
    "gpu_memory_mb"};

/// Everything a field parser needs to point the finger: which file,
/// which logical row (header = 1), which column.
struct RowContext {
  const std::string& path;
  std::size_t line;
};

double parse_double(const RowContext& ctx, const std::string& s,
                    const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw CsvError(ctx.path, ctx.line,
                   std::string("bad ") + what + ": '" + s + "'");
  }
  if (!std::isfinite(v)) {
    throw CsvError(ctx.path, ctx.line,
                   std::string("non-finite ") + what + ": '" + s + "'");
  }
  return v;
}

long long parse_int(const RowContext& ctx, const std::string& s,
                    const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw CsvError(ctx.path, ctx.line,
                   std::string("bad ") + what + ": '" + s + "'");
  }
  return v;
}

template <typename Enum>
Enum parse_enum(const RowContext& ctx, const std::string& s, int count,
                const char* what) {
  const long long v = parse_int(ctx, s, what);
  if (v < 0 || v >= count) {
    throw CsvError(ctx.path, ctx.line,
                   std::string("out-of-range ") + what + ": '" + s + "'");
  }
  return static_cast<Enum>(v);
}

/// CsvReader throws plain runtime_error on broken quoting; rewrap with
/// the position of the row being read.
bool read_row_at(util::CsvReader& reader, util::CsvRow& row,
                 const std::string& path, std::size_t line) {
  try {
    return reader.read_row(row);
  } catch (const std::exception& e) {
    throw CsvError(path, line, e.what());
  }
}

}  // namespace

const std::vector<std::string>& csv_header() { return kHeader; }

void write_csv(const TraceStore& store, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row(kHeader);
  for (const HostRecord& h : store.hosts()) {
    writer.write_row({
        util::CsvWriter::field(static_cast<long long>(h.id)),
        util::CsvWriter::field(static_cast<long long>(h.created_day)),
        util::CsvWriter::field(static_cast<long long>(h.last_contact_day)),
        util::CsvWriter::field(static_cast<long long>(h.n_cores)),
        util::CsvWriter::field(h.memory_mb),
        util::CsvWriter::field(h.dhrystone_mips),
        util::CsvWriter::field(h.whetstone_mips),
        util::CsvWriter::field(h.disk_avail_gb),
        util::CsvWriter::field(h.disk_total_gb),
        util::CsvWriter::field(static_cast<long long>(h.cpu)),
        util::CsvWriter::field(static_cast<long long>(h.os)),
        util::CsvWriter::field(static_cast<long long>(h.gpu)),
        util::CsvWriter::field(h.gpu_memory_mb),
    });
  }
}

void write_csv_file(const TraceStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("trace csv: cannot open for writing: " + path);
  }
  write_csv(store, out);
}

TraceStore read_csv(std::istream& in, const std::string& path) {
  util::CsvReader reader(in);
  util::CsvRow row;
  std::size_t line = 1;
  if (!read_row_at(reader, row, path, line) || row != kHeader) {
    throw CsvError(path, line, "missing or wrong header");
  }
  TraceStore store;
  while (read_row_at(reader, row, path, line + 1)) {
    ++line;
    const RowContext ctx{path, line};
    if (row.size() != kHeader.size()) {
      throw CsvError(path, line,
                     "wrong field count: got " + std::to_string(row.size()) +
                         ", expected " + std::to_string(kHeader.size()));
    }
    HostRecord h;
    h.id = static_cast<std::uint64_t>(parse_int(ctx, row[0], "id"));
    h.created_day =
        static_cast<std::int32_t>(parse_int(ctx, row[1], "created_day"));
    h.last_contact_day =
        static_cast<std::int32_t>(parse_int(ctx, row[2], "last_contact_day"));
    h.n_cores = static_cast<std::int32_t>(parse_int(ctx, row[3], "n_cores"));
    h.memory_mb = parse_double(ctx, row[4], "memory_mb");
    h.dhrystone_mips = parse_double(ctx, row[5], "dhrystone");
    h.whetstone_mips = parse_double(ctx, row[6], "whetstone");
    h.disk_avail_gb = parse_double(ctx, row[7], "disk_avail_gb");
    h.disk_total_gb = parse_double(ctx, row[8], "disk_total_gb");
    h.cpu = parse_enum<CpuFamily>(ctx, row[9], kCpuFamilyCount, "cpu");
    h.os = parse_enum<OsFamily>(ctx, row[10], kOsFamilyCount, "os");
    h.gpu = parse_enum<GpuType>(ctx, row[11], kGpuTypeCount, "gpu");
    h.gpu_memory_mb = parse_double(ctx, row[12], "gpu_memory_mb");
    store.add(h);
  }
  return store;
}

TraceStore read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("trace csv: cannot open for reading: " + path);
  }
  return read_csv(in, path);
}

}  // namespace resmodel::trace

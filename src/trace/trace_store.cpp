#include "trace/trace_store.h"

#include <algorithm>

namespace resmodel::trace {

std::size_t TraceStore::discard_implausible() {
  const std::size_t before = hosts_.size();
  std::erase_if(hosts_,
                [](const HostRecord& h) { return !is_plausible(h); });
  return before - hosts_.size();
}

std::size_t TraceStore::active_count(util::ModelDate date) const noexcept {
  const std::int32_t day = date.day_index();
  std::size_t n = 0;
  for (const HostRecord& h : hosts_) {
    if (h.active_at(day)) ++n;
  }
  return n;
}

std::vector<std::size_t> TraceStore::active_indices(
    util::ModelDate date) const {
  const std::int32_t day = date.day_index();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].active_at(day)) out.push_back(i);
  }
  return out;
}

namespace {

void append_host(ResourceSnapshot& snap, const HostRecord& h) {
  snap.cores.push_back(static_cast<double>(h.n_cores));
  snap.memory_mb.push_back(h.memory_mb);
  snap.memory_per_core_mb.push_back(h.memory_per_core_mb());
  snap.whetstone_mips.push_back(h.whetstone_mips);
  snap.dhrystone_mips.push_back(h.dhrystone_mips);
  snap.disk_avail_gb.push_back(h.disk_avail_gb);
}

}  // namespace

ResourceSnapshot TraceStore::snapshot(util::ModelDate date) const {
  const std::int32_t day = date.day_index();
  ResourceSnapshot snap;
  for (const HostRecord& h : hosts_) {
    if (!h.active_at(day)) continue;
    append_host(snap, h);
  }
  return snap;
}

ResourceSnapshot TraceStore::snapshot_plausible(util::ModelDate date) const {
  const std::int32_t day = date.day_index();
  ResourceSnapshot snap;
  for (const HostRecord& h : hosts_) {
    if (!h.active_at(day) || !is_plausible(h)) continue;
    append_host(snap, h);
  }
  return snap;
}

std::vector<std::size_t> TraceStore::cpu_family_counts(
    util::ModelDate date) const {
  const std::int32_t day = date.day_index();
  std::vector<std::size_t> counts(kCpuFamilyCount, 0);
  for (const HostRecord& h : hosts_) {
    if (h.active_at(day)) ++counts[static_cast<std::size_t>(h.cpu)];
  }
  return counts;
}

std::vector<std::size_t> TraceStore::os_family_counts(
    util::ModelDate date) const {
  const std::int32_t day = date.day_index();
  std::vector<std::size_t> counts(kOsFamilyCount, 0);
  for (const HostRecord& h : hosts_) {
    if (h.active_at(day)) ++counts[static_cast<std::size_t>(h.os)];
  }
  return counts;
}

std::vector<std::size_t> TraceStore::gpu_type_counts(
    util::ModelDate date) const {
  const std::int32_t day = date.day_index();
  std::vector<std::size_t> counts(kGpuTypeCount, 0);
  for (const HostRecord& h : hosts_) {
    if (h.active_at(day)) ++counts[static_cast<std::size_t>(h.gpu)];
  }
  return counts;
}

std::vector<double> TraceStore::gpu_memory_snapshot(
    util::ModelDate date) const {
  const std::int32_t day = date.day_index();
  std::vector<double> out;
  for (const HostRecord& h : hosts_) {
    if (h.active_at(day) && h.gpu != GpuType::kNone) {
      out.push_back(h.gpu_memory_mb);
    }
  }
  return out;
}

}  // namespace resmodel::trace

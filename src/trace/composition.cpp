#include "trace/composition.h"

namespace resmodel::trace {

namespace {

template <typename CountFn>
CompositionTable build_table(const std::vector<util::ModelDate>& dates,
                             int category_count, CountFn&& count_fn,
                             const std::vector<std::string>& names) {
  CompositionTable table;
  table.categories = names;
  table.dates = dates;
  table.shares.assign(static_cast<std::size_t>(category_count),
                      std::vector<double>(dates.size(), 0.0));
  for (std::size_t c = 0; c < dates.size(); ++c) {
    const std::vector<std::size_t> counts = count_fn(dates[c]);
    std::size_t total = 0;
    for (std::size_t v : counts) total += v;
    if (total == 0) continue;
    for (std::size_t r = 0; r < counts.size(); ++r) {
      table.shares[r][c] =
          static_cast<double>(counts[r]) / static_cast<double>(total);
    }
  }
  return table;
}

}  // namespace

CompositionTable cpu_composition(const TraceStore& store,
                                 const std::vector<util::ModelDate>& dates) {
  std::vector<std::string> names;
  names.reserve(kCpuFamilyCount);
  for (int i = 0; i < kCpuFamilyCount; ++i) {
    names.push_back(to_string(static_cast<CpuFamily>(i)));
  }
  return build_table(
      dates, kCpuFamilyCount,
      [&store](util::ModelDate d) { return store.cpu_family_counts(d); },
      names);
}

CompositionTable os_composition(const TraceStore& store,
                                const std::vector<util::ModelDate>& dates) {
  std::vector<std::string> names;
  names.reserve(kOsFamilyCount);
  for (int i = 0; i < kOsFamilyCount; ++i) {
    names.push_back(to_string(static_cast<OsFamily>(i)));
  }
  return build_table(
      dates, kOsFamilyCount,
      [&store](util::ModelDate d) { return store.os_family_counts(d); },
      names);
}

GpuComposition gpu_composition(const TraceStore& store,
                               const std::vector<util::ModelDate>& dates) {
  GpuComposition out;
  // Type shares among GPU-equipped hosts: drop the kNone row by counting
  // only GPU types 1..4.
  std::vector<std::string> names;
  for (int i = 1; i < kGpuTypeCount; ++i) {
    names.push_back(to_string(static_cast<GpuType>(i)));
  }
  out.types.categories = names;
  out.types.dates = dates;
  out.types.shares.assign(names.size(),
                          std::vector<double>(dates.size(), 0.0));
  out.gpu_host_fraction.assign(dates.size(), 0.0);

  for (std::size_t c = 0; c < dates.size(); ++c) {
    const std::vector<std::size_t> counts = store.gpu_type_counts(dates[c]);
    std::size_t total_active = 0;
    for (std::size_t v : counts) total_active += v;
    std::size_t gpu_hosts = total_active - counts[0];  // minus kNone
    if (total_active > 0) {
      out.gpu_host_fraction[c] = static_cast<double>(gpu_hosts) /
                                 static_cast<double>(total_active);
    }
    if (gpu_hosts == 0) continue;
    for (std::size_t r = 1; r < counts.size(); ++r) {
      out.types.shares[r - 1][c] =
          static_cast<double>(counts[r]) / static_cast<double>(gpu_hosts);
    }
  }
  return out;
}

}  // namespace resmodel::trace

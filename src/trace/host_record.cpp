#include "trace/host_record.h"

namespace resmodel::trace {

std::string to_string(CpuFamily f) {
  switch (f) {
    case CpuFamily::kPowerPc: return "PowerPC G3/G4/G5";
    case CpuFamily::kAthlonXp: return "Athlon XP";
    case CpuFamily::kAthlon64: return "Athlon 64";
    case CpuFamily::kOtherAmd: return "Other AMD";
    case CpuFamily::kPentium4: return "Pentium 4";
    case CpuFamily::kPentiumM: return "Pentium M";
    case CpuFamily::kPentiumD: return "Pentium D";
    case CpuFamily::kOtherPentium: return "Other Pentium";
    case CpuFamily::kIntelCore2: return "Intel Core 2";
    case CpuFamily::kIntelCeleron: return "Intel Celeron";
    case CpuFamily::kIntelXeon: return "Intel Xeon";
    case CpuFamily::kOtherX86: return "Other x86";
    case CpuFamily::kOther: return "Other";
  }
  return "Other";
}

std::string to_string(OsFamily f) {
  switch (f) {
    case OsFamily::kWindowsXp: return "Windows XP";
    case OsFamily::kWindowsVista: return "Windows Vista";
    case OsFamily::kWindows7: return "Windows 7";
    case OsFamily::kWindows2000: return "Windows 2000";
    case OsFamily::kOtherWindows: return "Other Windows";
    case OsFamily::kMacOsX: return "Mac OS X";
    case OsFamily::kLinux: return "Linux";
    case OsFamily::kOther: return "Other";
  }
  return "Other";
}

std::string to_string(GpuType f) {
  switch (f) {
    case GpuType::kNone: return "None";
    case GpuType::kGeForce: return "GeForce";
    case GpuType::kRadeon: return "Radeon";
    case GpuType::kQuadro: return "Quadro";
    case GpuType::kOther: return "Other";
  }
  return "Other";
}

bool is_plausible(const HostRecord& host) noexcept {
  if (host.n_cores <= 0 || host.n_cores > 128) return false;
  if (!(host.whetstone_mips > 0.0) || host.whetstone_mips > 1e5) return false;
  if (!(host.dhrystone_mips > 0.0) || host.dhrystone_mips > 1e5) return false;
  if (!(host.memory_mb > 0.0) || host.memory_mb > 100.0 * 1024.0) return false;
  if (!(host.disk_avail_gb > 0.0) || host.disk_avail_gb > 1e4) return false;
  if (host.last_contact_day < host.created_day) return false;
  return true;
}

}  // namespace resmodel::trace

// The master side of the measurement substrate: records every host's
// latest measurement, grants work sized to the host's measured speed, and
// periodically "writes host data to publicly available files" — here, a
// TraceStore snapshot identical in schema to the synthetic ground truth.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "boinc/messages.h"
#include "trace/trace_store.h"

namespace resmodel::boinc {

/// Work-unit sizing policy.
struct ServerConfig {
  /// One work unit's floating point cost, in Whetstone-MIPS-days: a host
  /// with W MIPS per core and C cores completes C*W/work_unit_cost units
  /// per day of computation.
  double work_unit_cost_mips_days = 4000.0;
  /// Maximum work units in flight per host.
  std::uint32_t max_queued_units = 16;
  /// Credit per completed work unit.
  double credit_per_unit = 10.0;
  /// Suggested contact cadence (days).
  double contact_interval_days = 2.0;
  /// Report deadline for granted units, in days after the grant. Units a
  /// host still holds past the deadline are written off server-side
  /// (freeing queue room for a re-grant) and earn no credit if reported
  /// later. 0 disables deadlines — grants never expire.
  double report_deadline_days = 0.0;
};

class ProjectServer {
 public:
  explicit ProjectServer(ServerConfig config = {}) : config_(config) {}

  /// Handles one scheduler request: upserts the host's trace record,
  /// grants credit for completed work, and assigns new work units.
  SchedulerReply handle_request(const SchedulerRequest& request);

  /// Number of distinct hosts that ever contacted the server.
  std::size_t host_count() const noexcept { return records_.size(); }

  std::uint64_t total_contacts() const noexcept { return total_contacts_; }
  std::uint64_t total_units_granted() const noexcept {
    return total_units_granted_;
  }
  double total_credit_granted() const noexcept {
    return total_credit_granted_;
  }
  /// Units written off because a host reported them lost (crash faults).
  std::uint64_t total_units_lost() const noexcept { return total_units_lost_; }
  /// Units written off because their report deadline passed.
  std::uint64_t total_units_expired() const noexcept {
    return total_units_expired_;
  }
  /// Completed units rejected for a digest mismatch (corrupter faults).
  std::uint64_t total_invalid_result_units() const noexcept {
    return total_invalid_result_units_;
  }

  /// The periodic public dump: one record per host with its most recent
  /// measurements and first/last contact days.
  trace::TraceStore dump_trace() const;

 private:
  struct HostState {
    trace::HostRecord record;
    std::uint32_t queued_units = 0;
    double credit = 0.0;
    /// Outstanding grants, FIFO: {expiry_day, units}. Completions, loss
    /// write-offs, and expiries all consume from the front — the oldest
    /// grant is always the first to finish or die.
    std::deque<std::pair<double, std::uint32_t>> grants;
  };

  /// Pops `units` from the front of `state.grants`, keeping queued_units
  /// in sync. Returns the number actually consumed.
  static std::uint32_t consume_grants(HostState& state, std::uint32_t units);

  ServerConfig config_;
  std::unordered_map<std::uint64_t, HostState> records_;
  std::uint64_t total_contacts_ = 0;
  std::uint64_t total_units_granted_ = 0;
  double total_credit_granted_ = 0.0;
  std::uint64_t total_units_lost_ = 0;
  std::uint64_t total_units_expired_ = 0;
  std::uint64_t total_invalid_result_units_ = 0;
};

}  // namespace resmodel::boinc

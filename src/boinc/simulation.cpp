#include "boinc/simulation.h"

#include <cmath>
#include <memory>
#include <numbers>
#include <queue>
#include <vector>

#include "core/host_generator.h"
#include "synth/population.h"

namespace resmodel::boinc {

namespace {

// Min-heap entry: next contact time of a client.
struct Event {
  double day;
  std::size_t client_index;
};
struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.day > b.day;
  }
};

}  // namespace

std::vector<ArrivedClient> build_arrivals(const CollectionConfig& config) {
  config.fault_mix.validate();
  config.client.validate();
  const synth::PopulationConfig& pop = config.population;
  util::Rng rng(pop.seed ^ 0x9e3779b97f4a7c15ULL);
  const core::HostGenerator generator(pop.model);

  std::vector<ArrivedClient> clients;
  const double gamma_factor =
      std::exp(std::lgamma(1.0 + 1.0 / pop.lifetime_k));
  const std::int32_t end_day = pop.sim_end.day_index();
  std::uint64_t next_id = 1;

  // Contact events never consume the master stream (each client draws
  // only from its own fork), so materializing every arrival up front
  // consumes `rng` exactly as the historical interleaved day loop did.
  for (std::int32_t day = pop.sim_start.day_index(); day <= end_day; ++day) {
    const util::ModelDate date = util::ModelDate::from_day_index(day);
    const double t = date.t();
    const double mean_lifetime =
        synth::lifetime_lambda(pop, t) * gamma_factor;
    double rate = static_cast<double>(pop.target_active_hosts) /
                  std::max(1.0, mean_lifetime);
    rate *= 1.0 + pop.seasonal_amplitude *
                      std::sin(2.0 * std::numbers::pi * (t - 0.2));
    // The day's cohort shares its effective hardware date, so hardware
    // comes from one SoA batch; the per-client wrap-up stays sequential.
    const std::uint64_t arrivals = synth::sample_poisson(rng, rate);
    const core::GeneratedHostBatch hw = generator.generate_batch(
        synth::effective_hardware_date(pop, date), arrivals, rng);
    for (std::uint64_t i = 0; i < arrivals; ++i) {
      ArrivedClient client;
      // The spec's last_contact_day is the host's death day; the client
      // stops contacting after it.
      client.spec = synth::finish_host(pop, hw.host(i), date, next_id++, rng);
      if (config.fault_mix.any()) {
        // Fault fork first, client fork second — both from the arrival
        // stream, so the client's own rng only shifts when faults are on.
        util::Rng fault_rng = rng.fork();
        const sim::FaultDraw draw =
            sim::sample_fault(config.fault_mix, fault_rng);
        client.fault = draw.type;
        client.straggler_slowdown = draw.slowdown;
      }
      client.rng = rng.fork();
      clients.push_back(std::move(client));
    }
  }
  return clients;
}

CollectionResult run_collection(const CollectionConfig& config) {
  const std::vector<ArrivedClient> arrivals = build_arrivals(config);
  const synth::PopulationConfig& pop = config.population;

  ProjectServer server(config.server);
  std::vector<VirtualClient> clients;
  clients.reserve(arrivals.size());
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  const std::int32_t end_day = pop.sim_end.day_index();

  for (const ArrivedClient& arrival : arrivals) {
    ClientConfig cc = config.client;
    cc.fault = arrival.fault;
    cc.straggler_slowdown = arrival.straggler_slowdown;
    clients.emplace_back(arrival.spec, cc, arrival.rng);
    events.push({static_cast<double>(arrival.spec.created_day),
                 clients.size() - 1});
  }

  // Drain every contact inside the window. Clients are independent (each
  // one's grants/credit depend only on its own stream and the server's
  // per-host state), so the processing order of same-day events cannot
  // change any per-client outcome — only the (exact, integer-valued)
  // credit summation order.
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    VirtualClient& client = clients[ev.client_index];
    if (ev.day > end_day || !client.alive()) continue;
    const SchedulerRequest request = client.make_request();
    const SchedulerReply reply = server.handle_request(request);
    client.handle_reply(reply);
    if (client.alive()) {
      events.push({client.next_contact_day(), ev.client_index});
    }
  }

  CollectionResult result;
  result.trace = server.dump_trace();
  result.hosts_created = clients.size();
  result.total_contacts = server.total_contacts();
  result.total_units_granted = server.total_units_granted();
  result.total_credit_granted = server.total_credit_granted();
  result.total_units_lost = server.total_units_lost();
  result.total_units_expired = server.total_units_expired();
  result.total_invalid_result_units = server.total_invalid_result_units();

  if (config.allocate_final_utility) {
    // The §VII step on the freshly collected trace: columnar snapshot in,
    // columnar allocator out — no AoS detour. §V-A's active definition
    // needs a contact on or after the snapshot day, so the exact end day
    // is usually sparse; walk back to the latest populated day.
    const std::int32_t start_day = pop.sim_start.day_index();
    for (std::int32_t day = end_day; day >= start_day; --day) {
      const trace::ResourceSnapshot snap = result.trace.snapshot_plausible(
          util::ModelDate::from_day_index(day));
      if (snap.size() == 0) continue;
      const sim::HostResourcesSoA hosts =
          sim::HostResourcesSoA::from_snapshot(snap);
      result.final_allocation_hosts = hosts.size();
      result.final_allocation =
          sim::allocate_round_robin(sim::paper_applications(), hosts);
      break;
    }
  }
  return result;
}

}  // namespace resmodel::boinc

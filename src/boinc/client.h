// The worker side: a virtual host with fixed hardware that periodically
// contacts the server, re-measuring itself each time. Benchmarks jitter
// with background load and available disk performs a slow random walk, so
// the server's record reflects the *latest* measurement, exactly as in the
// real system. Under the availability model the benchmark pair is drawn
// once per ON session (BOINC re-runs benchmarks at client restart, not per
// scheduler RPC): every contact inside one session reports the same
// scores, and a session crossing redraws them. Without the availability
// model there are no sessions and the jitter stays per-contact.
#pragma once

#include "boinc/messages.h"
#include "sim/fault_model.h"
#include "synth/availability.h"
#include "trace/host_record.h"
#include "util/rng.h"

namespace resmodel::boinc {

/// Per-client behaviour parameters.
struct ClientConfig {
  /// Mean days between scheduler contacts (exponential).
  double mean_contact_interval_days = 2.0;
  /// Log-sigma of the benchmark jitter: per ON session under the
  /// availability model, per contact without it.
  double benchmark_jitter_sigma = 0.03;
  /// Log-sigma of the per-contact available-disk random walk.
  double disk_drift_sigma = 0.02;
  /// Seconds of work requested per contact.
  double work_request_seconds = 86400.0;
  /// When true, contacts only happen while the host is available
  /// according to the alternating ON/OFF availability model (§VIII future
  /// work; see synth/availability.h). A contact scheduled during an OFF
  /// interval is deferred to the start of the next ON interval.
  bool model_availability = false;
  synth::AvailabilityParams availability;

  /// Injected behaviour (sim/fault_model.h). kCrash loses the whole
  /// queued batch whenever an ON session ends before the next contact
  /// (requires model_availability — without the session structure there
  /// is nothing to die); kStraggler completes work `straggler_slowdown`
  /// times slower than its benchmarks advertise; kCorrupter reports a
  /// wrong result digest for every non-empty batch.
  sim::FaultType fault = sim::FaultType::kHonest;
  double straggler_slowdown = 1.0;  ///< >= 1; only read for kStraggler

  /// Throws std::invalid_argument on negative jitter/drift sigmas, a
  /// non-positive contact interval, negative requested seconds, or a
  /// straggler slowdown below 1.
  void validate() const;
};

class VirtualClient {
 public:
  /// `spec` carries the host's true hardware and its lifetime window
  /// (created_day / last_contact_day are interpreted as birth/death days).
  /// Validates `config` (throws std::invalid_argument).
  VirtualClient(trace::HostRecord spec, ClientConfig config, util::Rng rng);

  std::uint64_t id() const noexcept { return spec_.id; }

  /// Day of the next scheduled contact, or a negative value if the host
  /// has died.
  double next_contact_day() const noexcept { return next_contact_day_; }
  bool alive() const noexcept {
    return next_contact_day_ <= spec_.last_contact_day;
  }

  /// Produces the request for the current contact and schedules the next
  /// one. Call only while alive().
  SchedulerRequest make_request();

  /// Delivers the server's reply (queues granted work).
  void handle_reply(const SchedulerReply& reply) noexcept;

  const trace::HostRecord& spec() const noexcept { return spec_; }

 private:
  /// Advances the ON/OFF state machine so next_contact_day_ lands inside
  /// an ON interval (no-op unless config_.model_availability).
  void defer_to_available();

  /// Draws the session benchmark pair (dhrystone then whetstone, one
  /// log-normal jitter each) for the ON session just entered.
  void draw_session_benchmarks();

  trace::HostRecord spec_;
  ClientConfig config_;
  util::Rng rng_;
  double next_contact_day_ = 0.0;
  double current_disk_avail_gb_ = 0.0;
  /// The benchmark scores of the current ON session (availability mode
  /// only): drawn at construction and redrawn by defer_to_available
  /// whenever the session boundary is crossed.
  double session_dhrystone_mips_ = 0.0;
  double session_whetstone_mips_ = 0.0;
  std::uint32_t queued_units_ = 0;
  double last_contact_day_done_ = 0.0;
  double on_interval_end_ = 0.0;  ///< end of the current ON interval
  /// Set when defer_to_available crosses an ON-session boundary; a kCrash
  /// client applies the loss at the START of the next make_request (the
  /// grant from the previous contact has already landed by then).
  bool session_died_since_last_contact_ = false;
};

}  // namespace resmodel::boinc

#include "boinc/client.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace resmodel::boinc {

void ClientConfig::validate() const {
  if (!(mean_contact_interval_days > 0.0)) {
    throw std::invalid_argument(
        "ClientConfig: mean_contact_interval_days must be positive");
  }
  if (!(benchmark_jitter_sigma >= 0.0)) {
    throw std::invalid_argument(
        "ClientConfig: benchmark_jitter_sigma must be non-negative");
  }
  if (!(disk_drift_sigma >= 0.0)) {
    throw std::invalid_argument(
        "ClientConfig: disk_drift_sigma must be non-negative");
  }
  if (!(work_request_seconds >= 0.0)) {
    throw std::invalid_argument(
        "ClientConfig: work_request_seconds must be non-negative");
  }
  if (!(straggler_slowdown >= 1.0)) {
    throw std::invalid_argument(
        "ClientConfig: straggler_slowdown must be >= 1");
  }
}

VirtualClient::VirtualClient(trace::HostRecord spec, ClientConfig config,
                             util::Rng rng)
    : spec_(spec),
      config_(config),
      rng_(rng),
      next_contact_day_(static_cast<double>(spec.created_day)),
      current_disk_avail_gb_(spec.disk_avail_gb),
      last_contact_day_done_(static_cast<double>(spec.created_day)),
      on_interval_end_(static_cast<double>(spec.created_day)) {
  config_.validate();
  if (config_.model_availability) {
    config_.availability.validate();
    // The first contact happens while the host is up: start an ON
    // interval at birth.
    const stats::WeibullDist on_dist(config_.availability.on_weibull_k,
                                     config_.availability.on_weibull_lambda);
    on_interval_end_ =
        next_contact_day_ + std::max(1e-6, on_dist.sample(rng_));
    draw_session_benchmarks();
  }
}

void VirtualClient::draw_session_benchmarks() {
  session_dhrystone_mips_ =
      spec_.dhrystone_mips *
      std::exp(rng_.normal(0.0, config_.benchmark_jitter_sigma));
  session_whetstone_mips_ =
      spec_.whetstone_mips *
      std::exp(rng_.normal(0.0, config_.benchmark_jitter_sigma));
}

void VirtualClient::defer_to_available() {
  if (!config_.model_availability) return;
  const stats::WeibullDist on_dist(config_.availability.on_weibull_k,
                                   config_.availability.on_weibull_lambda);
  const stats::LogNormalDist off_dist(config_.availability.off_lognormal_mu,
                                      config_.availability.off_lognormal_sigma);
  bool crossed = false;
  while (next_contact_day_ > on_interval_end_) {
    // Crossing an ON-session boundary kills whatever a crash-faulty
    // client had in flight. The loss is recorded here but applied at the
    // start of the next make_request, after the previous contact's grant
    // has landed via handle_reply.
    session_died_since_last_contact_ = true;
    crossed = true;
    const double off_len = std::max(1e-6, off_dist.sample(rng_));
    const double on_start = on_interval_end_ + off_len;
    const double on_len = std::max(1e-6, on_dist.sample(rng_));
    if (next_contact_day_ < on_start) next_contact_day_ = on_start;
    on_interval_end_ = on_start + on_len;
  }
  // The next contact runs in a fresh session: the restarted client
  // re-benchmarks once, and every contact of that session reuses the pair.
  if (crossed) draw_session_benchmarks();
}

SchedulerRequest VirtualClient::make_request() {
  SchedulerRequest request;
  request.host_id = spec_.id;
  request.day = static_cast<std::int32_t>(std::floor(next_contact_day_));

  // A crash-faulty client that died since the last contact lost its whole
  // queue: nothing completes, and the server is told how much to write
  // off. Honest/straggler/corrupter clients survive session boundaries
  // (BOINC checkpoints across restarts; crash clients model hosts that
  // don't).
  if (config_.fault == sim::FaultType::kCrash &&
      session_died_since_last_contact_) {
    request.lost_work_units = queued_units_;
    queued_units_ = 0;
  }
  session_died_since_last_contact_ = false;

  // Re-measure: fixed hardware, jittered benchmarks, drifting disk. With
  // the availability model the benchmark pair is the current session's
  // cached measurement; without it (no session structure) the jitter is
  // drawn per contact, as before.
  HostMeasurement& m = request.measurement;
  m.n_cores = spec_.n_cores;
  m.memory_mb = spec_.memory_mb;
  if (config_.model_availability) {
    m.dhrystone_mips = session_dhrystone_mips_;
    m.whetstone_mips = session_whetstone_mips_;
  } else {
    m.dhrystone_mips =
        spec_.dhrystone_mips *
        std::exp(rng_.normal(0.0, config_.benchmark_jitter_sigma));
    m.whetstone_mips =
        spec_.whetstone_mips *
        std::exp(rng_.normal(0.0, config_.benchmark_jitter_sigma));
  }
  current_disk_avail_gb_ *=
      std::exp(rng_.normal(0.0, config_.disk_drift_sigma));
  current_disk_avail_gb_ =
      std::clamp(current_disk_avail_gb_, 0.01, spec_.disk_total_gb);
  m.disk_avail_gb = current_disk_avail_gb_;
  m.disk_total_gb = spec_.disk_total_gb;
  m.cpu = spec_.cpu;
  m.os = spec_.os;
  m.gpu = spec_.gpu;
  m.gpu_memory_mb = spec_.gpu_memory_mb;

  // Work completed since the last contact: everything that fit in the
  // elapsed wall time at the host's speed (bounded by the local queue).
  // Stragglers benchmark fast but run slow: the measurement above keeps
  // its jittered-true value while actual throughput is derated.
  const double elapsed_days = next_contact_day_ - last_contact_day_done_;
  double units_per_day = m.n_cores * spec_.whetstone_mips / 4000.0;
  if (config_.fault == sim::FaultType::kStraggler) {
    units_per_day /= config_.straggler_slowdown;
  }
  const auto doable = static_cast<std::uint32_t>(
      std::clamp(elapsed_days * units_per_day, 0.0, 1e6));
  request.completed_work_units = std::min(doable, queued_units_);
  queued_units_ -= request.completed_work_units;

  if (request.completed_work_units > 0) {
    const std::uint64_t payload =
        result_payload(spec_.id, request.completed_work_units);
    request.result_digest = config_.fault == sim::FaultType::kCorrupter
                                ? sim::corrupted_digest(payload, spec_.id)
                                : sim::canonical_digest(payload);
  }

  request.requested_work_seconds = config_.work_request_seconds;

  last_contact_day_done_ = next_contact_day_;
  next_contact_day_ +=
      rng_.exponential(1.0 / config_.mean_contact_interval_days);
  defer_to_available();
  return request;
}

void VirtualClient::handle_reply(const SchedulerReply& reply) noexcept {
  queued_units_ += reply.granted_work_units;
}

}  // namespace resmodel::boinc

#include "boinc/client.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"

namespace resmodel::boinc {

VirtualClient::VirtualClient(trace::HostRecord spec, ClientConfig config,
                             util::Rng rng) noexcept
    : spec_(spec),
      config_(config),
      rng_(rng),
      next_contact_day_(static_cast<double>(spec.created_day)),
      current_disk_avail_gb_(spec.disk_avail_gb),
      last_contact_day_done_(static_cast<double>(spec.created_day)),
      on_interval_end_(static_cast<double>(spec.created_day)) {
  if (config_.model_availability) {
    config_.availability.validate();
    // The first contact happens while the host is up: start an ON
    // interval at birth.
    const stats::WeibullDist on_dist(config_.availability.on_weibull_k,
                                     config_.availability.on_weibull_lambda);
    on_interval_end_ =
        next_contact_day_ + std::max(1e-6, on_dist.sample(rng_));
  }
}

void VirtualClient::defer_to_available() {
  if (!config_.model_availability) return;
  const stats::WeibullDist on_dist(config_.availability.on_weibull_k,
                                   config_.availability.on_weibull_lambda);
  const stats::LogNormalDist off_dist(config_.availability.off_lognormal_mu,
                                      config_.availability.off_lognormal_sigma);
  while (next_contact_day_ > on_interval_end_) {
    const double off_len = std::max(1e-6, off_dist.sample(rng_));
    const double on_start = on_interval_end_ + off_len;
    const double on_len = std::max(1e-6, on_dist.sample(rng_));
    if (next_contact_day_ < on_start) next_contact_day_ = on_start;
    on_interval_end_ = on_start + on_len;
  }
}

SchedulerRequest VirtualClient::make_request() {
  SchedulerRequest request;
  request.host_id = spec_.id;
  request.day = static_cast<std::int32_t>(std::floor(next_contact_day_));

  // Re-measure: fixed hardware, jittered benchmarks, drifting disk.
  HostMeasurement& m = request.measurement;
  m.n_cores = spec_.n_cores;
  m.memory_mb = spec_.memory_mb;
  m.dhrystone_mips = spec_.dhrystone_mips *
                     std::exp(rng_.normal(0.0, config_.benchmark_jitter_sigma));
  m.whetstone_mips = spec_.whetstone_mips *
                     std::exp(rng_.normal(0.0, config_.benchmark_jitter_sigma));
  current_disk_avail_gb_ *=
      std::exp(rng_.normal(0.0, config_.disk_drift_sigma));
  current_disk_avail_gb_ =
      std::clamp(current_disk_avail_gb_, 0.01, spec_.disk_total_gb);
  m.disk_avail_gb = current_disk_avail_gb_;
  m.disk_total_gb = spec_.disk_total_gb;
  m.cpu = spec_.cpu;
  m.os = spec_.os;
  m.gpu = spec_.gpu;
  m.gpu_memory_mb = spec_.gpu_memory_mb;

  // Work completed since the last contact: everything that fit in the
  // elapsed wall time at the host's speed (bounded by the local queue).
  const double elapsed_days = next_contact_day_ - last_contact_day_done_;
  const double units_per_day = m.n_cores * spec_.whetstone_mips / 4000.0;
  const auto doable = static_cast<std::uint32_t>(
      std::clamp(elapsed_days * units_per_day, 0.0, 1e6));
  request.completed_work_units = std::min(doable, queued_units_);
  queued_units_ -= request.completed_work_units;

  request.requested_work_seconds = config_.work_request_seconds;

  last_contact_day_done_ = next_contact_day_;
  next_contact_day_ +=
      rng_.exponential(1.0 / config_.mean_contact_interval_days);
  defer_to_available();
  return request;
}

void VirtualClient::handle_reply(const SchedulerReply& reply) noexcept {
  queued_units_ += reply.granted_work_units;
}

}  // namespace resmodel::boinc

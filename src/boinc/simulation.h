// Discrete-event simulation of the data-collection method (Section IV):
// hosts arrive, periodically contact the project server with fresh
// self-measurements, receive work, and eventually disappear. The output is
// the server's public trace dump — the same schema the synthetic ground
// truth and the fitting pipeline use, so the entire
// collect -> dump -> fit -> generate loop can run end to end.
#pragma once

#include "boinc/client.h"
#include "boinc/server.h"
#include "synth/population_config.h"
#include "trace/trace_store.h"

namespace resmodel::boinc {

struct CollectionConfig {
  /// Hardware population, arrivals and lifetimes (shared with synth so the
  /// collected trace matches the ground-truth statistics).
  synth::PopulationConfig population;
  ClientConfig client;
  ServerConfig server;
};

struct CollectionResult {
  trace::TraceStore trace;  ///< the server's public dump at the end
  std::size_t hosts_created = 0;
  std::uint64_t total_contacts = 0;
  std::uint64_t total_units_granted = 0;
  double total_credit_granted = 0.0;
};

/// Runs the full collection window. Deterministic for a fixed config.
CollectionResult run_collection(const CollectionConfig& config);

}  // namespace resmodel::boinc

// Discrete-event simulation of the data-collection method (Section IV):
// hosts arrive, periodically contact the project server with fresh
// self-measurements, receive work, and eventually disappear. The output is
// the server's public trace dump — the same schema the synthetic ground
// truth and the fitting pipeline use, so the entire
// collect -> dump -> fit -> generate loop can run end to end.
#pragma once

#include <vector>

#include "boinc/client.h"
#include "boinc/server.h"
#include "sim/allocator.h"
#include "synth/population_config.h"
#include "trace/trace_store.h"

namespace resmodel::boinc {

struct CollectionConfig {
  /// Hardware population, arrivals and lifetimes (shared with synth so the
  /// collected trace matches the ground-truth statistics).
  synth::PopulationConfig population;
  ClientConfig client;
  ServerConfig server;

  /// Per-host fault mix (sim/fault_model.h). Each arriving host draws a
  /// fault type from a dedicated rng fork, overriding the client
  /// template's `fault`/`straggler_slowdown`. When the mix is all-zero
  /// no fork is consumed and the client template is used verbatim, so
  /// fault-free runs reproduce the pre-fault event stream exactly.
  sim::FaultMixConfig fault_mix;

  /// When true, the run ends with the §VII utility step: the collected
  /// trace's plausible snapshot at the latest populated day of the window
  /// is allocated across the Table-IX applications through the columnar
  /// round-robin allocator and reported in
  /// CollectionResult::final_allocation.
  bool allocate_final_utility = false;
};

struct CollectionResult {
  trace::TraceStore trace;  ///< the server's public dump at the end
  std::size_t hosts_created = 0;
  std::uint64_t total_contacts = 0;
  std::uint64_t total_units_granted = 0;
  double total_credit_granted = 0.0;
  /// Robustness counters (nonzero only with faults/deadlines enabled).
  std::uint64_t total_units_lost = 0;      ///< crash write-offs
  std::uint64_t total_units_expired = 0;   ///< deadline write-offs
  std::uint64_t total_invalid_result_units = 0;  ///< digest mismatches

  /// Filled when CollectionConfig::allocate_final_utility is set: the
  /// round-robin allocation of the end-of-window snapshot to
  /// sim::paper_applications() (empty vectors otherwise).
  sim::AllocationResult final_allocation;
  std::size_t final_allocation_hosts = 0;
};

/// One client of the arrival process: the host spec (created_day /
/// last_contact_day are the birth/death days), the behaviour drawn from
/// the fault mix, and the client's private rng stream. The shared
/// ClientConfig template plus (fault, straggler_slowdown) reconstructs the
/// per-client config.
struct ArrivedClient {
  trace::HostRecord spec;
  sim::FaultType fault = sim::FaultType::kHonest;
  double straggler_slowdown = 1.0;
  util::Rng rng;
};

/// Materializes the arrival process of the configured window: the
/// day-batched Poisson arrivals, hardware draws, fault draws and
/// per-client rng forks, consuming the master stream exactly as
/// run_collection does. The returned clients (in creation order) are
/// bit-identical to the ones run_collection constructs — the engine
/// (src/engine/) and the oracle share this path, so their populations
/// cannot drift apart. Validates the fault mix and client template.
std::vector<ArrivedClient> build_arrivals(const CollectionConfig& config);

/// Runs the full collection window. Deterministic for a fixed config.
/// Retained as the golden reference oracle for engine::run_service_engine
/// (see src/engine/README.md): single-threaded, one VirtualClient and one
/// ProjectServer exchange per event, trivially auditable.
CollectionResult run_collection(const CollectionConfig& config);

}  // namespace resmodel::boinc

// Scheduler RPC message types for the BOINC-style measurement substrate.
//
// In BOINC, "host resource measurements occur every time the host contacts
// the server, [allowing] the server to allocate the appropriate work for
// the available host resources" (Section IV). These structs are that RPC.
#pragma once

#include <cstdint>

#include "trace/host_record.h"

namespace resmodel::boinc {

/// The hardware self-measurement a client ships with every request.
struct HostMeasurement {
  std::int32_t n_cores = 1;
  double memory_mb = 0.0;
  double dhrystone_mips = 0.0;
  double whetstone_mips = 0.0;
  double disk_avail_gb = 0.0;
  double disk_total_gb = 0.0;
  trace::CpuFamily cpu = trace::CpuFamily::kOther;
  trace::OsFamily os = trace::OsFamily::kOther;
  trace::GpuType gpu = trace::GpuType::kNone;
  double gpu_memory_mb = 0.0;
};

/// Client -> server: a scheduler request.
struct SchedulerRequest {
  std::uint64_t host_id = 0;
  std::int32_t day = 0;  ///< contact day index
  HostMeasurement measurement;
  /// Seconds of work the client wants queued (BOINC's work_req_seconds).
  double requested_work_seconds = 0.0;
  /// Work units completed since the previous contact.
  std::uint32_t completed_work_units = 0;
};

/// Server -> client: the scheduler reply.
struct SchedulerReply {
  /// Work units granted this contact (sized to the host's speed).
  std::uint32_t granted_work_units = 0;
  /// Credit granted for the completed units reported in the request.
  double granted_credit = 0.0;
  /// Server-suggested delay before the next contact (days).
  double next_contact_delay_days = 0.0;
};

}  // namespace resmodel::boinc

// Scheduler RPC message types for the BOINC-style measurement substrate.
//
// In BOINC, "host resource measurements occur every time the host contacts
// the server, [allowing] the server to allocate the appropriate work for
// the available host resources" (Section IV). These structs are that RPC.
#pragma once

#include <cstdint>

#include "trace/host_record.h"

namespace resmodel::boinc {

/// The hardware self-measurement a client ships with every request.
struct HostMeasurement {
  std::int32_t n_cores = 1;
  double memory_mb = 0.0;
  double dhrystone_mips = 0.0;
  double whetstone_mips = 0.0;
  double disk_avail_gb = 0.0;
  double disk_total_gb = 0.0;
  trace::CpuFamily cpu = trace::CpuFamily::kOther;
  trace::OsFamily os = trace::OsFamily::kOther;
  trace::GpuType gpu = trace::GpuType::kNone;
  double gpu_memory_mb = 0.0;
};

/// Client -> server: a scheduler request.
struct SchedulerRequest {
  std::uint64_t host_id = 0;
  std::int32_t day = 0;  ///< contact day index
  HostMeasurement measurement;
  /// Seconds of work the client wants queued (BOINC's work_req_seconds).
  double requested_work_seconds = 0.0;
  /// Work units completed since the previous contact.
  std::uint32_t completed_work_units = 0;
  /// Digest over the completed batch (sim/fault_model.h's canonical
  /// digest of (host_id, completed count); corrupter clients ship a
  /// wrong one). 0 when completed_work_units == 0 — nothing to validate.
  std::uint64_t result_digest = 0;
  /// Queued units the client lost to a session death since the previous
  /// contact (crash clients; the server writes these off, never credits).
  std::uint32_t lost_work_units = 0;
};

/// Server -> client: the scheduler reply.
struct SchedulerReply {
  /// Work units granted this contact (sized to the host's speed).
  std::uint32_t granted_work_units = 0;
  /// Credit granted for the completed units reported in the request.
  double granted_credit = 0.0;
  /// Server-suggested delay before the next contact (days).
  double next_contact_delay_days = 0.0;
  /// Whether the reported batch's digest matched the canonical one
  /// (true when nothing was reported). Invalid batches earn no credit.
  bool result_valid = true;
};

/// The digest payload both sides derive independently: the host and the
/// size of the completed batch. The canonical digest of this payload is
/// what an honest client ships and what the server expects.
inline std::uint64_t result_payload(std::uint64_t host_id,
                                    std::uint32_t completed) noexcept {
  return host_id ^ (static_cast<std::uint64_t>(completed) << 32);
}

}  // namespace resmodel::boinc

#include "boinc/server.h"

#include <algorithm>

namespace resmodel::boinc {

SchedulerReply ProjectServer::handle_request(const SchedulerRequest& request) {
  ++total_contacts_;
  auto [it, inserted] = records_.try_emplace(request.host_id);
  HostState& state = it->second;
  const HostMeasurement& m = request.measurement;

  if (inserted) {
    state.record.id = request.host_id;
    state.record.created_day = request.day;
    state.record.last_contact_day = request.day;
  } else {
    state.record.last_contact_day =
        std::max(state.record.last_contact_day, request.day);
  }
  state.record.n_cores = m.n_cores;
  state.record.memory_mb = m.memory_mb;
  state.record.dhrystone_mips = m.dhrystone_mips;
  state.record.whetstone_mips = m.whetstone_mips;
  state.record.disk_avail_gb = m.disk_avail_gb;
  state.record.disk_total_gb = m.disk_total_gb;
  state.record.cpu = m.cpu;
  state.record.os = m.os;
  state.record.gpu = m.gpu;
  state.record.gpu_memory_mb = m.gpu_memory_mb;

  SchedulerReply reply;

  // Credit the completed units.
  const std::uint32_t completed =
      std::min(request.completed_work_units, state.queued_units);
  state.queued_units -= completed;
  reply.granted_credit = completed * config_.credit_per_unit;
  state.credit += reply.granted_credit;
  total_credit_granted_ += reply.granted_credit;

  // Grant new work sized to the host's measured speed: enough units to
  // cover the requested seconds of computation, capped by the queue limit.
  const double units_per_day =
      m.n_cores * m.whetstone_mips / config_.work_unit_cost_mips_days;
  const double requested_days = request.requested_work_seconds / 86400.0;
  const auto wanted = static_cast<std::uint32_t>(
      std::clamp(units_per_day * requested_days, 0.0, 1e6));
  const std::uint32_t room = config_.max_queued_units > state.queued_units
                                 ? config_.max_queued_units -
                                       state.queued_units
                                 : 0;
  reply.granted_work_units = std::min(wanted, room);
  state.queued_units += reply.granted_work_units;
  total_units_granted_ += reply.granted_work_units;

  reply.next_contact_delay_days = config_.contact_interval_days;
  return reply;
}

trace::TraceStore ProjectServer::dump_trace() const {
  trace::TraceStore store;
  store.reserve(records_.size());
  for (const auto& [id, state] : records_) {
    store.add(state.record);
  }
  return store;
}

}  // namespace resmodel::boinc

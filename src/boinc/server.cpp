#include "boinc/server.h"

#include <algorithm>
#include <limits>

#include "sim/fault_model.h"

namespace resmodel::boinc {

std::uint32_t ProjectServer::consume_grants(HostState& state,
                                            std::uint32_t units) {
  std::uint32_t consumed = std::min(units, state.queued_units);
  state.queued_units -= consumed;
  std::uint32_t left = consumed;
  while (left > 0 && !state.grants.empty()) {
    std::uint32_t& granted = state.grants.front().second;
    const std::uint32_t take = std::min(left, granted);
    granted -= take;
    left -= take;
    if (granted == 0) state.grants.pop_front();
  }
  return consumed;
}

SchedulerReply ProjectServer::handle_request(const SchedulerRequest& request) {
  ++total_contacts_;
  auto [it, inserted] = records_.try_emplace(request.host_id);
  HostState& state = it->second;
  const HostMeasurement& m = request.measurement;

  if (inserted) {
    state.record.id = request.host_id;
    state.record.created_day = request.day;
    state.record.last_contact_day = request.day;
  } else {
    state.record.last_contact_day =
        std::max(state.record.last_contact_day, request.day);
  }
  state.record.n_cores = m.n_cores;
  state.record.memory_mb = m.memory_mb;
  state.record.dhrystone_mips = m.dhrystone_mips;
  state.record.whetstone_mips = m.whetstone_mips;
  state.record.disk_avail_gb = m.disk_avail_gb;
  state.record.disk_total_gb = m.disk_total_gb;
  state.record.cpu = m.cpu;
  state.record.os = m.os;
  state.record.gpu = m.gpu;
  state.record.gpu_memory_mb = m.gpu_memory_mb;

  SchedulerReply reply;

  // Validate the reported batch before crediting: a digest that does not
  // match the canonical digest of (host, batch size) marks the whole
  // batch invalid. The units still leave the host's queue — the work was
  // consumed, it just earns nothing.
  if (request.completed_work_units > 0) {
    const std::uint64_t expected = sim::canonical_digest(
        result_payload(request.host_id, request.completed_work_units));
    reply.result_valid = request.result_digest == expected;
  }

  // Credit the completed units (validated batches only).
  const std::uint32_t completed =
      consume_grants(state, request.completed_work_units);
  if (reply.result_valid) {
    reply.granted_credit = completed * config_.credit_per_unit;
    state.credit += reply.granted_credit;
    total_credit_granted_ += reply.granted_credit;
  } else {
    total_invalid_result_units_ += completed;
  }

  // Write off units the host reported lost to a session death.
  total_units_lost_ += consume_grants(state, request.lost_work_units);

  // Expire grants whose report deadline has passed; the freed room lets
  // the grant below re-issue that work to (possibly) this same host.
  while (!state.grants.empty() && state.grants.front().first < request.day) {
    total_units_expired_ += state.grants.front().second;
    state.queued_units -= std::min(state.queued_units,
                                   state.grants.front().second);
    state.grants.pop_front();
  }

  // Grant new work sized to the host's measured speed: enough units to
  // cover the requested seconds of computation, capped by the queue limit.
  const double units_per_day =
      m.n_cores * m.whetstone_mips / config_.work_unit_cost_mips_days;
  const double requested_days = request.requested_work_seconds / 86400.0;
  const auto wanted = static_cast<std::uint32_t>(
      std::clamp(units_per_day * requested_days, 0.0, 1e6));
  const std::uint32_t room = config_.max_queued_units > state.queued_units
                                 ? config_.max_queued_units -
                                       state.queued_units
                                 : 0;
  reply.granted_work_units = std::min(wanted, room);
  state.queued_units += reply.granted_work_units;
  total_units_granted_ += reply.granted_work_units;
  if (reply.granted_work_units > 0) {
    const double expiry =
        config_.report_deadline_days > 0.0
            ? request.day + config_.report_deadline_days
            : std::numeric_limits<double>::infinity();
    state.grants.emplace_back(expiry, reply.granted_work_units);
  }

  reply.next_contact_delay_days = config_.contact_interval_days;
  return reply;
}

trace::TraceStore ProjectServer::dump_trace() const {
  trace::TraceStore store;
  store.reserve(records_.size());
  for (const auto& [id, state] : records_) {
    store.add(state.record);
  }
  return store;
}

}  // namespace resmodel::boinc

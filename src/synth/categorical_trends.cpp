#include "synth/categorical_trends.h"

#include <algorithm>
#include <stdexcept>

namespace resmodel::synth {

CategoricalTrend::CategoricalTrend(std::vector<double> anchors_t,
                                   std::vector<std::vector<double>> shares)
    : anchors_t_(std::move(anchors_t)), shares_(std::move(shares)) {
  if (anchors_t_.size() < 2) {
    throw std::invalid_argument("CategoricalTrend: need >= 2 anchors");
  }
  for (std::size_t i = 1; i < anchors_t_.size(); ++i) {
    if (!(anchors_t_[i] > anchors_t_[i - 1])) {
      throw std::invalid_argument("CategoricalTrend: anchors must ascend");
    }
  }
  for (const std::vector<double>& row : shares_) {
    if (row.size() != anchors_t_.size()) {
      throw std::invalid_argument(
          "CategoricalTrend: share rows must match anchor count");
    }
  }
}

std::vector<double> CategoricalTrend::pmf(double t) const {
  // Locate the surrounding anchor pair, clamping outside the range.
  std::size_t hi = 1;
  while (hi + 1 < anchors_t_.size() && anchors_t_[hi] < t) ++hi;
  const std::size_t lo = hi - 1;
  double frac = (t - anchors_t_[lo]) / (anchors_t_[hi] - anchors_t_[lo]);
  frac = std::clamp(frac, 0.0, 1.0);

  std::vector<double> p(shares_.size(), 0.0);
  double total = 0.0;
  for (std::size_t c = 0; c < shares_.size(); ++c) {
    const double v =
        shares_[c][lo] * (1.0 - frac) + shares_[c][hi] * frac;
    p[c] = std::max(0.0, v);
    total += p[c];
  }
  if (total > 0.0) {
    for (double& v : p) v /= total;
  }
  return p;
}

std::size_t CategoricalTrend::sample(double t, util::Rng& rng) const {
  const std::vector<double> p = pmf(t);
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t c = 0; c < p.size(); ++c) {
    acc += p[c];
    if (u <= acc) return c;
  }
  return p.size() - 1;
}

const CategoricalTrend& cpu_family_trend() {
  // Table I, % of active hosts at Jan 1 of 2006..2010. Row order must match
  // trace::CpuFamily.
  static const CategoricalTrend kTrend(
      {0.0, 1.0, 2.0, 3.0, 4.0},
      {
          {5.1, 6.5, 4.7, 3.5, 2.7},       // PowerPC G3/G4/G5
          {12.3, 9.0, 6.2, 4.0, 2.5},      // Athlon XP
          {6.5, 9.5, 11.4, 11.6, 10.2},    // Athlon 64
          {8.3, 8.2, 7.8, 7.9, 9.5},       // Other AMD
          {36.8, 33.0, 27.2, 20.7, 15.5},  // Pentium 4
          {5.4, 5.5, 4.3, 3.1, 2.1},       // Pentium M
          {0.7, 3.0, 4.2, 3.9, 3.1},       // Pentium D
          {4.1, 2.6, 2.1, 3.3, 5.2},       // Other Pentium
          {0.9, 3.3, 13.2, 24.8, 32.0},    // Intel Core 2
          {5.6, 6.4, 6.3, 5.9, 4.9},       // Intel Celeron
          {2.1, 2.8, 3.3, 3.9, 4.3},       // Intel Xeon
          {9.9, 7.7, 7.6, 6.1, 5.1},       // Other x86
          {2.3, 2.6, 1.6, 1.3, 2.9},       // Other
      });
  return kTrend;
}

const CategoricalTrend& os_family_trend() {
  // Table II, % of active hosts at Jan 1 of 2006..2010. Row order must
  // match trace::OsFamily.
  static const CategoricalTrend kTrend(
      {0.0, 1.0, 2.0, 3.0, 4.0},
      {
          {69.8, 71.5, 68.6, 62.5, 52.9},  // Windows XP
          {0.0, 0.0, 6.7, 14.0, 15.9},     // Windows Vista
          {0.0, 0.0, 0.0, 0.0, 9.2},       // Windows 7
          {12.9, 8.5, 5.5, 3.4, 2.0},      // Windows 2000
          {6.3, 6.1, 4.8, 4.8, 3.4},       // Other Windows
          {5.4, 7.8, 7.9, 8.5, 9.0},       // Mac OS X
          {5.1, 5.7, 6.0, 6.4, 7.3},       // Linux
          {0.4, 0.4, 0.4, 0.3, 0.3},       // Other
      });
  return kTrend;
}

const CategoricalTrend& gpu_type_trend() {
  // Table VII, among GPU-equipped hosts, Sep 2009 (t=3.67) and Sep 2010
  // (t=4.67).
  static const CategoricalTrend kTrend({3.67, 4.67},
                                       {
                                           {82.5, 63.6},  // GeForce
                                           {12.2, 31.5},  // Radeon
                                           {4.7, 4.0},    // Quadro
                                           {0.6, 0.8},    // Other
                                       });
  return kTrend;
}

double gpu_adoption_fraction(double t) noexcept {
  // 12.7% at Sep 2009 (t = 3.67), 23.8% at Sep 2010 (t = 4.67).
  const double f = 0.127 + (0.238 - 0.127) * (t - 3.67);
  return std::clamp(f, 0.0, 0.5);
}

const std::vector<double>& gpu_memory_values_mb() {
  static const std::vector<double> kValues = {128,  256,  512, 768,
                                              1024, 1536, 2048};
  return kValues;
}

std::vector<double> gpu_memory_pmf(double t) {
  // Calibrated anchors: Sep 2009 mean ~589 MB (paper: 592.7), >=1GB 21%
  // (paper: 19%); Sep 2010 mean ~655 MB (paper: 659.4), >=1GB 30%
  // (paper: 31%). Median 512 MB at both anchors.
  static const std::vector<double> k2009 = {0.10, 0.25, 0.36, 0.08,
                                            0.14, 0.04, 0.03};
  static const std::vector<double> k2010 = {0.08, 0.22, 0.34, 0.06,
                                            0.21, 0.05, 0.04};
  double frac = (t - 3.67) / 1.0;
  frac = std::clamp(frac, 0.0, 1.0);
  std::vector<double> p(k2009.size());
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = k2009[i] * (1.0 - frac) + k2010[i] * frac;
    total += p[i];
  }
  for (double& v : p) v /= total;
  return p;
}

}  // namespace resmodel::synth

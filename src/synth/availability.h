// Host availability model (the paper's §VIII future work: "the model of
// resources could be tied to ... models of host availability").
//
// Implements the alternating-renewal model of the availability literature
// the paper cites (Javadi et al., MASCOTS'09; Nurmi et al.): a host's
// uptime is a sequence of ON intervals (Weibull with shape < 1 — long
// tails, many short sessions) separated by OFF intervals (log-normal).
// The BOINC substrate can overlay this on a client so scheduler contacts
// only happen while the host is available.
#pragma once

#include <optional>
#include <vector>

#include "util/rng.h"

namespace resmodel::synth {

/// Parameters of the two-state alternating renewal process. Durations are
/// in days. Defaults approximate the SETI@home availability statistics
/// reported by Javadi et al. (median ON session of a few hours, heavy
/// tail; mean availability fraction ~0.7).
struct AvailabilityParams {
  double on_weibull_k = 0.40;        ///< shape < 1: decreasing hazard
  double on_weibull_lambda = 0.35;   ///< scale, days (~8.4 hours)
  double off_lognormal_mu = -1.9;    ///< ln(days); median ~3.6 hours
  double off_lognormal_sigma = 1.3;

  /// Throws std::invalid_argument on non-positive shapes/scales.
  void validate() const;
};

/// One availability interval [start_day, end_day).
struct AvailabilityInterval {
  double start_day = 0.0;
  double end_day = 0.0;

  double length() const noexcept { return end_day - start_day; }
  bool contains(double day) const noexcept {
    return day >= start_day && day < end_day;
  }
};

/// How AvailabilityModel::generate chooses the state at start_day.
enum class StartMode {
  /// Start in the ON state (a host's first contact happens while up) —
  /// the original behavior and the default, so existing streams are
  /// unchanged.
  kOnAtStart,
  /// Start in ON with the long-run probability E[on] / (E[on] + E[off])
  /// and a residual first interval; otherwise a residual OFF gap precedes
  /// the first ON interval. Removes the always-up transient at the window
  /// edge when sampling a population already in steady state.
  kStationary,
};

/// Generates and queries per-host availability schedules.
class AvailabilityModel {
 public:
  explicit AvailabilityModel(AvailabilityParams params = {});

  const AvailabilityParams& params() const noexcept { return params_; }

  /// Expected long-run availability fraction E[on] / (E[on] + E[off]).
  double expected_availability() const noexcept;

  /// Generates the ON intervals covering [start_day, end_day). With the
  /// default kOnAtStart mode the host is ON at start_day and the rng
  /// consumption is exactly the historical stream; kStationary draws the
  /// start state and a residual first duration (may return no intervals
  /// when a long OFF residual swallows a short window).
  std::vector<AvailabilityInterval> generate(
      double start_day, double end_day, util::Rng& rng,
      StartMode mode = StartMode::kOnAtStart) const;

 private:
  AvailabilityParams params_;
};

/// Fraction of [start, end) covered by the intervals (assumed sorted and
/// disjoint). Returns 0 for an empty window.
double availability_fraction(const std::vector<AvailabilityInterval>& on,
                             double start_day, double end_day) noexcept;

/// Earliest time >= `day` at which the host is available, or nullopt if
/// no interval at or after `day` exists (empty timeline, or `day` at or
/// past the end of the last interval — interval ends are exclusive).
std::optional<double> next_available_time(
    const std::vector<AvailabilityInterval>& on, double day) noexcept;

}  // namespace resmodel::synth

#include "synth/availability.h"

#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace resmodel::synth {

void AvailabilityParams::validate() const {
  if (!(on_weibull_k > 0.0) || !(on_weibull_lambda > 0.0)) {
    throw std::invalid_argument(
        "AvailabilityParams: ON Weibull parameters must be > 0");
  }
  if (!(off_lognormal_sigma > 0.0)) {
    throw std::invalid_argument(
        "AvailabilityParams: OFF log-normal sigma must be > 0");
  }
}

AvailabilityModel::AvailabilityModel(AvailabilityParams params)
    : params_(params) {
  params_.validate();
}

double AvailabilityModel::expected_availability() const noexcept {
  const double mean_on =
      params_.on_weibull_lambda *
      std::exp(std::lgamma(1.0 + 1.0 / params_.on_weibull_k));
  const double mean_off =
      std::exp(params_.off_lognormal_mu +
               params_.off_lognormal_sigma * params_.off_lognormal_sigma / 2.0);
  return mean_on / (mean_on + mean_off);
}

std::vector<AvailabilityInterval> AvailabilityModel::generate(
    double start_day, double end_day, util::Rng& rng) const {
  std::vector<AvailabilityInterval> intervals;
  if (!(end_day > start_day)) return intervals;
  const stats::WeibullDist on_dist(params_.on_weibull_k,
                                   params_.on_weibull_lambda);
  const stats::LogNormalDist off_dist(params_.off_lognormal_mu,
                                      params_.off_lognormal_sigma);
  double clock = start_day;
  while (clock < end_day) {
    const double on_len = std::max(1e-6, on_dist.sample(rng));
    AvailabilityInterval interval;
    interval.start_day = clock;
    interval.end_day = std::min(end_day, clock + on_len);
    intervals.push_back(interval);
    clock += on_len;
    if (clock >= end_day) break;
    clock += std::max(1e-6, off_dist.sample(rng));
  }
  return intervals;
}

double availability_fraction(const std::vector<AvailabilityInterval>& on,
                             double start_day, double end_day) noexcept {
  if (!(end_day > start_day)) return 0.0;
  double covered = 0.0;
  for (const AvailabilityInterval& interval : on) {
    const double lo = std::max(interval.start_day, start_day);
    const double hi = std::min(interval.end_day, end_day);
    if (hi > lo) covered += hi - lo;
  }
  return covered / (end_day - start_day);
}

double next_available_time(const std::vector<AvailabilityInterval>& on,
                           double day) noexcept {
  for (const AvailabilityInterval& interval : on) {
    if (interval.contains(day)) return day;
    if (interval.start_day >= day) return interval.start_day;
  }
  return -1.0;
}

}  // namespace resmodel::synth

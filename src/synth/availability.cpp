#include "synth/availability.h"

#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace resmodel::synth {

void AvailabilityParams::validate() const {
  if (!(on_weibull_k > 0.0) || !(on_weibull_lambda > 0.0)) {
    throw std::invalid_argument(
        "AvailabilityParams: ON Weibull parameters must be > 0");
  }
  if (!(off_lognormal_sigma > 0.0)) {
    throw std::invalid_argument(
        "AvailabilityParams: OFF log-normal sigma must be > 0");
  }
}

AvailabilityModel::AvailabilityModel(AvailabilityParams params)
    : params_(params) {
  params_.validate();
}

double AvailabilityModel::expected_availability() const noexcept {
  const double mean_on =
      params_.on_weibull_lambda *
      std::exp(std::lgamma(1.0 + 1.0 / params_.on_weibull_k));
  const double mean_off =
      std::exp(params_.off_lognormal_mu +
               params_.off_lognormal_sigma * params_.off_lognormal_sigma / 2.0);
  return mean_on / (mean_on + mean_off);
}

std::vector<AvailabilityInterval> AvailabilityModel::generate(
    double start_day, double end_day, util::Rng& rng, StartMode mode) const {
  std::vector<AvailabilityInterval> intervals;
  if (!(end_day > start_day)) return intervals;
  const stats::WeibullDist on_dist(params_.on_weibull_k,
                                   params_.on_weibull_lambda);
  const stats::LogNormalDist off_dist(params_.off_lognormal_mu,
                                      params_.off_lognormal_sigma);
  double clock = start_day;
  // < 0 means "no residual pending"; >= 0 is the residual first ON length.
  double residual_on = -1.0;
  if (mode == StartMode::kStationary) {
    // An inspection at an arbitrary instant finds the host ON with the
    // long-run probability E[on] / (E[on] + E[off]), partway through the
    // current session. The residual is a uniform fraction of a fresh
    // duration — a pragmatic stand-in for the exact equilibrium residual
    // law S(r)/E[L], which has no closed form for Weibull/log-normal.
    // Hoisted locals: both factors draw from the same rng and operand
    // evaluation order of `*` is unspecified — the stream must not
    // depend on the compiler.
    if (rng.uniform() < expected_availability()) {
      const double fresh = on_dist.sample(rng);
      residual_on = std::max(1e-6, fresh * rng.uniform());
    } else {
      const double fresh = off_dist.sample(rng);
      clock += std::max(1e-6, fresh * rng.uniform());
    }
  }
  while (clock < end_day) {
    const double on_len =
        residual_on >= 0.0 ? residual_on : std::max(1e-6, on_dist.sample(rng));
    residual_on = -1.0;
    AvailabilityInterval interval;
    interval.start_day = clock;
    interval.end_day = std::min(end_day, clock + on_len);
    intervals.push_back(interval);
    clock += on_len;
    if (clock >= end_day) break;
    clock += std::max(1e-6, off_dist.sample(rng));
  }
  return intervals;
}

double availability_fraction(const std::vector<AvailabilityInterval>& on,
                             double start_day, double end_day) noexcept {
  if (!(end_day > start_day)) return 0.0;
  double covered = 0.0;
  for (const AvailabilityInterval& interval : on) {
    const double lo = std::max(interval.start_day, start_day);
    const double hi = std::min(interval.end_day, end_day);
    if (hi > lo) covered += hi - lo;
  }
  return covered / (end_day - start_day);
}

std::optional<double> next_available_time(
    const std::vector<AvailabilityInterval>& on, double day) noexcept {
  for (const AvailabilityInterval& interval : on) {
    if (interval.contains(day)) return day;
    if (interval.start_day >= day) return interval.start_day;
  }
  return std::nullopt;
}

}  // namespace resmodel::synth

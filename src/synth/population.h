// Ground-truth population generation — the stand-in for the SETI@home
// trace. See population_config.h for the modelling choices.
#pragma once

#include "core/host_generator.h"
#include "synth/population_config.h"
#include "trace/trace_store.h"
#include "util/rng.h"

namespace resmodel::synth {

/// Generates the full synthetic trace for the configured window.
/// Deterministic for a fixed config (including seed).
trace::TraceStore generate_population(const PopulationConfig& config);

/// Samples a Poisson variate (Knuth's method for small means, normal
/// approximation above 30). Exposed for tests.
std::uint64_t sample_poisson(util::Rng& rng, double mean);

/// Samples one host created at `created` according to the config.
/// Exposed so the BOINC substrate can create clients with the same
/// hardware population.
trace::HostRecord sample_host(const PopulationConfig& config,
                              const core::HostGenerator& generator,
                              util::ModelDate created, std::uint64_t id,
                              util::Rng& rng);

/// The date hardware is sampled at for hosts created at `created`
/// (creation + lead; see population_config.h).
util::ModelDate effective_hardware_date(const PopulationConfig& config,
                                        util::ModelDate created) noexcept;

/// Wraps pre-generated hardware `hw` into a full HostRecord: lifetime,
/// measurement noise, odd cores, off-grid memory, categorical attributes,
/// GPU, corruption. `hw` must come from the config's model at
/// effective_hardware_date(config, created) — this is the path the
/// batched population loop and the BOINC arrival loop share.
trace::HostRecord finish_host(const PopulationConfig& config,
                              const core::GeneratedHost& hw,
                              util::ModelDate created, std::uint64_t id,
                              util::Rng& rng);

/// The date-dependent Weibull lifetime scale lambda(t).
double lifetime_lambda(const PopulationConfig& config, double t) noexcept;

}  // namespace resmodel::synth

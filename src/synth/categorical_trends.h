// Time-varying categorical mixes for CPU family (Table I), operating
// system (Table II) and GPU type/adoption/memory (Table VII, Fig 10).
//
// Each trend is a piecewise-linear interpolation through yearly anchor
// shares taken from the paper's tables, extended flat outside the anchored
// range. Shares are renormalized after interpolation so they always form a
// valid pmf even between anchors.
#pragma once

#include <vector>

#include "trace/host_record.h"
#include "util/rng.h"

namespace resmodel::synth {

/// A categorical distribution interpolated over model time t (years since
/// 2006).
class CategoricalTrend {
 public:
  /// anchors_t: ascending times; shares[c][j]: share of category c at
  /// anchors_t[j]. Shares may not sum to exactly 1 (the paper's tables are
  /// rounded); they are normalized at evaluation.
  CategoricalTrend(std::vector<double> anchors_t,
                   std::vector<std::vector<double>> shares);

  /// Normalized pmf at time t.
  std::vector<double> pmf(double t) const;

  /// Samples a category index at time t.
  std::size_t sample(double t, util::Rng& rng) const;

  std::size_t category_count() const noexcept { return shares_.size(); }

 private:
  std::vector<double> anchors_t_;
  std::vector<std::vector<double>> shares_;
};

/// Table I: CPU family shares, anchored at Jan 1 of 2006..2010, indexed by
/// trace::CpuFamily.
const CategoricalTrend& cpu_family_trend();

/// Table II: OS shares, anchored at Jan 1 of 2006..2010, indexed by
/// trace::OsFamily.
const CategoricalTrend& os_family_trend();

/// Table VII: GPU type shares among GPU-equipped hosts, anchored at
/// Sep 2009 and Sep 2010. Index 0 = GeForce ... 3 = Other (i.e. the
/// trace::GpuType value minus one).
const CategoricalTrend& gpu_type_trend();

/// Fraction of active hosts reporting a GPU: 12.7% at Sep 2009 rising to
/// 23.8% at Sep 2010 (clamped to [0, 0.5] outside; 0 before reporting
/// began in a practical sense for hosts created much earlier).
double gpu_adoption_fraction(double t) noexcept;

/// Fig 10: GPU memory pmf over {128,256,512,768,1024,1536,2048} MB,
/// interpolated between the Sep 2009 and Sep 2010 anchors (calibrated to
/// the paper's mean 592.7 -> 659.4 MB, median 512 MB, and the 19% -> 31%
/// jump in >= 1 GB cards).
const std::vector<double>& gpu_memory_values_mb();
std::vector<double> gpu_memory_pmf(double t);

}  // namespace resmodel::synth

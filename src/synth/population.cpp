#include "synth/population.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/host_generator.h"
#include "stats/distributions.h"
#include "synth/categorical_trends.h"

namespace resmodel::synth {

namespace {

// Intermediate per-core-memory values the paper observed but excluded from
// its discrete model (e.g. 1280 MB, 1792 MB). Emitting them exercises the
// fitting pipeline's snap-or-drop logic.
constexpr double kIntermediateMemoryMb[] = {384, 640, 1280, 1792, 3072};

// Corruption modes for implausible records (§V-B: >128 cores, >1e5 MIPS,
// >100 GB memory, >1e4 GB disk).
enum class Corruption { kCores, kWhetstone, kDhrystone, kMemory, kDisk };

void corrupt_record(trace::HostRecord& h, util::Rng& rng) {
  switch (static_cast<Corruption>(rng.uniform_index(5))) {
    case Corruption::kCores:
      h.n_cores = 129 + static_cast<int>(rng.uniform_index(900));
      break;
    case Corruption::kWhetstone:
      h.whetstone_mips = 1.1e5 * (1.0 + rng.uniform());
      break;
    case Corruption::kDhrystone:
      h.dhrystone_mips = 1.1e5 * (1.0 + rng.uniform());
      break;
    case Corruption::kMemory:
      h.memory_mb = 1.1e5 * (1.0 + rng.uniform());
      break;
    case Corruption::kDisk:
      h.disk_avail_gb = 1.1e4 * (1.0 + rng.uniform());
      break;
  }
}

}  // namespace

double lifetime_lambda(const PopulationConfig& config, double t) noexcept {
  return config.lifetime_lambda_2006 *
         std::exp(-config.lifetime_lambda_decay * t);
}

std::uint64_t sample_poisson(util::Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    double product = rng.uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      product *= rng.uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction.
  const double v = rng.normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

util::ModelDate effective_hardware_date(const PopulationConfig& config,
                                        util::ModelDate created) noexcept {
  return util::ModelDate::from_year(created.year() +
                                    config.resource_lead_years);
}

trace::HostRecord sample_host(const PopulationConfig& config,
                              const core::HostGenerator& generator,
                              util::ModelDate created, std::uint64_t id,
                              util::Rng& rng) {
  const core::GeneratedHost hw =
      generator.generate(effective_hardware_date(config, created), rng);
  return finish_host(config, hw, created, id, rng);
}

trace::HostRecord finish_host(const PopulationConfig& config,
                              const core::GeneratedHost& hw,
                              util::ModelDate created, std::uint64_t id,
                              util::Rng& rng) {
  const double t = created.t();
  trace::HostRecord h;
  h.id = id;
  h.created_day = created.day_index();

  // Lifetime: Weibull with date-dependent scale (Figure 1 + Figure 3).
  const stats::WeibullDist lifetime(config.lifetime_k,
                                    std::max(1.0, lifetime_lambda(config, t)));
  const double days = lifetime.sample(rng);
  h.last_contact_day =
      h.created_day + static_cast<std::int32_t>(std::llround(days));

  const util::ModelDate effective = effective_hardware_date(config, created);
  h.n_cores = hw.n_cores;
  h.memory_mb = hw.memory_mb;
  h.whetstone_mips = hw.whetstone_mips;
  h.dhrystone_mips = hw.dhrystone_mips;
  h.disk_avail_gb = hw.disk_avail_gb;

  // Benchmark measurement noise (multiplicative log-normal).
  if (config.benchmark_noise_sigma > 0.0) {
    h.whetstone_mips *=
        std::exp(rng.normal(0.0, config.benchmark_noise_sigma));
    h.dhrystone_mips *=
        std::exp(rng.normal(0.0, config.benchmark_noise_sigma));
  }

  // A small share of non-power-of-two core counts (excluded by the model).
  if (rng.uniform() < config.odd_core_fraction) {
    h.n_cores = rng.uniform() < 0.5 ? 3 : 6;
    h.memory_mb = hw.memory_per_core_mb * h.n_cores;
  }

  // A share of off-grid per-core-memory values (snapped/dropped by the
  // fitting pipeline, as in the real data).
  if (rng.uniform() < config.intermediate_memory_fraction) {
    const double per_core = kIntermediateMemoryMb[rng.uniform_index(
        std::size(kIntermediateMemoryMb))];
    h.memory_mb = per_core * h.n_cores;
  }

  // Total disk: available fraction is uniform (§V-G).
  const double avail_fraction = rng.uniform(
      config.min_avail_disk_fraction, config.max_avail_disk_fraction);
  h.disk_total_gb = h.disk_avail_gb / avail_fraction;

  // Categorical attributes. Hardware mixes are sampled at the same
  // lead-corrected date so active-population shares track the tables.
  const double te = effective.t();
  h.cpu = static_cast<trace::CpuFamily>(cpu_family_trend().sample(te, rng));
  h.os = static_cast<trace::OsFamily>(os_family_trend().sample(te, rng));

  // GPU reporting (Table VII / Fig 10), post-Sep-2009 adoption curve.
  if (rng.uniform() < gpu_adoption_fraction(te)) {
    h.gpu = static_cast<trace::GpuType>(1 + gpu_type_trend().sample(te, rng));
    const std::vector<double>& values = gpu_memory_values_mb();
    const std::vector<double> pmf = gpu_memory_pmf(te);
    const double u = rng.uniform();
    double acc = 0.0;
    h.gpu_memory_mb = values.back();
    for (std::size_t i = 0; i < pmf.size(); ++i) {
      acc += pmf[i];
      if (u <= acc) {
        h.gpu_memory_mb = values[i];
        break;
      }
    }
  }

  // Corrupt a small share of records so the plausibility filter has work.
  if (rng.uniform() < config.corrupt_fraction) {
    corrupt_record(h, rng);
  }
  return h;
}

trace::TraceStore generate_population(const PopulationConfig& config) {
  util::Rng rng(config.seed);
  const core::HostGenerator generator(config.model);

  // Steady-state arrival rate: active ~= rate * E[lifetime], so
  // rate(t) = target / (lambda(t) * Gamma(1 + 1/k)), modulated seasonally.
  const double gamma_factor =
      std::exp(std::lgamma(1.0 + 1.0 / config.lifetime_k));

  trace::TraceStore store;
  const std::int32_t end_day = config.sim_end.day_index();
  std::uint64_t next_id = 1;
  for (std::int32_t day = config.sim_start.day_index(); day <= end_day;
       ++day) {
    const util::ModelDate date = util::ModelDate::from_day_index(day);
    const double t = date.t();
    const double mean_lifetime = lifetime_lambda(config, t) * gamma_factor;
    double rate = static_cast<double>(config.target_active_hosts) /
                  std::max(1.0, mean_lifetime);
    rate *= 1.0 + config.seasonal_amplitude *
                      std::sin(2.0 * std::numbers::pi * (t - 0.2));
    // One SoA batch for the whole day's cohort (they share the effective
    // hardware date), then per-host wrap-up.
    const std::uint64_t arrivals = sample_poisson(rng, rate);
    const core::GeneratedHostBatch hw = generator.generate_batch(
        effective_hardware_date(config, date), arrivals, rng);
    for (std::uint64_t i = 0; i < arrivals; ++i) {
      trace::HostRecord h =
          finish_host(config, hw.host(i), date, next_id++, rng);
      // The trace can only record contacts up to the collection end.
      h.last_contact_day = std::min(h.last_contact_day, end_day);
      store.add(h);
    }
  }
  return store;
}

}  // namespace resmodel::synth

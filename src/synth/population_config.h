// Configuration of the synthetic ground-truth population.
//
// This module stands in for the proprietary SETI@home trace (2.7M hosts,
// 2006-2010). Hosts arrive as a (seasonally modulated) Poisson process
// sized to keep a target active population, live Weibull lifetimes whose
// scale decays with creation date (the Figure-3 effect: newer hosts die
// sooner), and carry hardware sampled from the paper's published model at
// an *effective* date (creation + lead). The lead compensates the
// population-age lag: the paper's laws describe the mixture of hosts active
// at time T, while hardware is fixed at creation; in the stationary regime
// a mixture of e^(b(t - age + lead)) preserves b exactly and the lead is
// tuned so the recovered `a` values stay close too.
#pragma once

#include <cstdint>

#include "core/model_params.h"
#include "util/model_date.h"

namespace resmodel::synth {

struct PopulationConfig {
  std::uint64_t seed = 42;

  /// Target active host count (the paper fluctuates between ~300k and
  /// ~350k; the default is a 1:20 scale for tractable experiment runtimes).
  std::size_t target_active_hosts = 16000;

  /// Relative amplitude of the seasonal fluctuation in the arrival rate.
  double seasonal_amplitude = 0.08;

  /// Simulation window. Arrivals start early so the 2006-01-01 snapshot is
  /// already in quasi-steady state (hosts created before 2006 are part of
  /// the trace with negative creation days, exactly as in the real data).
  util::ModelDate sim_start = util::ModelDate::from_ymd(2003, 1, 1);
  util::ModelDate sim_end = util::ModelDate::from_ymd(2010, 9, 1);

  /// Host lifetime: Weibull(k, lambda(t)) days with
  /// lambda(t) = lifetime_lambda_2006 * exp(-lifetime_lambda_decay * t).
  /// k = 0.58 reproduces the paper's decreasing-dropout-rate shape and the
  /// decay reproduces Figure 3's negative creation-date/lifetime trend.
  double lifetime_k = 0.58;
  double lifetime_lambda_2006 = 150.0;
  double lifetime_lambda_decay = 0.10;

  /// Hardware generation model (defaults to the published parameters).
  core::ModelParams model = core::paper_params();

  /// Effective-date lead (years) for hardware sampling; see file comment.
  double resource_lead_years = 1.0;

  /// Multiplicative log-normal measurement noise on the benchmark scores
  /// (shared-bus effects, background load).
  double benchmark_noise_sigma = 0.08;

  /// Fraction of hosts with a non-power-of-two core count (the paper
  /// observed < 0.3% and ignores them in the model).
  double odd_core_fraction = 0.003;

  /// Fraction of hosts with an off-grid per-core-memory value (the paper
  /// keeps six discrete values covering > 80% and discards intermediates
  /// like 1280 MB; we emit ~15% intermediates so the fitting pipeline's
  /// snapping logic is actually exercised).
  double intermediate_memory_fraction = 0.15;

  /// Fraction of corrupt records that must be caught by the §V-B
  /// plausibility rules (the paper discarded 0.12%).
  double corrupt_fraction = 0.0012;

  /// Available disk as a fraction of total disk is uniform in this range
  /// (§V-G: "the fraction of total disk which is available is well
  /// represented by a uniform random distribution").
  double min_avail_disk_fraction = 0.05;
  double max_avail_disk_fraction = 0.95;
};

}  // namespace resmodel::synth

// Length-checked little-endian byte codec for engine checkpoint blobs.
//
// Every piece of engine state that goes into an engine_state.v1 snapshot
// (run header, ClientShard columns, QuorumCoordinator columns) is framed
// with this pair: StateWriter appends raw LE scalars and size-prefixed
// trivially-copyable vectors to a byte buffer, StateReader walks them
// back in the same order. Doubles travel as their IEEE-754 bit patterns
// (a memcpy, not a decimal round trip), so a serialize → restore cycle
// reproduces every value bit for bit — the foundation of the engine's
// checkpoint/resume bit-identity contract.
//
// The store layer already CRC-checks each blob, so a structurally short
// or oversized blob here means a format/version mismatch, not rot;
// StateReader throws std::runtime_error with a description and the
// checkpoint loader wraps it into a typed StoreError(kSchemaMismatch).
//
// Host requirements match the store's: little-endian, IEC 559 doubles
// (the snapshot writer refuses big-endian hosts at write time).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace resmodel::engine {

class StateWriter {
 public:
  explicit StateWriter(std::vector<std::byte>& out) : out_(out) {}

  void put_u8(std::uint8_t v) { put_raw(&v, 1); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_i32(std::int32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }

  /// Size-prefixed vector of a trivially copyable scalar/enum type.
  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_u64(v.size());
    if (!v.empty()) put_raw(v.data(), v.size() * sizeof(T));
  }

  void put_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    out_.insert(out_.end(), p, p + n);
  }

 private:
  std::vector<std::byte>& out_;
};

class StateReader {
 public:
  explicit StateReader(std::span<const std::byte> in) : in_(in) {}

  std::uint8_t get_u8() { return get_scalar<std::uint8_t>("u8"); }
  std::uint32_t get_u32() { return get_scalar<std::uint32_t>("u32"); }
  std::int32_t get_i32() { return get_scalar<std::int32_t>("i32"); }
  std::uint64_t get_u64() { return get_scalar<std::uint64_t>("u64"); }
  double get_f64() { return get_scalar<double>("f64"); }

  /// Reads a size-prefixed vector written by put_vector. `max_elems`
  /// bounds the allocation so a mangled count cannot OOM the process.
  template <typename T>
  std::vector<T> get_vector(std::uint64_t max_elems) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = get_u64();
    if (n > max_elems) {
      throw std::runtime_error("engine state blob: vector of " +
                               std::to_string(n) + " elements exceeds bound " +
                               std::to_string(max_elems));
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) get_raw(v.data(), v.size() * sizeof(T));
    return v;
  }

  void get_raw(void* out, std::size_t n) {
    if (in_.size() - pos_ < n) {
      throw std::runtime_error("engine state blob truncated: need " +
                               std::to_string(n) + " bytes at offset " +
                               std::to_string(pos_) + " of " +
                               std::to_string(in_.size()));
    }
    std::memcpy(out, in_.data() + pos_, n);
    pos_ += n;
  }

  /// Every blob must be consumed exactly; trailing bytes mean the writer
  /// and reader disagree about the format.
  void expect_end() const {
    if (pos_ != in_.size()) {
      throw std::runtime_error("engine state blob: " +
                               std::to_string(in_.size() - pos_) +
                               " unconsumed trailing bytes");
    }
  }

 private:
  template <typename T>
  T get_scalar(const char* what) {
    T v;
    if (in_.size() - pos_ < sizeof v) {
      throw std::runtime_error(std::string("engine state blob truncated ") +
                               "reading " + what + " at offset " +
                               std::to_string(pos_));
    }
    std::memcpy(&v, in_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

}  // namespace resmodel::engine

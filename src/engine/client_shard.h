// One shard of the service engine: a contiguous slice of the client
// population held as columnar arrays, with a virtual-time event heap over
// the clients' next scheduler contacts.
//
// A shard replays the SAME contact protocol as the boinc::VirtualClient /
// boinc::ProjectServer pair (the golden oracle in boinc/simulation.h),
// but batched: instead of one client object and one server map entry per
// host, every per-client and per-host-state field lives in a flat column
// indexed by the shard-local client index. The per-host server state is
// independent across hosts, so draining shards concurrently produces
// bit-identical per-client outcomes to the oracle's single event queue —
// the engine's core determinism argument (see src/engine/README.md).
//
// Invariants checked while draining (std::logic_error on violation):
//  - virtual-time monotonicity: popped events strictly increase in
//    (day, client index);
//  - unit conservation, re-counted after every drained batch:
//    units_granted == reported + invalid + lost + expired + queued.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "boinc/client.h"
#include "boinc/server.h"
#include "boinc/simulation.h"
#include "engine/event_heap.h"
#include "engine/quorum.h"
#include "trace/trace_store.h"

namespace resmodel::engine {

/// Shard-wide behaviour shared by every client of the shard.
struct ShardParams {
  /// Client template; per-client fault/straggler_slowdown override it.
  boinc::ClientConfig client;
  /// Effective server policy (the engine applies the replication deadline
  /// override before constructing shards).
  boinc::ServerConfig server;
  /// Last virtual day of the window: events after it are dropped.
  double limit_day = 0.0;
  /// Contacts per conservation recount.
  std::uint32_t batch_size = 4096;
  /// Emit per-contact DayRecords for the quorum coordinator.
  bool emit_day_records = false;
};

/// Monotone unit/credit counters of one shard.
struct ShardTotals {
  std::uint64_t contacts = 0;
  std::uint64_t units_granted = 0;
  std::uint64_t units_reported = 0;  ///< completed, validated, credited
  std::uint64_t units_invalid = 0;   ///< completed but digest-rejected
  std::uint64_t units_lost = 0;      ///< crash write-offs
  std::uint64_t units_expired = 0;   ///< deadline write-offs
  double credit_granted = 0.0;
  std::uint64_t batches_drained = 0;
};

/// One client's closing account, read back by the engine for the
/// per-client oracle-equivalence contract.
struct ClientAccount {
  std::uint64_t id = 0;
  std::uint32_t contacts = 0;
  std::uint32_t units_granted = 0;
  std::uint32_t units_reported = 0;
  std::uint32_t units_invalid = 0;
  std::uint32_t units_lost = 0;
  std::uint32_t units_expired = 0;
  std::uint32_t units_in_flight = 0;  ///< still queued server-side
  double credit = 0.0;
};

class ClientShard {
 public:
  /// Adopts `clients` (a contiguous slice of the global population, whose
  /// first element has global index `global_base`) into columns and seeds
  /// the event heap with their birth contacts. Replays each client's
  /// VirtualClient construction draws, so the shard's rng columns are
  /// bit-identical to freshly built clients. Validates the templates.
  ClientShard(const ShardParams& params,
              std::span<const boinc::ArrivedClient> clients,
              std::uint32_t global_base);

  /// Reconstructs a shard from a serialize_state() blob (engine
  /// checkpoint resume). No construction draws are replayed — every
  /// column, rng stream, heap membership bit and counter is restored
  /// verbatim, so the rebuilt shard drains bit-identically to the one
  /// that was serialized. Throws std::runtime_error on a structurally
  /// inconsistent blob (the checkpoint loader wraps it into a typed
  /// StoreError).
  ClientShard(const ShardParams& params, std::span<const std::byte> state);

  /// Appends the shard's complete resumable state to `out` (see
  /// src/engine/README.md for the checkpoint protocol). Only legal at a
  /// day barrier with no untaken day records (std::logic_error
  /// otherwise — a checkpoint between take_day_records() calls would
  /// drop quorum records on resume).
  void serialize_state(std::vector<std::byte>& out) const;

  std::size_t size() const noexcept { return id_.size(); }
  bool drained() const noexcept { return heap_.empty(); }

  /// Pops and processes every event with virtual time < day_end (pass
  /// +infinity to drain the whole horizon). Events past the window or the
  /// client's death are dropped without processing, exactly like the
  /// oracle's liveness check. Throws std::logic_error if monotonicity or
  /// conservation is violated.
  void drain(double day_end);

  const ShardTotals& totals() const noexcept { return totals_; }

  /// Units currently queued server-side across the shard's clients.
  std::uint64_t queued_units() const noexcept;

  /// Day records accumulated since the last take (emit_day_records only);
  /// client indices are global. Leaves the buffer empty.
  std::vector<DayRecord> take_day_records();

  /// Appends one HostRecord per contacted client, in client order.
  void append_trace(trace::TraceStore& store) const;

  ClientAccount account(std::size_t i) const;

 private:
  /// Outstanding grants of one client, FIFO: {expiry_day, units}. A flat
  /// vector with a head cursor stands in for the oracle's std::deque; the
  /// live tail is bounded by max_queued_units (every entry holds >= 1
  /// unit), and the dead prefix is compacted once it outgrows the tail.
  struct GrantFifo {
    std::vector<std::pair<double, std::uint32_t>> entries;
    std::size_t head = 0;

    bool empty() const noexcept { return head == entries.size(); }
    std::pair<double, std::uint32_t>& front() noexcept {
      return entries[head];
    }
    void pop_front() noexcept {
      if (++head == entries.size()) {
        entries.clear();
        head = 0;
      } else if (head >= 64) {
        entries.erase(entries.begin(),
                      entries.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };

  /// One scheduler contact of client `i` at virtual time `t`: the
  /// client-side request (crash loss, measurement, completion, digest,
  /// next-contact scheduling) followed by the server-side handling
  /// (upsert, validate, credit, write-offs, expiry, grant) — a line-for-
  /// line mirror of VirtualClient::make_request + handle_request.
  void contact_step(std::uint32_t i, double t);

  /// Redraws client i's session benchmark pair (dhrystone then
  /// whetstone) — VirtualClient::draw_session_benchmarks.
  void draw_session_benchmarks(std::uint32_t i);

  /// Pops `units` from the front of client i's grant FIFO, keeping
  /// server_queued_[i] in sync — ProjectServer::consume_grants.
  std::uint32_t consume_grants(std::uint32_t i, std::uint32_t units);

  /// Full recount of the conservation invariant (std::logic_error).
  void check_conservation() const;

  ShardParams params_;
  std::uint32_t global_base_ = 0;

  // Host spec columns (fixed at construction).
  std::vector<std::uint64_t> id_;
  std::vector<std::int32_t> created_day_;
  std::vector<double> death_day_;
  std::vector<std::int32_t> n_cores_;
  std::vector<double> memory_mb_;
  std::vector<double> spec_dhrystone_;
  std::vector<double> spec_whetstone_;
  std::vector<double> disk_total_;
  std::vector<trace::CpuFamily> cpu_;
  std::vector<trace::OsFamily> os_;
  std::vector<trace::GpuType> gpu_;
  std::vector<double> gpu_memory_mb_;
  std::vector<sim::FaultType> fault_;
  std::vector<double> slowdown_;

  // Client-side state columns (VirtualClient's members).
  std::vector<util::Rng> rng_;
  std::vector<double> next_contact_;
  std::vector<double> last_done_;
  std::vector<double> on_end_;
  std::vector<double> disk_cur_;
  std::vector<double> session_dhrystone_;
  std::vector<double> session_whetstone_;
  std::vector<std::uint32_t> client_queued_;
  std::vector<std::uint8_t> session_died_;

  // Server-side per-host state columns (ProjectServer::HostState).
  std::vector<std::uint8_t> contacted_;
  std::vector<std::int32_t> rec_first_day_;
  std::vector<std::int32_t> rec_last_day_;
  std::vector<double> meas_dhrystone_;
  std::vector<double> meas_whetstone_;
  std::vector<double> meas_disk_;
  std::vector<std::uint32_t> server_queued_;
  std::vector<double> credit_;
  std::vector<GrantFifo> grants_;

  // Per-client unit counters (the oracle-equivalence accounts).
  std::vector<std::uint32_t> n_contacts_;
  std::vector<std::uint32_t> n_granted_;
  std::vector<std::uint32_t> n_reported_;
  std::vector<std::uint32_t> n_invalid_;
  std::vector<std::uint32_t> n_lost_;
  std::vector<std::uint32_t> n_expired_;

  // Quorum-overlay emission (emit_day_records only).
  std::vector<std::uint32_t> record_seq_;
  std::vector<DayRecord> day_records_;

  EventHeap heap_;
  Event prev_event_{};
  bool have_prev_event_ = false;
  ShardTotals totals_;
};

}  // namespace resmodel::engine

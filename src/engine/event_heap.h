// The virtual-time event heap of the service engine (src/engine/): one
// scheduled scheduler-contact per client, drained in deterministic
// virtual-time order.
//
// Same flat 4-ary layout as sim::PullHeap (one cache line of children,
// half the depth of a binary heap), but with the engine's stricter
// ordering contract: ties in virtual time break on the client index, so
// the pop sequence is a TOTAL order — independent of insertion history,
// which is what makes a shard's drain order (and therefore its day-record
// stream) a pure function of the client population. A client has at most
// one scheduled contact, so two live events can never compare equal.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace resmodel::engine {

/// One scheduled contact: the virtual day it fires and the (shard-local)
/// index of the client making it.
struct Event {
  double day = 0.0;
  std::uint32_t client = 0;
};

/// Strict total order of the event protocol: earlier virtual time first,
/// lower client index on ties.
inline bool fires_before(const Event& a, const Event& b) noexcept {
  return a.day < b.day || (a.day == b.day && a.client < b.client);
}

/// Flat 4-ary min-heap of Events under fires_before.
class EventHeap {
 public:
  EventHeap() = default;

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  void reserve(std::size_t n) { events_.reserve(n); }
  void clear() noexcept { events_.clear(); }

  /// The next event to fire. Call only while !empty().
  const Event& min() const noexcept { return events_.front(); }

  /// The live events in heap (NOT fire) order. The pop sequence is a
  /// total order over the contents, so a heap rebuilt via build() from
  /// these events — in any order — drains identically; this is what lets
  /// a checkpoint store one membership bit per client instead of the
  /// heap's internal layout.
  std::span<const Event> events() const noexcept { return events_; }

  void push(Event e) {
    events_.push_back(e);
    sift_up(events_.size() - 1);
  }

  Event pop_min() noexcept {
    const Event top = events_.front();
    events_.front() = events_.back();
    events_.pop_back();
    if (!events_.empty()) sift_down(0);
    return top;
  }

  /// pop_min + push fused into one sift-down from the root — the common
  /// drain step (the popped client re-enters with its next contact).
  void replace_min(Event e) noexcept {
    events_.front() = e;
    sift_down(0);
  }

  /// Replaces the contents with `events` and heapifies (Floyd, O(n)) —
  /// how a shard seeds the heap with its clients' birth contacts.
  void build(std::vector<Event> events) noexcept {
    events_ = std::move(events);
    if (events_.size() < 2) return;
    for (std::size_t i = (events_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }

 private:
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) noexcept {
    const Event e = events_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!fires_before(e, events_[parent])) break;
      events_[i] = events_[parent];
      i = parent;
    }
    events_[i] = e;
  }

  void sift_down(std::size_t i) noexcept {
    const Event e = events_[i];
    const std::size_t n = events_.size();
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + kArity, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (fires_before(events_[c], events_[best])) best = c;
      }
      if (!fires_before(events_[best], e)) break;
      events_[i] = events_[best];
      i = best;
    }
    events_[i] = e;
  }

  std::vector<Event> events_;
};

}  // namespace resmodel::engine

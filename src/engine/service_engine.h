// The sharded, event-driven virtual-time service engine: the scale path
// of the BOINC-style measurement substrate (boinc/).
//
// run_service_engine partitions the client population into contiguous
// shards (engine/client_shard.h), drains their virtual-time event heaps
// on a worker pool, and folds the shards' columns back into one result
// in global client order. Per-host server state is independent across
// hosts, so the outcome is bit-identical to the single-queue oracle
// boinc::run_collection and invariant in the shard and thread counts —
// the equivalence the engine tests pin down.
//
// Two population modes:
//  - arrival mode (default): the full §IV arrival process via
//    boinc::build_arrivals — the oracle-comparable configuration;
//  - cohort mode (cohort_clients > 0): a fixed-size cohort synthesized
//    at one hardware date, all born on day 0 and alive for
//    cohort_horizon_days — the O(clients)-controlled scale/bench shape
//    ("N clients x D virtual days").
//
// With replication enabled the engine adds the quorum overlay
// (engine/quorum.h): shards drain one virtual day at a time and the
// coordinator replays every shard's day records at the barrier. The
// replication deadline then overrides the server's report deadline, so
// expiries land exactly when the quorum policy says replicas die.
//
// Checkpointing (engine/checkpoint.h) rides the same day barriers: with
// a checkpoint path set the engine day-steps too, atomically publishing
// the complete resumable state every checkpoint_every_days, and a
// resume_path reconstructs the shards (and coordinator) from the
// snapshot and continues the drain bit-identically to a run that was
// never interrupted.
#pragma once

#include <cstdint>
#include <vector>

#include <string>

#include "boinc/simulation.h"
#include "engine/client_shard.h"
#include "engine/quorum.h"
#include "sim/fault_model.h"
#include "store/fault_injection.h"
#include "trace/trace_store.h"

namespace resmodel::engine {

struct EngineConfig {
  /// Client/server templates, fault mix, and (arrival mode) the
  /// population window — shared verbatim with the oracle.
  boinc::CollectionConfig collection;

  /// > 0 switches to cohort mode: this many clients, hardware drawn from
  /// collection.population's model at its sim_end date, all created on
  /// day 0 with death day cohort_horizon_days.
  std::uint64_t cohort_clients = 0;
  double cohort_horizon_days = 0.0;

  /// Contiguous client partitions drained independently. Results are
  /// invariant in this (and in threads); it only sets the parallel grain.
  std::uint32_t shards = 1;
  /// Worker threads; <= 0 uses the hardware concurrency.
  int threads = 1;
  /// Contacts per conservation recount inside a shard.
  std::uint32_t batch_size = 4096;

  /// k-of-n quorum overlay; disabled => the barrier-free fast path.
  sim::ReplicationConfig replication;

  /// Record per-client closing accounts in EngineResult::per_client
  /// (O(clients) memory — meant for tests, not the 1M bench).
  bool record_per_client = false;

  // --- Checkpoint/resume (engine/checkpoint.h). ---

  /// Non-empty enables epoch snapshots: the complete engine state is
  /// written here (atomically) every checkpoint_every_days virtual days,
  /// at the day barrier. Forces the day-stepped drain.
  std::string checkpoint_path;
  std::uint32_t checkpoint_every_days = 1;

  /// Non-empty resumes a run from a checkpoint instead of building a
  /// population: cohort/arrival/replication config comes from the
  /// checkpoint's run header (the corresponding fields here are
  /// ignored). Throws StoreError if the checkpoint is damaged.
  std::string resume_path;

  /// >= 0: stop cleanly after this virtual day's barrier (a forced
  /// checkpoint is written first when checkpoint_path is set) and return
  /// with EngineResult::halted — the deterministic stand-in for a
  /// mid-run kill in tests and the CI kill-and-resume leg.
  std::int32_t stop_after_day = -1;

  /// Fault injected into the checkpoint_fault_epoch'th checkpoint write
  /// (1-based) via store::FaultyFileSystem — the write throws a typed
  /// StoreError and the run dies, with the previously published
  /// checkpoint guaranteed untouched. kNone = no injection.
  store::FaultPlan checkpoint_fault;
  std::uint64_t checkpoint_fault_epoch = 1;

  /// Throws std::invalid_argument on shards/batch_size of 0, a cohort
  /// without a positive horizon, an invalid replication config,
  /// checkpoint_every_days of 0, or a checkpoint fault without a
  /// checkpoint path.
  void validate() const;
};

struct EngineResult {
  /// The server's public dump, in global client order (the oracle's dump
  /// iterates a hash map — compare sorted by host id).
  trace::TraceStore trace;
  std::size_t hosts_created = 0;

  std::uint64_t total_contacts = 0;
  std::uint64_t total_units_granted = 0;
  std::uint64_t total_units_reported = 0;
  double total_credit_granted = 0.0;
  std::uint64_t total_units_lost = 0;
  std::uint64_t total_units_expired = 0;
  std::uint64_t total_invalid_result_units = 0;
  /// Units still queued server-side when the window closed.
  std::uint64_t units_in_flight = 0;

  std::uint64_t batches_drained = 0;

  /// Quorum overlay outcome; all-zero when replication is disabled.
  QuorumOutcome quorum;

  /// Checkpoints published by this process (resume epochs excluded).
  std::uint64_t checkpoints_written = 0;
  /// True when the run stopped at EngineConfig::stop_after_day — the
  /// counters above are the partial books of the simulated prefix.
  bool halted = false;
  /// First virtual day simulated after a resume; -1 for a fresh run.
  std::int32_t resumed_from_day = -1;

  /// Wall time of the drain phase (population build excluded) and the
  /// scheduler-request throughput it implies.
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;

  /// Per-client closing accounts in global client order
  /// (EngineConfig::record_per_client only).
  std::vector<ClientAccount> per_client;

  /// granted == reported + invalid + lost + expired + in-flight.
  bool conserves_units() const noexcept {
    return units_unaccounted() == 0;
  }
  /// Absolute conservation gap, 0 when the books balance — exported as a
  /// zero-gated bench counter.
  std::uint64_t units_unaccounted() const noexcept {
    const std::uint64_t accounted = total_units_reported +
                                    total_invalid_result_units +
                                    total_units_lost + total_units_expired +
                                    units_in_flight;
    return total_units_granted > accounted ? total_units_granted - accounted
                                           : accounted - total_units_granted;
  }
};

/// Runs the engine end to end: build population, shard, drain, fold.
/// Deterministic for a fixed config; bit-identical across shard and
/// thread counts. Throws std::invalid_argument on bad config and
/// std::logic_error if a drain invariant is violated.
EngineResult run_service_engine(const EngineConfig& config);

}  // namespace resmodel::engine

#include "engine/service_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/host_generator.h"
#include "engine/checkpoint.h"
#include "synth/population.h"

namespace resmodel::engine {

namespace {

int resolve_workers(int threads, std::size_t jobs) {
  int n = threads > 0 ? threads
                      : static_cast<int>(std::thread::hardware_concurrency());
  if (n < 1) n = 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(n), std::max<std::size_t>(jobs, 1)));
}

/// Runs fn(job) over jobs [0, count) on a pool of `threads` workers
/// (calling thread included). Any worker exception is rethrown on the
/// calling thread after the pool joins.
template <typename Fn>
void parallel_for(std::size_t count, int threads, Fn&& fn) {
  if (count == 0) return;
  const int n_workers = resolve_workers(threads, count);
  if (n_workers == 1) {
    for (std::size_t job = 0; job < count; ++job) fn(job);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(n_workers));
  const auto worker = [&](int w) noexcept {
    try {
      for (std::size_t job; (job = next.fetch_add(1)) < count;) fn(job);
    } catch (...) {
      errors[static_cast<std::size_t>(w)] = std::current_exception();
      // Starve the remaining workers so the pool winds down promptly.
      next.store(count);
    }
  };
  {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(n_workers - 1));
    for (int w = 1; w < n_workers; ++w) pool.emplace_back(worker, w);
    worker(0);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

/// Cohort mode: a fixed-size population at one hardware date, every
/// client born on day 0 and alive through the horizon. The master stream
/// forks once per client IN CLIENT ORDER before any per-client work, so
/// the (parallel) wrap-up below is thread-count invariant.
std::vector<boinc::ArrivedClient> build_cohort(const EngineConfig& config) {
  config.collection.fault_mix.validate();
  config.collection.client.validate();
  const synth::PopulationConfig& pop = config.collection.population;
  const std::uint64_t n = config.cohort_clients;

  util::Rng master(pop.seed ^ 0xd1b54a32d192ed03ULL);
  const core::HostGenerator generator(pop.model);
  const util::ModelDate hw_date = pop.sim_end;
  const std::uint64_t hw_seed = master.next();
  const core::GeneratedHostBatch hw = generator.generate_batch_parallel(
      hw_date, n, hw_seed, config.threads);

  std::vector<util::Rng> forks;
  forks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) forks.push_back(master.fork());

  const std::int32_t death_day =
      static_cast<std::int32_t>(std::floor(config.cohort_horizon_days));
  std::vector<boinc::ArrivedClient> clients(n);
  constexpr std::uint64_t kChunk = 4096;
  const std::uint64_t chunks = (n + kChunk - 1) / kChunk;
  parallel_for(chunks, config.threads, [&](std::size_t chunk) {
    const std::uint64_t begin = chunk * kChunk;
    const std::uint64_t end = std::min(begin + kChunk, n);
    for (std::uint64_t i = begin; i < end; ++i) {
      util::Rng rng = forks[i];
      boinc::ArrivedClient& client = clients[i];
      client.spec = synth::finish_host(pop, hw.host(i), hw_date, i + 1, rng);
      client.spec.created_day = 0;
      client.spec.last_contact_day = death_day;
      if (config.collection.fault_mix.any()) {
        util::Rng fault_rng = rng.fork();
        const sim::FaultDraw draw =
            sim::sample_fault(config.collection.fault_mix, fault_rng);
        client.fault = draw.type;
        client.straggler_slowdown = draw.slowdown;
      }
      client.rng = rng.fork();
    }
  });
  return clients;
}

}  // namespace

void EngineConfig::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("EngineConfig: shards must be >= 1");
  }
  if (batch_size == 0) {
    throw std::invalid_argument("EngineConfig: batch_size must be >= 1");
  }
  if (cohort_clients > 0 && !(cohort_horizon_days > 0.0)) {
    throw std::invalid_argument(
        "EngineConfig: cohort mode needs cohort_horizon_days > 0");
  }
  if (replication.enabled) replication.validate();
  if (checkpoint_every_days == 0) {
    throw std::invalid_argument(
        "EngineConfig: checkpoint_every_days must be >= 1");
  }
  if (checkpoint_fault.kind != store::FaultPlan::Kind::kNone &&
      checkpoint_path.empty()) {
    throw std::invalid_argument(
        "EngineConfig: checkpoint_fault needs a checkpoint_path");
  }
  if (checkpoint_fault.kind != store::FaultPlan::Kind::kNone &&
      checkpoint_fault_epoch == 0) {
    throw std::invalid_argument(
        "EngineConfig: checkpoint_fault_epoch is 1-based");
  }
}

EngineResult run_service_engine(const EngineConfig& config) {
  config.validate();

  EngineResult result;
  const bool resuming = !config.resume_path.empty();
  const bool checkpointing = !config.checkpoint_path.empty();

  // Shared run state, built fresh or restored from the checkpoint.
  CheckpointMeta meta;
  std::vector<ClientShard> shards;
  std::unique_ptr<QuorumCoordinator> coordinator;

  if (resuming) {
    // The checkpoint's run header carries the whole behavioural config;
    // population-shape fields of `config` are ignored by contract (the
    // CLI rejects the conflicting flags outright).
    CheckpointState state = load_checkpoint(config.resume_path);
    meta = state.meta;
    shards = std::move(state.shards);
    coordinator = std::move(state.coordinator);
    result.resumed_from_day = meta.resume_day;
  } else {
    const bool cohort = config.cohort_clients > 0;
    const std::vector<boinc::ArrivedClient> population =
        cohort ? build_cohort(config)
               : boinc::build_arrivals(config.collection);
    const double limit_day =
        cohort ? config.cohort_horizon_days
               : static_cast<double>(
                     config.collection.population.sim_end.day_index());

    meta.params.client = config.collection.client;
    meta.params.server = config.collection.server;
    meta.params.limit_day = limit_day;
    meta.params.batch_size = config.batch_size;
    meta.params.emit_day_records = config.replication.enabled;
    if (config.replication.enabled && config.replication.has_deadline()) {
      meta.params.server.report_deadline_days =
          config.replication.deadline_days;
    }
    meta.replication = config.replication;
    meta.first_day =
        cohort ? 0 : config.collection.population.sim_start.day_index();
    meta.resume_day = meta.first_day;
    meta.clients_total = population.size();
    meta.display_shards = config.shards;
    meta.cohort_clients = config.cohort_clients;
    meta.cohort_horizon_days = config.cohort_horizon_days;
    meta.seed = config.collection.population.seed;

    const std::size_t n = population.size();
    const std::size_t n_shards =
        std::min<std::size_t>(config.shards, std::max<std::size_t>(n, 1));
    meta.n_shards = static_cast<std::uint32_t>(n_shards);
    shards.reserve(n_shards);
    const std::span<const boinc::ArrivedClient> all(population);
    for (std::size_t s = 0; s < n_shards; ++s) {
      const std::size_t begin = s * n / n_shards;
      const std::size_t end = (s + 1) * n / n_shards;
      shards.emplace_back(meta.params, all.subspan(begin, end - begin),
                          static_cast<std::uint32_t>(begin));
    }
    if (config.replication.enabled) {
      coordinator =
          std::make_unique<QuorumCoordinator>(config.replication, n);
    }
  }

  const std::size_t n = meta.clients_total;
  result.hosts_created = n;

  // The day-stepped loop is bit-identical to the barrier-free fast path
  // (only the batch flush cadence differs, and batches_drained is
  // outside the determinism contract); the fast path is kept for runs
  // that need none of the barrier features.
  const bool day_stepped = meta.replication.enabled || checkpointing ||
                           config.stop_after_day >= 0;

  const auto t0 = std::chrono::steady_clock::now();
  if (!day_stepped) {
    // Fast path: no cross-shard coupling, each shard drains its whole
    // horizon independently.
    parallel_for(shards.size(), config.threads, [&](std::size_t s) {
      shards[s].drain(std::numeric_limits<double>::infinity());
    });
  } else {
    const std::int32_t last_day =
        static_cast<std::int32_t>(std::floor(meta.params.limit_day));
    std::uint64_t epoch = 0;  // checkpoint writes attempted this process
    for (std::int32_t day = meta.resume_day; day <= last_day; ++day) {
      parallel_for(shards.size(), config.threads, [&](std::size_t s) {
        shards[s].drain(static_cast<double>(day) + 1.0);
      });
      if (coordinator) {
        // Day barrier: replay the merged day records through the quorum
        // coordinator. Also what makes a checkpoint here consistent —
        // the shards carry no pending records and the coordinator has
        // absorbed everything up to `day`.
        std::vector<DayRecord> records;
        for (ClientShard& shard : shards) {
          std::vector<DayRecord> taken = shard.take_day_records();
          records.insert(records.end(), taken.begin(), taken.end());
        }
        if (!records.empty()) coordinator->apply_day(std::move(records));
      }
      const bool stop_here =
          config.stop_after_day >= 0 && day >= config.stop_after_day;
      // Cadence counts from the run's first day, not the resume day, so
      // an interrupted run and its resumed half publish checkpoints at
      // the same virtual days.
      const bool cadence_hit =
          (day - meta.first_day + 1) %
              static_cast<std::int32_t>(config.checkpoint_every_days) ==
          0;
      // A cadence checkpoint on the final day would be dead weight (the
      // run finishes immediately after), but a stop-triggered one is
      // always written — it is the state the "killed" run resumes from.
      if (checkpointing && (stop_here || (cadence_hit && day < last_day))) {
        ++epoch;
        meta.resume_day = day + 1;
        store::FileSystem* fs = nullptr;
        std::optional<store::FaultyFileSystem> faulty;
        if (config.checkpoint_fault.kind != store::FaultPlan::Kind::kNone &&
            epoch == config.checkpoint_fault_epoch) {
          faulty.emplace(store::FileSystem::real(), config.checkpoint_fault);
          fs = &*faulty;
        }
        write_checkpoint(config.checkpoint_path, meta, shards,
                         coordinator.get(), fs);
        ++result.checkpoints_written;
      }
      if (stop_here) {
        result.halted = true;
        break;
      }
    }
    if (!result.halted) {
      // Discard events scheduled past the window so every heap is empty.
      parallel_for(shards.size(), config.threads, [&](std::size_t s) {
        shards[s].drain(std::numeric_limits<double>::infinity());
      });
      if (coordinator) result.quorum = coordinator->finish();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Fold in shard order == global client order (shards are contiguous).
  for (const ClientShard& shard : shards) {
    const ShardTotals& t = shard.totals();
    result.total_contacts += t.contacts;
    result.total_units_granted += t.units_granted;
    result.total_units_reported += t.units_reported;
    result.total_credit_granted += t.credit_granted;
    result.total_units_lost += t.units_lost;
    result.total_units_expired += t.units_expired;
    result.total_invalid_result_units += t.units_invalid;
    result.batches_drained += t.batches_drained;
    result.units_in_flight += shard.queued_units();
  }

  result.trace.reserve(n);
  for (const ClientShard& shard : shards) {
    shard.append_trace(result.trace);
  }

  if (config.record_per_client) {
    result.per_client.reserve(n);
    for (const ClientShard& shard : shards) {
      for (std::size_t i = 0; i < shard.size(); ++i) {
        result.per_client.push_back(shard.account(i));
      }
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  result.requests_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.total_contacts) / result.wall_seconds
          : 0.0;
  return result;
}

}  // namespace resmodel::engine

// Crash-safe checkpoint/resume of a service-engine run.
//
// A checkpoint is an engine_state.v1 snapshot (store/adapters.h): one
// self-framed byte blob per snapshot shard —
//
//   snapshot shard 0                the run header (CheckpointMeta)
//   snapshot shards 1..S            the S ClientShards' complete state
//   snapshot shard S+1 (quorum)     the QuorumCoordinator, when the run
//                                   has the replication overlay
//
// — written shard-at-a-time through store::SnapshotWriter, which
// publishes via AtomicFileWriter: until finish() commits, the previous
// checkpoint at `path` is byte-for-byte untouched, so an injected (or
// real) ENOSPC / EIO / crash during a checkpoint write can never damage
// the last published one.
//
// Checkpoints are only taken at day barriers (see src/engine/README.md
// for why that makes the captured state consistent, replication
// included). The headline contract, proven by tests/engine/
// checkpoint_test.cpp: a run checkpointed at day d, killed, and resumed
// produces bit-identical final counters, trace records and per-client
// accounts to an uninterrupted run.
//
// load_checkpoint refuses damaged files: it verifies every block's
// CRC32C first and throws a typed StoreError itemizing exactly which
// shards were lost — a corrupted checkpoint can abort a resume, never
// silently diverge it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/client_shard.h"
#include "engine/quorum.h"
#include "store/io.h"

namespace resmodel::engine {

/// The run header: everything a resume needs beyond the shard blobs.
/// `params`/`replication` reconstruct behaviour, `resume_day` is the
/// first virtual day the resumed run simulates, and the display_* /
/// cohort_* / seed fields carry provenance for `resmodel serve --resume`
/// output (so a resumed run prints the same deterministic block as an
/// uninterrupted one).
struct CheckpointMeta {
  ShardParams params;
  sim::ReplicationConfig replication;
  std::uint64_t clients_total = 0;
  std::uint32_t n_shards = 0;   ///< actual ClientShard count
  std::int32_t first_day = 0;   ///< first day of the whole run
  std::int32_t resume_day = 0;  ///< next day to simulate

  std::uint32_t display_shards = 1;  ///< the configured --shards value
  std::uint64_t cohort_clients = 0;
  double cohort_horizon_days = 0.0;
  std::uint64_t seed = 0;
};

/// A fully reconstructed run, ready to continue the drain.
struct CheckpointState {
  CheckpointMeta meta;
  std::vector<ClientShard> shards;
  /// Non-null iff meta.replication.enabled.
  std::unique_ptr<QuorumCoordinator> coordinator;
};

/// Serializes the run into `path` (atomically: <path>.tmp + rename).
/// `coordinator` must be non-null iff meta.replication.enabled.
/// `fs` substitutes the filesystem (store fault injection); nullptr uses
/// the real one. Throws StoreError on any I/O failure — with the
/// previous file at `path` untouched.
void write_checkpoint(const std::string& path, const CheckpointMeta& meta,
                      std::span<const ClientShard> shards,
                      const QuorumCoordinator* coordinator,
                      store::FileSystem* fs = nullptr);

/// Reads only the run header (cheap: one shard). Used by the CLI to
/// print the resumed run's provenance line.
CheckpointMeta read_checkpoint_meta(const std::string& path);

/// Verifies every block, then reconstructs the shards and coordinator.
/// Throws StoreError: kSchemaMismatch for a wrong kind/format,
/// kFooterCorrupt / kBlockCorrupt with an itemized lost-shard list for a
/// damaged file ("refusing resume; lost: engine shard 3, ...").
CheckpointState load_checkpoint(const std::string& path);

}  // namespace resmodel::engine

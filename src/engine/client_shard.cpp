#include "engine/client_shard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "boinc/messages.h"
#include "engine/state_codec.h"
#include "stats/distributions.h"

namespace resmodel::engine {

ClientShard::ClientShard(const ShardParams& params,
                         std::span<const boinc::ArrivedClient> clients,
                         std::uint32_t global_base)
    : params_(params), global_base_(global_base) {
  params_.client.validate();
  if (params_.client.model_availability) {
    params_.client.availability.validate();
  }

  const std::size_t n = clients.size();
  if (n > 0xffffffffULL) {
    throw std::invalid_argument("ClientShard: shard exceeds 2^32 clients");
  }
  id_.reserve(n);
  created_day_.reserve(n);
  death_day_.reserve(n);
  n_cores_.reserve(n);
  memory_mb_.reserve(n);
  spec_dhrystone_.reserve(n);
  spec_whetstone_.reserve(n);
  disk_total_.reserve(n);
  cpu_.reserve(n);
  os_.reserve(n);
  gpu_.reserve(n);
  gpu_memory_mb_.reserve(n);
  fault_.reserve(n);
  slowdown_.reserve(n);
  rng_.reserve(n);
  next_contact_.reserve(n);
  last_done_.reserve(n);
  on_end_.reserve(n);
  disk_cur_.reserve(n);
  session_dhrystone_.assign(n, 0.0);
  session_whetstone_.assign(n, 0.0);
  client_queued_.assign(n, 0);
  session_died_.assign(n, 0);
  contacted_.assign(n, 0);
  rec_first_day_.assign(n, 0);
  rec_last_day_.assign(n, 0);
  meas_dhrystone_.assign(n, 0.0);
  meas_whetstone_.assign(n, 0.0);
  meas_disk_.assign(n, 0.0);
  server_queued_.assign(n, 0);
  credit_.assign(n, 0.0);
  grants_.resize(n);
  n_contacts_.assign(n, 0);
  n_granted_.assign(n, 0);
  n_reported_.assign(n, 0);
  n_invalid_.assign(n, 0);
  n_lost_.assign(n, 0);
  n_expired_.assign(n, 0);
  if (params_.emit_day_records) record_seq_.assign(n, 0);

  for (const boinc::ArrivedClient& c : clients) {
    if (!(c.straggler_slowdown >= 1.0)) {
      throw std::invalid_argument("ClientShard: straggler slowdown < 1");
    }
    id_.push_back(c.spec.id);
    created_day_.push_back(c.spec.created_day);
    death_day_.push_back(static_cast<double>(c.spec.last_contact_day));
    n_cores_.push_back(c.spec.n_cores);
    memory_mb_.push_back(c.spec.memory_mb);
    spec_dhrystone_.push_back(c.spec.dhrystone_mips);
    spec_whetstone_.push_back(c.spec.whetstone_mips);
    disk_total_.push_back(c.spec.disk_total_gb);
    cpu_.push_back(c.spec.cpu);
    os_.push_back(c.spec.os);
    gpu_.push_back(c.spec.gpu);
    gpu_memory_mb_.push_back(c.spec.gpu_memory_mb);
    fault_.push_back(c.fault);
    slowdown_.push_back(c.straggler_slowdown);
    rng_.push_back(c.rng);
    next_contact_.push_back(static_cast<double>(c.spec.created_day));
    last_done_.push_back(static_cast<double>(c.spec.created_day));
    on_end_.push_back(static_cast<double>(c.spec.created_day));
    disk_cur_.push_back(c.spec.disk_avail_gb);
  }

  // Replay the VirtualClient constructor's draws: the first ON interval,
  // then the birth session's benchmark pair.
  if (params_.client.model_availability) {
    const stats::WeibullDist on_dist(
        params_.client.availability.on_weibull_k,
        params_.client.availability.on_weibull_lambda);
    for (std::uint32_t i = 0; i < n; ++i) {
      on_end_[i] =
          next_contact_[i] + std::max(1e-6, on_dist.sample(rng_[i]));
      draw_session_benchmarks(i);
    }
  }

  std::vector<Event> births;
  births.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    births.push_back({next_contact_[i], i});
  }
  heap_.build(std::move(births));
}

void ClientShard::serialize_state(std::vector<std::byte>& out) const {
  if (!day_records_.empty()) {
    throw std::logic_error(
        "ClientShard: serialize_state with untaken day records — "
        "checkpoints must land on a day barrier after take_day_records()");
  }
  const std::uint64_t n = size();
  StateWriter w(out);
  w.put_u32(global_base_);
  w.put_u64(n);

  w.put_vector(id_);
  w.put_vector(created_day_);
  w.put_vector(death_day_);
  w.put_vector(n_cores_);
  w.put_vector(memory_mb_);
  w.put_vector(spec_dhrystone_);
  w.put_vector(spec_whetstone_);
  w.put_vector(disk_total_);
  w.put_vector(cpu_);
  w.put_vector(os_);
  w.put_vector(gpu_);
  w.put_vector(gpu_memory_mb_);
  w.put_vector(fault_);
  w.put_vector(slowdown_);

  // Rng streams: six words per client (util::Rng::State), flattened.
  // A raw memcpy of the Rng objects would drag padding bytes along;
  // the explicit State keeps the layout a documented format.
  std::vector<std::uint64_t> rng_words;
  rng_words.reserve(n * 6);
  for (const util::Rng& rng : rng_) {
    const util::Rng::State st = rng.save();
    rng_words.push_back(st.s[0]);
    rng_words.push_back(st.s[1]);
    rng_words.push_back(st.s[2]);
    rng_words.push_back(st.s[3]);
    rng_words.push_back(st.cached_normal_bits);
    rng_words.push_back(st.has_cached_normal);
  }
  w.put_vector(rng_words);

  w.put_vector(next_contact_);
  w.put_vector(last_done_);
  w.put_vector(on_end_);
  w.put_vector(disk_cur_);
  w.put_vector(session_dhrystone_);
  w.put_vector(session_whetstone_);
  w.put_vector(client_queued_);
  w.put_vector(session_died_);

  w.put_vector(contacted_);
  w.put_vector(rec_first_day_);
  w.put_vector(rec_last_day_);
  w.put_vector(meas_dhrystone_);
  w.put_vector(meas_whetstone_);
  w.put_vector(meas_disk_);
  w.put_vector(server_queued_);
  w.put_vector(credit_);

  // Grant FIFOs, live entries only, columnar: per-client counts then the
  // concatenated (expiry, units) streams. Head-cursor compaction state is
  // deliberately NOT captured — it never affects what the FIFO yields.
  std::vector<std::uint32_t> grant_counts;
  std::vector<double> grant_expiry;
  std::vector<std::uint32_t> grant_units;
  grant_counts.reserve(n);
  for (const GrantFifo& fifo : grants_) {
    grant_counts.push_back(
        static_cast<std::uint32_t>(fifo.entries.size() - fifo.head));
    for (std::size_t e = fifo.head; e < fifo.entries.size(); ++e) {
      grant_expiry.push_back(fifo.entries[e].first);
      grant_units.push_back(fifo.entries[e].second);
    }
  }
  w.put_vector(grant_counts);
  w.put_vector(grant_expiry);
  w.put_vector(grant_units);

  w.put_vector(n_contacts_);
  w.put_vector(n_granted_);
  w.put_vector(n_reported_);
  w.put_vector(n_invalid_);
  w.put_vector(n_lost_);
  w.put_vector(n_expired_);
  w.put_vector(record_seq_);

  // Heap membership, one bit per client. Every live event's day equals
  // its client's next_contact_, and pop order is a total order over the
  // contents, so build() from the flagged clients reproduces the exact
  // drain sequence.
  std::vector<std::uint8_t> in_heap(n, 0);
  for (const Event& ev : heap_.events()) in_heap[ev.client] = 1;
  w.put_vector(in_heap);

  w.put_f64(prev_event_.day);
  w.put_u32(prev_event_.client);
  w.put_u8(have_prev_event_ ? 1 : 0);

  w.put_u64(totals_.contacts);
  w.put_u64(totals_.units_granted);
  w.put_u64(totals_.units_reported);
  w.put_u64(totals_.units_invalid);
  w.put_u64(totals_.units_lost);
  w.put_u64(totals_.units_expired);
  w.put_f64(totals_.credit_granted);
  w.put_u64(totals_.batches_drained);
}

ClientShard::ClientShard(const ShardParams& params,
                         std::span<const std::byte> state)
    : params_(params) {
  params_.client.validate();
  if (params_.client.model_availability) {
    params_.client.availability.validate();
  }

  StateReader r(state);
  global_base_ = r.get_u32();
  const std::uint64_t n = r.get_u64();
  if (n > 0xffffffffULL) {
    throw std::runtime_error("ClientShard state blob: shard exceeds 2^32");
  }
  const auto exact = [n]<typename T>(std::vector<T> v, const char* what) {
    if (v.size() != n) {
      throw std::runtime_error(std::string("ClientShard state blob: '") +
                               what + "' has " + std::to_string(v.size()) +
                               " rows, expected " + std::to_string(n));
    }
    return v;
  };

  id_ = exact(r.get_vector<std::uint64_t>(n), "id");
  created_day_ = exact(r.get_vector<std::int32_t>(n), "created_day");
  death_day_ = exact(r.get_vector<double>(n), "death_day");
  n_cores_ = exact(r.get_vector<std::int32_t>(n), "n_cores");
  memory_mb_ = exact(r.get_vector<double>(n), "memory_mb");
  spec_dhrystone_ = exact(r.get_vector<double>(n), "spec_dhrystone");
  spec_whetstone_ = exact(r.get_vector<double>(n), "spec_whetstone");
  disk_total_ = exact(r.get_vector<double>(n), "disk_total");
  cpu_ = exact(r.get_vector<trace::CpuFamily>(n), "cpu");
  os_ = exact(r.get_vector<trace::OsFamily>(n), "os");
  gpu_ = exact(r.get_vector<trace::GpuType>(n), "gpu");
  gpu_memory_mb_ = exact(r.get_vector<double>(n), "gpu_memory_mb");
  fault_ = exact(r.get_vector<sim::FaultType>(n), "fault");
  slowdown_ = exact(r.get_vector<double>(n), "slowdown");

  const std::vector<std::uint64_t> rng_words =
      r.get_vector<std::uint64_t>(n * 6);
  if (rng_words.size() != n * 6) {
    throw std::runtime_error("ClientShard state blob: rng column has " +
                             std::to_string(rng_words.size()) +
                             " words, expected " + std::to_string(n * 6));
  }
  rng_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    util::Rng::State st;
    st.s = {rng_words[i * 6 + 0], rng_words[i * 6 + 1], rng_words[i * 6 + 2],
            rng_words[i * 6 + 3]};
    st.cached_normal_bits = rng_words[i * 6 + 4];
    st.has_cached_normal = rng_words[i * 6 + 5];
    util::Rng rng;
    rng.restore(st);
    rng_.push_back(rng);
  }

  next_contact_ = exact(r.get_vector<double>(n), "next_contact");
  last_done_ = exact(r.get_vector<double>(n), "last_done");
  on_end_ = exact(r.get_vector<double>(n), "on_end");
  disk_cur_ = exact(r.get_vector<double>(n), "disk_cur");
  session_dhrystone_ = exact(r.get_vector<double>(n), "session_dhrystone");
  session_whetstone_ = exact(r.get_vector<double>(n), "session_whetstone");
  client_queued_ = exact(r.get_vector<std::uint32_t>(n), "client_queued");
  session_died_ = exact(r.get_vector<std::uint8_t>(n), "session_died");

  contacted_ = exact(r.get_vector<std::uint8_t>(n), "contacted");
  rec_first_day_ = exact(r.get_vector<std::int32_t>(n), "rec_first_day");
  rec_last_day_ = exact(r.get_vector<std::int32_t>(n), "rec_last_day");
  meas_dhrystone_ = exact(r.get_vector<double>(n), "meas_dhrystone");
  meas_whetstone_ = exact(r.get_vector<double>(n), "meas_whetstone");
  meas_disk_ = exact(r.get_vector<double>(n), "meas_disk");
  server_queued_ = exact(r.get_vector<std::uint32_t>(n), "server_queued");
  credit_ = exact(r.get_vector<double>(n), "credit");

  const std::vector<std::uint32_t> grant_counts =
      exact(r.get_vector<std::uint32_t>(n), "grant_counts");
  std::uint64_t total_grants = 0;
  for (const std::uint32_t c : grant_counts) total_grants += c;
  const std::vector<double> grant_expiry =
      r.get_vector<double>(total_grants);
  const std::vector<std::uint32_t> grant_units =
      r.get_vector<std::uint32_t>(total_grants);
  if (grant_expiry.size() != total_grants ||
      grant_units.size() != total_grants) {
    throw std::runtime_error(
        "ClientShard state blob: grant streams disagree with counts");
  }
  grants_.resize(n);
  std::uint64_t cursor = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    GrantFifo& fifo = grants_[i];
    fifo.entries.reserve(grant_counts[i]);
    for (std::uint32_t e = 0; e < grant_counts[i]; ++e, ++cursor) {
      fifo.entries.emplace_back(grant_expiry[cursor], grant_units[cursor]);
    }
  }

  n_contacts_ = exact(r.get_vector<std::uint32_t>(n), "n_contacts");
  n_granted_ = exact(r.get_vector<std::uint32_t>(n), "n_granted");
  n_reported_ = exact(r.get_vector<std::uint32_t>(n), "n_reported");
  n_invalid_ = exact(r.get_vector<std::uint32_t>(n), "n_invalid");
  n_lost_ = exact(r.get_vector<std::uint32_t>(n), "n_lost");
  n_expired_ = exact(r.get_vector<std::uint32_t>(n), "n_expired");
  record_seq_ = r.get_vector<std::uint32_t>(n);
  if (params_.emit_day_records && record_seq_.size() != n) {
    throw std::runtime_error(
        "ClientShard state blob: record_seq missing for a quorum run");
  }

  const std::vector<std::uint8_t> in_heap =
      exact(r.get_vector<std::uint8_t>(n), "in_heap");
  std::vector<Event> live;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (in_heap[i]) live.push_back({next_contact_[i], i});
  }
  heap_.build(std::move(live));

  prev_event_.day = r.get_f64();
  prev_event_.client = r.get_u32();
  have_prev_event_ = r.get_u8() != 0;

  totals_.contacts = r.get_u64();
  totals_.units_granted = r.get_u64();
  totals_.units_reported = r.get_u64();
  totals_.units_invalid = r.get_u64();
  totals_.units_lost = r.get_u64();
  totals_.units_expired = r.get_u64();
  totals_.credit_granted = r.get_f64();
  totals_.batches_drained = r.get_u64();
  r.expect_end();

  // The blob predates any damage the store could detect, but a cheap
  // consistency recount catches format drift before a drain would
  // silently diverge.
  check_conservation();
}

void ClientShard::draw_session_benchmarks(std::uint32_t i) {
  session_dhrystone_[i] =
      spec_dhrystone_[i] *
      std::exp(rng_[i].normal(0.0, params_.client.benchmark_jitter_sigma));
  session_whetstone_[i] =
      spec_whetstone_[i] *
      std::exp(rng_[i].normal(0.0, params_.client.benchmark_jitter_sigma));
}

std::uint32_t ClientShard::consume_grants(std::uint32_t i,
                                          std::uint32_t units) {
  const std::uint32_t consumed = std::min(units, server_queued_[i]);
  server_queued_[i] -= consumed;
  GrantFifo& fifo = grants_[i];
  std::uint32_t left = consumed;
  while (left > 0 && !fifo.empty()) {
    std::uint32_t& granted = fifo.front().second;
    const std::uint32_t take = std::min(left, granted);
    granted -= take;
    left -= take;
    if (granted == 0) fifo.pop_front();
  }
  return consumed;
}

void ClientShard::contact_step(std::uint32_t i, double t) {
  const boinc::ClientConfig& cc = params_.client;
  const boinc::ServerConfig& sc = params_.server;
  util::Rng& rng = rng_[i];
  const std::int32_t day = static_cast<std::int32_t>(std::floor(t));

  // --- Client side: VirtualClient::make_request. ---
  std::uint32_t lost_units = 0;
  if (fault_[i] == sim::FaultType::kCrash && session_died_[i]) {
    lost_units = client_queued_[i];
    client_queued_[i] = 0;
  }
  session_died_[i] = 0;

  double m_dhrystone, m_whetstone;
  if (cc.model_availability) {
    m_dhrystone = session_dhrystone_[i];
    m_whetstone = session_whetstone_[i];
  } else {
    m_dhrystone = spec_dhrystone_[i] *
                  std::exp(rng.normal(0.0, cc.benchmark_jitter_sigma));
    m_whetstone = spec_whetstone_[i] *
                  std::exp(rng.normal(0.0, cc.benchmark_jitter_sigma));
  }
  disk_cur_[i] *= std::exp(rng.normal(0.0, cc.disk_drift_sigma));
  disk_cur_[i] = std::clamp(disk_cur_[i], 0.01, disk_total_[i]);

  const double elapsed_days = t - last_done_[i];
  double client_units_per_day = n_cores_[i] * spec_whetstone_[i] / 4000.0;
  if (fault_[i] == sim::FaultType::kStraggler) {
    client_units_per_day /= slowdown_[i];
  }
  const auto doable = static_cast<std::uint32_t>(
      std::clamp(elapsed_days * client_units_per_day, 0.0, 1e6));
  const std::uint32_t completed = std::min(doable, client_queued_[i]);
  client_queued_[i] -= completed;

  bool result_valid = true;
  if (completed > 0) {
    const std::uint64_t payload = boinc::result_payload(id_[i], completed);
    const std::uint64_t digest = fault_[i] == sim::FaultType::kCorrupter
                                     ? sim::corrupted_digest(payload, id_[i])
                                     : sim::canonical_digest(payload);
    result_valid = digest == sim::canonical_digest(payload);
  }

  last_done_[i] = t;
  next_contact_[i] = t + rng.exponential(1.0 / cc.mean_contact_interval_days);
  if (cc.model_availability) {
    // VirtualClient::defer_to_available.
    const stats::WeibullDist on_dist(cc.availability.on_weibull_k,
                                     cc.availability.on_weibull_lambda);
    const stats::LogNormalDist off_dist(cc.availability.off_lognormal_mu,
                                        cc.availability.off_lognormal_sigma);
    bool crossed = false;
    while (next_contact_[i] > on_end_[i]) {
      session_died_[i] = 1;
      crossed = true;
      const double off_len = std::max(1e-6, off_dist.sample(rng));
      const double on_start = on_end_[i] + off_len;
      const double on_len = std::max(1e-6, on_dist.sample(rng));
      if (next_contact_[i] < on_start) next_contact_[i] = on_start;
      on_end_[i] = on_start + on_len;
    }
    if (crossed) draw_session_benchmarks(i);
  }

  // --- Server side: ProjectServer::handle_request. ---
  ++totals_.contacts;
  ++n_contacts_[i];
  if (!contacted_[i]) {
    contacted_[i] = 1;
    rec_first_day_[i] = day;
    rec_last_day_[i] = day;
  } else {
    rec_last_day_[i] = std::max(rec_last_day_[i], day);
  }
  meas_dhrystone_[i] = m_dhrystone;
  meas_whetstone_[i] = m_whetstone;
  meas_disk_[i] = disk_cur_[i];

  const std::uint32_t credited = consume_grants(i, completed);
  if (result_valid) {
    const double granted_credit = credited * sc.credit_per_unit;
    credit_[i] += granted_credit;
    totals_.credit_granted += granted_credit;
    totals_.units_reported += credited;
    n_reported_[i] += credited;
  } else {
    totals_.units_invalid += credited;
    n_invalid_[i] += credited;
  }

  const std::uint32_t written_off = consume_grants(i, lost_units);
  totals_.units_lost += written_off;
  n_lost_[i] += written_off;

  std::uint32_t expired = 0;
  GrantFifo& fifo = grants_[i];
  while (!fifo.empty() && fifo.front().first < day) {
    const std::uint32_t units = fifo.front().second;
    expired += units;
    server_queued_[i] -= std::min(server_queued_[i], units);
    fifo.pop_front();
  }
  totals_.units_expired += expired;
  n_expired_[i] += expired;

  const double server_units_per_day =
      n_cores_[i] * m_whetstone / sc.work_unit_cost_mips_days;
  const double requested_days = cc.work_request_seconds / 86400.0;
  const auto wanted = static_cast<std::uint32_t>(
      std::clamp(server_units_per_day * requested_days, 0.0, 1e6));
  const std::uint32_t room = sc.max_queued_units > server_queued_[i]
                                 ? sc.max_queued_units - server_queued_[i]
                                 : 0;
  const std::uint32_t granted = std::min(wanted, room);
  server_queued_[i] += granted;
  totals_.units_granted += granted;
  n_granted_[i] += granted;
  if (granted > 0) {
    const double expiry = sc.report_deadline_days > 0.0
                              ? day + sc.report_deadline_days
                              : std::numeric_limits<double>::infinity();
    fifo.entries.emplace_back(expiry, granted);
  }

  // --- Reply lands: VirtualClient::handle_reply. ---
  client_queued_[i] += granted;

  if (params_.emit_day_records) {
    const std::uint32_t client = global_base_ + i;
    std::uint32_t& seq = record_seq_[i];
    if (credited > 0) {
      day_records_.push_back(
          {client, seq++, credited, DayRecordKind::kReport, result_valid});
    }
    if (written_off > 0) {
      day_records_.push_back(
          {client, seq++, written_off, DayRecordKind::kLoss, false});
    }
    if (expired > 0) {
      day_records_.push_back(
          {client, seq++, expired, DayRecordKind::kExpiry, false});
    }
    if (granted > 0) {
      day_records_.push_back(
          {client, seq++, granted, DayRecordKind::kGrant, false});
    }
  }
}

void ClientShard::drain(double day_end) {
  std::uint32_t in_batch = 0;
  while (!heap_.empty() && heap_.min().day < day_end) {
    const Event ev = heap_.min();
    if (have_prev_event_ && !fires_before(prev_event_, ev)) {
      throw std::logic_error(
          "ClientShard: event order regressed — the heap popped an event "
          "at or before the previous (day, client)");
    }
    prev_event_ = ev;
    have_prev_event_ = true;

    // The oracle's liveness check: events past the window or the client's
    // death day are dropped, and a dead client is never rescheduled.
    if (ev.day <= params_.limit_day && ev.day <= death_day_[ev.client]) {
      contact_step(ev.client, ev.day);
      if (next_contact_[ev.client] <= death_day_[ev.client]) {
        heap_.replace_min({next_contact_[ev.client], ev.client});
      } else {
        heap_.pop_min();
      }
      if (++in_batch == params_.batch_size) {
        check_conservation();
        ++totals_.batches_drained;
        in_batch = 0;
      }
    } else {
      heap_.pop_min();
    }
  }
  if (in_batch > 0) {
    check_conservation();
    ++totals_.batches_drained;
  }
}

std::uint64_t ClientShard::queued_units() const noexcept {
  std::uint64_t queued = 0;
  for (const std::uint32_t q : server_queued_) queued += q;
  return queued;
}

void ClientShard::check_conservation() const {
  const std::uint64_t accounted = totals_.units_reported +
                                  totals_.units_invalid + totals_.units_lost +
                                  totals_.units_expired + queued_units();
  if (totals_.units_granted != accounted) {
    throw std::logic_error(
        "ClientShard: unit conservation violated — granted units do not "
        "equal reported + invalid + lost + expired + queued");
  }
}

std::vector<DayRecord> ClientShard::take_day_records() {
  std::vector<DayRecord> out = std::move(day_records_);
  day_records_.clear();
  return out;
}

void ClientShard::append_trace(trace::TraceStore& store) const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (!contacted_[i]) continue;
    trace::HostRecord rec;
    rec.id = id_[i];
    rec.created_day = rec_first_day_[i];
    rec.last_contact_day = rec_last_day_[i];
    rec.n_cores = n_cores_[i];
    rec.memory_mb = memory_mb_[i];
    rec.dhrystone_mips = meas_dhrystone_[i];
    rec.whetstone_mips = meas_whetstone_[i];
    rec.disk_avail_gb = meas_disk_[i];
    rec.disk_total_gb = disk_total_[i];
    rec.cpu = cpu_[i];
    rec.os = os_[i];
    rec.gpu = gpu_[i];
    rec.gpu_memory_mb = gpu_memory_mb_[i];
    store.add(rec);
  }
}

ClientAccount ClientShard::account(std::size_t i) const {
  ClientAccount acc;
  acc.id = id_.at(i);
  acc.contacts = n_contacts_[i];
  acc.units_granted = n_granted_[i];
  acc.units_reported = n_reported_[i];
  acc.units_invalid = n_invalid_[i];
  acc.units_lost = n_lost_[i];
  acc.units_expired = n_expired_[i];
  acc.units_in_flight = server_queued_[i];
  acc.credit = credit_[i];
  return acc;
}

}  // namespace resmodel::engine

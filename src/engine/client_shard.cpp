#include "engine/client_shard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "boinc/messages.h"
#include "stats/distributions.h"

namespace resmodel::engine {

ClientShard::ClientShard(const ShardParams& params,
                         std::span<const boinc::ArrivedClient> clients,
                         std::uint32_t global_base)
    : params_(params), global_base_(global_base) {
  params_.client.validate();
  if (params_.client.model_availability) {
    params_.client.availability.validate();
  }

  const std::size_t n = clients.size();
  if (n > 0xffffffffULL) {
    throw std::invalid_argument("ClientShard: shard exceeds 2^32 clients");
  }
  id_.reserve(n);
  created_day_.reserve(n);
  death_day_.reserve(n);
  n_cores_.reserve(n);
  memory_mb_.reserve(n);
  spec_dhrystone_.reserve(n);
  spec_whetstone_.reserve(n);
  disk_total_.reserve(n);
  cpu_.reserve(n);
  os_.reserve(n);
  gpu_.reserve(n);
  gpu_memory_mb_.reserve(n);
  fault_.reserve(n);
  slowdown_.reserve(n);
  rng_.reserve(n);
  next_contact_.reserve(n);
  last_done_.reserve(n);
  on_end_.reserve(n);
  disk_cur_.reserve(n);
  session_dhrystone_.assign(n, 0.0);
  session_whetstone_.assign(n, 0.0);
  client_queued_.assign(n, 0);
  session_died_.assign(n, 0);
  contacted_.assign(n, 0);
  rec_first_day_.assign(n, 0);
  rec_last_day_.assign(n, 0);
  meas_dhrystone_.assign(n, 0.0);
  meas_whetstone_.assign(n, 0.0);
  meas_disk_.assign(n, 0.0);
  server_queued_.assign(n, 0);
  credit_.assign(n, 0.0);
  grants_.resize(n);
  n_contacts_.assign(n, 0);
  n_granted_.assign(n, 0);
  n_reported_.assign(n, 0);
  n_invalid_.assign(n, 0);
  n_lost_.assign(n, 0);
  n_expired_.assign(n, 0);
  if (params_.emit_day_records) record_seq_.assign(n, 0);

  for (const boinc::ArrivedClient& c : clients) {
    if (!(c.straggler_slowdown >= 1.0)) {
      throw std::invalid_argument("ClientShard: straggler slowdown < 1");
    }
    id_.push_back(c.spec.id);
    created_day_.push_back(c.spec.created_day);
    death_day_.push_back(static_cast<double>(c.spec.last_contact_day));
    n_cores_.push_back(c.spec.n_cores);
    memory_mb_.push_back(c.spec.memory_mb);
    spec_dhrystone_.push_back(c.spec.dhrystone_mips);
    spec_whetstone_.push_back(c.spec.whetstone_mips);
    disk_total_.push_back(c.spec.disk_total_gb);
    cpu_.push_back(c.spec.cpu);
    os_.push_back(c.spec.os);
    gpu_.push_back(c.spec.gpu);
    gpu_memory_mb_.push_back(c.spec.gpu_memory_mb);
    fault_.push_back(c.fault);
    slowdown_.push_back(c.straggler_slowdown);
    rng_.push_back(c.rng);
    next_contact_.push_back(static_cast<double>(c.spec.created_day));
    last_done_.push_back(static_cast<double>(c.spec.created_day));
    on_end_.push_back(static_cast<double>(c.spec.created_day));
    disk_cur_.push_back(c.spec.disk_avail_gb);
  }

  // Replay the VirtualClient constructor's draws: the first ON interval,
  // then the birth session's benchmark pair.
  if (params_.client.model_availability) {
    const stats::WeibullDist on_dist(
        params_.client.availability.on_weibull_k,
        params_.client.availability.on_weibull_lambda);
    for (std::uint32_t i = 0; i < n; ++i) {
      on_end_[i] =
          next_contact_[i] + std::max(1e-6, on_dist.sample(rng_[i]));
      draw_session_benchmarks(i);
    }
  }

  std::vector<Event> births;
  births.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    births.push_back({next_contact_[i], i});
  }
  heap_.build(std::move(births));
}

void ClientShard::draw_session_benchmarks(std::uint32_t i) {
  session_dhrystone_[i] =
      spec_dhrystone_[i] *
      std::exp(rng_[i].normal(0.0, params_.client.benchmark_jitter_sigma));
  session_whetstone_[i] =
      spec_whetstone_[i] *
      std::exp(rng_[i].normal(0.0, params_.client.benchmark_jitter_sigma));
}

std::uint32_t ClientShard::consume_grants(std::uint32_t i,
                                          std::uint32_t units) {
  const std::uint32_t consumed = std::min(units, server_queued_[i]);
  server_queued_[i] -= consumed;
  GrantFifo& fifo = grants_[i];
  std::uint32_t left = consumed;
  while (left > 0 && !fifo.empty()) {
    std::uint32_t& granted = fifo.front().second;
    const std::uint32_t take = std::min(left, granted);
    granted -= take;
    left -= take;
    if (granted == 0) fifo.pop_front();
  }
  return consumed;
}

void ClientShard::contact_step(std::uint32_t i, double t) {
  const boinc::ClientConfig& cc = params_.client;
  const boinc::ServerConfig& sc = params_.server;
  util::Rng& rng = rng_[i];
  const std::int32_t day = static_cast<std::int32_t>(std::floor(t));

  // --- Client side: VirtualClient::make_request. ---
  std::uint32_t lost_units = 0;
  if (fault_[i] == sim::FaultType::kCrash && session_died_[i]) {
    lost_units = client_queued_[i];
    client_queued_[i] = 0;
  }
  session_died_[i] = 0;

  double m_dhrystone, m_whetstone;
  if (cc.model_availability) {
    m_dhrystone = session_dhrystone_[i];
    m_whetstone = session_whetstone_[i];
  } else {
    m_dhrystone = spec_dhrystone_[i] *
                  std::exp(rng.normal(0.0, cc.benchmark_jitter_sigma));
    m_whetstone = spec_whetstone_[i] *
                  std::exp(rng.normal(0.0, cc.benchmark_jitter_sigma));
  }
  disk_cur_[i] *= std::exp(rng.normal(0.0, cc.disk_drift_sigma));
  disk_cur_[i] = std::clamp(disk_cur_[i], 0.01, disk_total_[i]);

  const double elapsed_days = t - last_done_[i];
  double client_units_per_day = n_cores_[i] * spec_whetstone_[i] / 4000.0;
  if (fault_[i] == sim::FaultType::kStraggler) {
    client_units_per_day /= slowdown_[i];
  }
  const auto doable = static_cast<std::uint32_t>(
      std::clamp(elapsed_days * client_units_per_day, 0.0, 1e6));
  const std::uint32_t completed = std::min(doable, client_queued_[i]);
  client_queued_[i] -= completed;

  bool result_valid = true;
  if (completed > 0) {
    const std::uint64_t payload = boinc::result_payload(id_[i], completed);
    const std::uint64_t digest = fault_[i] == sim::FaultType::kCorrupter
                                     ? sim::corrupted_digest(payload, id_[i])
                                     : sim::canonical_digest(payload);
    result_valid = digest == sim::canonical_digest(payload);
  }

  last_done_[i] = t;
  next_contact_[i] = t + rng.exponential(1.0 / cc.mean_contact_interval_days);
  if (cc.model_availability) {
    // VirtualClient::defer_to_available.
    const stats::WeibullDist on_dist(cc.availability.on_weibull_k,
                                     cc.availability.on_weibull_lambda);
    const stats::LogNormalDist off_dist(cc.availability.off_lognormal_mu,
                                        cc.availability.off_lognormal_sigma);
    bool crossed = false;
    while (next_contact_[i] > on_end_[i]) {
      session_died_[i] = 1;
      crossed = true;
      const double off_len = std::max(1e-6, off_dist.sample(rng));
      const double on_start = on_end_[i] + off_len;
      const double on_len = std::max(1e-6, on_dist.sample(rng));
      if (next_contact_[i] < on_start) next_contact_[i] = on_start;
      on_end_[i] = on_start + on_len;
    }
    if (crossed) draw_session_benchmarks(i);
  }

  // --- Server side: ProjectServer::handle_request. ---
  ++totals_.contacts;
  ++n_contacts_[i];
  if (!contacted_[i]) {
    contacted_[i] = 1;
    rec_first_day_[i] = day;
    rec_last_day_[i] = day;
  } else {
    rec_last_day_[i] = std::max(rec_last_day_[i], day);
  }
  meas_dhrystone_[i] = m_dhrystone;
  meas_whetstone_[i] = m_whetstone;
  meas_disk_[i] = disk_cur_[i];

  const std::uint32_t credited = consume_grants(i, completed);
  if (result_valid) {
    const double granted_credit = credited * sc.credit_per_unit;
    credit_[i] += granted_credit;
    totals_.credit_granted += granted_credit;
    totals_.units_reported += credited;
    n_reported_[i] += credited;
  } else {
    totals_.units_invalid += credited;
    n_invalid_[i] += credited;
  }

  const std::uint32_t written_off = consume_grants(i, lost_units);
  totals_.units_lost += written_off;
  n_lost_[i] += written_off;

  std::uint32_t expired = 0;
  GrantFifo& fifo = grants_[i];
  while (!fifo.empty() && fifo.front().first < day) {
    const std::uint32_t units = fifo.front().second;
    expired += units;
    server_queued_[i] -= std::min(server_queued_[i], units);
    fifo.pop_front();
  }
  totals_.units_expired += expired;
  n_expired_[i] += expired;

  const double server_units_per_day =
      n_cores_[i] * m_whetstone / sc.work_unit_cost_mips_days;
  const double requested_days = cc.work_request_seconds / 86400.0;
  const auto wanted = static_cast<std::uint32_t>(
      std::clamp(server_units_per_day * requested_days, 0.0, 1e6));
  const std::uint32_t room = sc.max_queued_units > server_queued_[i]
                                 ? sc.max_queued_units - server_queued_[i]
                                 : 0;
  const std::uint32_t granted = std::min(wanted, room);
  server_queued_[i] += granted;
  totals_.units_granted += granted;
  n_granted_[i] += granted;
  if (granted > 0) {
    const double expiry = sc.report_deadline_days > 0.0
                              ? day + sc.report_deadline_days
                              : std::numeric_limits<double>::infinity();
    fifo.entries.emplace_back(expiry, granted);
  }

  // --- Reply lands: VirtualClient::handle_reply. ---
  client_queued_[i] += granted;

  if (params_.emit_day_records) {
    const std::uint32_t client = global_base_ + i;
    std::uint32_t& seq = record_seq_[i];
    if (credited > 0) {
      day_records_.push_back(
          {client, seq++, credited, DayRecordKind::kReport, result_valid});
    }
    if (written_off > 0) {
      day_records_.push_back(
          {client, seq++, written_off, DayRecordKind::kLoss, false});
    }
    if (expired > 0) {
      day_records_.push_back(
          {client, seq++, expired, DayRecordKind::kExpiry, false});
    }
    if (granted > 0) {
      day_records_.push_back(
          {client, seq++, granted, DayRecordKind::kGrant, false});
    }
  }
}

void ClientShard::drain(double day_end) {
  std::uint32_t in_batch = 0;
  while (!heap_.empty() && heap_.min().day < day_end) {
    const Event ev = heap_.min();
    if (have_prev_event_ && !fires_before(prev_event_, ev)) {
      throw std::logic_error(
          "ClientShard: event order regressed — the heap popped an event "
          "at or before the previous (day, client)");
    }
    prev_event_ = ev;
    have_prev_event_ = true;

    // The oracle's liveness check: events past the window or the client's
    // death day are dropped, and a dead client is never rescheduled.
    if (ev.day <= params_.limit_day && ev.day <= death_day_[ev.client]) {
      contact_step(ev.client, ev.day);
      if (next_contact_[ev.client] <= death_day_[ev.client]) {
        heap_.replace_min({next_contact_[ev.client], ev.client});
      } else {
        heap_.pop_min();
      }
      if (++in_batch == params_.batch_size) {
        check_conservation();
        ++totals_.batches_drained;
        in_batch = 0;
      }
    } else {
      heap_.pop_min();
    }
  }
  if (in_batch > 0) {
    check_conservation();
    ++totals_.batches_drained;
  }
}

std::uint64_t ClientShard::queued_units() const noexcept {
  std::uint64_t queued = 0;
  for (const std::uint32_t q : server_queued_) queued += q;
  return queued;
}

void ClientShard::check_conservation() const {
  const std::uint64_t accounted = totals_.units_reported +
                                  totals_.units_invalid + totals_.units_lost +
                                  totals_.units_expired + queued_units();
  if (totals_.units_granted != accounted) {
    throw std::logic_error(
        "ClientShard: unit conservation violated — granted units do not "
        "equal reported + invalid + lost + expired + queued");
  }
}

std::vector<DayRecord> ClientShard::take_day_records() {
  std::vector<DayRecord> out = std::move(day_records_);
  day_records_.clear();
  return out;
}

void ClientShard::append_trace(trace::TraceStore& store) const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (!contacted_[i]) continue;
    trace::HostRecord rec;
    rec.id = id_[i];
    rec.created_day = rec_first_day_[i];
    rec.last_contact_day = rec_last_day_[i];
    rec.n_cores = n_cores_[i];
    rec.memory_mb = memory_mb_[i];
    rec.dhrystone_mips = meas_dhrystone_[i];
    rec.whetstone_mips = meas_whetstone_[i];
    rec.disk_avail_gb = meas_disk_[i];
    rec.disk_total_gb = disk_total_[i];
    rec.cpu = cpu_[i];
    rec.os = os_[i];
    rec.gpu = gpu_[i];
    rec.gpu_memory_mb = gpu_memory_mb_[i];
    store.add(rec);
  }
}

ClientAccount ClientShard::account(std::size_t i) const {
  ClientAccount acc;
  acc.id = id_.at(i);
  acc.contacts = n_contacts_[i];
  acc.units_granted = n_granted_[i];
  acc.units_reported = n_reported_[i];
  acc.units_invalid = n_invalid_[i];
  acc.units_lost = n_lost_[i];
  acc.units_expired = n_expired_[i];
  acc.units_in_flight = server_queued_[i];
  acc.credit = credit_[i];
  return acc;
}

}  // namespace resmodel::engine

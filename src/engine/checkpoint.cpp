#include "engine/checkpoint.h"

#include <array>
#include <stdexcept>
#include <utility>

#include "engine/state_codec.h"
#include "store/adapters.h"
#include "store/snapshot.h"

namespace resmodel::engine {

namespace {

// Run-header blob framing ("ENGC", version 1). The store frames and
// CRCs the blob; this magic/version pair only guards against feeding a
// future engine's header to this loader.
constexpr std::uint32_t kHeaderMagic = 0x43474E45u;  // "ENGC"
constexpr std::uint32_t kHeaderVersion = 1;

void serialize_meta(std::vector<std::byte>& out, const CheckpointMeta& meta) {
  StateWriter w(out);
  w.put_u32(kHeaderMagic);
  w.put_u32(kHeaderVersion);

  const boinc::ClientConfig& cc = meta.params.client;
  w.put_f64(cc.mean_contact_interval_days);
  w.put_f64(cc.benchmark_jitter_sigma);
  w.put_f64(cc.disk_drift_sigma);
  w.put_f64(cc.work_request_seconds);
  w.put_u8(cc.model_availability ? 1 : 0);
  w.put_f64(cc.availability.on_weibull_k);
  w.put_f64(cc.availability.on_weibull_lambda);
  w.put_f64(cc.availability.off_lognormal_mu);
  w.put_f64(cc.availability.off_lognormal_sigma);
  w.put_u8(static_cast<std::uint8_t>(cc.fault));
  w.put_f64(cc.straggler_slowdown);

  const boinc::ServerConfig& sc = meta.params.server;
  w.put_f64(sc.work_unit_cost_mips_days);
  w.put_u32(sc.max_queued_units);
  w.put_f64(sc.credit_per_unit);
  w.put_f64(sc.contact_interval_days);
  w.put_f64(sc.report_deadline_days);

  w.put_f64(meta.params.limit_day);
  w.put_u32(meta.params.batch_size);
  w.put_u8(meta.params.emit_day_records ? 1 : 0);

  const sim::ReplicationConfig& rep = meta.replication;
  w.put_u8(rep.enabled ? 1 : 0);
  w.put_u32(rep.replicas);
  w.put_u32(rep.quorum);
  w.put_f64(rep.deadline_days);
  w.put_f64(rep.backoff);
  w.put_u32(rep.max_retries);

  w.put_u64(meta.clients_total);
  w.put_u32(meta.n_shards);
  w.put_i32(meta.first_day);
  w.put_i32(meta.resume_day);
  w.put_u32(meta.display_shards);
  w.put_u64(meta.cohort_clients);
  w.put_f64(meta.cohort_horizon_days);
  w.put_u64(meta.seed);
}

CheckpointMeta parse_meta(std::span<const std::byte> blob) {
  StateReader r(blob);
  const std::uint32_t magic = r.get_u32();
  if (magic != kHeaderMagic) {
    throw std::runtime_error("run header magic mismatch");
  }
  const std::uint32_t version = r.get_u32();
  if (version != kHeaderVersion) {
    throw std::runtime_error("run header version " + std::to_string(version) +
                             ", this build reads version " +
                             std::to_string(kHeaderVersion));
  }

  CheckpointMeta meta;
  boinc::ClientConfig& cc = meta.params.client;
  cc.mean_contact_interval_days = r.get_f64();
  cc.benchmark_jitter_sigma = r.get_f64();
  cc.disk_drift_sigma = r.get_f64();
  cc.work_request_seconds = r.get_f64();
  cc.model_availability = r.get_u8() != 0;
  cc.availability.on_weibull_k = r.get_f64();
  cc.availability.on_weibull_lambda = r.get_f64();
  cc.availability.off_lognormal_mu = r.get_f64();
  cc.availability.off_lognormal_sigma = r.get_f64();
  cc.fault = static_cast<sim::FaultType>(r.get_u8());
  cc.straggler_slowdown = r.get_f64();

  boinc::ServerConfig& sc = meta.params.server;
  sc.work_unit_cost_mips_days = r.get_f64();
  sc.max_queued_units = r.get_u32();
  sc.credit_per_unit = r.get_f64();
  sc.contact_interval_days = r.get_f64();
  sc.report_deadline_days = r.get_f64();

  meta.params.limit_day = r.get_f64();
  meta.params.batch_size = r.get_u32();
  meta.params.emit_day_records = r.get_u8() != 0;

  sim::ReplicationConfig& rep = meta.replication;
  rep.enabled = r.get_u8() != 0;
  rep.replicas = r.get_u32();
  rep.quorum = r.get_u32();
  rep.deadline_days = r.get_f64();
  rep.backoff = r.get_f64();
  rep.max_retries = r.get_u32();

  meta.clients_total = r.get_u64();
  meta.n_shards = r.get_u32();
  meta.first_day = r.get_i32();
  meta.resume_day = r.get_i32();
  meta.display_shards = r.get_u32();
  meta.cohort_clients = r.get_u64();
  meta.cohort_horizon_days = r.get_f64();
  meta.seed = r.get_u64();
  r.expect_end();
  return meta;
}

void require_engine_kind(const store::SnapshotReader& reader,
                         const std::string& path) {
  if (reader.kind() != store::kEngineStateKind) {
    throw store::StoreError(store::StoreErrc::kSchemaMismatch, path,
                            "snapshot kind '" + reader.kind() +
                                "', expected '" + store::kEngineStateKind +
                                "' — not an engine checkpoint");
  }
}

/// Extracts the single shard_state blob of one snapshot shard.
std::vector<std::byte> shard_blob(store::SnapshotReader& reader,
                                  std::uint64_t shard,
                                  const std::string& path) {
  store::Snapshot snap = reader.read_shard(shard);
  if (snap.columns.size() != 1) {
    throw store::StoreError(store::StoreErrc::kSchemaMismatch, path,
                            "engine checkpoint shard " +
                                std::to_string(shard) + " carries " +
                                std::to_string(snap.columns.size()) +
                                " columns, expected 1");
  }
  return std::move(snap.columns[0].data);
}

/// Names a snapshot shard for the lost-shard itemization. `n_shards` is
/// the ClientShard count when the run header survived, 0 when unknown.
std::string shard_name(std::uint64_t shard, std::uint32_t n_shards,
                       bool replication) {
  if (shard == 0) return "run header";
  if (n_shards > 0 && replication && shard == 1ull + n_shards) {
    return "quorum state";
  }
  return "engine shard " + std::to_string(shard - 1);
}

}  // namespace

void write_checkpoint(const std::string& path, const CheckpointMeta& meta,
                      std::span<const ClientShard> shards,
                      const QuorumCoordinator* coordinator,
                      store::FileSystem* fs) {
  if (meta.replication.enabled != (coordinator != nullptr)) {
    throw std::logic_error(
        "write_checkpoint: coordinator must be present exactly when "
        "replication is enabled");
  }
  if (shards.size() != meta.n_shards) {
    throw std::logic_error("write_checkpoint: meta.n_shards disagrees with "
                           "the shard span");
  }

  store::WriterOptions opts;
  opts.fs = fs;
  store::SnapshotWriter writer(path, store::kEngineStateKind,
                               store::engine_state_schema(), opts);
  std::vector<std::byte> blob;
  const auto append = [&writer, &blob] {
    const std::array<std::span<const std::byte>, 1> cols{
        std::span<const std::byte>(blob)};
    writer.append_shard(cols, blob.size());
    blob.clear();
  };

  serialize_meta(blob, meta);
  append();
  for (const ClientShard& shard : shards) {
    shard.serialize_state(blob);
    append();
  }
  if (coordinator) {
    coordinator->serialize_state(blob);
    append();
  }
  writer.finish({{"engine.clients", std::to_string(meta.clients_total)},
                 {"engine.shards", std::to_string(meta.n_shards)},
                 {"engine.resume_day", std::to_string(meta.resume_day)}});
}

CheckpointMeta read_checkpoint_meta(const std::string& path) {
  store::SnapshotReader reader(path);
  require_engine_kind(reader, path);
  try {
    return parse_meta(shard_blob(reader, 0, path));
  } catch (const store::StoreError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw store::StoreError(store::StoreErrc::kSchemaMismatch, path,
                            e.what());
  }
}

CheckpointState load_checkpoint(const std::string& path) {
  store::SnapshotReader reader(path);
  require_engine_kind(reader, path);

  // Refusal pass: CRC-walk every block before reconstructing anything.
  // A resume either starts from a bit-perfect checkpoint or not at all.
  const store::SnapshotReader::VerifyResult vr = reader.verify();
  if (!vr.report.footer_intact) {
    throw store::StoreError(
        store::StoreErrc::kFooterCorrupt, path,
        "checkpoint footer damaged — refusing resume (" +
            std::to_string(vr.report.blocks_loaded) + "/" +
            std::to_string(vr.report.blocks_expected) +
            " blocks recoverable by forward scan)");
  }
  if (!vr.report.complete) {
    // Name the lost shards. The run header tells us which snapshot shard
    // is the quorum state — when the header itself survived.
    std::uint32_t n_shards = 0;
    bool replication = false;
    bool header_lost = false;
    for (const store::LostBlock& lost : vr.report.lost) {
      if (lost.shard == 0) header_lost = true;
    }
    if (!header_lost) {
      try {
        const CheckpointMeta meta = parse_meta(shard_blob(reader, 0, path));
        n_shards = meta.n_shards;
        replication = meta.replication.enabled;
      } catch (...) {
        // Itemize generically; the damage report is what matters.
      }
    }
    std::string lost_names;
    for (const store::LostBlock& lost : vr.report.lost) {
      if (!lost_names.empty()) lost_names += ", ";
      lost_names += shard_name(lost.shard, n_shards, replication) + " (" +
                    std::to_string(lost.rows) + " bytes)";
    }
    throw store::StoreError(
        store::StoreErrc::kBlockCorrupt, path,
        "checkpoint damaged — refusing resume; lost " +
            std::to_string(vr.report.lost.size()) + " of " +
            std::to_string(vr.report.blocks_expected) + " blocks: " +
            lost_names);
  }

  try {
    CheckpointState state;
    state.meta = parse_meta(shard_blob(reader, 0, path));
    const CheckpointMeta& meta = state.meta;

    const std::uint64_t expected_shards =
        1ull + meta.n_shards + (meta.replication.enabled ? 1 : 0);
    if (reader.shard_count() != expected_shards) {
      throw std::runtime_error(
          "checkpoint has " + std::to_string(reader.shard_count()) +
          " snapshot shards, run header implies " +
          std::to_string(expected_shards));
    }

    state.shards.reserve(meta.n_shards);
    std::uint64_t restored_clients = 0;
    for (std::uint32_t s = 0; s < meta.n_shards; ++s) {
      const std::vector<std::byte> blob = shard_blob(reader, 1ull + s, path);
      state.shards.emplace_back(meta.params,
                                std::span<const std::byte>(blob));
      restored_clients += state.shards.back().size();
    }
    if (restored_clients != meta.clients_total) {
      throw std::runtime_error(
          "restored shards hold " + std::to_string(restored_clients) +
          " clients, run header says " + std::to_string(meta.clients_total));
    }
    if (meta.replication.enabled) {
      const std::vector<std::byte> blob =
          shard_blob(reader, 1ull + meta.n_shards, path);
      state.coordinator = std::make_unique<QuorumCoordinator>(
          meta.replication, meta.clients_total,
          std::span<const std::byte>(blob));
    }
    return state;
  } catch (const store::StoreError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw store::StoreError(store::StoreErrc::kSchemaMismatch, path,
                            e.what());
  }
}

}  // namespace resmodel::engine

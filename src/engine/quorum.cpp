#include "engine/quorum.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "engine/state_codec.h"

namespace resmodel::engine {

QuorumCoordinator::QuorumCoordinator(const sim::ReplicationConfig& config,
                                     std::size_t clients)
    : config_(config), fifos_(clients) {
  config_.validate();
}

QuorumCoordinator::QuorumCoordinator(const sim::ReplicationConfig& config,
                                     std::size_t clients,
                                     std::span<const std::byte> state)
    : config_(config) {
  config_.validate();

  StateReader r(state);
  const std::uint64_t tasks = r.get_u64();
  const auto exact = [&]<typename T>(std::uint64_t n, const char* what) {
    std::vector<T> v = r.get_vector<T>(n);
    if (v.size() != n) {
      throw std::runtime_error(std::string("QuorumCoordinator state blob: '") +
                               what + "' has " + std::to_string(v.size()) +
                               " rows, expected " + std::to_string(n));
    }
    return v;
  };
  assigned_ = exact.template operator()<std::uint8_t>(tasks, "assigned");
  accounted_ = exact.template operator()<std::uint8_t>(tasks, "accounted");
  returned_ = exact.template operator()<std::uint8_t>(tasks, "returned");
  correct_count_ =
      exact.template operator()<std::uint8_t>(tasks, "correct_count");
  state_ = exact.template operator()<TaskState>(tasks, "state");
  correct_hosts_ = exact.template operator()<std::uint32_t>(
      tasks * config_.replicas, "correct_hosts");

  const std::uint64_t n_clients = r.get_u64();
  if (n_clients != clients) {
    throw std::runtime_error("QuorumCoordinator state blob: " +
                             std::to_string(n_clients) +
                             " clients, run header says " +
                             std::to_string(clients));
  }
  const std::vector<std::uint32_t> fifo_counts =
      exact.template operator()<std::uint32_t>(n_clients, "fifo_counts");
  std::uint64_t total_units = 0;
  for (const std::uint32_t c : fifo_counts) total_units += c;
  const std::vector<std::uint32_t> fifo_tasks =
      exact.template operator()<std::uint32_t>(total_units, "fifo_tasks");
  fifos_.resize(clients);
  std::uint64_t cursor = 0;
  for (std::uint64_t i = 0; i < n_clients; ++i) {
    UnitFifo& fifo = fifos_[i];
    fifo.tasks.assign(fifo_tasks.begin() + static_cast<std::ptrdiff_t>(cursor),
                      fifo_tasks.begin() +
                          static_cast<std::ptrdiff_t>(cursor + fifo_counts[i]));
    cursor += fifo_counts[i];
  }

  outcome_.tasks_issued = r.get_u64();
  outcome_.tasks_validated = r.get_u64();
  outcome_.tasks_invalid = r.get_u64();
  outcome_.tasks_missed_deadline = r.get_u64();
  outcome_.tasks_pending = r.get_u64();
  outcome_.replicas_issued = r.get_u64();
  outcome_.replicas_correct = r.get_u64();
  outcome_.replicas_corrupt = r.get_u64();
  outcome_.replicas_crashed = r.get_u64();
  outcome_.replicas_missed_deadline = r.get_u64();
  outcome_.replicas_duplicate_host = r.get_u64();
  outcome_.replicas_in_flight = r.get_u64();
  r.expect_end();
}

void QuorumCoordinator::serialize_state(std::vector<std::byte>& out) const {
  StateWriter w(out);
  w.put_u64(assigned_.size());
  w.put_vector(assigned_);
  w.put_vector(accounted_);
  w.put_vector(returned_);
  w.put_vector(correct_count_);
  w.put_vector(state_);
  w.put_vector(correct_hosts_);

  // Unit FIFOs, live entries only, columnar — same shape as the server's
  // grant FIFOs in ClientShard::serialize_state.
  w.put_u64(fifos_.size());
  std::vector<std::uint32_t> fifo_counts;
  std::vector<std::uint32_t> fifo_tasks;
  fifo_counts.reserve(fifos_.size());
  for (const UnitFifo& fifo : fifos_) {
    fifo_counts.push_back(
        static_cast<std::uint32_t>(fifo.tasks.size() - fifo.head));
    fifo_tasks.insert(fifo_tasks.end(),
                      fifo.tasks.begin() +
                          static_cast<std::ptrdiff_t>(fifo.head),
                      fifo.tasks.end());
  }
  w.put_vector(fifo_counts);
  w.put_vector(fifo_tasks);

  w.put_u64(outcome_.tasks_issued);
  w.put_u64(outcome_.tasks_validated);
  w.put_u64(outcome_.tasks_invalid);
  w.put_u64(outcome_.tasks_missed_deadline);
  w.put_u64(outcome_.tasks_pending);
  w.put_u64(outcome_.replicas_issued);
  w.put_u64(outcome_.replicas_correct);
  w.put_u64(outcome_.replicas_corrupt);
  w.put_u64(outcome_.replicas_crashed);
  w.put_u64(outcome_.replicas_missed_deadline);
  w.put_u64(outcome_.replicas_duplicate_host);
  w.put_u64(outcome_.replicas_in_flight);
}

std::uint32_t QuorumCoordinator::pop_unit(std::uint32_t client) {
  UnitFifo& fifo = fifos_.at(client);
  if (fifo.head == fifo.tasks.size()) {
    throw std::logic_error(
        "QuorumCoordinator: a contact resolved more units than the client "
        "had in flight");
  }
  const std::uint32_t task = fifo.tasks[fifo.head];
  if (++fifo.head == fifo.tasks.size()) {
    fifo.tasks.clear();
    fifo.head = 0;
  } else if (fifo.head >= 64) {
    fifo.tasks.erase(fifo.tasks.begin(),
                     fifo.tasks.begin() + static_cast<std::ptrdiff_t>(fifo.head));
    fifo.head = 0;
  }
  return task;
}

void QuorumCoordinator::resolve(std::uint32_t task) {
  if (returned_[task] >= config_.quorum) {
    state_[task] = TaskState::kInvalid;
    ++outcome_.tasks_invalid;
  } else {
    state_[task] = TaskState::kMissedDeadline;
    ++outcome_.tasks_missed_deadline;
  }
}

void QuorumCoordinator::apply_day(std::vector<DayRecord> records) {
  // (client, seq) totally orders a day's records: seq preserves each
  // client's own contact order and the client index fixes the cross-client
  // order — both independent of which shard drained whom.
  std::sort(records.begin(), records.end(),
            [](const DayRecord& a, const DayRecord& b) noexcept {
              return a.client < b.client ||
                     (a.client == b.client && a.seq < b.seq);
            });

  // Pass 1: size the day's task range from its total granted units.
  std::uint64_t day_units = 0;
  for (const DayRecord& r : records) {
    if (r.kind == DayRecordKind::kGrant) day_units += r.units;
  }
  const std::uint32_t base = static_cast<std::uint32_t>(assigned_.size());
  const std::uint64_t day_tasks =
      (day_units + config_.replicas - 1) / config_.replicas;
  if (base + day_tasks > 0xffffffffULL) {
    throw std::logic_error("QuorumCoordinator: task id space exhausted");
  }
  const std::uint32_t stripe = static_cast<std::uint32_t>(day_tasks);
  const std::size_t total = assigned_.size() + day_tasks;
  assigned_.resize(total);
  accounted_.resize(total);
  returned_.resize(total);
  correct_count_.resize(total);
  state_.resize(total, TaskState::kOpen);
  correct_hosts_.resize(total * config_.replicas);
  outcome_.tasks_issued += day_tasks;

  // Pass 2: replay. Grants stripe consecutive units across the day's
  // fresh tasks; reports/losses/expiries resolve the owning client's
  // oldest in-flight units, mirroring the server's FIFO consumption.
  std::vector<std::uint32_t> touched;
  touched.reserve(records.size());
  std::uint64_t unit_cursor = 0;
  for (const DayRecord& r : records) {
    switch (r.kind) {
      case DayRecordKind::kGrant:
        for (std::uint32_t u = 0; u < r.units; ++u) {
          const std::uint32_t task =
              base + static_cast<std::uint32_t>(unit_cursor % stripe);
          ++unit_cursor;
          ++assigned_[task];
          fifos_[r.client].tasks.push_back(task);
          ++outcome_.replicas_issued;
          touched.push_back(task);
        }
        break;
      case DayRecordKind::kReport:
        for (std::uint32_t u = 0; u < r.units; ++u) {
          const std::uint32_t task = pop_unit(r.client);
          ++accounted_[task];
          ++returned_[task];
          touched.push_back(task);
          if (!r.valid) {
            ++outcome_.replicas_corrupt;
            continue;
          }
          // Duplicate-host check over the counted correct results only:
          // a corrupt result never counts toward the quorum, so it never
          // blocks the same host's later correct one.
          const std::uint32_t* slots =
              correct_hosts_.data() +
              static_cast<std::size_t>(task) * config_.replicas;
          bool duplicate = false;
          for (std::uint8_t c = 0; c < correct_count_[task]; ++c) {
            if (slots[c] == r.client) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) {
            ++outcome_.replicas_duplicate_host;
            continue;
          }
          correct_hosts_[static_cast<std::size_t>(task) * config_.replicas +
                         correct_count_[task]] = r.client;
          ++correct_count_[task];
          ++outcome_.replicas_correct;
          if (state_[task] == TaskState::kOpen &&
              correct_count_[task] >= config_.quorum) {
            state_[task] = TaskState::kValidated;
            ++outcome_.tasks_validated;
          }
        }
        break;
      case DayRecordKind::kLoss:
        for (std::uint32_t u = 0; u < r.units; ++u) {
          const std::uint32_t task = pop_unit(r.client);
          ++accounted_[task];
          ++outcome_.replicas_crashed;
          touched.push_back(task);
        }
        break;
      case DayRecordKind::kExpiry:
        for (std::uint32_t u = 0; u < r.units; ++u) {
          const std::uint32_t task = pop_unit(r.client);
          ++accounted_[task];
          ++outcome_.replicas_missed_deadline;
          touched.push_back(task);
        }
        break;
    }
  }

  // Pass 3: failure classification, deferred past the replay because a
  // later grant in the SAME day can still add replicas to a task whose
  // earlier replicas all resolved.
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::uint32_t task : touched) {
    if (state_[task] == TaskState::kOpen &&
        accounted_[task] == assigned_[task]) {
      resolve(task);
    }
  }
}

QuorumOutcome QuorumCoordinator::finish() const {
  QuorumOutcome out = outcome_;
  for (const TaskState s : state_) {
    if (s == TaskState::kOpen) ++out.tasks_pending;
  }
  out.replicas_in_flight =
      out.replicas_issued -
      (out.replicas_correct + out.replicas_corrupt + out.replicas_crashed +
       out.replicas_missed_deadline + out.replicas_duplicate_host);
  return out;
}

}  // namespace resmodel::engine

// The k-of-n quorum overlay of the service engine: a day-barrier
// accounting layer that interprets the measurement substrate's granted
// work units as replica assignments of striped tasks and validates them
// with sim::ReplicationConfig's quorum policy.
//
// Shards emit one DayRecord per non-empty side effect of a contact
// (report / loss / expiry / grant); at each day barrier the coordinator
// merges every shard's records, sorts them by (client, seq) — a total
// order independent of shard count and drain interleaving — and replays
// them against flat per-task columns. Unit u of a day's grant stream is
// striped to task `base + u % T` with `T = ceil(U / replicas)`, so each
// of the day's T fresh tasks receives at most `replicas` replicas and
// consecutive grants to one host spread across distinct tasks.
//
// A replica resolves when its unit leaves the server's per-host FIFO:
// reported-valid (correct), reported-invalid (corrupt), lost (crashed)
// or expired (missed deadline) — the same front-first order the server
// consumes grants in. Validation (>= quorum DISTINCT correct hosts)
// fires the moment the quorum completes; failure classification waits
// until every assigned replica of the task has resolved, and because a
// later grant in the same day can still add replicas to a task, that
// resolution runs as a final pass over the day's touched tasks.
//
// Unlike sim/replication.h's scheduler, the overlay observes the
// substrate rather than steering it: there is no re-issue, so there are
// no reissue/backoff counters — tasks whose replicas all die simply
// resolve invalid or missed, and tasks with replicas still in flight at
// the end of the window stay pending.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/fault_model.h"

namespace resmodel::engine {

/// What a contact did to a client's in-flight units.
enum class DayRecordKind : std::uint8_t {
  kReport,  ///< completed units left the FIFO (valid => credited)
  kLoss,    ///< crash write-off
  kExpiry,  ///< deadline write-off
  kGrant,   ///< new units entered the FIFO
};

/// One non-empty side effect of one contact. `client` is the GLOBAL
/// client index; `seq` is the client's emission counter — (client, seq)
/// totally orders the records of a day.
struct DayRecord {
  std::uint32_t client = 0;
  std::uint32_t seq = 0;
  std::uint32_t units = 0;
  DayRecordKind kind = DayRecordKind::kGrant;
  bool valid = false;  ///< kReport only: digest matched
};

/// Outcome accounting of the quorum overlay. Tasks partition exactly:
///   tasks_issued == validated + invalid + missed_deadline + pending
/// and replicas likewise:
///   replicas_issued == correct + corrupt + crashed + missed_deadline +
///                      duplicate_host + in_flight.
struct QuorumOutcome {
  std::uint64_t tasks_issued = 0;
  std::uint64_t tasks_validated = 0;
  /// Every replica resolved, >= quorum results returned in time, but no
  /// quorum of distinct correct hosts (corruption dominated).
  std::uint64_t tasks_invalid = 0;
  /// Every replica resolved with fewer than quorum in-time results
  /// (crashes / expiries dominated).
  std::uint64_t tasks_missed_deadline = 0;
  /// Replicas still unresolved when the window closed.
  std::uint64_t tasks_pending = 0;

  std::uint64_t replicas_issued = 0;
  std::uint64_t replicas_correct = 0;
  std::uint64_t replicas_corrupt = 0;
  std::uint64_t replicas_crashed = 0;
  std::uint64_t replicas_missed_deadline = 0;
  /// Correct results from a host already counted for the task: counted
  /// once toward the quorum, the duplicate ignored.
  std::uint64_t replicas_duplicate_host = 0;
  std::uint64_t replicas_in_flight = 0;

  bool conserves_tasks() const noexcept {
    return tasks_issued == tasks_validated + tasks_invalid +
                               tasks_missed_deadline + tasks_pending;
  }
  bool conserves_replicas() const noexcept {
    return replicas_issued ==
           replicas_correct + replicas_corrupt + replicas_crashed +
               replicas_missed_deadline + replicas_duplicate_host +
               replicas_in_flight;
  }
};

/// Replays day-record batches into task outcomes. Single-threaded by
/// design: the barrier replay is a tiny fraction of the drain work, and
/// a serial replay over a totally ordered record stream is what makes
/// the outcome independent of shard count.
class QuorumCoordinator {
 public:
  /// `clients` is the global population size (bounds the client index).
  /// Validates `config` (throws std::invalid_argument).
  QuorumCoordinator(const sim::ReplicationConfig& config,
                    std::size_t clients);

  /// Reconstructs a coordinator from a serialize_state() blob (engine
  /// checkpoint resume). Throws std::runtime_error on a structurally
  /// inconsistent blob.
  QuorumCoordinator(const sim::ReplicationConfig& config, std::size_t clients,
                    std::span<const std::byte> state);

  /// Appends the coordinator's complete in-flight round state — task
  /// columns, per-client unit FIFOs, outcome counters — to `out`. Legal
  /// at any day barrier (apply_day leaves no intra-day state behind).
  void serialize_state(std::vector<std::byte>& out) const;

  /// Merges and replays one day's records from every shard (any order;
  /// replay sorts by (client, seq)). `records` is consumed.
  void apply_day(std::vector<DayRecord> records);

  /// Closes the books: classifies still-open tasks as pending and
  /// unresolved replicas as in flight. Call once, after the last day.
  QuorumOutcome finish() const;

 private:
  enum class TaskState : std::uint8_t {
    kOpen,
    kValidated,
    kInvalid,
    kMissedDeadline,
  };

  sim::ReplicationConfig config_;

  // Flat per-task columns; a day with U granted units appends
  // T = ceil(U / replicas) tasks. Counts are bounded by replicas <= 32.
  std::vector<std::uint8_t> assigned_;
  std::vector<std::uint8_t> accounted_;
  std::vector<std::uint8_t> returned_;       ///< in-time results, any digest
  std::vector<std::uint8_t> correct_count_;  ///< distinct correct hosts
  std::vector<TaskState> state_;
  /// Hosts (global client index) of the counted correct results:
  /// task t's slots are [t * replicas, t * replicas + correct_count_[t]).
  std::vector<std::uint32_t> correct_hosts_;

  /// Task id of each of a client's in-flight units, oldest first — the
  /// overlay's mirror of the server's per-host grant FIFO.
  struct UnitFifo {
    std::vector<std::uint32_t> tasks;
    std::size_t head = 0;
  };
  std::vector<UnitFifo> fifos_;

  QuorumOutcome outcome_;

  std::uint32_t pop_unit(std::uint32_t client);
  void resolve(std::uint32_t task);
};

}  // namespace resmodel::engine

#include "core/validation.h"

#include <algorithm>
#include <cmath>

#include "core/fit_pipeline.h"
#include "stats/descriptive.h"

namespace resmodel::core {

namespace {

ResourceComparison compare_one(std::string name,
                               const std::vector<double>& actual,
                               const std::vector<double>& generated) {
  ResourceComparison cmp;
  cmp.name = std::move(name);
  const stats::Summary sa = stats::summarize(actual);
  const stats::Summary sg = stats::summarize(generated);
  cmp.mean_actual = sa.mean;
  cmp.mean_generated = sg.mean;
  cmp.stddev_actual = sa.stddev;
  cmp.stddev_generated = sg.stddev;
  cmp.mean_diff_fraction =
      sa.mean != 0.0 ? std::fabs(sg.mean - sa.mean) / std::fabs(sa.mean) : 0.0;
  cmp.stddev_diff_fraction =
      sa.stddev != 0.0 ? std::fabs(sg.stddev - sa.stddev) / sa.stddev : 0.0;
  cmp.ks_statistic = two_sample_ks(actual, generated);
  return cmp;
}

}  // namespace

double two_sample_ks(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  std::size_t i = 0, j = 0;
  double d = 0.0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  return d;
}

std::vector<ResourceComparison> compare_resources(
    const trace::ResourceSnapshot& actual, const GeneratedColumns& cols) {
  std::vector<ResourceComparison> out;
  out.push_back(compare_one("Cores", actual.cores, cols.cores));
  out.push_back(compare_one("Memory (MB)", actual.memory_mb, cols.memory_mb));
  out.push_back(compare_one("Whetstone MIPS", actual.whetstone_mips,
                            cols.whetstone_mips));
  out.push_back(compare_one("Dhrystone MIPS", actual.dhrystone_mips,
                            cols.dhrystone_mips));
  out.push_back(
      compare_one("Avail Disk (GB)", actual.disk_avail_gb, cols.disk_avail_gb));
  return out;
}

std::vector<ResourceComparison> compare_resources(
    const trace::ResourceSnapshot& actual,
    const std::vector<GeneratedHost>& generated) {
  return compare_resources(actual, columns_of(generated));
}

std::vector<ResourceComparison> compare_resources(
    const trace::ResourceSnapshot& actual, const GeneratedHostBatch& generated) {
  // Only the cores column needs int -> double conversion; the batch's
  // other columns are consumed in place (no six-column copy).
  const std::vector<double> cores(generated.n_cores.begin(),
                                  generated.n_cores.end());
  std::vector<ResourceComparison> out;
  out.push_back(compare_one("Cores", actual.cores, cores));
  out.push_back(
      compare_one("Memory (MB)", actual.memory_mb, generated.memory_mb));
  out.push_back(compare_one("Whetstone MIPS", actual.whetstone_mips,
                            generated.whetstone_mips));
  out.push_back(compare_one("Dhrystone MIPS", actual.dhrystone_mips,
                            generated.dhrystone_mips));
  out.push_back(compare_one("Avail Disk (GB)", actual.disk_avail_gb,
                            generated.disk_avail_gb));
  return out;
}

stats::Matrix generated_correlation_matrix(const GeneratedColumns& cols) {
  return resource_correlation_matrix(cols.cores, cols.memory_mb,
                                     cols.memory_per_core_mb,
                                     cols.whetstone_mips, cols.dhrystone_mips,
                                     cols.disk_avail_gb);
}

stats::Matrix generated_correlation_matrix(
    const std::vector<GeneratedHost>& generated) {
  return generated_correlation_matrix(columns_of(generated));
}

stats::Matrix generated_correlation_matrix(const GeneratedHostBatch& generated) {
  const std::vector<double> cores(generated.n_cores.begin(),
                                  generated.n_cores.end());
  return resource_correlation_matrix(
      cores, generated.memory_mb, generated.memory_per_core_mb,
      generated.whetstone_mips, generated.dhrystone_mips,
      generated.disk_avail_gb);
}

}  // namespace resmodel::core

// The Figure-11 host creation flowchart.
//
// Given a target date:
//   1. sample the core count from the chained-ratio pmf;
//   2. draw a correlated standard-normal triple (mem/core, Whetstone,
//      Dhrystone) from the pluggable model::CorrelationModel — the paper's
//      Cholesky-driven Gaussian copula by default;
//   3. map the first component through Phi to a uniform and use it to pick
//      the discrete per-core memory;
//   4. renormalize the other two components to the date's predicted
//      benchmark mean/variance;
//   5. sample available disk from an independent log-normal with the
//      date's predicted moments;
//   6. total memory = per-core memory x cores.
//
// Two execution engines share those semantics:
//   - generate()/generate_many(): one host at a time, recomputing the
//     date-dependent tables per call (convenient, slow);
//   - generate_batch()/generate_batch_parallel(): the structure-of-arrays
//     engine — hoists every t-dependent quantity out of the loop and fills
//     contiguous per-field columns, bit-identical to the per-host path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/model_params.h"
#include "model/correlation_model.h"
#include "util/model_date.h"
#include "util/rng.h"

namespace resmodel::core {

/// One synthesized host.
struct GeneratedHost {
  int n_cores = 1;
  double memory_per_core_mb = 0.0;
  double memory_mb = 0.0;
  double whetstone_mips = 0.0;
  double dhrystone_mips = 0.0;
  double disk_avail_gb = 0.0;
};

/// Structure-of-arrays host population: index i across all columns is one
/// host. This is the contiguous layout every downstream consumer
/// (validation, correlation tables, the allocator adapters) iterates over.
struct GeneratedHostBatch {
  std::vector<int> n_cores;
  std::vector<double> memory_per_core_mb;
  std::vector<double> memory_mb;
  std::vector<double> whetstone_mips;
  std::vector<double> dhrystone_mips;
  std::vector<double> disk_avail_gb;

  std::size_t size() const noexcept { return n_cores.size(); }
  bool empty() const noexcept { return n_cores.empty(); }
  void resize(std::size_t n);

  /// Row i as an AoS host.
  GeneratedHost host(std::size_t i) const noexcept;

  /// AoS copy for the legacy consumers.
  std::vector<GeneratedHost> to_hosts() const;
};

/// Generates hosts from a ModelParams. Immutable after construction;
/// safe to share across threads when each thread has its own Rng.
class HostGenerator {
 public:
  /// Uses the paper's dependence structure: a CholeskyGaussian over
  /// params.resource_correlation. Throws std::invalid_argument on invalid
  /// params (including a non-positive-definite correlation matrix).
  explicit HostGenerator(ModelParams params);

  /// Plugs in an alternative dependence structure. The model must have
  /// dimension 3 (the {mem/core, Whetstone, Dhrystone} triple).
  HostGenerator(ModelParams params,
                std::shared_ptr<const model::CorrelationModel> correlation);

  const ModelParams& params() const noexcept { return params_; }
  const model::CorrelationModel& correlation() const noexcept {
    return *correlation_;
  }

  GeneratedHost generate(util::ModelDate date, util::Rng& rng) const;

  std::vector<GeneratedHost> generate_many(util::ModelDate date,
                                           std::size_t count,
                                           util::Rng& rng) const;

  /// Multi-threaded AoS generation, kept for existing callers; delegates
  /// to the batched engine and converts. Output is a pure function of
  /// (date, count, seed), identical for any thread count.
  std::vector<GeneratedHost> generate_many_parallel(util::ModelDate date,
                                                    std::size_t count,
                                                    std::uint64_t seed,
                                                    int threads = 0) const;

  /// The SoA fast path: precomputes the date's pmfs/moments once and fills
  /// the batch columns. Consumes `rng` exactly like generate() host by
  /// host, so generate_batch(...) == generate_many(...) element-wise.
  GeneratedHostBatch generate_batch(util::ModelDate date, std::size_t count,
                                    util::Rng& rng) const;

  /// Deterministic parallel SoA generation: hosts are produced in
  /// fixed-size chunks, each with its own (seed, chunk)-derived stream, so
  /// the result is identical for any thread count. threads == 0 uses the
  /// hardware concurrency.
  GeneratedHostBatch generate_batch_parallel(util::ModelDate date,
                                             std::size_t count,
                                             std::uint64_t seed,
                                             int threads = 0) const;

 private:
  struct DateContext;
  DateContext date_context(util::ModelDate date) const;
  void fill_range(GeneratedHostBatch& batch, std::size_t begin,
                  std::size_t end, const DateContext& ctx,
                  util::Rng& rng) const;

  ModelParams params_;
  std::shared_ptr<const model::CorrelationModel> correlation_;
};

/// Column views over a set of generated hosts (for validation and
/// correlation analysis).
struct GeneratedColumns {
  std::vector<double> cores;
  std::vector<double> memory_mb;
  std::vector<double> memory_per_core_mb;
  std::vector<double> whetstone_mips;
  std::vector<double> dhrystone_mips;
  std::vector<double> disk_avail_gb;
};
GeneratedColumns columns_of(const std::vector<GeneratedHost>& hosts);
GeneratedColumns columns_of(const GeneratedHostBatch& batch);

}  // namespace resmodel::core

// The Figure-11 host creation flowchart.
//
// Given a target date:
//   1. sample the core count from the chained-ratio pmf;
//   2. draw a Cholesky-correlated standard-normal triple (mem/core,
//      Whetstone, Dhrystone);
//   3. map the first component through Phi to a uniform and use it to pick
//      the discrete per-core memory;
//   4. renormalize the other two components to the date's predicted
//      benchmark mean/variance;
//   5. sample available disk from an independent log-normal with the
//      date's predicted moments;
//   6. total memory = per-core memory x cores.
#pragma once

#include <vector>

#include "core/model_params.h"
#include "util/model_date.h"
#include "util/rng.h"

namespace resmodel::core {

/// One synthesized host.
struct GeneratedHost {
  int n_cores = 1;
  double memory_per_core_mb = 0.0;
  double memory_mb = 0.0;
  double whetstone_mips = 0.0;
  double dhrystone_mips = 0.0;
  double disk_avail_gb = 0.0;
};

/// Generates hosts from a ModelParams. Immutable after construction;
/// safe to share across threads when each thread has its own Rng.
class HostGenerator {
 public:
  /// Validates the params and precomputes the Cholesky factor.
  /// Throws std::invalid_argument on invalid params.
  explicit HostGenerator(ModelParams params);

  const ModelParams& params() const noexcept { return params_; }

  GeneratedHost generate(util::ModelDate date, util::Rng& rng) const;

  std::vector<GeneratedHost> generate_many(util::ModelDate date,
                                           std::size_t count,
                                           util::Rng& rng) const;

  /// Multi-threaded generation. The output is a pure function of
  /// (date, count, seed) — identical for any thread count — because hosts
  /// are produced in fixed-size chunks, each with its own seeded stream.
  /// threads == 0 uses the hardware concurrency.
  std::vector<GeneratedHost> generate_many_parallel(util::ModelDate date,
                                                    std::size_t count,
                                                    std::uint64_t seed,
                                                    int threads = 0) const;

 private:
  ModelParams params_;
  stats::Matrix cholesky_lower_;
};

/// Column views over a set of generated hosts (for validation and
/// correlation analysis).
struct GeneratedColumns {
  std::vector<double> cores;
  std::vector<double> memory_mb;
  std::vector<double> memory_per_core_mb;
  std::vector<double> whetstone_mips;
  std::vector<double> dhrystone_mips;
  std::vector<double> disk_avail_gb;
};
GeneratedColumns columns_of(const std::vector<GeneratedHost>& hosts);

}  // namespace resmodel::core

#include "core/fit_pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace resmodel::core {

namespace {

// Index of the nearest discrete value within the relative tolerance, or
// nullopt when the reading falls between values.
std::optional<std::size_t> snap_to_value(double x,
                                         const std::vector<double>& values,
                                         double tolerance) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double d = std::fabs(x - values[i]);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  if (best_dist <= tolerance * values[best]) return best;
  return std::nullopt;
}

// Builds ratio series for one discrete resource across snapshots.
// counts_per_snapshot[s][v] = hosts with values[v] at snapshot s.
std::vector<RatioSeries> build_ratio_series(
    const std::vector<double>& values,
    const std::vector<double>& ts,
    const std::vector<std::vector<std::size_t>>& counts_per_snapshot) {
  std::vector<RatioSeries> out;
  for (std::size_t v = 0; v + 1 < values.size(); ++v) {
    RatioSeries series;
    series.numerator_value = values[v];
    series.denominator_value = values[v + 1];
    for (std::size_t s = 0; s < ts.size(); ++s) {
      const std::size_t num = counts_per_snapshot[s][v];
      const std::size_t den = counts_per_snapshot[s][v + 1];
      if (num == 0 || den == 0) continue;  // ratio undefined this snapshot
      series.t.push_back(ts[s]);
      series.ratio.push_back(static_cast<double>(num) /
                             static_cast<double>(den));
    }
    if (series.t.size() < 2) {
      throw std::invalid_argument(
          "fit_model: ratio series " + std::to_string(values[v]) + ":" +
          std::to_string(values[v + 1]) +
          " has fewer than 2 usable snapshots");
    }
    series.law = stats::ExponentialLaw::fit(series.t, series.ratio);
    out.push_back(std::move(series));
  }
  return out;
}

MomentSeries fit_moment_series(std::vector<double> ts,
                               std::vector<double> values) {
  if (ts.size() < 2) {
    throw std::invalid_argument(
        "fit_model: moment series has fewer than 2 snapshots");
  }
  MomentSeries series;
  series.law = stats::ExponentialLaw::fit(ts, values);
  series.t = std::move(ts);
  series.value = std::move(values);
  return series;
}

}  // namespace

std::vector<util::ModelDate> default_snapshot_dates() {
  std::vector<util::ModelDate> dates;
  for (int year = 2006; year <= 2009; ++year) {
    for (int month : {1, 4, 7, 10}) {
      dates.push_back(util::ModelDate::from_ymd(year, month, 1));
    }
  }
  dates.push_back(util::ModelDate::from_ymd(2010, 1, 1));
  return dates;
}

std::vector<std::string> full_correlation_labels() {
  return {"Cores", "Memory", "Mem/Core", "Whet", "Dhry", "Disk"};
}

stats::Matrix resource_correlation_matrix(
    const std::vector<double>& cores, const std::vector<double>& memory,
    const std::vector<double>& mem_per_core, const std::vector<double>& whet,
    const std::vector<double>& dhry, const std::vector<double>& disk) {
  std::vector<stats::NamedColumn> columns = {
      {"Cores", cores},   {"Memory", memory}, {"Mem/Core", mem_per_core},
      {"Whet", whet},     {"Dhry", dhry},     {"Disk", disk},
  };
  return stats::correlation_matrix(columns);
}

FitReport fit_model(const trace::TraceStore& store, const FitOptions& options) {
  FitReport report;

  // Copy + plausibility filter (§V-B).
  trace::TraceStore filtered;
  filtered.reserve(store.size());
  for (const trace::HostRecord& h : store.hosts()) filtered.add(h);
  report.discarded_hosts = filtered.discard_implausible();
  report.fitted_hosts = filtered.size();
  if (filtered.empty()) {
    throw std::invalid_argument("fit_model: no plausible hosts in trace");
  }

  const std::vector<util::ModelDate> dates = options.snapshot_dates.empty()
                                                 ? default_snapshot_dates()
                                                 : options.snapshot_dates;
  if (dates.size() < 2) {
    throw std::invalid_argument("fit_model: need >= 2 snapshot dates");
  }

  std::vector<double> ts;
  ts.reserve(dates.size());
  for (const util::ModelDate& d : dates) ts.push_back(d.t());

  // Per-snapshot discrete compositions and continuous moments.
  std::vector<std::vector<std::size_t>> core_counts(
      dates.size(), std::vector<std::size_t>(options.core_values.size(), 0));
  std::vector<std::vector<std::size_t>> mem_counts(
      dates.size(), std::vector<std::size_t>(options.memory_values.size(), 0));
  std::vector<double> dhry_mean, dhry_var, whet_mean, whet_var, disk_mean,
      disk_var;

  for (std::size_t s = 0; s < dates.size(); ++s) {
    const trace::ResourceSnapshot snap = filtered.snapshot(dates[s]);
    if (snap.size() < 2) {
      throw std::invalid_argument("fit_model: snapshot at " +
                                  dates[s].to_string() +
                                  " has fewer than 2 active hosts");
    }
    for (std::size_t i = 0; i < snap.size(); ++i) {
      if (const auto ci = snap_to_value(snap.cores[i], options.core_values,
                                        1e-9)) {
        ++core_counts[s][*ci];
      }
      if (const auto mi =
              snap_to_value(snap.memory_per_core_mb[i], options.memory_values,
                            options.memory_snap_tolerance)) {
        ++mem_counts[s][*mi];
      }
    }
    dhry_mean.push_back(stats::mean(snap.dhrystone_mips));
    dhry_var.push_back(stats::variance(snap.dhrystone_mips));
    whet_mean.push_back(stats::mean(snap.whetstone_mips));
    whet_var.push_back(stats::variance(snap.whetstone_mips));
    disk_mean.push_back(stats::mean(snap.disk_avail_gb));
    disk_var.push_back(stats::variance(snap.disk_avail_gb));
  }

  report.core_ratios =
      build_ratio_series(options.core_values, ts, core_counts);
  report.memory_ratios =
      build_ratio_series(options.memory_values, ts, mem_counts);
  report.dhrystone_mean = fit_moment_series(ts, dhry_mean);
  report.dhrystone_variance = fit_moment_series(ts, dhry_var);
  report.whetstone_mean = fit_moment_series(ts, whet_mean);
  report.whetstone_variance = fit_moment_series(ts, whet_var);
  report.disk_mean = fit_moment_series(ts, disk_mean);
  report.disk_variance = fit_moment_series(ts, disk_var);

  // Pooled correlations over all plausible hosts (§V-C pools the data set).
  {
    std::vector<double> cores, memory, mpc, whet, dhry, disk;
    cores.reserve(filtered.size());
    for (const trace::HostRecord& h : filtered.hosts()) {
      cores.push_back(static_cast<double>(h.n_cores));
      memory.push_back(h.memory_mb);
      mpc.push_back(h.memory_per_core_mb());
      whet.push_back(h.whetstone_mips);
      dhry.push_back(h.dhrystone_mips);
      disk.push_back(h.disk_avail_gb);
    }
    report.full_correlation =
        resource_correlation_matrix(cores, memory, mpc, whet, dhry, disk);
  }

  // Assemble ModelParams.
  ModelParams params;
  params.cores.values = options.core_values;
  for (const RatioSeries& s : report.core_ratios) {
    params.cores.ratios.push_back(s.law);
  }
  params.memory_per_core_mb.values = options.memory_values;
  for (const RatioSeries& s : report.memory_ratios) {
    params.memory_per_core_mb.ratios.push_back(s.law);
  }
  params.dhrystone = {report.dhrystone_mean.law,
                      report.dhrystone_variance.law};
  params.whetstone = {report.whetstone_mean.law,
                      report.whetstone_variance.law};
  params.disk_gb = {report.disk_mean.law, report.disk_variance.law};

  // 3x3 sub-matrix over {mem/core, whet, dhry}: rows/cols 2, 3, 4 of the
  // full table.
  params.resource_correlation = stats::Matrix(3, 3);
  const std::size_t order[3] = {2, 3, 4};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      params.resource_correlation(r, c) =
          r == c ? 1.0 : report.full_correlation(order[r], order[c]);
    }
  }
  params.validate();
  report.params = std::move(params);
  return report;
}

}  // namespace resmodel::core

// Model-based prediction of future host composition (§VI-C, Figs 13-14).
//
// Because per-core memory is generated independently of the core count,
// the total-memory distribution is the exact product convolution of the two
// discrete pmfs — no sampling needed for Figures 13 and 14.
#pragma once

#include <vector>

#include "core/model_params.h"

namespace resmodel::core {

/// Fraction of hosts per core value at each time point. Row v corresponds
/// to params.cores.values[v]; column j to ts[j].
std::vector<std::vector<double>> predicted_core_fractions(
    const ModelParams& params, const std::vector<double>& ts);

/// E[cores] at t (the paper predicts 4.6 for 2014).
double predicted_mean_cores(const ModelParams& params, double t);

/// Returns a copy of `params` whose per-core-memory chain is truncated to
/// values <= max_value_mb. §V-E states the model "uses these [six] values"
/// {256..2048} even though Tables V and X list a 2GB:4GB ratio; the
/// paper's Figure-14 prediction (6.8 GB mean in 2014) reproduces only with
/// the truncated chain, so memory predictions default to it.
ModelParams with_memory_capped(const ModelParams& params,
                               double max_value_mb);

/// One value of the discrete total-memory distribution.
struct MemoryPoint {
  double memory_mb = 0.0;
  double probability = 0.0;
};

/// Exact distribution of total memory (cores x per-core memory) at t,
/// sorted ascending by memory, probabilities summing to 1.
std::vector<MemoryPoint> predicted_memory_distribution(
    const ModelParams& params, double t);

/// Fraction of hosts with total memory <= each threshold (MB).
/// Used for Figure 14's {<=1GB, <=2GB, <=4GB, <=8GB} bands.
std::vector<double> predicted_memory_cdf_at(
    const ModelParams& params, double t,
    const std::vector<double>& thresholds_mb);

/// E[total memory] in MB at t (the paper predicts ~6.8 GB for 2014).
double predicted_mean_memory_mb(const ModelParams& params, double t);

/// Predicted (mean, stddev) of a continuous resource at t.
struct MomentPrediction {
  double mean = 0.0;
  double stddev = 0.0;
};
MomentPrediction predicted_dhrystone(const ModelParams& params, double t);
MomentPrediction predicted_whetstone(const ModelParams& params, double t);
MomentPrediction predicted_disk_gb(const ModelParams& params, double t);

/// "Best/worst host" prediction (the paper's §VI-C sketch): the host at a
/// given quantile of every resource simultaneously. q in (0, 1); 0.99
/// approximates the best widely available host at time t.
struct QuantileHost {
  double cores = 0.0;
  double memory_mb = 0.0;
  double whetstone_mips = 0.0;
  double dhrystone_mips = 0.0;
  double disk_avail_gb = 0.0;
};
QuantileHost predicted_quantile_host(const ModelParams& params, double t,
                                     double q);

}  // namespace resmodel::core

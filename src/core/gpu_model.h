// GPU model extension (the paper's §VIII future work: "the use of GPUs for
// high performance computing is becoming common, so with more data a GPU
// model could be developed as well").
//
// Mirrors the structure of the main model: an adoption law for the
// fraction of hosts reporting a GPU, a categorical vendor trend, and a
// discrete memory chain whose composition drifts between anchor dates.
// Defaults are calibrated to the paper's Table VII and Figure 10 (Sep 2009
// and Sep 2010); with a longer trace the same laws can be refitted via
// fit_gpu_model().
#pragma once

#include <optional>
#include <vector>

#include "trace/host_record.h"
#include "trace/trace_store.h"
#include "util/model_date.h"
#include "util/rng.h"

namespace resmodel::core {

/// One generated GPU (absent when the host reports none).
struct GeneratedGpu {
  trace::GpuType type = trace::GpuType::kNone;
  double memory_mb = 0.0;
};

/// Parameters of the GPU extension.
struct GpuModelParams {
  /// Linear adoption law: fraction(t) = clamp(a + slope*(t - t0), 0, cap).
  double adoption_t0 = 3.67;         ///< Sep 2009, first GPU reporting
  double adoption_at_t0 = 0.127;     ///< 12.7% of active hosts
  double adoption_slope = 0.111;     ///< to 23.8% one year later
  double adoption_cap = 0.95;

  /// Vendor shares at two anchor times (linearly interpolated, clamped).
  /// Order: GeForce, Radeon, Quadro, Other.
  double anchor_t[2] = {3.67, 4.67};
  std::vector<double> vendor_share_t0 = {0.825, 0.122, 0.047, 0.006};
  std::vector<double> vendor_share_t1 = {0.636, 0.315, 0.040, 0.008};

  /// Discrete memory values (MB) and their pmfs at the two anchors.
  std::vector<double> memory_values_mb = {128, 256, 512, 768, 1024, 1536,
                                          2048};
  std::vector<double> memory_pmf_t0 = {0.10, 0.25, 0.36, 0.08,
                                       0.14, 0.04, 0.03};
  std::vector<double> memory_pmf_t1 = {0.08, 0.22, 0.34, 0.06,
                                       0.21, 0.05, 0.04};

  /// Throws std::invalid_argument on inconsistent sizes or invalid pmfs.
  void validate() const;
};

/// The calibrated defaults (Table VII + Figure 10).
GpuModelParams paper_gpu_params();

/// Generative GPU extension. Immutable after construction.
class GpuModel {
 public:
  explicit GpuModel(GpuModelParams params);

  const GpuModelParams& params() const noexcept { return params_; }

  /// Fraction of hosts reporting a GPU at model time t.
  double adoption_fraction(double t) const noexcept;

  /// Vendor pmf at t (normalized).
  std::vector<double> vendor_pmf(double t) const;

  /// Memory pmf at t (normalized).
  std::vector<double> memory_pmf(double t) const;

  /// Expected GPU memory (MB) among GPU-equipped hosts at t.
  double mean_memory_mb(double t) const;

  /// Samples the GPU attributes of one host. Returns kNone with
  /// probability 1 - adoption_fraction(t).
  GeneratedGpu sample(util::ModelDate date, util::Rng& rng) const;

 private:
  GpuModelParams params_;
};

/// Fits GPU model parameters from a trace: adoption and composition are
/// measured at the two given anchor dates. Returns std::nullopt when
/// either snapshot has no GPU-equipped hosts.
std::optional<GpuModelParams> fit_gpu_model(const trace::TraceStore& store,
                                            util::ModelDate anchor0,
                                            util::ModelDate anchor1);

}  // namespace resmodel::core

#include "core/model_params.h"

#include <cmath>
#include <stdexcept>

namespace resmodel::core {

std::vector<double> DiscreteRatioChain::pmf(double t) const {
  std::vector<double> weights(values.size(), 0.0);
  if (values.empty()) return weights;
  weights[0] = 1.0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    // ratio(t) = count(values[i]) / count(values[i+1])
    const double r = ratios[i](t);
    weights[i + 1] = r > 0.0 ? weights[i] / r : 0.0;
  }
  double total = 0.0;
  for (double w : weights) total += w;
  if (total > 0.0) {
    for (double& w : weights) w /= total;
  }
  return weights;
}

double DiscreteRatioChain::quantile(double t, double u) const {
  return quantile_from_pmf(pmf(t), u);
}

double DiscreteRatioChain::quantile_from_pmf(std::span<const double> pmf,
                                             double u) const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    acc += pmf[i];
    if (u <= acc) return values[i];
  }
  return values.back();
}

double DiscreteRatioChain::mean(double t) const {
  const std::vector<double> p = pmf(t);
  double m = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) m += p[i] * values[i];
  return m;
}

void DiscreteRatioChain::validate() const {
  if (values.size() < 2) {
    throw std::invalid_argument("DiscreteRatioChain: need >= 2 values");
  }
  if (ratios.size() != values.size() - 1) {
    throw std::invalid_argument(
        "DiscreteRatioChain: ratios.size() must equal values.size() - 1");
  }
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (!(values[i] > values[i - 1])) {
      throw std::invalid_argument(
          "DiscreteRatioChain: values must strictly ascend");
    }
  }
  for (const stats::ExponentialLaw& law : ratios) {
    if (!(law.a > 0.0)) {
      throw std::invalid_argument("DiscreteRatioChain: ratio a must be > 0");
    }
  }
}

double MomentLaws::stddev(double t) const noexcept {
  const double v = variance(t);
  return v > 0.0 ? std::sqrt(v) : 0.0;
}

void ModelParams::validate() const {
  cores.validate();
  memory_per_core_mb.validate();
  for (const MomentLaws* laws : {&dhrystone, &whetstone, &disk_gb}) {
    if (!(laws->mean_law.a > 0.0) || !(laws->variance_law.a > 0.0)) {
      throw std::invalid_argument("ModelParams: moment law a must be > 0");
    }
  }
  if (resource_correlation.rows() != 3 || resource_correlation.cols() != 3) {
    throw std::invalid_argument("ModelParams: correlation must be 3x3");
  }
  if (!stats::cholesky(resource_correlation)) {
    throw std::invalid_argument(
        "ModelParams: correlation matrix must be symmetric positive "
        "definite");
  }
}

namespace {

void put_law(util::KvStore& kv, const std::string& key,
             const stats::ExponentialLaw& law) {
  kv.set(key + ".a", law.a);
  kv.set(key + ".b", law.b);
  kv.set(key + ".r", law.r);
}

stats::ExponentialLaw get_law(const util::KvStore& kv,
                              const std::string& key) {
  stats::ExponentialLaw law;
  law.a = kv.get_double(key + ".a");
  law.b = kv.get_double(key + ".b");
  law.r = kv.get_double(key + ".r");
  return law;
}

void put_chain(util::KvStore& kv, const std::string& key,
               const DiscreteRatioChain& chain) {
  kv.set(key + ".count", static_cast<long long>(chain.values.size()));
  for (std::size_t i = 0; i < chain.values.size(); ++i) {
    kv.set(key + ".value." + std::to_string(i), chain.values[i]);
  }
  for (std::size_t i = 0; i < chain.ratios.size(); ++i) {
    put_law(kv, key + ".ratio." + std::to_string(i), chain.ratios[i]);
  }
}

DiscreteRatioChain get_chain(const util::KvStore& kv,
                             const std::string& key) {
  DiscreteRatioChain chain;
  const auto n = static_cast<std::size_t>(kv.get_int(key + ".count"));
  for (std::size_t i = 0; i < n; ++i) {
    chain.values.push_back(kv.get_double(key + ".value." + std::to_string(i)));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    chain.ratios.push_back(get_law(kv, key + ".ratio." + std::to_string(i)));
  }
  return chain;
}

}  // namespace

util::KvStore ModelParams::to_kv() const {
  util::KvStore kv;
  kv.set("model", std::string("resmodel-v1"));
  put_chain(kv, "cores", cores);
  put_chain(kv, "mem_per_core_mb", memory_per_core_mb);
  put_law(kv, "dhrystone.mean", dhrystone.mean_law);
  put_law(kv, "dhrystone.variance", dhrystone.variance_law);
  put_law(kv, "whetstone.mean", whetstone.mean_law);
  put_law(kv, "whetstone.variance", whetstone.variance_law);
  put_law(kv, "disk_gb.mean", disk_gb.mean_law);
  put_law(kv, "disk_gb.variance", disk_gb.variance_law);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      kv.set("correlation." + std::to_string(r) + "." + std::to_string(c),
             resource_correlation(r, c));
    }
  }
  return kv;
}

ModelParams ModelParams::from_kv(const util::KvStore& kv) {
  if (!kv.contains("model") || kv.get("model") != "resmodel-v1") {
    throw std::runtime_error("ModelParams: unrecognized serialization");
  }
  ModelParams params;
  params.cores = get_chain(kv, "cores");
  params.memory_per_core_mb = get_chain(kv, "mem_per_core_mb");
  params.dhrystone = {get_law(kv, "dhrystone.mean"),
                      get_law(kv, "dhrystone.variance")};
  params.whetstone = {get_law(kv, "whetstone.mean"),
                      get_law(kv, "whetstone.variance")};
  params.disk_gb = {get_law(kv, "disk_gb.mean"),
                    get_law(kv, "disk_gb.variance")};
  params.resource_correlation = stats::Matrix(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      params.resource_correlation(r, c) = kv.get_double(
          "correlation." + std::to_string(r) + "." + std::to_string(c));
    }
  }
  params.validate();
  return params;
}

ModelParams paper_params() {
  ModelParams p;

  // Table IV (+ §VI-C's 8:16 estimate a = 12, b = -0.2).
  p.cores.values = {1, 2, 4, 8, 16};
  p.cores.ratios = {
      {3.369, -0.5004, -0.9984},  // 1:2
      {17.49, -0.3217, -0.9730},  // 2:4
      {12.8, -0.2377, -0.9557},   // 4:8
      {12.0, -0.2, 0.0},          // 8:16 (estimated, no fit r reported)
  };

  // Table V. Values in MB; the chain ends at 4096 because the last
  // published ratio is 2GB:4GB.
  p.memory_per_core_mb.values = {256, 512, 768, 1024, 1536, 2048, 4096};
  p.memory_per_core_mb.ratios = {
      {0.5829, -0.2517, -0.9984},  // 256:512
      {4.89, -0.1292, -0.9748},    // 512:768
      {0.3821, -0.1709, -0.9801},  // 768:1024
      {3.98, -0.1367, -0.9833},    // 1GB:1.5GB
      {1.51, -0.0925, -0.9897},    // 1.5GB:2GB
      {4.951, -0.1008, -0.9880},   // 2GB:4GB
  };

  // Table VI.
  p.dhrystone = {{2064.0, 0.1709, 0.9946}, {1.379e6, 0.3313, 0.9937}};
  p.whetstone = {{1179.0, 0.1157, 0.9981}, {3.237e5, 0.1057, 0.8795}};
  p.disk_gb = {{31.59, 0.2691, 0.9955}, {2890.0, 0.5224, 0.9954}};

  // §V-F: R over {mem/core, Whetstone, Dhrystone} from Table III.
  p.resource_correlation = stats::Matrix::from_rows({
      {1.0, 0.250, 0.306},
      {0.250, 1.0, 0.639},
      {0.306, 0.639, 1.0},
  });

  p.validate();
  return p;
}

}  // namespace resmodel::core

// Generated-vs-actual validation (§VI-B: Figure 12 and Table VIII).
#pragma once

#include <string>
#include <vector>

#include "core/host_generator.h"
#include "stats/matrix.h"
#include "trace/trace_store.h"

namespace resmodel::core {

/// Per-resource comparison of a generated set against actual data.
struct ResourceComparison {
  std::string name;
  double mean_actual = 0.0;
  double mean_generated = 0.0;
  double stddev_actual = 0.0;
  double stddev_generated = 0.0;
  /// |gen - actual| / actual, as a fraction (the paper reports 0.5%-13.0%
  /// for means and 3.5%-32.7% for standard deviations).
  double mean_diff_fraction = 0.0;
  double stddev_diff_fraction = 0.0;
  /// Two-sample Kolmogorov-Smirnov statistic between the samples.
  double ks_statistic = 0.0;
};

/// Compares the five modeled resources (cores, memory, whetstone,
/// dhrystone, disk) of a generated host set against an actual snapshot.
std::vector<ResourceComparison> compare_resources(
    const trace::ResourceSnapshot& actual, const GeneratedColumns& generated);
std::vector<ResourceComparison> compare_resources(
    const trace::ResourceSnapshot& actual,
    const std::vector<GeneratedHost>& generated);
std::vector<ResourceComparison> compare_resources(
    const trace::ResourceSnapshot& actual, const GeneratedHostBatch& generated);

/// Table-VIII machinery: the 6x6 correlation matrix over
/// {cores, memory, mem/core, whet, dhry, disk} of a generated host set.
stats::Matrix generated_correlation_matrix(const GeneratedColumns& generated);
stats::Matrix generated_correlation_matrix(
    const std::vector<GeneratedHost>& generated);
stats::Matrix generated_correlation_matrix(const GeneratedHostBatch& generated);

/// Two-sample KS statistic sup |F1 - F2|.
double two_sample_ks(std::vector<double> a, std::vector<double> b);

}  // namespace resmodel::core

// Trace -> model fitting (the paper's "tool for automated model
// generation").
//
// From a host trace the pipeline extracts, at each snapshot date:
//   - core-count composition and the adjacent ratios 1:2, 2:4, ... (Fig 5);
//   - per-core-memory composition over the discrete value set and its
//     adjacent ratios (Fig 7);
//   - mean/variance of the Dhrystone and Whetstone samples (Fig 8);
//   - mean/variance of available disk (Fig 9);
// fits the exponential law a*e^(b t) to every series (Tables IV-VI), and
// estimates the 3x3 correlation matrix among {mem/core, Whet, Dhry} over
// all plausible hosts (§V-C).
#pragma once

#include <optional>
#include <vector>

#include "core/model_params.h"
#include "trace/trace_store.h"
#include "util/model_date.h"

namespace resmodel::core {

/// Options for the fitting pipeline.
struct FitOptions {
  /// Snapshot dates; empty selects the default grid (quarterly from
  /// 2006-01-01 through 2010-01-01, the paper's model-building window).
  std::vector<util::ModelDate> snapshot_dates;

  /// Discrete core values considered (powers of two; the paper ignores
  /// non-power-of-two hosts, < 0.3% of its data).
  std::vector<double> core_values = {1, 2, 4, 8, 16};

  /// Discrete per-core-memory values (MB). The paper keeps the six values
  /// covering > 80% of hosts plus the 4 GB endpoint of the last ratio.
  std::vector<double> memory_values = {256, 512, 768, 1024, 1536, 2048, 4096};

  /// A host's per-core memory is snapped to the nearest discrete value if
  /// within this relative distance; otherwise the host is skipped for the
  /// memory composition (the paper "discards some intermediate values").
  double memory_snap_tolerance = 0.30;
};

/// Default quarterly snapshot grid for the model-building window.
std::vector<util::ModelDate> default_snapshot_dates();

/// One ratio series observed over time plus its fitted law.
struct RatioSeries {
  double numerator_value = 0.0;    ///< e.g. 1 (core)
  double denominator_value = 0.0;  ///< e.g. 2 (cores)
  std::vector<double> t;           ///< years since 2006
  std::vector<double> ratio;       ///< observed count ratio at each t
  stats::ExponentialLaw law;       ///< fit of ratio ~ a e^(bt)
};

/// A moment series (mean or variance) plus its fitted law.
struct MomentSeries {
  std::vector<double> t;
  std::vector<double> value;
  stats::ExponentialLaw law;
};

/// Everything the pipeline extracted; ModelParams is assembled from it.
struct FitReport {
  std::vector<RatioSeries> core_ratios;
  std::vector<RatioSeries> memory_ratios;
  MomentSeries dhrystone_mean, dhrystone_variance;
  MomentSeries whetstone_mean, whetstone_variance;
  MomentSeries disk_mean, disk_variance;
  /// 6x6 Pearson matrix over {cores, memory, mem/core, whet, dhry, disk}
  /// pooled across all plausible hosts (Table III).
  stats::Matrix full_correlation;
  /// Hosts discarded by the plausibility rules before fitting.
  std::size_t discarded_hosts = 0;
  std::size_t fitted_hosts = 0;

  ModelParams params;
};

/// Runs the pipeline. The store is copied and filtered internally; the
/// original is not modified. Throws std::invalid_argument when a ratio or
/// moment series has fewer than two usable points.
FitReport fit_model(const trace::TraceStore& store,
                    const FitOptions& options = {});

/// Column order of FitReport::full_correlation.
std::vector<std::string> full_correlation_labels();

/// Computes the Table-III-style 6x6 correlation matrix for an arbitrary
/// set of resource columns.
stats::Matrix resource_correlation_matrix(
    const std::vector<double>& cores, const std::vector<double>& memory,
    const std::vector<double>& mem_per_core, const std::vector<double>& whet,
    const std::vector<double>& dhry, const std::vector<double>& disk);

}  // namespace resmodel::core

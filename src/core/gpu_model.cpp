#include "core/gpu_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resmodel::core {

namespace {

void require_pmf(const std::vector<double>& pmf, std::size_t size,
                 const char* what) {
  if (pmf.size() != size) {
    throw std::invalid_argument(std::string("GpuModelParams: ") + what +
                                " has wrong size");
  }
  double total = 0.0;
  for (double p : pmf) {
    if (p < 0.0) {
      throw std::invalid_argument(std::string("GpuModelParams: ") + what +
                                  " has negative entries");
    }
    total += p;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument(std::string("GpuModelParams: ") + what +
                                " sums to zero");
  }
}

std::vector<double> interpolate_pmf(const std::vector<double>& p0,
                                    const std::vector<double>& p1,
                                    double frac) {
  std::vector<double> out(p0.size());
  double total = 0.0;
  for (std::size_t i = 0; i < p0.size(); ++i) {
    out[i] = std::max(0.0, p0[i] * (1.0 - frac) + p1[i] * frac);
    total += out[i];
  }
  for (double& v : out) v /= total;
  return out;
}

std::size_t sample_pmf(const std::vector<double>& pmf, util::Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    acc += pmf[i];
    if (u <= acc) return i;
  }
  return pmf.size() - 1;
}

}  // namespace

void GpuModelParams::validate() const {
  if (!(anchor_t[1] > anchor_t[0])) {
    throw std::invalid_argument("GpuModelParams: anchors must ascend");
  }
  require_pmf(vendor_share_t0, 4, "vendor_share_t0");
  require_pmf(vendor_share_t1, 4, "vendor_share_t1");
  if (memory_values_mb.size() < 2) {
    throw std::invalid_argument("GpuModelParams: need >= 2 memory values");
  }
  for (std::size_t i = 1; i < memory_values_mb.size(); ++i) {
    if (!(memory_values_mb[i] > memory_values_mb[i - 1])) {
      throw std::invalid_argument(
          "GpuModelParams: memory values must ascend");
    }
  }
  require_pmf(memory_pmf_t0, memory_values_mb.size(), "memory_pmf_t0");
  require_pmf(memory_pmf_t1, memory_values_mb.size(), "memory_pmf_t1");
  if (!(adoption_cap > 0.0) || adoption_cap > 1.0) {
    throw std::invalid_argument("GpuModelParams: cap must be in (0, 1]");
  }
}

GpuModelParams paper_gpu_params() { return GpuModelParams{}; }

GpuModel::GpuModel(GpuModelParams params) : params_(std::move(params)) {
  params_.validate();
}

double GpuModel::adoption_fraction(double t) const noexcept {
  const double f = params_.adoption_at_t0 +
                   params_.adoption_slope * (t - params_.adoption_t0);
  return std::clamp(f, 0.0, params_.adoption_cap);
}

std::vector<double> GpuModel::vendor_pmf(double t) const {
  const double span = params_.anchor_t[1] - params_.anchor_t[0];
  const double frac =
      std::clamp((t - params_.anchor_t[0]) / span, 0.0, 1.0);
  return interpolate_pmf(params_.vendor_share_t0, params_.vendor_share_t1,
                         frac);
}

std::vector<double> GpuModel::memory_pmf(double t) const {
  const double span = params_.anchor_t[1] - params_.anchor_t[0];
  const double frac =
      std::clamp((t - params_.anchor_t[0]) / span, 0.0, 1.0);
  return interpolate_pmf(params_.memory_pmf_t0, params_.memory_pmf_t1, frac);
}

double GpuModel::mean_memory_mb(double t) const {
  const std::vector<double> pmf = memory_pmf(t);
  double mean = 0.0;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    mean += pmf[i] * params_.memory_values_mb[i];
  }
  return mean;
}

GeneratedGpu GpuModel::sample(util::ModelDate date, util::Rng& rng) const {
  const double t = date.t();
  GeneratedGpu gpu;
  if (rng.uniform() >= adoption_fraction(t)) return gpu;  // kNone
  // Vendor index 0..3 maps to GpuType 1..4 (kNone is 0).
  gpu.type = static_cast<trace::GpuType>(1 + sample_pmf(vendor_pmf(t), rng));
  gpu.memory_mb =
      params_.memory_values_mb[sample_pmf(memory_pmf(t), rng)];
  return gpu;
}

std::optional<GpuModelParams> fit_gpu_model(const trace::TraceStore& store,
                                            util::ModelDate anchor0,
                                            util::ModelDate anchor1) {
  GpuModelParams params;
  params.adoption_t0 = anchor0.t();
  params.anchor_t[0] = anchor0.t();
  params.anchor_t[1] = anchor1.t();
  if (!(params.anchor_t[1] > params.anchor_t[0])) return std::nullopt;

  const auto measure = [&store](util::ModelDate d, double& adoption,
                                std::vector<double>& vendors,
                                std::vector<double>& memory_pmf,
                                const std::vector<double>& memory_values)
      -> bool {
    const std::vector<std::size_t> counts = store.gpu_type_counts(d);
    std::size_t active = 0;
    for (std::size_t c : counts) active += c;
    const std::size_t gpu_hosts = active - counts[0];
    if (active == 0 || gpu_hosts == 0) return false;
    adoption = static_cast<double>(gpu_hosts) / static_cast<double>(active);
    vendors.assign(4, 0.0);
    for (std::size_t i = 1; i < counts.size(); ++i) {
      vendors[i - 1] =
          static_cast<double>(counts[i]) / static_cast<double>(gpu_hosts);
    }
    const std::vector<double> mem = store.gpu_memory_snapshot(d);
    memory_pmf.assign(memory_values.size(), 0.0);
    std::size_t snapped = 0;
    for (double v : mem) {
      // Snap to the nearest discrete value.
      std::size_t best = 0;
      double best_dist = std::abs(v - memory_values[0]);
      for (std::size_t i = 1; i < memory_values.size(); ++i) {
        const double dist = std::abs(v - memory_values[i]);
        if (dist < best_dist) {
          best_dist = dist;
          best = i;
        }
      }
      memory_pmf[best] += 1.0;
      ++snapped;
    }
    if (snapped == 0) return false;
    for (double& p : memory_pmf) p /= static_cast<double>(snapped);
    return true;
  };

  double adoption1 = 0.0;
  if (!measure(anchor0, params.adoption_at_t0, params.vendor_share_t0,
               params.memory_pmf_t0, params.memory_values_mb)) {
    return std::nullopt;
  }
  if (!measure(anchor1, adoption1, params.vendor_share_t1,
               params.memory_pmf_t1, params.memory_values_mb)) {
    return std::nullopt;
  }
  params.adoption_slope = (adoption1 - params.adoption_at_t0) /
                          (params.anchor_t[1] - params.anchor_t[0]);
  params.validate();
  return params;
}

}  // namespace resmodel::core

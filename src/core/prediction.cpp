#include "core/prediction.h"

#include <algorithm>
#include <map>

#include "stats/distributions.h"
#include "stats/special_functions.h"

namespace resmodel::core {

std::vector<std::vector<double>> predicted_core_fractions(
    const ModelParams& params, const std::vector<double>& ts) {
  std::vector<std::vector<double>> out(params.cores.values.size(),
                                       std::vector<double>(ts.size(), 0.0));
  for (std::size_t j = 0; j < ts.size(); ++j) {
    const std::vector<double> pmf = params.cores.pmf(ts[j]);
    for (std::size_t v = 0; v < pmf.size(); ++v) out[v][j] = pmf[v];
  }
  return out;
}

double predicted_mean_cores(const ModelParams& params, double t) {
  return params.cores.mean(t);
}

ModelParams with_memory_capped(const ModelParams& params,
                               double max_value_mb) {
  ModelParams capped = params;
  auto& chain = capped.memory_per_core_mb;
  while (chain.values.size() > 2 && chain.values.back() > max_value_mb) {
    chain.values.pop_back();
    chain.ratios.pop_back();
  }
  capped.validate();
  return capped;
}

std::vector<MemoryPoint> predicted_memory_distribution(
    const ModelParams& params, double t) {
  const std::vector<double> core_pmf = params.cores.pmf(t);
  const std::vector<double> mem_pmf = params.memory_per_core_mb.pmf(t);
  std::map<double, double> dist;  // memory_mb -> probability
  for (std::size_t c = 0; c < core_pmf.size(); ++c) {
    for (std::size_t m = 0; m < mem_pmf.size(); ++m) {
      const double mem =
          params.cores.values[c] * params.memory_per_core_mb.values[m];
      dist[mem] += core_pmf[c] * mem_pmf[m];
    }
  }
  std::vector<MemoryPoint> out;
  out.reserve(dist.size());
  for (const auto& [mem, p] : dist) out.push_back({mem, p});
  return out;
}

std::vector<double> predicted_memory_cdf_at(
    const ModelParams& params, double t,
    const std::vector<double>& thresholds_mb) {
  const std::vector<MemoryPoint> dist =
      predicted_memory_distribution(params, t);
  std::vector<double> out;
  out.reserve(thresholds_mb.size());
  for (double threshold : thresholds_mb) {
    double acc = 0.0;
    for (const MemoryPoint& p : dist) {
      if (p.memory_mb <= threshold) acc += p.probability;
    }
    out.push_back(acc);
  }
  return out;
}

double predicted_mean_memory_mb(const ModelParams& params, double t) {
  // Independence of cores and per-core memory makes the mean separable.
  return params.cores.mean(t) * params.memory_per_core_mb.mean(t);
}

MomentPrediction predicted_dhrystone(const ModelParams& params, double t) {
  return {params.dhrystone.mean(t), params.dhrystone.stddev(t)};
}

MomentPrediction predicted_whetstone(const ModelParams& params, double t) {
  return {params.whetstone.mean(t), params.whetstone.stddev(t)};
}

MomentPrediction predicted_disk_gb(const ModelParams& params, double t) {
  return {params.disk_gb.mean(t), params.disk_gb.stddev(t)};
}

QuantileHost predicted_quantile_host(const ModelParams& params, double t,
                                     double q) {
  QuantileHost host;
  host.cores = params.cores.quantile(t, q);
  // Total memory quantile from the exact discrete distribution.
  const std::vector<MemoryPoint> mem_dist =
      predicted_memory_distribution(params, t);
  double acc = 0.0;
  host.memory_mb = mem_dist.empty() ? 0.0 : mem_dist.back().memory_mb;
  for (const MemoryPoint& p : mem_dist) {
    acc += p.probability;
    if (q <= acc) {
      host.memory_mb = p.memory_mb;
      break;
    }
  }
  const double z = stats::normal_quantile(q);
  host.whetstone_mips =
      std::max(1.0, params.whetstone.mean(t) + z * params.whetstone.stddev(t));
  host.dhrystone_mips =
      std::max(1.0, params.dhrystone.mean(t) + z * params.dhrystone.stddev(t));
  host.disk_avail_gb =
      stats::LogNormalDist::from_moments(params.disk_gb.mean(t),
                                         params.disk_gb.variance(t))
          .quantile(q);
  return host;
}

}  // namespace resmodel::core

#include "core/host_generator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "model/cholesky_gaussian.h"
#include "stats/distributions.h"
#include "stats/special_functions.h"

namespace resmodel::core {

namespace {
// Benchmarks are strictly positive physical quantities; a normal marginal
// with a large variance can stray below zero, so clamp to a floor around
// the slowest plausible volunteer host (an early Pentium, ~25 MIPS).
// The paper's Figure 12 shows the same effect absorbed into the CDF tail.
constexpr double kMinMips = 25.0;

// Chunk size of the deterministic parallel engines. Each chunk gets its own
// (seed, chunk)-derived stream, so results are thread-count invariant.
constexpr std::size_t kChunk = 4096;

std::uint64_t chunk_seed(std::uint64_t seed, std::size_t chunk) noexcept {
  return seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1));
}
}  // namespace

// Everything about a target date the per-host loop would otherwise
// recompute: the two discrete pmfs, the benchmark moments and the
// moment-matched disk log-normal.
struct HostGenerator::DateContext {
  double t;
  std::vector<double> cores_pmf;
  std::vector<double> memory_pmf;
  double whetstone_mean, whetstone_sd;
  double dhrystone_mean, dhrystone_sd;
  stats::LogNormalDist disk;
};

HostGenerator::HostGenerator(ModelParams params)
    : HostGenerator(std::move(params), nullptr) {}

HostGenerator::HostGenerator(
    ModelParams params,
    std::shared_ptr<const model::CorrelationModel> correlation)
    : params_(std::move(params)), correlation_(std::move(correlation)) {
  params_.validate();
  if (!correlation_) {
    correlation_ = std::make_shared<model::CholeskyGaussian>(
        params_.resource_correlation);
  }
  if (correlation_->dimension() != model::kTripleDim) {
    throw std::invalid_argument(
        "HostGenerator: correlation model must have dimension 3 "
        "({mem/core, Whetstone, Dhrystone})");
  }
}

GeneratedHost HostGenerator::generate(util::ModelDate date,
                                      util::Rng& rng) const {
  const double t = date.t();
  GeneratedHost host;

  // 1. Core count: discrete pmf from the chained ratios.
  host.n_cores = static_cast<int>(params_.cores.quantile(t, rng.uniform()));

  // 2. Correlated standard-normal triple.
  double vc[model::kTripleDim];
  correlation_->sample_normals(t, rng, vc);

  // 3. Per-core memory: normal -> uniform -> discrete quantile.
  const double u = stats::normal_cdf(vc[kMemPerCore]);
  host.memory_per_core_mb = params_.memory_per_core_mb.quantile(t, u);
  host.memory_mb = host.memory_per_core_mb * host.n_cores;

  // 4. Benchmarks: renormalize to the predicted mean/variance.
  host.whetstone_mips =
      std::max(kMinMips, params_.whetstone.mean(t) +
                             vc[kWhetstone] * params_.whetstone.stddev(t));
  host.dhrystone_mips =
      std::max(kMinMips, params_.dhrystone.mean(t) +
                             vc[kDhrystone] * params_.dhrystone.stddev(t));

  // 5. Disk: independent log-normal with the predicted moments.
  const auto disk = stats::LogNormalDist::from_moments(
      params_.disk_gb.mean(t), params_.disk_gb.variance(t));
  host.disk_avail_gb = disk.sample(rng);

  return host;
}

std::vector<GeneratedHost> HostGenerator::generate_many(
    util::ModelDate date, std::size_t count, util::Rng& rng) const {
  std::vector<GeneratedHost> hosts;
  hosts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(generate(date, rng));
  }
  return hosts;
}

std::vector<GeneratedHost> HostGenerator::generate_many_parallel(
    util::ModelDate date, std::size_t count, std::uint64_t seed,
    int threads) const {
  return generate_batch_parallel(date, count, seed, threads).to_hosts();
}

HostGenerator::DateContext HostGenerator::date_context(
    util::ModelDate date) const {
  const double t = date.t();
  return DateContext{
      t,
      params_.cores.pmf(t),
      params_.memory_per_core_mb.pmf(t),
      params_.whetstone.mean(t),
      params_.whetstone.stddev(t),
      params_.dhrystone.mean(t),
      params_.dhrystone.stddev(t),
      stats::LogNormalDist::from_moments(params_.disk_gb.mean(t),
                                         params_.disk_gb.variance(t)),
  };
}

void HostGenerator::fill_range(GeneratedHostBatch& batch, std::size_t begin,
                               std::size_t end, const DateContext& ctx,
                               util::Rng& rng) const {
  const model::CorrelationModel& correlation = *correlation_;
  for (std::size_t i = begin; i < end; ++i) {
    const int cores = static_cast<int>(
        params_.cores.quantile_from_pmf(ctx.cores_pmf, rng.uniform()));

    double vc[model::kTripleDim];
    correlation.sample_normals(ctx.t, rng, vc);

    const double u = stats::normal_cdf(vc[kMemPerCore]);
    const double per_core =
        params_.memory_per_core_mb.quantile_from_pmf(ctx.memory_pmf, u);

    batch.n_cores[i] = cores;
    batch.memory_per_core_mb[i] = per_core;
    batch.memory_mb[i] = per_core * cores;
    batch.whetstone_mips[i] = std::max(
        kMinMips, ctx.whetstone_mean + vc[kWhetstone] * ctx.whetstone_sd);
    batch.dhrystone_mips[i] = std::max(
        kMinMips, ctx.dhrystone_mean + vc[kDhrystone] * ctx.dhrystone_sd);
    batch.disk_avail_gb[i] = ctx.disk.sample(rng);
  }
}

GeneratedHostBatch HostGenerator::generate_batch(util::ModelDate date,
                                                 std::size_t count,
                                                 util::Rng& rng) const {
  GeneratedHostBatch batch;
  batch.resize(count);
  const DateContext ctx = date_context(date);
  fill_range(batch, 0, count, ctx, rng);
  return batch;
}

GeneratedHostBatch HostGenerator::generate_batch_parallel(
    util::ModelDate date, std::size_t count, std::uint64_t seed,
    int threads) const {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  GeneratedHostBatch batch;
  batch.resize(count);
  const DateContext ctx = date_context(date);
  const std::size_t chunk_count = (count + kChunk - 1) / kChunk;
  std::atomic<std::size_t> next_chunk{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t chunk = next_chunk.fetch_add(1);
      if (chunk >= chunk_count) return;
      // Chunk-local stream: depends only on (seed, chunk index), so the
      // result is independent of which thread runs which chunk.
      util::Rng rng(chunk_seed(seed, chunk));
      const std::size_t begin = chunk * kChunk;
      const std::size_t end = std::min(count, begin + kChunk);
      fill_range(batch, begin, end, ctx, rng);
    }
  };

  if (threads == 1 || chunk_count <= 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    const int n = std::min<std::size_t>(static_cast<std::size_t>(threads),
                                        chunk_count);
    pool.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pool.emplace_back(worker);
  }
  return batch;
}

void GeneratedHostBatch::resize(std::size_t n) {
  n_cores.resize(n);
  memory_per_core_mb.resize(n);
  memory_mb.resize(n);
  whetstone_mips.resize(n);
  dhrystone_mips.resize(n);
  disk_avail_gb.resize(n);
}

GeneratedHost GeneratedHostBatch::host(std::size_t i) const noexcept {
  return GeneratedHost{n_cores[i],        memory_per_core_mb[i],
                       memory_mb[i],      whetstone_mips[i],
                       dhrystone_mips[i], disk_avail_gb[i]};
}

std::vector<GeneratedHost> GeneratedHostBatch::to_hosts() const {
  std::vector<GeneratedHost> hosts;
  hosts.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) hosts.push_back(host(i));
  return hosts;
}

GeneratedColumns columns_of(const std::vector<GeneratedHost>& hosts) {
  GeneratedColumns cols;
  cols.cores.reserve(hosts.size());
  cols.memory_mb.reserve(hosts.size());
  cols.memory_per_core_mb.reserve(hosts.size());
  cols.whetstone_mips.reserve(hosts.size());
  cols.dhrystone_mips.reserve(hosts.size());
  cols.disk_avail_gb.reserve(hosts.size());
  for (const GeneratedHost& h : hosts) {
    cols.cores.push_back(static_cast<double>(h.n_cores));
    cols.memory_mb.push_back(h.memory_mb);
    cols.memory_per_core_mb.push_back(h.memory_per_core_mb);
    cols.whetstone_mips.push_back(h.whetstone_mips);
    cols.dhrystone_mips.push_back(h.dhrystone_mips);
    cols.disk_avail_gb.push_back(h.disk_avail_gb);
  }
  return cols;
}

GeneratedColumns columns_of(const GeneratedHostBatch& batch) {
  GeneratedColumns cols;
  cols.cores.assign(batch.n_cores.begin(), batch.n_cores.end());
  cols.memory_mb = batch.memory_mb;
  cols.memory_per_core_mb = batch.memory_per_core_mb;
  cols.whetstone_mips = batch.whetstone_mips;
  cols.dhrystone_mips = batch.dhrystone_mips;
  cols.disk_avail_gb = batch.disk_avail_gb;
  return cols;
}

}  // namespace resmodel::core

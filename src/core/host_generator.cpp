#include "core/host_generator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "stats/distributions.h"
#include "stats/special_functions.h"

namespace resmodel::core {

namespace {
// Benchmarks are strictly positive physical quantities; a normal marginal
// with a large variance can stray below zero, so clamp to a floor around
// the slowest plausible volunteer host (an early Pentium, ~25 MIPS).
// The paper's Figure 12 shows the same effect absorbed into the CDF tail.
constexpr double kMinMips = 25.0;
}  // namespace

HostGenerator::HostGenerator(ModelParams params)
    : params_(std::move(params)) {
  params_.validate();
  const auto lower = stats::cholesky(params_.resource_correlation);
  if (!lower) {
    throw std::invalid_argument(
        "HostGenerator: correlation matrix is not positive definite");
  }
  cholesky_lower_ = *lower;
}

GeneratedHost HostGenerator::generate(util::ModelDate date,
                                      util::Rng& rng) const {
  const double t = date.t();
  GeneratedHost host;

  // 1. Core count: discrete pmf from the chained ratios.
  host.n_cores = static_cast<int>(params_.cores.quantile(t, rng.uniform()));

  // 2. Correlated standard-normal triple.
  const std::vector<double> vc =
      stats::correlated_normals(rng, cholesky_lower_);

  // 3. Per-core memory: normal -> uniform -> discrete quantile.
  const double u = stats::normal_cdf(vc[kMemPerCore]);
  host.memory_per_core_mb = params_.memory_per_core_mb.quantile(t, u);
  host.memory_mb = host.memory_per_core_mb * host.n_cores;

  // 4. Benchmarks: renormalize to the predicted mean/variance.
  host.whetstone_mips =
      std::max(kMinMips, params_.whetstone.mean(t) +
                             vc[kWhetstone] * params_.whetstone.stddev(t));
  host.dhrystone_mips =
      std::max(kMinMips, params_.dhrystone.mean(t) +
                             vc[kDhrystone] * params_.dhrystone.stddev(t));

  // 5. Disk: independent log-normal with the predicted moments.
  const auto disk = stats::LogNormalDist::from_moments(
      params_.disk_gb.mean(t), params_.disk_gb.variance(t));
  host.disk_avail_gb = disk.sample(rng);

  return host;
}

std::vector<GeneratedHost> HostGenerator::generate_many(
    util::ModelDate date, std::size_t count, util::Rng& rng) const {
  std::vector<GeneratedHost> hosts;
  hosts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hosts.push_back(generate(date, rng));
  }
  return hosts;
}

std::vector<GeneratedHost> HostGenerator::generate_many_parallel(
    util::ModelDate date, std::size_t count, std::uint64_t seed,
    int threads) const {
  constexpr std::size_t kChunk = 4096;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  std::vector<GeneratedHost> hosts(count);
  const std::size_t chunk_count = (count + kChunk - 1) / kChunk;
  std::atomic<std::size_t> next_chunk{0};

  const auto worker = [&] {
    for (;;) {
      const std::size_t chunk = next_chunk.fetch_add(1);
      if (chunk >= chunk_count) return;
      // Chunk-local stream: depends only on (seed, chunk index), so the
      // result is independent of which thread runs which chunk.
      util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)));
      const std::size_t begin = chunk * kChunk;
      const std::size_t end = std::min(count, begin + kChunk);
      for (std::size_t i = begin; i < end; ++i) {
        hosts[i] = generate(date, rng);
      }
    }
  };

  if (threads == 1 || chunk_count <= 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    const int n = std::min<std::size_t>(static_cast<std::size_t>(threads),
                                        chunk_count);
    pool.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pool.emplace_back(worker);
  }
  return hosts;
}

GeneratedColumns columns_of(const std::vector<GeneratedHost>& hosts) {
  GeneratedColumns cols;
  cols.cores.reserve(hosts.size());
  cols.memory_mb.reserve(hosts.size());
  cols.memory_per_core_mb.reserve(hosts.size());
  cols.whetstone_mips.reserve(hosts.size());
  cols.dhrystone_mips.reserve(hosts.size());
  cols.disk_avail_gb.reserve(hosts.size());
  for (const GeneratedHost& h : hosts) {
    cols.cores.push_back(static_cast<double>(h.n_cores));
    cols.memory_mb.push_back(h.memory_mb);
    cols.memory_per_core_mb.push_back(h.memory_per_core_mb);
    cols.whetstone_mips.push_back(h.whetstone_mips);
    cols.dhrystone_mips.push_back(h.dhrystone_mips);
    cols.disk_avail_gb.push_back(h.disk_avail_gb);
  }
  return cols;
}

}  // namespace resmodel::core

// The correlated host-resource model (Table X of the paper).
//
// Every time-varying quantity follows the exponential evolution law
// a * exp(b * (year - 2006)):
//   - adjacent-count ratios of the discrete resources (cores 1:2, 2:4, ...;
//     per-core memory 256:512 MB, ...), from which a date-dependent discrete
//     pmf is chained (§V-D, §V-E);
//   - mean and variance of the Dhrystone / Whetstone normal distributions
//     (§V-F) and of the log-normal available-disk distribution (§V-G).
// Within-host correlation between per-core memory, Whetstone and Dhrystone
// is captured by a 3x3 Pearson matrix driven through a Cholesky factor
// (§V-F); cores and disk are sampled independently, total memory =
// per-core memory x cores (§V-E, §V-G).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/matrix.h"
#include "stats/regression.h"
#include "util/kv_store.h"

namespace resmodel::core {

/// A discrete resource whose composition evolves as a chain of adjacent
/// ratios: ratio[i](t) = count(values[i]) / count(values[i+1]).
struct DiscreteRatioChain {
  std::vector<double> values;                 ///< ascending, e.g. {1,2,4,8,16}
  std::vector<stats::ExponentialLaw> ratios;  ///< size == values.size() - 1

  /// Probability of each value at model time t (years since 2006),
  /// reconstructed by chaining the ratios and normalizing.
  std::vector<double> pmf(double t) const;

  /// Inverse CDF of pmf(t): smallest value whose cumulative prob >= u.
  double quantile(double t, double u) const;

  /// Same inverse CDF over an already-computed pmf(t) — the batched
  /// generation engine hoists the pmf out of the per-host loop and must
  /// stay bit-identical to quantile(t, u).
  double quantile_from_pmf(std::span<const double> pmf, double u) const
      noexcept;

  /// Expected value at time t.
  double mean(double t) const;

  /// Throws std::invalid_argument if sizes are inconsistent or values are
  /// not strictly ascending.
  void validate() const;
};

/// Mean and variance evolution of a continuous resource.
struct MomentLaws {
  stats::ExponentialLaw mean_law;
  stats::ExponentialLaw variance_law;

  double mean(double t) const noexcept { return mean_law(t); }
  double variance(double t) const noexcept { return variance_law(t); }
  double stddev(double t) const noexcept;
};

/// Order of the correlated triple in `resource_correlation` (matches the R
/// matrix printed in §V-F).
enum CorrelatedIndex : std::size_t {
  kMemPerCore = 0,
  kWhetstone = 1,
  kDhrystone = 2,
};

/// The full generative model.
struct ModelParams {
  DiscreteRatioChain cores;
  DiscreteRatioChain memory_per_core_mb;
  MomentLaws dhrystone;
  MomentLaws whetstone;
  MomentLaws disk_gb;
  /// 3x3 Pearson correlation among {mem/core, Whetstone, Dhrystone}.
  stats::Matrix resource_correlation;

  /// Throws std::invalid_argument if any component is inconsistent
  /// (ragged chains, non-symmetric/non-PD correlation, non-positive a's).
  void validate() const;

  /// Round-trip serialization through the flat key-value format the
  /// public model-generation tool emits.
  util::KvStore to_kv() const;
  static ModelParams from_kv(const util::KvStore& kv);

  std::string serialize() const { return to_kv().serialize(); }
  static ModelParams deserialize(const std::string& text) {
    return from_kv(util::KvStore::parse(text));
  }
};

/// The published model: Tables IV, V, VI and the correlation matrix from
/// Table III, plus the paper's §VI-C estimate for the 8:16 core ratio
/// (a = 12, b = -0.2).
ModelParams paper_params();

}  // namespace resmodel::core

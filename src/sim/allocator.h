// Greedy round-robin resource allocation (§VII).
//
// "The simulation calculates the utility of each application running on
// each resource, then assigns resources to applications in a greedy
// round-robin fashion": applications take turns, each claiming the
// still-unassigned host with the highest utility for it, until every host
// is assigned.
//
// The hot path is columnar and log-domain: each application's preference
// score is the fused sweep
//   alpha*logC + beta*logM + gamma*logI + delta*logF + epsilon*logD
// over the precomputed log columns of a HostResourcesSoA — monotone in the
// Cobb-Douglas utility, so ordering needs no pow/exp per pair; exp is
// applied only to the hosts an application actually wins, when summing its
// total utility. Equal-score hosts are ordered by ascending host index,
// making assignments deterministic across standard libraries.
#pragma once

#include <span>
#include <vector>

#include "backend/backend.h"
#include "sim/host_soa.h"
#include "sim/utility.h"

namespace resmodel::sim {

/// Result of one allocation run.
struct AllocationResult {
  /// total_utility[a] = sum of utilities of hosts assigned to app a.
  std::vector<double> total_utility;
  /// hosts_assigned[a] = number of hosts app a received.
  std::vector<std::size_t> hosts_assigned;
  /// assignment[h] = application index owning host h.
  std::vector<std::size_t> assignment;
};

/// Runs the greedy round-robin allocation of every host to the given
/// applications over a columnar host set. The per-application score+sort
/// phase runs on `threads` workers (0 = hardware concurrency); the result
/// is identical for any thread count. Complexity O(A * N log N) via
/// per-application key-value sorted preference lists.
///
/// `backend` selects the arm for the fused score sweep + radix-key pack
/// (src/backend/README.md): kScalar transposes to AoS and delegates to
/// allocate_round_robin_reference; the other arms differ only in the
/// kernel-ops table. Allocations are identical across arms.
AllocationResult allocate_round_robin(
    std::span<const ApplicationSpec> apps, const HostResourcesSoA& hosts,
    int threads = 0, backend::Backend backend = backend::Backend::kAuto);

/// AoS entry point, kept for the existing tests and small callers: thin
/// wrapper that transposes into a HostResourcesSoA and delegates.
AllocationResult allocate_round_robin(std::span<const ApplicationSpec> apps,
                                      std::span<const HostResources> hosts);

/// The pre-SoA implementation — per-pair std::pow utilities and a
/// comparator index sort — retained as the benchmark baseline and as the
/// golden oracle for the SoA equivalence tests. Same deterministic
/// host-index tie-break as the SoA path.
AllocationResult allocate_round_robin_reference(
    std::span<const ApplicationSpec> apps,
    std::span<const HostResources> hosts);

}  // namespace resmodel::sim

// Greedy round-robin resource allocation (§VII).
//
// "The simulation calculates the utility of each application running on
// each resource, then assigns resources to applications in a greedy
// round-robin fashion": applications take turns, each claiming the
// still-unassigned host with the highest utility for it, until every host
// is assigned.
#pragma once

#include <span>
#include <vector>

#include "sim/utility.h"

namespace resmodel::sim {

/// Result of one allocation run.
struct AllocationResult {
  /// total_utility[a] = sum of utilities of hosts assigned to app a.
  std::vector<double> total_utility;
  /// hosts_assigned[a] = number of hosts app a received.
  std::vector<std::size_t> hosts_assigned;
  /// assignment[h] = application index owning host h.
  std::vector<std::size_t> assignment;
};

/// Runs the greedy round-robin allocation of every host to the given
/// applications. Complexity O(A * N log N) via per-application sorted
/// preference lists.
AllocationResult allocate_round_robin(std::span<const ApplicationSpec> apps,
                                      std::span<const HostResources> hosts);

}  // namespace resmodel::sim

#include "sim/bag_of_tasks.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "churn/churn_scheduler.h"
#include "sim/replication.h"
#include "sim/schedule_state.h"
#include "stats/distributions.h"

namespace resmodel::sim {

bool is_churn_policy(SchedulingPolicy policy) noexcept {
  switch (policy) {
    case SchedulingPolicy::kChurnEctCheckpoint:
    case SchedulingPolicy::kChurnEctRestart:
    case SchedulingPolicy::kChurnEctAbandon:
      return true;
    default:
      return false;
  }
}

// Deliberately one code path for both consumers: deriving the fractions
// FROM the compiled timeline is what guarantees derate and churn runs
// consume identical realizations (and the CSR batch generation is what
// parallelizes the interval draws). A derate-only caller therefore pays
// for a timeline it discards and a churn caller for a fraction sweep it
// ignores — both O(total intervals), accepted for the stream-identity
// guarantee.
AvailabilityRealization realize_availability(std::span<const double> speed,
                                             const BagOfTasksConfig& config,
                                             util::Rng& rng) {
  if (!(config.availability_horizon_days > 0.0)) {
    throw std::invalid_argument(
        "realize_availability: non-positive availability horizon");
  }
  const double horizon = config.availability_horizon_days;
  const synth::StartMode mode = config.availability_stationary_start
                                    ? synth::StartMode::kStationary
                                    : synth::StartMode::kOnAtStart;
  AvailabilityRealization real;
  churn::IntervalTimeline timeline;
  if (config.availability_coupled) {
    // Copula draws first (one dimension-2 sample per host, in host
    // order), then the interval forks — a fixed consumption order shared
    // by every entry point.
    const std::vector<synth::AvailabilityParams> params =
        churn::couple_availability_to_speed(
            speed, config.availability, config.availability_coupling, rng);
    timeline = churn::IntervalTimeline::generate(params, 0.0, horizon, rng,
                                                 mode);
  } else {
    const synth::AvailabilityModel model(config.availability);
    timeline = churn::IntervalTimeline::generate(model, speed.size(), 0.0,
                                                 horizon, rng, mode);
  }
  real.fractions.resize(speed.size());
  for (std::size_t h = 0; h < speed.size(); ++h) {
    real.fractions[h] = timeline.fraction(h, 0.0, horizon);
  }
  real.timeline =
      std::make_shared<const churn::IntervalTimeline>(std::move(timeline));
  return real;
}

namespace {

// Base rates without any availability treatment (no rng consumption) —
// the shared first step of both rate paths and the speed column the
// copula coupling ranks against.
std::vector<double> base_host_rates(std::span<const HostResources> hosts) {
  std::vector<double> rates(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    rates[i] = std::max(1.0, hosts[i].cores * hosts[i].whetstone_mips);
  }
  return rates;
}

}  // namespace

std::vector<double> base_host_rates(const HostResourcesSoA& hosts) {
  const std::size_t n = hosts.size();
  std::vector<double> rates(n);
  const double* cores = hosts.cores.data();
  const double* whet = hosts.whetstone_mips.data();
  // Straight from the columns: one vectorizable multiply+max sweep, no
  // per-host struct loads.
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = std::max(1.0, cores[i] * whet[i]);
  }
  return rates;
}

namespace {

// Derates `rates` in place by each host's sampled long-run ON fraction.
// The realization forks the rng once per host, in host order — the single
// consumption order every entry point shares, so AoS and SoA runs stay
// bit-identical.
void derate_by_availability(std::vector<double>& rates,
                            const BagOfTasksConfig& config, util::Rng& rng) {
  const AvailabilityRealization real = realize_availability(rates, config, rng);
  for (std::size_t h = 0; h < rates.size(); ++h) {
    rates[h] *= std::max(0.01, real.fractions[h]);
  }
}

std::vector<double> sample_tasks(const BagOfTasksConfig& config,
                                 util::Rng& rng) {
  const double mean = config.task_cost_mips_days_mean;
  const double sd = mean * config.task_cost_cv;
  const auto dist = stats::LogNormalDist::from_moments(mean, sd * sd);
  std::vector<double> tasks(config.task_count);
  for (double& t : tasks) t = dist.sample(rng);
  return tasks;
}

// Folds the per-host aggregates out of busy_days in one pass; the static
// policies' makespan IS the max busy time, so no separate max_element
// sweep is needed.
BagOfTasksResult finish(const std::vector<double>& busy_days,
                        double total_cpu_days) {
  BagOfTasksResult result;
  result.total_cpu_days = total_cpu_days;
  double sum = 0.0;
  for (double b : busy_days) {
    sum += b;
    result.max_host_busy_days = std::max(result.max_host_busy_days, b);
    if (b > 0.0) ++result.hosts_used;
  }
  result.mean_host_busy_days =
      busy_days.empty() ? 0.0 : sum / static_cast<double>(busy_days.size());
  result.makespan_days = result.max_host_busy_days;
  return result;
}

BagOfTasksResult finish(const std::vector<double>& busy_days,
                        double total_cpu_days, double makespan) {
  BagOfTasksResult result = finish(busy_days, total_cpu_days);
  result.makespan_days = makespan;
  return result;
}

}  // namespace

std::string to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kStaticRoundRobin: return "static round-robin";
    case SchedulingPolicy::kStaticSpeedWeighted:
      return "static speed-weighted";
    case SchedulingPolicy::kDynamicPull: return "dynamic pull";
    case SchedulingPolicy::kDynamicEct: return "dynamic ECT";
    case SchedulingPolicy::kChurnEctCheckpoint:
      return "churn ECT (checkpoint)";
    case SchedulingPolicy::kChurnEctRestart: return "churn ECT (restart)";
    case SchedulingPolicy::kChurnEctAbandon: return "churn ECT (abandon)";
  }
  return "unknown";
}

std::vector<double> compute_host_rates(std::span<const HostResources> hosts,
                                       const BagOfTasksConfig& config,
                                       util::Rng& rng) {
  std::vector<double> rates = base_host_rates(hosts);
  if (config.model_availability) derate_by_availability(rates, config, rng);
  return rates;
}

std::vector<double> compute_host_rates(const HostResourcesSoA& hosts,
                                       const BagOfTasksConfig& config,
                                       util::Rng& rng) {
  std::vector<double> rates = base_host_rates(hosts);
  if (config.model_availability) derate_by_availability(rates, config, rng);
  return rates;
}

namespace {

// The policy dispatch shared by every entry point: everything below only
// needs a built ScheduleState (plus, for the churn family, the interval
// timeline). `reference_dynamics` selects the retained scalar /
// priority_queue / full-walk kernels for the dynamic policies.
// `cursor_seed`, when given, is a ChurnScheduler over an identically
// fresh state whose cursor columns are copied instead of re-derived —
// run_policy_sweep's per-population warm start.
BagOfTasksResult run_with_state(ScheduleState state,
                                const churn::IntervalTimeline* timeline,
                                const BagOfTasksConfig& config,
                                SchedulingPolicy policy, util::Rng& rng,
                                bool reference_dynamics,
                                const churn::ChurnScheduler* cursor_seed) {
  const std::vector<double> tasks = sample_tasks(config, rng);
  const std::size_t host_count = state.size();
  state.backend = config.backend;

  // Fault profiles are drawn AFTER the task costs, and only when the mix
  // actually injects faults — a replication-only run (or an all-honest
  // mix) therefore schedules the identical sampled workload a plain run
  // does, which is what the 1-of-1-no-fault == plain equivalence tests
  // pin down.
  FaultProfiles faults;
  if (config.replicated_run()) {
    config.replication.validate();
    if (config.fault_mix.any()) {
      faults = sample_fault_profiles(host_count, config.fault_mix, rng);
    } else {
      faults.type.assign(host_count, FaultType::kHonest);
      faults.slowdown.assign(host_count, 1.0);
    }
    if (timeline == nullptr) {
      throw std::invalid_argument(
          "run_bag_of_tasks: replicated run needs an interval timeline");
    }
  }

  if (is_churn_policy(policy)) {
    churn::InterruptionPolicy interruption =
        churn::InterruptionPolicy::kCheckpoint;
    if (policy == SchedulingPolicy::kChurnEctRestart) {
      interruption = churn::InterruptionPolicy::kRestart;
    } else if (policy == SchedulingPolicy::kChurnEctAbandon) {
      interruption = churn::InterruptionPolicy::kAbandon;
    }
    churn::ChurnSchedulerConfig sched_config;
    sched_config.lookahead_levels = config.churn_lookahead_levels;
    sched_config.backend = config.backend;
    std::optional<churn::ChurnScheduler> scheduler;
    // The seed carries its own config; it may only stand in for a fresh
    // derivation when the depth and backend agree, or the cell would
    // silently run at the seed's settings and break the cell ==
    // standalone contract.
    if (cursor_seed != nullptr &&
        cursor_seed->config().lookahead_levels ==
            config.churn_lookahead_levels &&
        cursor_seed->config().backend == config.backend) {
      scheduler.emplace(state, *cursor_seed);
    } else {
      scheduler.emplace(state, *timeline, sched_config);
    }
    if (config.replicated_run()) {
      return run_replicated_churn(*scheduler, state, tasks, faults,
                                  config.replication, interruption,
                                  reference_dynamics);
    }
    const churn::ChurnScheduleTotals totals =
        reference_dynamics ? scheduler->run_reference(tasks, interruption)
                           : scheduler->run(tasks, interruption);
    BagOfTasksResult result =
        finish(state.busy_days, totals.total_cpu_days, totals.makespan_days);
    result.wasted_cpu_days = totals.wasted_cpu_days;
    result.interruptions = totals.interruptions;
    return result;
  }

  if (config.replicated_run()) {
    // The non-churn replicated arm: only kDynamicEct has a completion-
    // time model to validate deadlines against. Static striping and pull
    // have no per-replica completion estimate — graceful refusal beats a
    // silently meaningless quorum.
    if (policy != SchedulingPolicy::kDynamicEct) {
      throw std::invalid_argument(
          "run_bag_of_tasks: replication/fault injection requires an "
          "ECT-family policy (dynamic ECT or churn ECT)");
    }
    return run_replicated_ect(state, *timeline, tasks, faults,
                              config.replication, config.backend,
                              reference_dynamics);
  }

  switch (policy) {
    case SchedulingPolicy::kStaticRoundRobin: {
      double total_cpu_days = 0.0;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const std::size_t h = i % host_count;
        const double days = tasks[i] * state.inv_rates[h];
        state.busy_days[h] += days;
        total_cpu_days += days;
      }
      return finish(state.busy_days, total_cpu_days);
    }

    case SchedulingPolicy::kStaticSpeedWeighted: {
      // Deal tasks in rate-proportional quotas: host h receives the next
      // task whenever its accumulated *work share* is furthest below its
      // rate share. Equivalent to largest-remaining-quota dealing. The
      // shares are loop-invariant, so the rates[h] / total_rate divide is
      // hoisted into a precomputed column.
      const double total_rate =
          std::accumulate(state.rates.begin(), state.rates.end(), 0.0);
      std::vector<double> share(host_count);
      for (std::size_t h = 0; h < host_count; ++h) {
        share[h] = state.rates[h] / total_rate;
      }
      std::vector<double> assigned_work(host_count, 0.0);
      double total_cpu_days = 0.0;
      double total_assigned = 0.0;
      for (const double task : tasks) {
        // Deficit in cost units: how far below its rate-proportional share
        // of the work assigned so far this host currently is. Looking one
        // task ahead keeps the first |H| picks spread across hosts.
        std::size_t best = 0;
        double best_deficit = -std::numeric_limits<double>::infinity();
        const double next_total = total_assigned + task;
        for (std::size_t h = 0; h < host_count; ++h) {
          const double deficit = share[h] * next_total - assigned_work[h];
          if (deficit > best_deficit) {
            best_deficit = deficit;
            best = h;
          }
        }
        const double days = task * state.inv_rates[best];
        state.busy_days[best] += days;
        total_cpu_days += days;
        assigned_work[best] += task;
        total_assigned = next_total;
      }
      return finish(state.busy_days, total_cpu_days);
    }

    case SchedulingPolicy::kDynamicPull: {
      // The scalar arm means "the retained reference oracles" across the
      // board, so it selects the priority_queue pull kernel too (the ECT
      // and churn paths route themselves via state.backend / the
      // scheduler config).
      const DynamicScheduleTotals totals =
          reference_dynamics || config.backend == backend::Backend::kScalar
              ? pull_schedule_reference(state, tasks)
              : pull_schedule_dary(state, tasks);
      return finish(state.busy_days, totals.total_cpu_days,
                    totals.makespan_days);
    }

    case SchedulingPolicy::kDynamicEct: {
      const DynamicScheduleTotals totals =
          reference_dynamics ? ect_schedule_reference(state, tasks)
                             : ect_schedule_blocked(state, tasks);
      return finish(state.busy_days, totals.total_cpu_days,
                    totals.makespan_days);
    }

    case SchedulingPolicy::kChurnEctCheckpoint:
    case SchedulingPolicy::kChurnEctRestart:
    case SchedulingPolicy::kChurnEctAbandon:
      break;  // handled above; unreachable
  }
  throw std::invalid_argument("run_bag_of_tasks: unknown policy");
}

void validate_config(const BagOfTasksConfig& config) {
  if (config.task_count == 0 || !(config.task_cost_mips_days_mean > 0.0) ||
      !(config.task_cost_cv > 0.0)) {
    throw std::invalid_argument("run_bag_of_tasks: degenerate config");
  }
  if (config.churn_lookahead_levels == 0 ||
      config.churn_lookahead_levels > churn::kMaxLookaheadLevels) {
    throw std::invalid_argument(
        "run_bag_of_tasks: churn_lookahead_levels must be in [1, " +
        std::to_string(churn::kMaxLookaheadLevels) + "]");
  }
  if (config.replicated_run()) {
    config.replication.validate();
    config.fault_mix.validate();
  }
}

BagOfTasksResult run_with_rates(std::vector<double> rates,
                                const churn::IntervalTimeline* timeline,
                                const BagOfTasksConfig& config,
                                SchedulingPolicy policy, util::Rng& rng,
                                bool reference_dynamics) {
  return run_with_state(ScheduleState::from_rates(std::move(rates)), timeline,
                        config, policy, rng, reference_dynamics,
                        /*cursor_seed=*/nullptr);
}

template <typename Hosts>
BagOfTasksResult run_any(const Hosts& hosts, const BagOfTasksConfig& config,
                         SchedulingPolicy policy, util::Rng& rng,
                         bool reference_dynamics) {
  if (hosts.empty()) {
    throw std::invalid_argument("run_bag_of_tasks: no hosts");
  }
  validate_config(config);
  if (is_churn_policy(policy)) {
    // Churn policies schedule against the interval structure itself: full
    // (underated) rates plus the timeline, drawn with the same stream the
    // derate path would consume — a derate run and a churn run with equal
    // seeds walk the same realizations.
    std::vector<double> rates = base_host_rates(hosts);
    const AvailabilityRealization real =
        realize_availability(rates, config, rng);
    return run_with_rates(std::move(rates), real.timeline.get(), config,
                          policy, rng, reference_dynamics);
  }
  if (config.replicated_run()) {
    // kDynamicEct under replication: the rates derate exactly as the
    // plain path (iff model_availability), but the SAME realization's
    // timeline rides along for the crash model — one draw, consumed
    // identically to the churn branch above.
    std::vector<double> rates = base_host_rates(hosts);
    const AvailabilityRealization real =
        realize_availability(rates, config, rng);
    if (config.model_availability) {
      for (std::size_t h = 0; h < rates.size(); ++h) {
        rates[h] *= std::max(0.01, real.fractions[h]);
      }
    }
    return run_with_rates(std::move(rates), real.timeline.get(), config,
                          policy, rng, reference_dynamics);
  }
  return run_with_rates(compute_host_rates(hosts, config, rng), nullptr,
                        config, policy, rng, reference_dynamics);
}

}  // namespace

BagOfTasksResult run_bag_of_tasks(std::span<const HostResources> hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng) {
  return run_any(hosts, config, policy, rng, /*reference_dynamics=*/false);
}

BagOfTasksResult run_bag_of_tasks(const HostResourcesSoA& hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng) {
  return run_any(hosts, config, policy, rng, /*reference_dynamics=*/false);
}

BagOfTasksResult run_bag_of_tasks(const HostResourcesSoA& hosts,
                                  const AvailabilityRealization& availability,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng) {
  if (hosts.empty()) {
    throw std::invalid_argument("run_bag_of_tasks: no hosts");
  }
  validate_config(config);
  std::vector<double> rates = base_host_rates(hosts);
  if (is_churn_policy(policy)) {
    if (!availability.timeline ||
        availability.timeline->host_count() != rates.size()) {
      throw std::invalid_argument(
          "run_bag_of_tasks: availability timeline does not cover the hosts");
    }
    return run_with_rates(std::move(rates), availability.timeline.get(),
                          config, policy, rng, /*reference_dynamics=*/false);
  }
  if (config.model_availability) {
    if (availability.fractions.size() != rates.size()) {
      throw std::invalid_argument(
          "run_bag_of_tasks: availability fractions do not cover the hosts");
    }
    for (std::size_t h = 0; h < rates.size(); ++h) {
      rates[h] *= std::max(0.01, availability.fractions[h]);
    }
  }
  const churn::IntervalTimeline* timeline = nullptr;
  if (config.replicated_run()) {
    // Replicated kDynamicEct needs the realization's timeline for the
    // crash model even when the rates are not derated.
    if (!availability.timeline ||
        availability.timeline->host_count() != rates.size()) {
      throw std::invalid_argument(
          "run_bag_of_tasks: availability timeline does not cover the hosts");
    }
    timeline = availability.timeline.get();
  }
  return run_with_rates(std::move(rates), timeline, config, policy, rng,
                        /*reference_dynamics=*/false);
}

BagOfTasksResult run_bag_of_tasks_reference(
    std::span<const HostResources> hosts, const BagOfTasksConfig& config,
    SchedulingPolicy policy, util::Rng& rng) {
  return run_any(hosts, config, policy, rng, /*reference_dynamics=*/true);
}

BagOfTasksResult run_bag_of_tasks_reference(const HostResourcesSoA& hosts,
                                            const BagOfTasksConfig& config,
                                            SchedulingPolicy policy,
                                            util::Rng& rng) {
  return run_any(hosts, config, policy, rng, /*reference_dynamics=*/true);
}

PolicySweepResult run_policy_sweep(std::span<const SweepPopulation> populations,
                                   const PolicySweepConfig& config) {
  if (populations.empty() || config.policies.empty() ||
      config.task_counts.empty()) {
    throw std::invalid_argument("run_policy_sweep: empty grid axis");
  }
  for (const SweepPopulation& pop : populations) {
    if (pop.hosts.empty()) {
      throw std::invalid_argument("run_policy_sweep: empty population '" +
                                  pop.name + "'");
    }
  }
  // Validate every cell's inputs up front: a throw from inside a spawned
  // worker would land in std::terminate.
  for (const std::size_t task_count : config.task_counts) {
    BagOfTasksConfig probe = config.base;
    probe.task_count = task_count;
    validate_config(probe);
  }
  const bool replicated = config.base.replicated_run();
  bool any_churn = false;
  for (const SchedulingPolicy policy : config.policies) {
    switch (policy) {
      case SchedulingPolicy::kStaticRoundRobin:
      case SchedulingPolicy::kStaticSpeedWeighted:
      case SchedulingPolicy::kDynamicPull:
        // Up-front refusal (a throw inside a spawned worker would land in
        // std::terminate): the replicated engine only composes with the
        // ECT-family policies.
        if (replicated) {
          throw std::invalid_argument(
              "run_policy_sweep: replication/fault injection requires "
              "ECT-family policies (dynamic ECT or churn ECT)");
        }
        break;
      case SchedulingPolicy::kDynamicEct:
        break;
      case SchedulingPolicy::kChurnEctCheckpoint:
      case SchedulingPolicy::kChurnEctRestart:
      case SchedulingPolicy::kChurnEctAbandon:
        any_churn = true;
        break;
      default:
        throw std::invalid_argument("run_policy_sweep: unknown policy");
    }
  }

  PolicySweepResult result;
  result.policy_count = config.policies.size();
  result.task_count_count = config.task_counts.size();
  const std::size_t cell_count =
      populations.size() * result.policy_count * result.task_count_count;
  result.cells.resize(cell_count);

  // Every cell of one population reseeds Rng(workload_seed) and would
  // re-derive identical warm state — the rate vector (including the
  // expensive per-host availability histories), the rate-sorted ect_*
  // caches, and the churn cursor columns (one timeline binary search per
  // host) — so all of it is computed once per population here: built
  // ScheduleStates that cells COPY (column memcpy instead of re-sort /
  // re-derate), the interval timeline drawn from the very same forks,
  // a ChurnScheduler whose cursor columns seed each churn cell, and the
  // rng state each cell's task sampling resumes from. A cell stays
  // bit-identical to a standalone
  // run_bag_of_tasks(hosts, config, policy, Rng(workload_seed)): derate
  // cells resume from the flag-dependent stream, churn cells from the
  // post-realization stream (the two coincide when model_availability is
  // set, because both paths consume the identical realization), and the
  // copied caches/cursors hold exactly the values a fresh derivation
  // produces.
  bool any_ect = any_churn;
  for (const SchedulingPolicy policy : config.policies) {
    if (policy == SchedulingPolicy::kDynamicEct) any_ect = true;
  }
  struct SharedState {
    ScheduleState state_flagged;  ///< rates derated iff model_availability
    ScheduleState state_base;     ///< full rates (churn cells); any_churn only
    util::Rng rng_after_flagged;
    std::shared_ptr<const churn::IntervalTimeline> timeline;
    util::Rng rng_after_avail;
    std::optional<churn::ChurnScheduler> cursor_seed;  ///< over state_base
  };
  std::vector<SharedState> shared(populations.size());
  for (std::size_t p = 0; p < populations.size(); ++p) {
    SharedState& pop = shared[p];
    util::Rng rng(config.workload_seed);
    std::vector<double> base_rates = base_host_rates(populations[p].hosts);
    std::vector<double> flagged_rates;
    if (config.base.model_availability || any_churn || replicated) {
      util::Rng avail_rng = rng;
      const AvailabilityRealization real =
          realize_availability(base_rates, config.base, avail_rng);
      flagged_rates = base_rates;
      if (config.base.model_availability) {
        for (std::size_t h = 0; h < flagged_rates.size(); ++h) {
          flagged_rates[h] *= std::max(0.01, real.fractions[h]);
        }
        rng = avail_rng;
      }
      // Replicated kDynamicEct cells consult the timeline too (crash
      // model), not just the churn cells.
      if (any_churn || replicated) pop.timeline = real.timeline;
      pop.rng_after_avail = avail_rng;
    } else {
      flagged_rates = base_rates;
    }
    pop.rng_after_flagged = rng;
    if (any_churn) {
      pop.state_base = ScheduleState::from_rates(std::move(base_rates));
      pop.state_base.ensure_ect_caches();
      churn::ChurnSchedulerConfig seed_config;
      seed_config.lookahead_levels = config.base.churn_lookahead_levels;
      seed_config.backend = config.base.backend;
      pop.cursor_seed.emplace(pop.state_base, *pop.timeline, seed_config);
    }
    pop.state_flagged = ScheduleState::from_rates(std::move(flagged_rates));
    if (any_ect) pop.state_flagged.ensure_ect_caches();
  }

  // Independent, deterministically seeded cells claimed off an atomic
  // counter — the allocator's score-phase pattern. Any thread may run any
  // cell; none of them shares mutable state (the shared states and
  // cursor seeds are read-only after the loop above), so the grid is
  // thread-count invariant.
  std::atomic<std::size_t> next_cell{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t c = next_cell.fetch_add(1);
      if (c >= cell_count) return;
      PolicySweepCell& cell = result.cells[c];
      cell.task_count = c % result.task_count_count;
      cell.policy = (c / result.task_count_count) % result.policy_count;
      cell.population = c / (result.task_count_count * result.policy_count);
      BagOfTasksConfig cell_config = config.base;
      cell_config.task_count = config.task_counts[cell.task_count];
      const SchedulingPolicy policy = config.policies[cell.policy];
      const SharedState& pop_state = shared[cell.population];
      const bool churn_cell = is_churn_policy(policy);
      // Replicated cells (churn or not) resume from the post-realization
      // stream, exactly like a standalone replicated run; when
      // model_availability is set the two resume points coincide.
      const bool timeline_cell = churn_cell || replicated;
      util::Rng cell_rng = timeline_cell ? pop_state.rng_after_avail
                                         : pop_state.rng_after_flagged;
      cell.result = run_with_state(
          ScheduleState(churn_cell ? pop_state.state_base
                                   : pop_state.state_flagged),
          timeline_cell ? pop_state.timeline.get() : nullptr, cell_config,
          policy, cell_rng, /*reference_dynamics=*/false,
          churn_cell ? &*pop_state.cursor_seed : nullptr);
    }
  };

  int threads = config.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  const std::size_t n_workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), cell_count);
  {
    // The calling thread is worker zero; only the extras are spawned.
    std::vector<std::jthread> pool;
    pool.reserve(n_workers - 1);
    for (std::size_t i = 1; i < n_workers; ++i) pool.emplace_back(worker);
    worker();
  }
  return result;
}

}  // namespace resmodel::sim

#include "sim/bag_of_tasks.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "stats/distributions.h"

namespace resmodel::sim {

namespace {

// Per-host processing rate in MIPS (cores x whetstone), derated by a
// sampled availability fraction when the overlay is on. `speed_at(i)`
// supplies cores x whetstone for host i, so the AoS and SoA entry points
// share one rate formula and one rng-consumption order.
template <typename SpeedAt>
std::vector<double> host_rates(std::size_t n, SpeedAt speed_at,
                               const BagOfTasksConfig& config,
                               util::Rng& rng) {
  std::vector<double> rates;
  rates.reserve(n);
  const synth::AvailabilityModel avail(config.availability);
  for (std::size_t i = 0; i < n; ++i) {
    double rate = std::max(1.0, speed_at(i));
    if (config.model_availability) {
      util::Rng host_rng = rng.fork();
      const auto intervals =
          avail.generate(0.0, config.availability_horizon_days, host_rng);
      const double fraction = synth::availability_fraction(
          intervals, 0.0, config.availability_horizon_days);
      rate *= std::max(0.01, fraction);
    }
    rates.push_back(rate);
  }
  return rates;
}

std::vector<double> sample_tasks(const BagOfTasksConfig& config,
                                 util::Rng& rng) {
  const double mean = config.task_cost_mips_days_mean;
  const double sd = mean * config.task_cost_cv;
  const auto dist = stats::LogNormalDist::from_moments(mean, sd * sd);
  std::vector<double> tasks(config.task_count);
  for (double& t : tasks) t = dist.sample(rng);
  return tasks;
}

BagOfTasksResult finish(const std::vector<double>& busy_days,
                        double total_cpu_days, double makespan) {
  BagOfTasksResult result;
  result.makespan_days = makespan;
  result.total_cpu_days = total_cpu_days;
  double sum = 0.0;
  for (double b : busy_days) {
    sum += b;
    result.max_host_busy_days = std::max(result.max_host_busy_days, b);
    if (b > 0.0) ++result.hosts_used;
  }
  result.mean_host_busy_days =
      busy_days.empty() ? 0.0 : sum / static_cast<double>(busy_days.size());
  return result;
}

}  // namespace

std::string to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kStaticRoundRobin: return "static round-robin";
    case SchedulingPolicy::kStaticSpeedWeighted:
      return "static speed-weighted";
    case SchedulingPolicy::kDynamicPull: return "dynamic pull";
    case SchedulingPolicy::kDynamicEct: return "dynamic ECT";
  }
  return "unknown";
}

namespace {

// The policy dispatch shared by the AoS and SoA entry points: everything
// below only needs the per-host rates.
BagOfTasksResult run_with_rates(const std::vector<double>& rates,
                                const BagOfTasksConfig& config,
                                SchedulingPolicy policy, util::Rng& rng) {
  const std::vector<double> tasks = sample_tasks(config, rng);

  std::vector<double> busy_days(rates.size(), 0.0);
  double total_cpu_days = 0.0;

  switch (policy) {
    case SchedulingPolicy::kStaticRoundRobin: {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const std::size_t h = i % rates.size();
        const double days = tasks[i] / rates[h];
        busy_days[h] += days;
        total_cpu_days += days;
      }
      const double makespan =
          *std::max_element(busy_days.begin(), busy_days.end());
      return finish(busy_days, total_cpu_days, makespan);
    }

    case SchedulingPolicy::kStaticSpeedWeighted: {
      // Deal tasks in rate-proportional quotas: host h receives the next
      // task whenever its accumulated *work share* is furthest below its
      // rate share. Equivalent to largest-remaining-quota dealing.
      const double total_rate =
          std::accumulate(rates.begin(), rates.end(), 0.0);
      std::vector<double> assigned_work(rates.size(), 0.0);
      double total_assigned = 0.0;
      for (const double task : tasks) {
        // Deficit in cost units: how far below its rate-proportional share
        // of the work assigned so far this host currently is. Looking one
        // task ahead keeps the first |H| picks spread across hosts.
        std::size_t best = 0;
        double best_deficit = -std::numeric_limits<double>::infinity();
        const double next_total = total_assigned + task;
        for (std::size_t h = 0; h < rates.size(); ++h) {
          const double share = rates[h] / total_rate;
          const double deficit = share * next_total - assigned_work[h];
          if (deficit > best_deficit) {
            best_deficit = deficit;
            best = h;
          }
        }
        const double days = task / rates[best];
        busy_days[best] += days;
        total_cpu_days += days;
        assigned_work[best] += task;
        total_assigned = next_total;
      }
      const double makespan =
          *std::max_element(busy_days.begin(), busy_days.end());
      return finish(busy_days, total_cpu_days, makespan);
    }

    case SchedulingPolicy::kDynamicPull: {
      // Earliest-available host takes the next task (min-heap of
      // completion times).
      using Entry = std::pair<double, std::size_t>;  // (free at, host)
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
      for (std::size_t h = 0; h < rates.size(); ++h) heap.push({0.0, h});
      double makespan = 0.0;
      for (const double task : tasks) {
        const auto [free_at, h] = heap.top();
        heap.pop();
        const double days = task / rates[h];
        busy_days[h] += days;
        total_cpu_days += days;
        const double done = free_at + days;
        makespan = std::max(makespan, done);
        heap.push({done, h});
      }
      return finish(busy_days, total_cpu_days, makespan);
    }

    case SchedulingPolicy::kDynamicEct: {
      // Minimum-completion-time: O(T * H); fine at study scales.
      std::vector<double> free_at(rates.size(), 0.0);
      double makespan = 0.0;
      for (const double task : tasks) {
        std::size_t best = 0;
        double best_done = std::numeric_limits<double>::infinity();
        for (std::size_t h = 0; h < rates.size(); ++h) {
          const double done = free_at[h] + task / rates[h];
          if (done < best_done) {
            best_done = done;
            best = h;
          }
        }
        const double days = task / rates[best];
        busy_days[best] += days;
        total_cpu_days += days;
        free_at[best] = best_done;
        makespan = std::max(makespan, best_done);
      }
      return finish(busy_days, total_cpu_days, makespan);
    }
  }
  throw std::invalid_argument("run_bag_of_tasks: unknown policy");
}

void validate_config(const BagOfTasksConfig& config) {
  if (config.task_count == 0 || !(config.task_cost_mips_days_mean > 0.0) ||
      !(config.task_cost_cv > 0.0)) {
    throw std::invalid_argument("run_bag_of_tasks: degenerate config");
  }
}

}  // namespace

BagOfTasksResult run_bag_of_tasks(std::span<const HostResources> hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng) {
  if (hosts.empty()) {
    throw std::invalid_argument("run_bag_of_tasks: no hosts");
  }
  validate_config(config);
  const auto speed_at = [&hosts](std::size_t i) {
    return hosts[i].cores * hosts[i].whetstone_mips;
  };
  return run_with_rates(host_rates(hosts.size(), speed_at, config, rng),
                        config, policy, rng);
}

BagOfTasksResult run_bag_of_tasks(const HostResourcesSoA& hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng) {
  if (hosts.empty()) {
    throw std::invalid_argument("run_bag_of_tasks: no hosts");
  }
  validate_config(config);
  const auto speed_at = [&hosts](std::size_t i) {
    return hosts.cores[i] * hosts.whetstone_mips[i];
  };
  return run_with_rates(host_rates(hosts.size(), speed_at, config, rng),
                        config, policy, rng);
}

}  // namespace resmodel::sim

#include "sim/bag_of_tasks.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "sim/schedule_state.h"
#include "stats/distributions.h"

namespace resmodel::sim {

namespace {

// Derates `rates` in place by each host's sampled long-run ON fraction.
// One rng fork per host, in host order — the single consumption order
// every entry point shares, so AoS and SoA runs stay bit-identical.
void derate_by_availability(std::vector<double>& rates,
                            const BagOfTasksConfig& config, util::Rng& rng) {
  const synth::AvailabilityModel avail(config.availability);
  for (double& rate : rates) {
    util::Rng host_rng = rng.fork();
    const auto intervals =
        avail.generate(0.0, config.availability_horizon_days, host_rng);
    const double fraction = synth::availability_fraction(
        intervals, 0.0, config.availability_horizon_days);
    rate *= std::max(0.01, fraction);
  }
}

std::vector<double> sample_tasks(const BagOfTasksConfig& config,
                                 util::Rng& rng) {
  const double mean = config.task_cost_mips_days_mean;
  const double sd = mean * config.task_cost_cv;
  const auto dist = stats::LogNormalDist::from_moments(mean, sd * sd);
  std::vector<double> tasks(config.task_count);
  for (double& t : tasks) t = dist.sample(rng);
  return tasks;
}

// Folds the per-host aggregates out of busy_days in one pass; the static
// policies' makespan IS the max busy time, so no separate max_element
// sweep is needed.
BagOfTasksResult finish(const std::vector<double>& busy_days,
                        double total_cpu_days) {
  BagOfTasksResult result;
  result.total_cpu_days = total_cpu_days;
  double sum = 0.0;
  for (double b : busy_days) {
    sum += b;
    result.max_host_busy_days = std::max(result.max_host_busy_days, b);
    if (b > 0.0) ++result.hosts_used;
  }
  result.mean_host_busy_days =
      busy_days.empty() ? 0.0 : sum / static_cast<double>(busy_days.size());
  result.makespan_days = result.max_host_busy_days;
  return result;
}

BagOfTasksResult finish(const std::vector<double>& busy_days,
                        double total_cpu_days, double makespan) {
  BagOfTasksResult result = finish(busy_days, total_cpu_days);
  result.makespan_days = makespan;
  return result;
}

}  // namespace

std::string to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kStaticRoundRobin: return "static round-robin";
    case SchedulingPolicy::kStaticSpeedWeighted:
      return "static speed-weighted";
    case SchedulingPolicy::kDynamicPull: return "dynamic pull";
    case SchedulingPolicy::kDynamicEct: return "dynamic ECT";
  }
  return "unknown";
}

std::vector<double> compute_host_rates(std::span<const HostResources> hosts,
                                       const BagOfTasksConfig& config,
                                       util::Rng& rng) {
  std::vector<double> rates(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    rates[i] = std::max(1.0, hosts[i].cores * hosts[i].whetstone_mips);
  }
  if (config.model_availability) derate_by_availability(rates, config, rng);
  return rates;
}

std::vector<double> compute_host_rates(const HostResourcesSoA& hosts,
                                       const BagOfTasksConfig& config,
                                       util::Rng& rng) {
  const std::size_t n = hosts.size();
  std::vector<double> rates(n);
  const double* cores = hosts.cores.data();
  const double* whet = hosts.whetstone_mips.data();
  // Base rates straight from the columns: one vectorizable multiply+max
  // sweep, no per-host struct loads.
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = std::max(1.0, cores[i] * whet[i]);
  }
  if (config.model_availability) derate_by_availability(rates, config, rng);
  return rates;
}

namespace {

// The policy dispatch shared by every entry point: everything below only
// needs the per-host rates. `reference_dynamics` selects the retained
// scalar/priority_queue kernels for the dynamic policies.
BagOfTasksResult run_with_rates(std::vector<double> rates,
                                const BagOfTasksConfig& config,
                                SchedulingPolicy policy, util::Rng& rng,
                                bool reference_dynamics) {
  const std::vector<double> tasks = sample_tasks(config, rng);
  ScheduleState state = ScheduleState::from_rates(std::move(rates));
  const std::size_t host_count = state.size();

  switch (policy) {
    case SchedulingPolicy::kStaticRoundRobin: {
      double total_cpu_days = 0.0;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const std::size_t h = i % host_count;
        const double days = tasks[i] * state.inv_rates[h];
        state.busy_days[h] += days;
        total_cpu_days += days;
      }
      return finish(state.busy_days, total_cpu_days);
    }

    case SchedulingPolicy::kStaticSpeedWeighted: {
      // Deal tasks in rate-proportional quotas: host h receives the next
      // task whenever its accumulated *work share* is furthest below its
      // rate share. Equivalent to largest-remaining-quota dealing. The
      // shares are loop-invariant, so the rates[h] / total_rate divide is
      // hoisted into a precomputed column.
      const double total_rate =
          std::accumulate(state.rates.begin(), state.rates.end(), 0.0);
      std::vector<double> share(host_count);
      for (std::size_t h = 0; h < host_count; ++h) {
        share[h] = state.rates[h] / total_rate;
      }
      std::vector<double> assigned_work(host_count, 0.0);
      double total_cpu_days = 0.0;
      double total_assigned = 0.0;
      for (const double task : tasks) {
        // Deficit in cost units: how far below its rate-proportional share
        // of the work assigned so far this host currently is. Looking one
        // task ahead keeps the first |H| picks spread across hosts.
        std::size_t best = 0;
        double best_deficit = -std::numeric_limits<double>::infinity();
        const double next_total = total_assigned + task;
        for (std::size_t h = 0; h < host_count; ++h) {
          const double deficit = share[h] * next_total - assigned_work[h];
          if (deficit > best_deficit) {
            best_deficit = deficit;
            best = h;
          }
        }
        const double days = task * state.inv_rates[best];
        state.busy_days[best] += days;
        total_cpu_days += days;
        assigned_work[best] += task;
        total_assigned = next_total;
      }
      return finish(state.busy_days, total_cpu_days);
    }

    case SchedulingPolicy::kDynamicPull: {
      const DynamicScheduleTotals totals =
          reference_dynamics ? pull_schedule_reference(state, tasks)
                             : pull_schedule_dary(state, tasks);
      return finish(state.busy_days, totals.total_cpu_days,
                    totals.makespan_days);
    }

    case SchedulingPolicy::kDynamicEct: {
      const DynamicScheduleTotals totals =
          reference_dynamics ? ect_schedule_reference(state, tasks)
                             : ect_schedule_blocked(state, tasks);
      return finish(state.busy_days, totals.total_cpu_days,
                    totals.makespan_days);
    }
  }
  throw std::invalid_argument("run_bag_of_tasks: unknown policy");
}

void validate_config(const BagOfTasksConfig& config) {
  if (config.task_count == 0 || !(config.task_cost_mips_days_mean > 0.0) ||
      !(config.task_cost_cv > 0.0)) {
    throw std::invalid_argument("run_bag_of_tasks: degenerate config");
  }
}

template <typename Hosts>
BagOfTasksResult run_any(const Hosts& hosts, const BagOfTasksConfig& config,
                         SchedulingPolicy policy, util::Rng& rng,
                         bool reference_dynamics) {
  if (hosts.empty()) {
    throw std::invalid_argument("run_bag_of_tasks: no hosts");
  }
  validate_config(config);
  return run_with_rates(compute_host_rates(hosts, config, rng), config,
                        policy, rng, reference_dynamics);
}

}  // namespace

BagOfTasksResult run_bag_of_tasks(std::span<const HostResources> hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng) {
  return run_any(hosts, config, policy, rng, /*reference_dynamics=*/false);
}

BagOfTasksResult run_bag_of_tasks(const HostResourcesSoA& hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng) {
  return run_any(hosts, config, policy, rng, /*reference_dynamics=*/false);
}

BagOfTasksResult run_bag_of_tasks_reference(
    std::span<const HostResources> hosts, const BagOfTasksConfig& config,
    SchedulingPolicy policy, util::Rng& rng) {
  return run_any(hosts, config, policy, rng, /*reference_dynamics=*/true);
}

BagOfTasksResult run_bag_of_tasks_reference(const HostResourcesSoA& hosts,
                                            const BagOfTasksConfig& config,
                                            SchedulingPolicy policy,
                                            util::Rng& rng) {
  return run_any(hosts, config, policy, rng, /*reference_dynamics=*/true);
}

PolicySweepResult run_policy_sweep(std::span<const SweepPopulation> populations,
                                   const PolicySweepConfig& config) {
  if (populations.empty() || config.policies.empty() ||
      config.task_counts.empty()) {
    throw std::invalid_argument("run_policy_sweep: empty grid axis");
  }
  for (const SweepPopulation& pop : populations) {
    if (pop.hosts.empty()) {
      throw std::invalid_argument("run_policy_sweep: empty population '" +
                                  pop.name + "'");
    }
  }
  // Validate every cell's inputs up front: a throw from inside a spawned
  // worker would land in std::terminate.
  for (const std::size_t task_count : config.task_counts) {
    BagOfTasksConfig probe = config.base;
    probe.task_count = task_count;
    validate_config(probe);
  }
  for (const SchedulingPolicy policy : config.policies) {
    switch (policy) {
      case SchedulingPolicy::kStaticRoundRobin:
      case SchedulingPolicy::kStaticSpeedWeighted:
      case SchedulingPolicy::kDynamicPull:
      case SchedulingPolicy::kDynamicEct:
        break;
      default:
        throw std::invalid_argument("run_policy_sweep: unknown policy");
    }
  }

  PolicySweepResult result;
  result.policy_count = config.policies.size();
  result.task_count_count = config.task_counts.size();
  const std::size_t cell_count =
      populations.size() * result.policy_count * result.task_count_count;
  result.cells.resize(cell_count);

  // Every cell of one population reseeds Rng(workload_seed) and would
  // re-derive the identical rate vector — including the expensive
  // per-host availability histories — so the rates are computed once per
  // population here, together with the post-derate rng state each cell's
  // task sampling resumes from. Cells stay bit-identical to a standalone
  // run_bag_of_tasks(hosts, config, policy, Rng(workload_seed)).
  struct SharedRates {
    std::vector<double> rates;
    util::Rng rng_after_rates;
  };
  std::vector<SharedRates> shared(populations.size());
  for (std::size_t p = 0; p < populations.size(); ++p) {
    util::Rng rng(config.workload_seed);
    shared[p].rates =
        compute_host_rates(populations[p].hosts, config.base, rng);
    shared[p].rng_after_rates = rng;
  }

  // Independent, deterministically seeded cells claimed off an atomic
  // counter — the allocator's score-phase pattern. Any thread may run any
  // cell; none of them shares mutable state, so the grid is thread-count
  // invariant.
  std::atomic<std::size_t> next_cell{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t c = next_cell.fetch_add(1);
      if (c >= cell_count) return;
      PolicySweepCell& cell = result.cells[c];
      cell.task_count = c % result.task_count_count;
      cell.policy = (c / result.task_count_count) % result.policy_count;
      cell.population = c / (result.task_count_count * result.policy_count);
      BagOfTasksConfig cell_config = config.base;
      cell_config.task_count = config.task_counts[cell.task_count];
      const SharedRates& pop_rates = shared[cell.population];
      util::Rng cell_rng = pop_rates.rng_after_rates;
      cell.result = run_with_rates(std::vector<double>(pop_rates.rates),
                                   cell_config, config.policies[cell.policy],
                                   cell_rng, /*reference_dynamics=*/false);
    }
  };

  int threads = config.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  const std::size_t n_workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), cell_count);
  {
    // The calling thread is worker zero; only the extras are spawned.
    std::vector<std::jthread> pool;
    pool.reserve(n_workers - 1);
    for (std::size_t i = 1; i < n_workers; ++i) pool.emplace_back(worker);
    worker();
  }
  return result;
}

}  // namespace resmodel::sim

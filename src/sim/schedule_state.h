// Columnar scheduling state + the blocked kernels behind bag_of_tasks.
//
// The MCT-family heuristics the paper's introduction cites (Al-Azzoni &
// Down; Anglano & Canonico) all reduce to tight loops over per-host
// scheduling state. This header keeps that state as contiguous columns —
// `rates`, `inv_rates`, `free_at`, `busy_days` — exactly the way
// HostResourcesSoA carries the hardware columns into the allocator, so the
// policy hot loops are cache-friendly streaming sweeps instead of pointer
// chases:
//
//  - ect_schedule_blocked: the kDynamicEct (minimum-completion-time) scan
//    as a blocked min-reduction over free_at[h] + task * inv_rates[h] —
//    multiply instead of divide, block-local buffers the autovectorizer
//    likes, and a per-block lower bound that skips whole blocks that
//    cannot beat the current best completion time.
//  - ect_schedule_reference: the retained scalar loop, bit-identical to
//    the blocked kernel (the golden oracle for tests/sim/).
//  - pull_schedule_dary / pull_schedule_reference: kDynamicPull on a flat
//    4-ary min-heap vs the std::priority_queue oracle; identical pop
//    order because (free_at, host) keys are totally ordered.
//
// All kernels use task * inv_rates[h] for processing times (the reciprocal
// column is computed once per run), so every implementation pair agrees
// bit for bit. schedule_state.cpp is compiled with -ffp-contract=off (see
// src/CMakeLists.txt): otherwise the compiler may fuse a*b+c into an fma
// in one loop and not another, and "bit-identical across kernels" would be
// at the mercy of instruction selection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "backend/backend.h"

namespace resmodel::sim {

/// Totals a dynamic scheduling kernel reports on top of the per-host
/// columns it updates in place.
struct DynamicScheduleTotals {
  double makespan_days = 0.0;
  double total_cpu_days = 0.0;
};

/// Per-host scheduling columns, index h across all columns is one host.
/// `rates` is the (derated) processing rate in MIPS; `inv_rates` its
/// reciprocal; `free_at` the day the host next goes idle; `busy_days` the
/// accumulated processing time.
///
/// The `ect_*` members are the blocked MCT kernel's static caches: hosts
/// re-ordered by ascending inv_rates (fastest first, stable so equal
/// rates keep ascending host index), so each kBlockSize-wide block is
/// rate-homogeneous and its minimum inv_rate — the first sorted entry —
/// is a sharp per-block lower bound ingredient. With random host order a
/// fast host lands in almost every block and the bound discriminates
/// poorly; sorted blocks concentrate the fast hosts into the leading
/// blocks and let the trailing ones prune wholesale.
struct ScheduleState {
  /// Hosts per pruning block: 64 doubles = one 512-byte column stripe,
  /// long enough to amortize the bound test, short enough that one slow
  /// host cannot hide a block of fast ones.
  static constexpr std::size_t kBlockSize = 64;

  /// Compute backend for the blocked kernels (src/backend/README.md):
  /// kAuto picks the widest SIMD arm the CPU offers, kScalar routes
  /// ect_schedule_blocked onto the reference oracle. Every setting
  /// returns the same schedule bit for bit.
  backend::Backend backend = backend::Backend::kAuto;

  std::vector<double> rates;
  std::vector<double> inv_rates;
  std::vector<double> free_at;
  std::vector<double> busy_days;

  /// Sorted position -> original host index (ascending inv_rates, ties by
  /// ascending host index). Built lazily by ensure_ect_caches() — only
  /// the ECT kernel reads the sorted layout, so the other policies never
  /// pay for the sort.
  std::vector<std::uint32_t> ect_order;
  /// Original host index -> sorted position (inverse of ect_order).
  std::vector<std::uint32_t> ect_pos;
  /// inv_rates permuted into sorted order.
  std::vector<double> ect_sorted_inv;
  /// Per sorted block, the minimum of ect_sorted_inv (its first entry).
  std::vector<double> ect_block_min_inv;

  /// Builds the idle state (free_at = busy_days = 0) for the given rates.
  /// Every rate must be > 0 (host_rates guarantees >= 0.01 MIPS). Host
  /// counts are capped at 2^32 entries by the permutation columns.
  static ScheduleState from_rates(std::vector<double> rates);

  /// Builds the ect_* columns if they are not present yet (rates are
  /// immutable after from_rates, so once built they stay valid).
  void ensure_ect_caches();

  std::size_t size() const noexcept { return rates.size(); }
  std::size_t block_count() const noexcept {
    return ect_block_min_inv.size();
  }
};

/// Minimum-completion-time scheduling of `tasks` (costs in MIPS-days, in
/// arrival order) over `state`: each task goes to the host minimizing
/// free_at[h] + task * inv_rates[h], lowest host index on exact ties.
/// Blocked kernel over the rate-sorted layout: per block, the candidate
/// completion times are materialized into a small buffer and min-reduced
/// (auto-vectorizable); a block is skipped outright when
///   block_min_free[b] + task * ect_block_min_inv[b] > best_so_far,
/// a true lower bound on every completion time inside it (monotone
/// rounding keeps it a lower bound in floating point too). The strict
/// `>` means a block that could still tie the incumbent is always
/// scanned, and the winner is the smallest *original* host index among
/// all hosts achieving the global minimum — exactly the scalar loop's
/// first-strict-improvement pick. Updates free_at / busy_days in place.
DynamicScheduleTotals ect_schedule_blocked(ScheduleState& state,
                                           std::span<const double> tasks);

/// The retained scalar ECT loop — same formula, same tie-break, scans
/// every host for every task. Golden oracle and benchmark baseline;
/// bit-identical to ect_schedule_blocked.
DynamicScheduleTotals ect_schedule_reference(ScheduleState& state,
                                             std::span<const double> tasks);

/// Flat d-ary (d = 4) min-heap of (free_at, host) entries, ordered by key
/// then host index — the total order makes any correct heap pop the same
/// sequence as std::priority_queue. Four children per node means half the
/// tree depth of a binary heap and sift-down comparisons that stay inside
/// one cache line of 16-byte entries.
class PullHeap {
 public:
  struct Entry {
    double key = 0.0;
    std::uint64_t host = 0;
  };
  static_assert(sizeof(Entry) == 16, "no padding between key and host");

  /// Seeds one (0.0, h) entry per host; ascending hosts at equal keys is
  /// already heap-ordered, so construction is O(n) with no sifting.
  explicit PullHeap(std::size_t hosts);

  /// Seeds one (keys[h], h) entry per host and heapifies (Floyd, O(n)) —
  /// how the pull kernels ingest a state's current free_at column.
  explicit PullHeap(std::span<const double> keys);

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const Entry& min() const noexcept { return entries_.front(); }

  void push(double key, std::uint64_t host);
  Entry pop_min();
  /// pop_min + push fused into a single sift-down from the root — the
  /// kDynamicPull inner step (a host re-enters with its new idle time).
  void replace_min(double key, std::uint64_t host);

 private:
  static constexpr std::size_t kArity = 4;
  static bool less(const Entry& a, const Entry& b) noexcept {
    return a.key < b.key || (a.key == b.key && a.host < b.host);
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  std::vector<Entry> entries_;
};

/// Dynamic pull (list scheduling): the earliest-available host takes the
/// next task. Flat 4-ary heap kernel seeded from the state's current
/// free_at (a pre-advanced state continues where it left off); updates
/// state in place.
DynamicScheduleTotals pull_schedule_dary(ScheduleState& state,
                                         std::span<const double> tasks);

/// The std::priority_queue implementation retained as the pull oracle;
/// bit-identical to pull_schedule_dary.
DynamicScheduleTotals pull_schedule_reference(ScheduleState& state,
                                              std::span<const double> tasks);

}  // namespace resmodel::sim

// The three host-synthesis models compared in §VII (Figure 15):
//
//  - CorrelatedModel: the paper's contribution (core::HostGenerator).
//  - NormalDistributionModel: linear extrapolation of the Figure-2 resource
//    means/stddevs, each resource sampled from an *uncorrelated* normal
//    (log-normal for disk).
//  - GridResourceModel: Kee et al. (SC'04) re-parameterized with our fitted
//    values "where appropriate": log-normal processor speeds, a time- and
//    processor-dependent power-of-two memory model, an exponential growth
//    model of disk space (which models *total* capacity and therefore
//    overestimates available space), and a mixture of host ages based on
//    the average host lifetime.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/host_generator.h"
#include "core/model_params.h"
#include "model/correlation_model.h"
#include "sim/host_soa.h"
#include "sim/utility.h"
#include "stats/regression.h"
#include "trace/trace_store.h"
#include "util/model_date.h"
#include "util/rng.h"

namespace resmodel::sim {

/// Anything that can synthesize a host population for a date.
class HostSynthesisModel {
 public:
  virtual ~HostSynthesisModel() = default;
  virtual std::string name() const = 0;
  virtual std::vector<HostResources> synthesize(util::ModelDate date,
                                                std::size_t count,
                                                util::Rng& rng) const = 0;

  /// Columnar synthesis for the allocation hot path. Consumes `rng`
  /// exactly like synthesize(), so both paths draw identical hosts; the
  /// default wraps synthesize() for external models, and every in-repo
  /// model overrides it to fill columns without an AoS detour.
  virtual HostResourcesSoA synthesize_soa(util::ModelDate date,
                                          std::size_t count,
                                          util::Rng& rng) const {
    return HostResourcesSoA::from_hosts(synthesize(date, count, rng));
  }
};

/// The paper's generative model with a pluggable dependence structure.
/// Defaults to the published Cholesky-Gaussian copula; pass any
/// model::CorrelationModel (independent, empirical-rank, ...) to run the
/// same marginal laws under a different joint structure. Synthesis runs
/// through the batched SoA engine.
class CorrelatedModel final : public HostSynthesisModel {
 public:
  explicit CorrelatedModel(core::ModelParams params);
  CorrelatedModel(core::ModelParams params,
                  std::shared_ptr<const model::CorrelationModel> correlation,
                  std::string display_name);
  std::string name() const override { return name_; }
  std::vector<HostResources> synthesize(util::ModelDate date,
                                        std::size_t count,
                                        util::Rng& rng) const override;
  HostResourcesSoA synthesize_soa(util::ModelDate date, std::size_t count,
                                  util::Rng& rng) const override;

 private:
  core::HostGenerator generator_;
  std::string name_ = "Correlated Model";
};

/// Linear mean/stddev trend of one resource (the Figure-2 extrapolation).
struct LinearTrend {
  stats::LinearFit mean;    ///< mean(t) = slope * t + intercept
  stats::LinearFit stddev;  ///< stddev(t) likewise
};

/// The uncorrelated normal-distribution baseline.
class NormalDistributionModel final : public HostSynthesisModel {
 public:
  /// Trends for {cores, memory, whetstone, dhrystone, disk}, in that order.
  NormalDistributionModel(LinearTrend cores, LinearTrend memory,
                          LinearTrend whetstone, LinearTrend dhrystone,
                          LinearTrend disk);

  /// Fits the five linear trends from yearly snapshots of a trace.
  static NormalDistributionModel fit(const trace::TraceStore& store,
                                     const std::vector<util::ModelDate>& dates);

  std::string name() const override { return "Normal Distribution Model"; }
  std::vector<HostResources> synthesize(util::ModelDate date,
                                        std::size_t count,
                                        util::Rng& rng) const override;
  HostResourcesSoA synthesize_soa(util::ModelDate date, std::size_t count,
                                  util::Rng& rng) const override;

 private:
  /// The raw-column fill shared by both synthesis paths (no log columns).
  HostResourcesSoA synthesize_columns(util::ModelDate date, std::size_t count,
                                      util::Rng& rng) const;

  LinearTrend cores_, memory_, whetstone_, dhrystone_, disk_;
};

/// The Kee et al. Grid resource baseline.
class GridResourceModel final : public HostSynthesisModel {
 public:
  /// `params` supplies the speed moment laws and core composition;
  /// `mean_host_lifetime_years` drives the old/new host age mixture;
  /// `mean_avail_disk_fraction` converts the model's total-disk growth law
  /// into (over-)estimated available space.
  GridResourceModel(core::ModelParams params, double mean_host_lifetime_years,
                    double mean_avail_disk_fraction = 0.5);

  std::string name() const override { return "Grid Model"; }
  std::vector<HostResources> synthesize(util::ModelDate date,
                                        std::size_t count,
                                        util::Rng& rng) const override;
  HostResourcesSoA synthesize_soa(util::ModelDate date, std::size_t count,
                                  util::Rng& rng) const override;

 private:
  /// The raw-column fill shared by both synthesis paths (no log columns).
  HostResourcesSoA synthesize_columns(util::ModelDate date, std::size_t count,
                                      util::Rng& rng) const;

  core::ModelParams params_;
  double mean_lifetime_years_;
  double mean_avail_fraction_;
};

/// Converts a trace snapshot into the allocator's host representation.
std::vector<HostResources> to_host_resources(
    const trace::ResourceSnapshot& snapshot);

/// Converts a generated SoA batch into the allocator's host representation.
std::vector<HostResources> to_host_resources(
    const core::GeneratedHostBatch& batch);

}  // namespace resmodel::sim

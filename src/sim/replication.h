// Round-based fault-tolerant work distribution: per-task n-way
// replication with k-of-n quorum validation, deadline re-issue under
// exponential backoff, and graceful degradation — the server-side
// robustness layer over the ECT-family schedulers.
//
// Timing model. Every task issues its first n replicas at T = 0; round
// r's report window is deadline_days * backoff^r, and round r+1 issues
// the instant round r's window closes — one globally synchronized round
// clock (BOINC's per-WU deadlines staggered per workunit would make the
// selection order depend on evaluation order; the shared clock keeps the
// whole run a deterministic function of the inputs). Replica placement
// and timing come from the underlying scheduler, stepped one replica at
// a time:
//
//  - churn policies (kChurnEct*): churn::ChurnScheduler in its
//    begin_stepping/step driving mode — completion times walk the real
//    ON/OFF intervals under checkpoint / restart / abandon semantics
//    (kRestart burns sessions per REPLICA, so quorum and interruption
//    policy interact exactly as the study intends);
//  - kDynamicEct: a stepped version of the blocked free_at + task*inv
//    selection (scalar-derated rates), with the interval timeline
//    consulted only by the crash model.
//
// Fault semantics per replica (host behaviours from sim/fault_model.h):
//   crash     — the replica is LOST iff its execution crossed an
//               ON-session boundary of the host's timeline realization
//               (the session died under it); the host still burns the
//               time — the server only ever sees a timeout.
//   straggler — the scheduler selects on the host's nominal rate but the
//               execution is charged work * slowdown (benchmarks fast,
//               runs slow): results tend to miss their deadlines.
//   corrupter — completes on time, returns a wrong digest
//               (fault_model.h's corrupted_digest): counted, never
//               matches the canonical quorum.
// A host that already returned a counted result for a task counts once;
// later replicas landing there are ignored as duplicates.
//
// After each round's replicas resolve, every pending task either
// validates (>= quorum counted correct results; validation time = the
// quorum-completing result's completion), re-issues (rounds remain and a
// finite deadline exists), or fails TERMINALLY with a
// fault_model.h::TaskFailReason — never silently dropped or
// infinite-looped: the engine asserts
// ReplicationOutcome::conserves_tasks() before returning.
//
// Determinism: both entry points are pure functions of (state, timeline,
// tasks, faults, config) — no rng, no time-dependence — and the
// reference_dynamics flag selects the scalar full-scan oracle selection,
// bit-identical to the blocked fast path by the same contract as
// run()/run_reference().
#pragma once

#include <span>

#include "churn/churn_scheduler.h"
#include "churn/interval_timeline.h"
#include "sim/bag_of_tasks.h"
#include "sim/fault_model.h"
#include "sim/schedule_state.h"

namespace resmodel::sim {

/// Replicated run over a churn scheduler (the kChurnEct* policies).
/// `scheduler` must be freshly constructed over `state` (the usual
/// run_with_state construction, cursor seed and all); `faults` must cover
/// the hosts and `tasks` carries the nominal task costs. Host-side
/// accounting (makespan, busy columns, churn interruptions) lands in the
/// usual BagOfTasksResult fields; the replication counters in
/// result.replication.
BagOfTasksResult run_replicated_churn(churn::ChurnScheduler& scheduler,
                                      ScheduleState& state,
                                      std::span<const double> tasks,
                                      const FaultProfiles& faults,
                                      const ReplicationConfig& replication,
                                      churn::InterruptionPolicy interruption,
                                      bool reference_dynamics);

/// Replicated run under kDynamicEct: selection is the classic blocked
/// free_at + task*inv minimum over `state`'s (derated) rates, stepped one
/// replica at a time; `timeline` drives only the crash model.
/// `backend_arm` routes the selection like every other dynamic kernel
/// (kScalar or reference_dynamics = the scalar oracle).
BagOfTasksResult run_replicated_ect(ScheduleState& state,
                                    const churn::IntervalTimeline& timeline,
                                    std::span<const double> tasks,
                                    const FaultProfiles& faults,
                                    const ReplicationConfig& replication,
                                    backend::Backend backend_arm,
                                    bool reference_dynamics);

}  // namespace resmodel::sim

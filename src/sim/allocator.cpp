#include "sim/allocator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "backend/kernels.h"

namespace resmodel::sim {

namespace {

/// A preference entry packs a 32-bit monotone sort key (high half) with
/// the host index (low half), so ascending uint64 order IS "descending
/// score, then ascending host index" — one integer compare, 8-byte radix
/// scatters, and the deterministic tie-break built into the value.
///
/// The key transform is backend::descending_key (kernels.h): the classic
/// sign-flip transform, complemented, so *ascending* unsigned order is
/// *descending* float(score) order. double->float rounding is monotone,
/// so equal doubles always share a key and unequal doubles can only
/// collide when they round to the same float — those rare runs are
/// repaired by refine_ties() against the exact scores. The fused
/// score+pack sweep itself is a dispatch kernel (KernelOps::score_pack).
constexpr std::uint64_t kIndexMask = 0xFFFFFFFFull;

/// Re-sorts every run of equal 32-bit keys by the exact rule (descending
/// double score, ascending host index). Within a run the packed low
/// halves are the indices, so once scores tie the plain uint64 compare
/// finishes the job.
void refine_ties(std::vector<std::uint64_t>& pref, const double* scores) {
  const std::size_t n = pref.size();
  std::size_t run = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i < n && (pref[i] >> 32) == (pref[run] >> 32)) continue;
    if (i - run > 1) {
      std::sort(pref.begin() + run, pref.begin() + i,
                [scores](std::uint64_t x, std::uint64_t y) {
                  const double sx = scores[x & kIndexMask];
                  const double sy = scores[y & kIndexMask];
                  if (sx != sy) return sx > sy;
                  return x < y;
                });
    }
    run = i;
  }
}

/// Below this size a comparison sort beats the radix passes' histogram
/// setup.
constexpr std::size_t kRadixCutoff = 4096;

/// Sorts the packed preference entries ascending (= descending score,
/// ascending index). Large inputs take a stable LSD radix sort over the
/// two 16-bit digits of the key half — the low (index) half never needs
/// a pass because entries enter in ascending host index and stable
/// scatters keep them that way. `hist` and `scratch` are caller-owned so
/// one worker reuses them across apps.
void sort_preferences(std::vector<std::uint64_t>& pref,
                      std::vector<std::uint64_t>& scratch,
                      std::vector<std::uint32_t>& hist,
                      const double* scores) {
  const std::size_t n = pref.size();
  if (n < kRadixCutoff) {
    std::sort(pref.begin(), pref.end());
    refine_ties(pref, scores);
    return;
  }

  constexpr int kDigitBits = 16;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  constexpr int kKeyShift = 32;
  constexpr int kPasses = 2;
  scratch.resize(n);
  hist.assign(kPasses * kBuckets, 0);

  // Both histograms in one scan.
  std::uint32_t* hist_lo = hist.data();
  std::uint32_t* hist_hi = hist.data() + kBuckets;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = pref[i] >> kKeyShift;
    ++hist_lo[key & (kBuckets - 1)];
    ++hist_hi[key >> kDigitBits];
  }

  std::vector<std::uint64_t>* src = &pref;
  std::vector<std::uint64_t>* dst = &scratch;
  for (int p = 0; p < kPasses; ++p) {
    std::uint32_t* counts =
        hist.data() + static_cast<std::size_t>(p) * kBuckets;
    // Constant digit => the pass is a no-op; skip the scatter.
    bool constant = false;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (counts[b] != 0) {
        constant = counts[b] == n;
        break;
      }
    }
    if (constant) continue;

    std::uint32_t running = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint32_t c = counts[b];
      counts[b] = running;
      running += c;
    }
    const int shift = kKeyShift + p * kDigitBits;
    const std::uint64_t* s = src->data();
    std::uint64_t* d = dst->data();
    for (std::size_t i = 0; i < n; ++i) {
      d[counts[(s[i] >> shift) & (kBuckets - 1)]++] = s[i];
    }
    std::swap(src, dst);
  }
  if (src != &pref) {
    std::swap(pref, scratch);
  }
  refine_ties(pref, scores);
}

/// The shared greedy selection loop: applications take turns claiming the
/// best unassigned host from their sorted preference list. `index_at`
/// resolves preference position to host index; `utility_at` to the
/// Cobb-Douglas utility of that host.
template <typename IndexAt, typename UtilityAt>
AllocationResult select_round_robin(std::size_t a_count, std::size_t h_count,
                                    IndexAt index_at, UtilityAt utility_at) {
  AllocationResult result;
  result.total_utility.assign(a_count, 0.0);
  result.hosts_assigned.assign(a_count, 0);
  result.assignment.assign(h_count, a_count);  // sentinel: unassigned

  std::vector<std::size_t> cursor(a_count, 0);  // position in preference list
  std::size_t remaining = h_count;
  std::size_t turn = 0;
  while (remaining > 0) {
    const std::size_t a = turn % a_count;
    ++turn;
    std::size_t& pos = cursor[a];
    while (pos < h_count && result.assignment[index_at(a, pos)] != a_count) {
      ++pos;
    }
    if (pos >= h_count) continue;  // this app exhausted its list
    const std::size_t h = index_at(a, pos);
    result.assignment[h] = a;
    result.total_utility[a] += utility_at(a, pos);
    ++result.hosts_assigned[a];
    --remaining;
  }
  return result;
}

}  // namespace

AllocationResult allocate_round_robin(std::span<const ApplicationSpec> apps,
                                      const HostResourcesSoA& hosts,
                                      int threads,
                                      backend::Backend backend) {
  if (apps.empty()) {
    throw std::invalid_argument("allocate_round_robin: no applications");
  }
  const backend::ResolvedBackend rb = backend::resolve(backend);
  if (rb.arm == backend::Backend::kScalar) {
    // The scalar arm IS the retained pow-based oracle.
    const std::vector<HostResources> aos = hosts.to_hosts();
    return allocate_round_robin_reference(apps, aos);
  }
  const backend::KernelOps& ops = backend::kernel_ops(rb.simd);
  const std::size_t a_count = apps.size();
  const std::size_t h_count = hosts.size();
  if (h_count > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "allocate_round_robin: host count exceeds 32-bit preference index");
  }

  // The adapters precompute the log columns once per host set; a
  // hand-assembled SoA without them gets local log columns here (the raw
  // columns are never copied).
  std::vector<double> local_logs[5];
  const double* log_c;
  const double* log_m;
  const double* log_i;
  const double* log_f;
  const double* log_d;
  if (hosts.logs_ready()) {
    log_c = hosts.log_cores.data();
    log_m = hosts.log_memory_mb.data();
    log_i = hosts.log_dhrystone_mips.data();
    log_f = hosts.log_whetstone_mips.data();
    log_d = hosts.log_disk_avail_gb.data();
  } else {
    local_logs[0] = log_utility_column(hosts.cores);
    local_logs[1] = log_utility_column(hosts.memory_mb);
    local_logs[2] = log_utility_column(hosts.dhrystone_mips);
    local_logs[3] = log_utility_column(hosts.whetstone_mips);
    local_logs[4] = log_utility_column(hosts.disk_avail_gb);
    log_c = local_logs[0].data();
    log_m = local_logs[1].data();
    log_i = local_logs[2].data();
    log_f = local_logs[3].data();
    log_d = local_logs[4].data();
  }

  // Score+sort phase, one independent task per application; the work
  // depends only on the app, so the result is thread-count invariant.
  std::vector<std::vector<std::uint64_t>> preference(a_count);
  std::vector<std::vector<double>> scores(a_count);
  std::atomic<std::size_t> next_app{0};
  const auto worker = [&] {
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint32_t> hist;
    for (;;) {
      const std::size_t a = next_app.fetch_add(1);
      if (a >= a_count) return;
      const ApplicationSpec& app = apps[a];
      std::vector<double>& score = scores[a];
      std::vector<std::uint64_t>& pref = preference[a];
      score.resize(h_count);
      pref.resize(h_count);
      // The fused sweep: five contiguous columns in, one packed entry
      // out — through the dispatch table (bit-identical across arms).
      const backend::ScoreWeights weights{
          {app.alpha, app.beta, app.gamma, app.delta, app.epsilon}};
      ops.score_pack(log_c, log_m, log_i, log_f, log_d, weights, h_count,
                     score.data(), pref.data());
      sort_preferences(pref, scratch, hist, score.data());
    }
  };

  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  const std::size_t n_workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), a_count);
  {
    // The calling thread is worker zero; only the extras are spawned.
    std::vector<std::jthread> pool;
    pool.reserve(n_workers - 1);
    for (std::size_t i = 1; i < n_workers; ++i) pool.emplace_back(worker);
    worker();
  }

  // exp only on the hosts an application actually wins.
  return select_round_robin(
      a_count, h_count,
      [&preference](std::size_t a, std::size_t pos) {
        return static_cast<std::size_t>(preference[a][pos] & kIndexMask);
      },
      [&preference, &scores](std::size_t a, std::size_t pos) {
        return std::exp(scores[a][preference[a][pos] & kIndexMask]);
      });
}

AllocationResult allocate_round_robin(std::span<const ApplicationSpec> apps,
                                      std::span<const HostResources> hosts) {
  if (apps.empty()) {
    throw std::invalid_argument("allocate_round_robin: no applications");
  }
  return allocate_round_robin(apps, HostResourcesSoA::from_hosts(hosts));
}

AllocationResult allocate_round_robin_reference(
    std::span<const ApplicationSpec> apps,
    std::span<const HostResources> hosts) {
  if (apps.empty()) {
    throw std::invalid_argument("allocate_round_robin: no applications");
  }
  const std::size_t a_count = apps.size();
  const std::size_t h_count = hosts.size();

  // The pre-SoA algorithm: a dense utility matrix (five std::pow per
  // pair) and per-application comparator sorts of index arrays, with the
  // host-index tie-break the SoA path guarantees.
  std::vector<std::vector<double>> utility(a_count,
                                           std::vector<double>(h_count));
  std::vector<std::vector<std::size_t>> preference(a_count);
  for (std::size_t a = 0; a < a_count; ++a) {
    for (std::size_t h = 0; h < h_count; ++h) {
      utility[a][h] = cobb_douglas_utility(apps[a], hosts[h]);
    }
    preference[a].resize(h_count);
    std::iota(preference[a].begin(), preference[a].end(), std::size_t{0});
    std::sort(preference[a].begin(), preference[a].end(),
              [&u = utility[a]](std::size_t x, std::size_t y) {
                if (u[x] != u[y]) return u[x] > u[y];
                return x < y;
              });
  }
  return select_round_robin(
      a_count, h_count,
      [&preference](std::size_t a, std::size_t pos) {
        return preference[a][pos];
      },
      [&preference, &utility](std::size_t a, std::size_t pos) {
        return utility[a][preference[a][pos]];
      });
}

}  // namespace resmodel::sim

#include "sim/allocator.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace resmodel::sim {

AllocationResult allocate_round_robin(std::span<const ApplicationSpec> apps,
                                      std::span<const HostResources> hosts) {
  if (apps.empty()) {
    throw std::invalid_argument("allocate_round_robin: no applications");
  }
  const std::size_t a_count = apps.size();
  const std::size_t h_count = hosts.size();

  // Per-application utilities and preference order (descending utility).
  std::vector<std::vector<double>> utility(a_count,
                                           std::vector<double>(h_count));
  std::vector<std::vector<std::size_t>> preference(a_count);
  for (std::size_t a = 0; a < a_count; ++a) {
    for (std::size_t h = 0; h < h_count; ++h) {
      utility[a][h] = cobb_douglas_utility(apps[a], hosts[h]);
    }
    preference[a].resize(h_count);
    std::iota(preference[a].begin(), preference[a].end(), std::size_t{0});
    std::sort(preference[a].begin(), preference[a].end(),
              [&u = utility[a]](std::size_t x, std::size_t y) {
                return u[x] > u[y];
              });
  }

  AllocationResult result;
  result.total_utility.assign(a_count, 0.0);
  result.hosts_assigned.assign(a_count, 0);
  result.assignment.assign(h_count, a_count);  // sentinel: unassigned

  std::vector<std::size_t> cursor(a_count, 0);  // position in preference list
  std::size_t remaining = h_count;
  std::size_t turn = 0;
  while (remaining > 0) {
    const std::size_t a = turn % a_count;
    ++turn;
    std::size_t& pos = cursor[a];
    while (pos < h_count &&
           result.assignment[preference[a][pos]] != a_count) {
      ++pos;
    }
    if (pos >= h_count) continue;  // this app exhausted its list
    const std::size_t h = preference[a][pos];
    result.assignment[h] = a;
    result.total_utility[a] += utility[a][h];
    ++result.hosts_assigned[a];
    --remaining;
  }
  return result;
}

}  // namespace resmodel::sim

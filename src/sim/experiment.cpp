#include "sim/experiment.h"

#include <cmath>
#include <stdexcept>

namespace resmodel::sim {

std::vector<util::ModelDate> default_experiment_dates() {
  std::vector<util::ModelDate> dates;
  for (int month = 1; month <= 9; ++month) {
    dates.push_back(util::ModelDate::from_ymd(2010, month, 1));
  }
  return dates;
}

UtilityExperimentResult run_utility_experiment(
    const trace::TraceStore& actual,
    const std::vector<const HostSynthesisModel*>& models,
    std::span<const ApplicationSpec> apps,
    const std::vector<util::ModelDate>& dates, util::Rng& rng) {
  UtilityExperimentResult result;
  result.dates = dates;
  for (const ApplicationSpec& app : apps) {
    result.app_names.push_back(app.name);
  }
  for (const HostSynthesisModel* model : models) {
    result.model_names.push_back(model->name());
  }
  result.diff_percent.assign(
      models.size(),
      std::vector<std::vector<double>>(apps.size(),
                                       std::vector<double>(dates.size(), 0.0)));
  result.actual_utility.assign(apps.size(),
                               std::vector<double>(dates.size(), 0.0));
  result.host_counts.assign(dates.size(), 0);

  for (std::size_t d = 0; d < dates.size(); ++d) {
    // The §V-B plausibility filter is applied by the snapshot itself: a
    // single corrupt record (1e5 MIPS, 1e4 GB disk) would otherwise
    // dominate the actual-utility reference.
    const HostResourcesSoA actual_hosts =
        HostResourcesSoA::from_snapshot(actual.snapshot_plausible(dates[d]));
    if (actual_hosts.empty()) {
      throw std::invalid_argument("run_utility_experiment: empty snapshot at " +
                                  dates[d].to_string());
    }
    result.host_counts[d] = actual_hosts.size();
    const AllocationResult actual_alloc =
        allocate_round_robin(apps, actual_hosts);
    for (std::size_t a = 0; a < apps.size(); ++a) {
      if (!(actual_alloc.total_utility[a] > 0.0)) {
        throw std::invalid_argument(
            "run_utility_experiment: zero actual utility for " +
            result.app_names[a]);
      }
      result.actual_utility[a][d] = actual_alloc.total_utility[a];
    }

    for (std::size_t m = 0; m < models.size(); ++m) {
      const HostResourcesSoA model_hosts =
          models[m]->synthesize_soa(dates[d], actual_hosts.size(), rng);
      const AllocationResult model_alloc =
          allocate_round_robin(apps, model_hosts);
      for (std::size_t a = 0; a < apps.size(); ++a) {
        const double diff =
            std::fabs(model_alloc.total_utility[a] -
                      actual_alloc.total_utility[a]) /
            actual_alloc.total_utility[a];
        result.diff_percent[m][a][d] = diff * 100.0;
      }
    }
  }
  return result;
}

}  // namespace resmodel::sim

#include "sim/host_soa.h"

#include <cmath>

namespace resmodel::sim {

std::vector<double> log_utility_column(const std::vector<double>& column) {
  std::vector<double> out(column.size());
  for (std::size_t i = 0; i < column.size(); ++i) {
    out[i] = std::log(column[i] > kUtilityFloor ? column[i] : kUtilityFloor);
  }
  return out;
}

void HostResourcesSoA::resize(std::size_t n) {
  cores.resize(n);
  memory_mb.resize(n);
  dhrystone_mips.resize(n);
  whetstone_mips.resize(n);
  disk_avail_gb.resize(n);
  log_cores.clear();
  log_memory_mb.clear();
  log_dhrystone_mips.clear();
  log_whetstone_mips.clear();
  log_disk_avail_gb.clear();
}

void HostResourcesSoA::precompute_logs() {
  log_cores = log_utility_column(cores);
  log_memory_mb = log_utility_column(memory_mb);
  log_dhrystone_mips = log_utility_column(dhrystone_mips);
  log_whetstone_mips = log_utility_column(whetstone_mips);
  log_disk_avail_gb = log_utility_column(disk_avail_gb);
}

HostResources HostResourcesSoA::host(std::size_t i) const noexcept {
  return HostResources{cores[i], memory_mb[i], dhrystone_mips[i],
                       whetstone_mips[i], disk_avail_gb[i]};
}

std::vector<HostResources> HostResourcesSoA::to_hosts() const {
  std::vector<HostResources> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(host(i));
  return out;
}

HostResourcesSoA HostResourcesSoA::from_batch(
    const core::GeneratedHostBatch& batch) {
  HostResourcesSoA soa;
  soa.cores.assign(batch.n_cores.begin(), batch.n_cores.end());
  soa.memory_mb = batch.memory_mb;
  soa.dhrystone_mips = batch.dhrystone_mips;
  soa.whetstone_mips = batch.whetstone_mips;
  soa.disk_avail_gb = batch.disk_avail_gb;
  soa.precompute_logs();
  return soa;
}

HostResourcesSoA HostResourcesSoA::from_snapshot(
    const trace::ResourceSnapshot& snap) {
  HostResourcesSoA soa;
  soa.cores = snap.cores;
  soa.memory_mb = snap.memory_mb;
  soa.dhrystone_mips = snap.dhrystone_mips;
  soa.whetstone_mips = snap.whetstone_mips;
  soa.disk_avail_gb = snap.disk_avail_gb;
  soa.precompute_logs();
  return soa;
}

HostResourcesSoA HostResourcesSoA::from_hosts(
    std::span<const HostResources> hosts) {
  HostResourcesSoA soa;
  soa.resize(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    soa.cores[i] = hosts[i].cores;
    soa.memory_mb[i] = hosts[i].memory_mb;
    soa.dhrystone_mips[i] = hosts[i].dhrystone_mips;
    soa.whetstone_mips[i] = hosts[i].whetstone_mips;
    soa.disk_avail_gb[i] = hosts[i].disk_avail_gb;
  }
  soa.precompute_logs();
  return soa;
}

}  // namespace resmodel::sim

// Fault injection and robustness-policy vocabulary for the work
// distribution layer.
//
// The real system behind the paper survives unreliable volunteer hosts
// through redundancy and validation; this header names the failure modes
// the reproduction injects and the server-side policies that absorb them:
//
//  - FaultType / FaultMixConfig / sample_fault_profiles: per-host
//    behaviours (crash / straggler / corrupter) sampled from seeded
//    util::Rng forks in host order — the same consumption discipline as
//    every other per-host draw in the tree, so injected runs are
//    bit-reproducible and thread-count invariant under run_policy_sweep.
//  - canonical_digest / corrupted_digest: the result-validation model. A
//    correct replica of a work item produces THE canonical digest of its
//    payload; a corrupter produces a per-host wrong one (guaranteed to
//    differ), so k matching digests == k correct results.
//  - ReplicationConfig: k-of-n quorum replication with deadline re-issue
//    under exponential backoff and a max-retry cap (the engine lives in
//    sim/replication.h).
//  - ReplicationOutcome: the outcome counters threaded through
//    BagOfTasksResult and the sweep grid. Every issued task resolves to
//    exactly one of validated / invalid / missed-deadline — never
//    silently dropped (tasks_issued == the sum, asserted by the engine
//    and the tests).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/rng.h"

namespace resmodel::sim {

/// Per-host fault behaviour of a virtual client.
enum class FaultType : std::uint8_t {
  kHonest,     ///< completes on time, correct digest
  kCrash,      ///< session dies mid-task: work crossing an ON-session
               ///< boundary of the churn::IntervalTimeline realization is
               ///< lost and never reported
  kStraggler,  ///< rate derate spike: runs `slowdown` x slower than the
               ///< speed the scheduler selected it on
  kCorrupter,  ///< completes on time but returns a wrong result digest
};

/// Population-level fault mix. Fractions partition the hosts (the
/// remainder is honest); the straggler slowdown factor is drawn uniformly
/// per straggler host.
struct FaultMixConfig {
  double crash_fraction = 0.0;
  double straggler_fraction = 0.0;
  double corrupter_fraction = 0.0;
  double straggler_slowdown_min = 4.0;
  double straggler_slowdown_max = 16.0;

  bool any() const noexcept {
    return crash_fraction > 0.0 || straggler_fraction > 0.0 ||
           corrupter_fraction > 0.0;
  }
  double faulty_fraction() const noexcept {
    return crash_fraction + straggler_fraction + corrupter_fraction;
  }
  /// Throws std::invalid_argument on negative fractions, a sum above 1,
  /// or a slowdown range outside [1, inf) / with max < min.
  void validate() const;
};

/// One host's sampled behaviour. `slowdown` is 1 for every type but
/// kStraggler.
struct FaultDraw {
  FaultType type = FaultType::kHonest;
  double slowdown = 1.0;
};

/// Draws one host's behaviour: one uniform for the type, plus one uniform
/// for the slowdown iff the host is a straggler. Callers that need a
/// fixed per-host consumption must hand each host its own fork — which is
/// exactly what sample_fault_profiles does.
FaultDraw sample_fault(const FaultMixConfig& mix, util::Rng& rng);

/// Per-host fault columns (index h across both columns is one host).
struct FaultProfiles {
  std::vector<FaultType> type;
  std::vector<double> slowdown;  ///< 1.0 unless type[h] == kStraggler

  std::size_t size() const noexcept { return type.size(); }
};

/// Samples the whole population: forks `rng` once per host IN HOST ORDER
/// and draws that host's behaviour from the fork — the fork isolates the
/// per-host consumption, so the profile column is independent of how many
/// draws any individual host makes and invariant under sweep threading.
/// Validates `mix` first.
FaultProfiles sample_fault_profiles(std::size_t hosts,
                                    const FaultMixConfig& mix,
                                    util::Rng& rng);

/// The canonical result digest of a work item's payload (a SplitMix64
/// finalizer — any fixed 64-bit mixing function works; correctness only
/// needs "equal payloads agree, corrupted digests differ").
std::uint64_t canonical_digest(std::uint64_t payload) noexcept;

/// A corrupter's digest for the same payload: differs from the canonical
/// digest for EVERY (payload, host_salt) pair, and from other corrupters'
/// digests for distinct salts — so corrupt replicas can never form a
/// matching quorum with correct ones (nor, for distinct hosts, with each
/// other).
std::uint64_t corrupted_digest(std::uint64_t payload,
                               std::uint64_t host_salt) noexcept;

/// Server-side robustness policy: per-task n-way replication with
/// k-of-n quorum validation of result digests, deadline timeouts with
/// re-issue under exponential backoff, and a max-retry cap.
struct ReplicationConfig {
  /// Master switch — the replicated engine also activates when the
  /// fault mix injects any faulty hosts (see
  /// BagOfTasksConfig::replicated_run()).
  bool enabled = false;
  std::uint32_t replicas = 1;  ///< n: replicas issued per task per round
  std::uint32_t quorum = 1;    ///< k: matching correct digests to validate
  /// Report deadline of the FIRST round, in days; round r's window is
  /// deadline_days * backoff^r (the re-issue backoff), and round r+1 is
  /// issued the instant round r's window closes. +inf = no deadline:
  /// a single round whose results all count, no re-issue.
  double deadline_days = std::numeric_limits<double>::infinity();
  double backoff = 2.0;          ///< window growth per retry, >= 1
  std::uint32_t max_retries = 4; ///< re-issue rounds after the first

  bool has_deadline() const noexcept {
    return deadline_days != std::numeric_limits<double>::infinity();
  }
  /// Throws std::invalid_argument unless 1 <= quorum <= replicas <= 32,
  /// deadline_days > 0, backoff >= 1 and max_retries <= 32.
  void validate() const;
};

/// Why a task failed to validate (the graceful-degradation reason code;
/// kNone for validated tasks).
enum class TaskFailReason : std::uint8_t {
  kNone,
  /// Retries exhausted with >= quorum results returned in time but no
  /// quorum of MATCHING correct digests — corruption dominated. Counted
  /// as tasks_invalid.
  kQuorumConflict,
  /// Retries exhausted with fewer than quorum results returned inside
  /// their deadlines (crashes / stragglers). Counted as
  /// tasks_missed_deadline.
  kDeadlineExhausted,
};

/// Outcome accounting of one replicated run. Task-level counters
/// partition the issued tasks exactly:
///   tasks_issued == tasks_validated + tasks_invalid +
///                   tasks_missed_deadline
/// and replica-level counters partition the issued replicas:
///   replicas_issued == replicas_correct + replicas_corrupt +
///                      replicas_crashed + replicas_missed_deadline +
///                      replicas_duplicate_host.
struct ReplicationOutcome {
  std::uint64_t tasks_issued = 0;
  std::uint64_t tasks_validated = 0;
  /// Failed with TaskFailReason::kQuorumConflict.
  std::uint64_t tasks_invalid = 0;
  /// Failed with TaskFailReason::kDeadlineExhausted.
  std::uint64_t tasks_missed_deadline = 0;

  std::uint64_t replicas_issued = 0;
  std::uint64_t replicas_correct = 0;  ///< in-deadline, canonical digest
  std::uint64_t replicas_corrupt = 0;  ///< in-deadline, wrong digest
  std::uint64_t replicas_crashed = 0;  ///< lost to an ON-session death
  /// Completed after their round's deadline — the result is discarded
  /// (the work unit may already have been re-issued), BOINC-style.
  std::uint64_t replicas_missed_deadline = 0;
  /// Landed on a host that already returned a counted result for the
  /// same task — counted once toward the quorum, the duplicate ignored.
  std::uint64_t replicas_duplicate_host = 0;

  /// Task re-issue events (one per task per extra round).
  std::uint64_t reissues = 0;
  /// CPU-days burned beyond one useful copy per validated task: total
  /// replica processing time minus, for each validated task, the time
  /// its earliest counted correct replica spent. The redundancy +
  /// fault overhead of the run.
  double wasted_replica_cpu_days = 0.0;
  /// Validation-latency percentiles (days from first issue to the
  /// quorum-completing result) over tasks that needed >= 1 re-issue;
  /// zero when no re-issued task validated.
  double reissue_latency_p50_days = 0.0;
  double reissue_latency_p90_days = 0.0;
  double reissue_latency_p99_days = 0.0;
  /// Day the last task validated (0 when none did).
  double last_validation_day = 0.0;

  /// The zero-silently-lost-tasks invariant.
  bool conserves_tasks() const noexcept {
    return tasks_issued ==
           tasks_validated + tasks_invalid + tasks_missed_deadline;
  }
};

}  // namespace resmodel::sim

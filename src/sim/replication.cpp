// Compiled with the same FP discipline as the scheduling kernels
// (src/CMakeLists.txt): the derate stepper's blocked and scalar
// selections must stay bit-identical, and every completion the round
// clock compares against a deadline is produced by shared exact
// expressions.
#include "sim/replication.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

#include "backend/kernels.h"

namespace resmodel::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Stepped kDynamicEct selection: the classic free_at + task*inv minimum
// (ect_schedule_blocked / _reference), one replica at a time. The blocked
// arm keeps free_at gathered into ect_order layout plus per-block minima,
// prunes with the monotone bmin_free + task*bmin_inv bound (sound without
// a margin: both addends are per-block minima and fl(+) is monotone) and
// sweeps survivors through the backend's ect_block_sweep — the identical
// kernel shape churn's kAbandon selection uses, and bit-identical to the
// scalar first-strict-improvement scan by the same argument.
class DerateEctStepper {
 public:
  DerateEctStepper(ScheduleState& state,
                   const churn::IntervalTimeline& timeline,
                   std::span<const double> slowdown, bool blocked,
                   const backend::KernelOps* ops)
      : state_(state),
        timeline_(timeline),
        slowdown_(slowdown.begin(), slowdown.end()),
        blocked_(blocked),
        ops_(ops) {
    if (blocked_) {
      state_.ensure_ect_caches();
      rebuild();
    }
  }

  churn::ChurnScheduler::StepOutcome step(double task) {
    const std::uint32_t best = blocked_ ? select_blocked(task)
                                        : select_reference(task);
    const double slowdown = slowdown_.empty() ? 1.0 : slowdown_[best];
    const double start = state_.free_at[best];
    const double worked = task * state_.inv_rates[best] * slowdown;
    const double completion = start + worked;

    churn::ChurnScheduler::StepOutcome out;
    out.host = best;
    out.start = start;
    out.completion = completion;
    out.worked_days = worked;
    out.completed = true;
    // The crash model's trigger under the derate abstraction: the
    // execution window crosses the end of the host's current/next ON
    // session. Past the timeline horizon the host counts as permanently
    // ON (no sessions left to die).
    out.session_crossed = false;
    if (start < timeline_.end_day()) {
      const std::size_t i = timeline_.advance(best, start);
      const std::span<const double> ends = timeline_.ends(best);
      out.session_crossed = i < ends.size() && completion > ends[i];
    }

    state_.busy_days[best] += worked;
    state_.free_at[best] = completion;
    totals_.total_cpu_days += worked;
    totals_.makespan_days = std::max(totals_.makespan_days, completion);
    if (blocked_) refresh(best);
    return out;
  }

  void advance_time(double now) {
    const std::size_t n = state_.size();
    for (std::size_t h = 0; h < n; ++h) {
      if (state_.free_at[h] < now) state_.free_at[h] = now;
    }
    if (blocked_) rebuild();
  }

  const churn::ChurnScheduleTotals& step_totals() const noexcept {
    return totals_;
  }

 private:
  std::uint32_t select_reference(double task) const {
    const std::size_t n = state_.size();
    std::uint32_t best = 0;
    double best_done = kInf;
    for (std::size_t h = 0; h < n; ++h) {
      const double done = state_.free_at[h] + task * state_.inv_rates[h];
      if (done < best_done) {
        best_done = done;
        best = static_cast<std::uint32_t>(h);
      }
    }
    return best;
  }

  std::uint32_t select_blocked(double task) const {
    constexpr std::size_t kBlock = ScheduleState::kBlockSize;
    const std::size_t n = state_.size();
    const double* inv = state_.ect_sorted_inv.data();
    const double* bmin_inv = state_.ect_block_min_inv.data();
    const std::uint32_t* order = state_.ect_order.data();
    const std::size_t blocks = state_.block_count();
    std::uint32_t best = 0;
    double best_done = kInf;
    for (std::size_t b = 0; b < blocks; ++b) {
      if (bmin_free_[b] + task * bmin_inv[b] > best_done) continue;
      const std::size_t lo = b * kBlock;
      const std::size_t len = std::min(n - lo, kBlock);
      const backend::EctBlockMin r = ops_->ect_block_sweep(
          sfree_.data() + lo, inv + lo, order + lo, len, task, best_done);
      if (r.value > best_done) continue;
      if (r.value < best_done) {
        best_done = r.value;
        best = r.index;
      } else {
        best = std::min(best, r.index);
      }
    }
    return best;
  }

  void rebuild() {
    constexpr std::size_t kBlock = ScheduleState::kBlockSize;
    const std::size_t n = state_.size();
    const std::size_t blocks = state_.block_count();
    sfree_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      sfree_[j] = state_.free_at[state_.ect_order[j]];
    }
    bmin_free_.resize(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t lo = b * kBlock;
      const std::size_t hi = std::min(n, lo + kBlock);
      bmin_free_[b] = ops_->column_min(sfree_.data() + lo, hi - lo);
    }
  }

  void refresh(std::size_t host) {
    constexpr std::size_t kBlock = ScheduleState::kBlockSize;
    const std::size_t n = state_.size();
    const std::size_t pos = state_.ect_pos[host];
    sfree_[pos] = state_.free_at[host];
    const std::size_t blk = pos / kBlock;
    const std::size_t lo = blk * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    bmin_free_[blk] = ops_->column_min(sfree_.data() + lo, hi - lo);
  }

  ScheduleState& state_;
  const churn::IntervalTimeline& timeline_;
  std::vector<double> slowdown_;
  bool blocked_;
  const backend::KernelOps* ops_;
  std::vector<double> sfree_;
  std::vector<double> bmin_free_;
  churn::ChurnScheduleTotals totals_;
};

// ---------------------------------------------------------------------------
// The round engine, templated over the stepper (churn::ChurnScheduler in
// stepping mode, or the derate stepper above — both expose
// step(task) -> StepOutcome and advance_time(now)).

// Per-task quorum bookkeeping across rounds.
struct TaskQuorum {
  std::vector<std::pair<double, double>> correct;  ///< (completion, worked)
  std::uint32_t corrupt = 0;
  std::vector<std::uint32_t> counted_hosts;
  bool reissued = false;
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      std::floor(static_cast<double>(sorted.size() - 1) * q));
  return sorted[idx];
}

template <typename Stepper>
ReplicationOutcome run_rounds(Stepper& stepper, std::span<const double> tasks,
                              const FaultProfiles& faults,
                              const ReplicationConfig& rep,
                              double& wasted_replica_cpu_days) {
  ReplicationOutcome outcome;
  outcome.tasks_issued = tasks.size();

  std::vector<TaskQuorum> quorums(tasks.size());
  std::vector<std::uint32_t> pending(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    pending[t] = static_cast<std::uint32_t>(t);
  }

  double total_worked = 0.0;
  double useful_sum = 0.0;
  std::vector<double> reissue_latencies;
  std::vector<std::uint32_t> still_pending;
  std::vector<double> completions;  // scratch for the k-th order statistic

  double round_start = 0.0;
  double window = rep.deadline_days;  // grows by `backoff` per round
  for (std::uint32_t round = 0; !pending.empty(); ++round) {
    if (round > 0) stepper.advance_time(round_start);
    const double deadline = rep.has_deadline() ? round_start + window : kInf;

    // Issue this round's replicas in task order; kAbandon's incomplete
    // attempts re-enter at the back, exactly like run_abandon's queue.
    std::deque<std::uint32_t> queue;
    for (const std::uint32_t t : pending) {
      for (std::uint32_t j = 0; j < rep.replicas; ++j) queue.push_back(t);
    }
    outcome.replicas_issued += queue.size();

    while (!queue.empty()) {
      const std::uint32_t t = queue.front();
      queue.pop_front();
      const auto s = stepper.step(tasks[t]);
      total_worked += s.worked_days;
      const FaultType fault = faults.type[s.host];

      if (!s.completed) {
        // kAbandon only: the session died under the attempt. On a crash
        // host the client is gone with it — the replica is lost; any
        // other host hands the task back and the replica retries.
        if (fault == FaultType::kCrash) {
          ++outcome.replicas_crashed;
        } else {
          queue.push_back(t);
        }
        continue;
      }
      if (fault == FaultType::kCrash && s.session_crossed) {
        // The session died mid-execution: the result never reports. The
        // host still burned the time — the server only sees a timeout.
        ++outcome.replicas_crashed;
        continue;
      }
      if (s.completion > deadline) {
        ++outcome.replicas_missed_deadline;
        continue;
      }
      TaskQuorum& q = quorums[t];
      if (std::find(q.counted_hosts.begin(), q.counted_hosts.end(),
                    s.host) != q.counted_hosts.end()) {
        ++outcome.replicas_duplicate_host;
        continue;
      }
      q.counted_hosts.push_back(s.host);
      if (fault == FaultType::kCorrupter) {
        ++outcome.replicas_corrupt;
        ++q.corrupt;
      } else {
        ++outcome.replicas_correct;
        q.correct.emplace_back(s.completion, s.worked_days);
      }
    }

    // Resolve every pending task: validate, re-issue, or fail terminally.
    const bool rounds_remain = rep.has_deadline() && round < rep.max_retries;
    still_pending.clear();
    for (const std::uint32_t t : pending) {
      TaskQuorum& q = quorums[t];
      if (q.correct.size() >= rep.quorum) {
        ++outcome.tasks_validated;
        completions.clear();
        for (const auto& cw : q.correct) completions.push_back(cw.first);
        std::sort(completions.begin(), completions.end());
        const double validated_at = completions[rep.quorum - 1];
        outcome.last_validation_day =
            std::max(outcome.last_validation_day, validated_at);
        if (q.reissued) reissue_latencies.push_back(validated_at);
        // One copy of the work was useful: the earliest counted correct
        // replica's processing time. Everything else is redundancy/fault
        // overhead.
        double useful = q.correct.front().second;
        double earliest = q.correct.front().first;
        for (const auto& [done, worked] : q.correct) {
          if (done < earliest) {
            earliest = done;
            useful = worked;
          }
        }
        useful_sum += useful;
      } else if (rounds_remain) {
        q.reissued = true;
        ++outcome.reissues;
        still_pending.push_back(t);
      } else if (q.correct.size() + q.corrupt >= rep.quorum) {
        // Enough results arrived in time, but corruption kept the
        // matching-digest count below quorum: TaskFailReason::
        // kQuorumConflict.
        ++outcome.tasks_invalid;
      } else {
        // Too few results survived their deadlines (crashes /
        // stragglers): TaskFailReason::kDeadlineExhausted.
        ++outcome.tasks_missed_deadline;
      }
    }
    pending.swap(still_pending);
    round_start = deadline;
    window *= rep.backoff;
  }

  wasted_replica_cpu_days = total_worked - useful_sum;
  std::sort(reissue_latencies.begin(), reissue_latencies.end());
  outcome.reissue_latency_p50_days = percentile(reissue_latencies, 0.50);
  outcome.reissue_latency_p90_days = percentile(reissue_latencies, 0.90);
  outcome.reissue_latency_p99_days = percentile(reissue_latencies, 0.99);

  // The zero-silently-lost-tasks invariant, structurally true by the
  // resolve loop above; assert it anyway — the whole point of the layer.
  assert(outcome.conserves_tasks());
  return outcome;
}

BagOfTasksResult fold_result(const ScheduleState& state,
                             const churn::ChurnScheduleTotals& totals,
                             ReplicationOutcome outcome,
                             double wasted_replica_cpu_days) {
  BagOfTasksResult result;
  result.makespan_days = totals.makespan_days;
  result.total_cpu_days = totals.total_cpu_days;
  result.wasted_cpu_days = totals.wasted_cpu_days;
  result.interruptions = totals.interruptions;
  double sum = 0.0;
  for (const double b : state.busy_days) {
    sum += b;
    result.max_host_busy_days = std::max(result.max_host_busy_days, b);
    if (b > 0.0) ++result.hosts_used;
  }
  result.mean_host_busy_days =
      state.busy_days.empty()
          ? 0.0
          : sum / static_cast<double>(state.busy_days.size());
  outcome.wasted_replica_cpu_days = wasted_replica_cpu_days;
  result.replication = outcome;
  return result;
}

void check_inputs(std::size_t hosts, std::span<const double> slowdown,
                  const FaultProfiles& faults,
                  const ReplicationConfig& replication) {
  replication.validate();
  if (faults.type.size() != hosts || slowdown.size() != hosts) {
    throw std::invalid_argument(
        "replicated run: fault profiles do not cover the hosts");
  }
}

}  // namespace

BagOfTasksResult run_replicated_churn(churn::ChurnScheduler& scheduler,
                                      ScheduleState& state,
                                      std::span<const double> tasks,
                                      const FaultProfiles& faults,
                                      const ReplicationConfig& replication,
                                      churn::InterruptionPolicy interruption,
                                      bool reference_dynamics) {
  check_inputs(state.size(), faults.slowdown, faults, replication);
  scheduler.begin_stepping(tasks, interruption, faults.slowdown,
                           reference_dynamics);
  double wasted_replica = 0.0;
  ReplicationOutcome outcome =
      run_rounds(scheduler, tasks, faults, replication, wasted_replica);
  return fold_result(state, scheduler.step_totals(), std::move(outcome),
                     wasted_replica);
}

BagOfTasksResult run_replicated_ect(ScheduleState& state,
                                    const churn::IntervalTimeline& timeline,
                                    std::span<const double> tasks,
                                    const FaultProfiles& faults,
                                    const ReplicationConfig& replication,
                                    backend::Backend backend_arm,
                                    bool reference_dynamics) {
  check_inputs(state.size(), faults.slowdown, faults, replication);
  if (timeline.host_count() != state.size()) {
    throw std::invalid_argument(
        "replicated run: timeline does not cover the hosts");
  }
  const backend::ResolvedBackend resolved = backend::resolve(backend_arm);
  const bool blocked =
      !reference_dynamics && resolved.arm != backend::Backend::kScalar;
  DerateEctStepper stepper(state, timeline, faults.slowdown, blocked,
                           &backend::kernel_ops(resolved.simd));
  double wasted_replica = 0.0;
  ReplicationOutcome outcome =
      run_rounds(stepper, tasks, faults, replication, wasted_replica);
  return fold_result(state, stepper.step_totals(), std::move(outcome),
                     wasted_replica);
}

}  // namespace resmodel::sim

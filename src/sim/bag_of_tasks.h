// Bag-of-tasks scheduling on modeled hosts.
//
// The paper's introduction motivates the model with scheduling research
// for desktop grids ([1] Al-Azzoni & Down, [2] Anglano & Canonico, [3]
// WaveGrid): "the performance of such algorithms are arguably tied to the
// assumed distributions". This module makes that argument executable — a
// bag of independent tasks is scheduled onto a host population under
// different policies, and the resulting makespan depends visibly on which
// host model produced the population (see bench/ablation_makespan).
//
// Hosts process tasks sequentially at cores x Whetstone MIPS; an optional
// availability overlay derates each host by its sampled long-run ON
// fraction (volunteer hosts are not always up).
//
// The policy hot loops run on the columnar ScheduleState of
// sim/schedule_state.h (blocked+pruned MCT scan, flat 4-ary pull heap);
// run_bag_of_tasks_reference keeps the scalar/priority_queue kernels as
// the golden oracle, bit-identical to the fast path. run_policy_sweep
// executes a whole policy x population x task-count grid in parallel with
// per-cell deterministic seeding.
//
// The churn policy family (kChurnEct*) replaces the scalar derate with
// the event-driven src/churn/ subsystem: completion times come from
// walking each host's actual ON/OFF intervals (churn::ChurnScheduler over
// a churn::IntervalTimeline), under checkpoint / restart / abandon
// interruption semantics. Derate and churn cells of one sweep draw THE
// SAME per-host interval realizations (identical rng fork order), so a
// derate-vs-interval comparison isolates the modelling choice, not the
// noise.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "churn/coupled_availability.h"
#include "churn/interval_timeline.h"
#include "sim/fault_model.h"
#include "sim/host_soa.h"
#include "sim/utility.h"
#include "synth/availability.h"
#include "util/rng.h"

namespace resmodel::sim {

/// Workload description: task costs are log-normal in MIPS-days (cost /
/// (cores x whetstone MIPS) = days of computation on a given host).
struct BagOfTasksConfig {
  std::size_t task_count = 2000;
  double task_cost_mips_days_mean = 4000.0;
  double task_cost_cv = 0.5;  ///< coefficient of variation of task cost

  /// When true, each host's rate is derated by an availability fraction
  /// sampled from the alternating-renewal model over `horizon_days`.
  /// The churn policies ignore this flag: they always model availability
  /// through the interval timeline itself.
  bool model_availability = false;
  synth::AvailabilityParams availability;
  double availability_horizon_days = 100.0;

  /// When true, each host's availability parameters are rank-coupled to
  /// its speed through an extra copula dimension (see
  /// churn/coupled_availability.h) before intervals are drawn — negative
  /// `availability_coupling.speed_rho` produces the fast-but-flaky
  /// population. Applies to the scalar derate and the churn timeline
  /// alike, so both see the same coupled realizations.
  bool availability_coupled = false;
  churn::AvailabilityCoupling availability_coupling;

  /// Start interval streams in the stationary state instead of always-ON
  /// (synth::StartMode::kStationary); default off keeps existing streams.
  bool availability_stationary_start = false;

  /// Resident session-lookahead depth of the churn ECT kernel, in
  /// [1, churn::kMaxLookaheadLevels] (validated up front like the other
  /// knobs; default = churn::ChurnSchedulerConfig's measured sweet
  /// spot). A pure performance knob: blocked and reference kernels stay
  /// bit-identical at any depth; results can differ by ulps ACROSS
  /// depths because deeper spills resolve through a different exact
  /// expression. CLI: `sweep --churn-levels=N`.
  std::size_t churn_lookahead_levels = 8;

  /// Kernel-dispatch arm for the dynamic hot loops (src/backend/): kAuto
  /// picks the widest SIMD level the CPU (and RESMODEL_SIMD) allows,
  /// kScalar routes the dynamic policies onto the retained reference
  /// kernels. Pure performance knob — every arm is bit-identical, so
  /// results never depend on it. CLI: `sweep --backend=...`.
  backend::Backend backend = backend::Backend::kAuto;

  /// Fault-tolerant work distribution (sim/replication.h): k-of-n quorum
  /// replication with deadline re-issue, and the per-host fault mix the
  /// population is injected with. A replicated run activates when either
  /// is armed (replication.enabled or any fault fraction > 0) and is
  /// restricted to the ECT-family policies (kDynamicEct + kChurnEct*) —
  /// the static and pull policies have no completion-time model to
  /// validate deadlines against, and throw. Fault profiles are sampled
  /// from one rng fork per host AFTER the task costs (and only when the
  /// mix is non-trivial), so a replication-only run schedules the
  /// identical workload a plain run does. CLI: `sweep --replication=k/n
  /// --deadline-days=D --fault-mix=crash:p,straggler:p,corrupt:p`.
  ReplicationConfig replication;
  FaultMixConfig fault_mix;

  bool replicated_run() const noexcept {
    return replication.enabled || fault_mix.any();
  }
};

/// Scheduling policies compared in the study.
enum class SchedulingPolicy {
  /// Knowledge-free static striping: task i goes to host i mod H, decided
  /// up front with no speed information.
  kStaticRoundRobin,
  /// Static allocation proportional to each host's (derated) speed.
  kStaticSpeedWeighted,
  /// Dynamic pull: an idle host takes the next task from the queue (list
  /// scheduling on the earliest-available host). Faithful to how BOINC
  /// hands out work — and therefore exposed to stragglers: a pathologically
  /// slow host pulling a large task near the end dominates the makespan.
  kDynamicPull,
  /// Dynamic earliest-completion-time (the MCT heuristic): each task goes
  /// to the host that would finish it soonest. Needs speed knowledge but
  /// is straggler-safe. With model_availability the host rates are
  /// scalar-derated by the long-run ON fraction.
  kDynamicEct,
  /// Interval-aware ECT on the churn timeline: completion times walk the
  /// host's actual ON/OFF intervals; work accrues across OFF gaps
  /// (checkpointing client). See churn/churn_scheduler.h.
  kChurnEctCheckpoint,
  /// As above, but an interrupted task restarts from scratch on the same
  /// host — heavy-tailed ON sessions make long tasks expensive.
  kChurnEctRestart,
  /// As above, but an interrupted task is re-enqueued for any host; the
  /// interrupting host frees immediately.
  kChurnEctAbandon,
};

std::string to_string(SchedulingPolicy policy);

/// True for the kChurnEct* family (interval-walking policies).
bool is_churn_policy(SchedulingPolicy policy) noexcept;

/// Result of one scheduling run.
struct BagOfTasksResult {
  double makespan_days = 0.0;      ///< completion time of the last task
  double total_cpu_days = 0.0;     ///< sum of per-task processing times
  double mean_host_busy_days = 0.0;
  double max_host_busy_days = 0.0; ///< equals makespan for static policies
  std::size_t hosts_used = 0;      ///< hosts that processed >= 1 task
  /// Churn policies only: ON time burned by interrupted attempts
  /// (restart/abandon) and how many interruptions occurred.
  double wasted_cpu_days = 0.0;
  std::uint64_t interruptions = 0;
  /// Replicated runs only (config.replicated_run()): the quorum /
  /// deadline / fault outcome counters. For those runs total_cpu_days
  /// counts every replica's committed work and makespan_days is the
  /// host-side makespan; the validation clock (last_validation_day,
  /// re-issue latency percentiles) lives here.
  ReplicationOutcome replication;
};

/// One availability draw for a host population: the per-host ON/OFF
/// timeline and the long-run fractions measured from the SAME intervals.
/// Derate consumers multiply rates by the fractions; churn consumers walk
/// the timeline — both see one realization, so comparing them isolates
/// the modelling choice.
struct AvailabilityRealization {
  std::shared_ptr<const churn::IntervalTimeline> timeline;
  std::vector<double> fractions;  ///< ON fraction of the horizon, per host
};

/// Draws the availability realization for `speed` (the base rate column,
/// which also feeds the optional copula coupling). Rng consumption: one
/// dimension-2 copula draw per host iff config.availability_coupled, then
/// one fork per host in host order — a superset of the historical derate
/// stream, identical to it when coupling is off. Throws
/// std::invalid_argument on invalid availability/coupling parameters or a
/// non-positive horizon.
AvailabilityRealization realize_availability(std::span<const double> speed,
                                             const BagOfTasksConfig& config,
                                             util::Rng& rng);

/// The base speed column — max(1, cores x whetstone) per host, no
/// availability treatment, no rng consumption. This is BOTH the rate
/// column the schedulers start from and the speed column
/// realize_availability couples against; callers that draw a
/// realization themselves (the shared-realization overload below) must
/// use this helper so their draw matches the internal one.
std::vector<double> base_host_rates(const HostResourcesSoA& hosts);

/// Per-host processing rates in MIPS (cores x whetstone, floored at 1),
/// derated by a sampled availability fraction when the overlay is on
/// (per-host coupled parameters when availability_coupled is set).
/// Exposed for the equivalence tests: both overloads consume `rng`
/// identically (only when model_availability is set: the optional copula
/// draws, then one fork per host in host order), so the SoA path is
/// bit-identical to the AoS path. The SoA overload fills the base rates
/// in one multiply sweep over the cores/whetstone columns before the
/// derating pass.
std::vector<double> compute_host_rates(std::span<const HostResources> hosts,
                                       const BagOfTasksConfig& config,
                                       util::Rng& rng);
std::vector<double> compute_host_rates(const HostResourcesSoA& hosts,
                                       const BagOfTasksConfig& config,
                                       util::Rng& rng);

/// Runs the bag of tasks over `hosts` with the given policy. Tasks are
/// sampled once from `config` using `rng`, so two policies can be compared
/// on identical workloads by passing equally seeded generators.
/// Throws std::invalid_argument if `hosts` is empty or the config is
/// degenerate.
BagOfTasksResult run_bag_of_tasks(std::span<const HostResources> hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng);

/// Columnar overload: identical semantics and rng consumption, computing
/// the per-host rates straight from the SoA columns (no AoS conversion).
BagOfTasksResult run_bag_of_tasks(const HostResourcesSoA& hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng);

/// Shared-realization overload: schedules against a caller-supplied
/// availability draw instead of drawing one, so variants of a pure
/// performance knob (e.g. churn_lookahead_levels) — or any set of runs
/// that must stay draw-comparable — consume ONE realization by
/// construction. `rng` only samples the workload. Derate policies
/// multiply the base rates by `availability.fractions` (requires
/// model_availability); churn policies walk `availability.timeline`.
/// Throws std::invalid_argument when the realization does not cover the
/// hosts (or is missing the piece the policy needs).
BagOfTasksResult run_bag_of_tasks(const HostResourcesSoA& hosts,
                                  const AvailabilityRealization& availability,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng);

/// Same contract, but the dynamic policies run on the retained reference
/// kernels (scalar ECT scan, std::priority_queue pull) instead of the
/// blocked/d-ary ones. Bit-identical to run_bag_of_tasks — the golden
/// oracle for tests/sim/ and the baseline for bench/perf_microbench.
BagOfTasksResult run_bag_of_tasks_reference(
    std::span<const HostResources> hosts, const BagOfTasksConfig& config,
    SchedulingPolicy policy, util::Rng& rng);
BagOfTasksResult run_bag_of_tasks_reference(const HostResourcesSoA& hosts,
                                            const BagOfTasksConfig& config,
                                            SchedulingPolicy policy,
                                            util::Rng& rng);

/// One named host population in a policy sweep.
struct SweepPopulation {
  std::string name;
  HostResourcesSoA hosts;
};

/// A policy x population x task-count grid specification.
struct PolicySweepConfig {
  std::vector<SchedulingPolicy> policies;
  std::vector<std::size_t> task_counts;
  /// Shared workload/availability parameters; `base.task_count` is
  /// overridden by each grid cell.
  BagOfTasksConfig base;
  /// Every cell reseeds its own util::Rng(workload_seed), exactly like
  /// the serial loops this runner replaces: cells with the same task
  /// count schedule the identical sampled workload, and no cell's stream
  /// depends on execution order — the grid is thread-count invariant.
  std::uint64_t workload_seed = 999;
  int threads = 0;  ///< workers for the cell grid; 0 = hardware concurrency
};

/// One completed grid cell: indices into the populations span and the
/// config's policies / task_counts vectors, plus the scheduling result.
struct PolicySweepCell {
  std::size_t population = 0;
  std::size_t policy = 0;
  std::size_t task_count = 0;
  BagOfTasksResult result;
};

/// All cells of one sweep, population-major then policy then task count,
/// with an indexed accessor.
struct PolicySweepResult {
  std::size_t policy_count = 0;
  std::size_t task_count_count = 0;
  std::vector<PolicySweepCell> cells;

  const PolicySweepCell& at(std::size_t population, std::size_t policy,
                            std::size_t task_count) const {
    return cells[(population * policy_count + policy) * task_count_count +
                 task_count];
  }
};

/// Runs every (population, policy, task count) cell of the grid on a
/// worker pool (the same spawn-extra-jthreads pattern as the allocator's
/// score phase; the calling thread is worker zero). Cells are independent
/// and deterministically seeded, so the result is identical for any
/// thread count. Throws std::invalid_argument on an empty grid axis, an
/// empty population, or a degenerate base config.
PolicySweepResult run_policy_sweep(std::span<const SweepPopulation> populations,
                                   const PolicySweepConfig& config);

}  // namespace resmodel::sim

// Bag-of-tasks scheduling on modeled hosts.
//
// The paper's introduction motivates the model with scheduling research
// for desktop grids ([1] Al-Azzoni & Down, [2] Anglano & Canonico, [3]
// WaveGrid): "the performance of such algorithms are arguably tied to the
// assumed distributions". This module makes that argument executable — a
// bag of independent tasks is scheduled onto a host population under
// different policies, and the resulting makespan depends visibly on which
// host model produced the population (see bench/ablation_makespan).
//
// Hosts process tasks sequentially at cores x Whetstone MIPS; an optional
// availability overlay derates each host by its sampled long-run ON
// fraction (volunteer hosts are not always up).
#pragma once

#include <span>
#include <vector>

#include "sim/host_soa.h"
#include "sim/utility.h"
#include "synth/availability.h"
#include "util/rng.h"

namespace resmodel::sim {

/// Workload description: task costs are log-normal in MIPS-days (cost /
/// (cores x whetstone MIPS) = days of computation on a given host).
struct BagOfTasksConfig {
  std::size_t task_count = 2000;
  double task_cost_mips_days_mean = 4000.0;
  double task_cost_cv = 0.5;  ///< coefficient of variation of task cost

  /// When true, each host's rate is derated by an availability fraction
  /// sampled from the alternating-renewal model over `horizon_days`.
  bool model_availability = false;
  synth::AvailabilityParams availability;
  double availability_horizon_days = 100.0;
};

/// Scheduling policies compared in the study.
enum class SchedulingPolicy {
  /// Knowledge-free static striping: task i goes to host i mod H, decided
  /// up front with no speed information.
  kStaticRoundRobin,
  /// Static allocation proportional to each host's (derated) speed.
  kStaticSpeedWeighted,
  /// Dynamic pull: an idle host takes the next task from the queue (list
  /// scheduling on the earliest-available host). Faithful to how BOINC
  /// hands out work — and therefore exposed to stragglers: a pathologically
  /// slow host pulling a large task near the end dominates the makespan.
  kDynamicPull,
  /// Dynamic earliest-completion-time (the MCT heuristic): each task goes
  /// to the host that would finish it soonest. Needs speed knowledge but
  /// is straggler-safe.
  kDynamicEct,
};

std::string to_string(SchedulingPolicy policy);

/// Result of one scheduling run.
struct BagOfTasksResult {
  double makespan_days = 0.0;      ///< completion time of the last task
  double total_cpu_days = 0.0;     ///< sum of per-task processing times
  double mean_host_busy_days = 0.0;
  double max_host_busy_days = 0.0; ///< equals makespan for static policies
  std::size_t hosts_used = 0;      ///< hosts that processed >= 1 task
};

/// Runs the bag of tasks over `hosts` with the given policy. Tasks are
/// sampled once from `config` using `rng`, so two policies can be compared
/// on identical workloads by passing equally seeded generators.
/// Throws std::invalid_argument if `hosts` is empty or the config is
/// degenerate.
BagOfTasksResult run_bag_of_tasks(std::span<const HostResources> hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng);

/// Columnar overload: identical semantics and rng consumption, computing
/// the per-host rates straight from the SoA columns (no AoS conversion).
BagOfTasksResult run_bag_of_tasks(const HostResourcesSoA& hosts,
                                  const BagOfTasksConfig& config,
                                  SchedulingPolicy policy, util::Rng& rng);

}  // namespace resmodel::sim

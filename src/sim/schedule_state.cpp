// Compiled with -ffp-contract=off (src/CMakeLists.txt): the blocked and
// reference kernels must produce bit-identical completion times, which
// rules out the compiler fusing free_at + task * inv_rate into an fma in
// one loop but not the other.
#include "sim/schedule_state.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "backend/kernels.h"

namespace resmodel::sim {

ScheduleState ScheduleState::from_rates(std::vector<double> rates) {
  ScheduleState state;
  const std::size_t n = rates.size();
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "ScheduleState: host count exceeds 32-bit permutation index");
  }
  state.rates = std::move(rates);
  state.inv_rates.resize(n);
  for (std::size_t h = 0; h < n; ++h) {
    if (!(state.rates[h] > 0.0)) {
      throw std::invalid_argument("ScheduleState: non-positive host rate");
    }
    state.inv_rates[h] = 1.0 / state.rates[h];
  }
  state.free_at.assign(n, 0.0);
  state.busy_days.assign(n, 0.0);
  return state;
}

void ScheduleState::ensure_ect_caches() {
  const std::size_t n = size();
  if (ect_order.size() == n && ect_pos.size() == n &&
      ect_sorted_inv.size() == n) {
    return;
  }
  ect_order.resize(n);
  for (std::size_t h = 0; h < n; ++h) {
    ect_order[h] = static_cast<std::uint32_t>(h);
  }
  std::sort(ect_order.begin(), ect_order.end(),
            [&inv = inv_rates](std::uint32_t a, std::uint32_t b) {
              if (inv[a] != inv[b]) return inv[a] < inv[b];
              return a < b;
            });
  ect_pos.resize(n);
  ect_sorted_inv.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    ect_pos[ect_order[j]] = static_cast<std::uint32_t>(j);
    ect_sorted_inv[j] = inv_rates[ect_order[j]];
  }
  const std::size_t blocks = (n + kBlockSize - 1) / kBlockSize;
  ect_block_min_inv.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    // Sorted ascending, so the block's first entry is its minimum.
    ect_block_min_inv[b] = ect_sorted_inv[b * kBlockSize];
  }
}

DynamicScheduleTotals ect_schedule_blocked(ScheduleState& state,
                                           std::span<const double> tasks) {
  // Backend dispatch (src/backend/README.md): kScalar routes onto the
  // reference oracle; the other arms share this driver and differ only
  // in the kernel-ops table the sweeps go through. Every arm returns
  // the same schedule bit for bit.
  const backend::ResolvedBackend rb = backend::resolve(state.backend);
  if (rb.arm == backend::Backend::kScalar) {
    return ect_schedule_reference(state, tasks);
  }
  const backend::KernelOps& ops = backend::kernel_ops(rb.simd);

  constexpr std::size_t kBlock = ScheduleState::kBlockSize;
  state.ensure_ect_caches();
  const std::size_t n = state.size();
  const std::size_t blocks = state.block_count();
  const double* inv = state.ect_sorted_inv.data();
  const double* bmin_inv = state.ect_block_min_inv.data();
  const std::uint32_t* order = state.ect_order.data();
  DynamicScheduleTotals totals;
  if (n == 0) return totals;

  // free_at gathered into sorted order once per run (kernel-local so a
  // pre-advanced state works too), plus the per-block running minimum the
  // pruning bound reads. Only the assigned host's block is refreshed per
  // task.
  std::vector<double> sfree(n);
  for (std::size_t j = 0; j < n; ++j) sfree[j] = state.free_at[order[j]];
  std::vector<double> bmin_free(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    bmin_free[b] = ops.column_min(sfree.data() + lo, hi - lo);
  }

  std::vector<double> bounds(blocks);  // per-task gate scratch
  for (const double task : tasks) {
    std::uint32_t best = 0;  // original host index of the incumbent
    double best_done = std::numeric_limits<double>::infinity();
    // Per-block lower bound on every completion time inside it: no host
    // is freer than the block's min free_at nor faster than its min
    // inv_rate, and monotone rounding keeps the combination a true
    // floating-point lower bound. Computed for the whole row up front
    // (one vectorizable pass) and compared with strict >, so a block
    // that could still *tie* the incumbent is scanned and the smallest
    // original host index among the tied winners is kept — the scalar
    // loop's pick. The row minimum's block is swept first (warm start):
    // the incumbent is near-optimal before any other block is gated,
    // and processing order is result-neutral because pruning only skips
    // hosts that cannot win or tie.
    const std::uint32_t warm =
        ops.row_bounds_argmin(bmin_free.data(), bmin_inv, task, blocks,
                              bounds.data());
    for (std::size_t bi = 0; bi <= blocks; ++bi) {
      const std::size_t b = bi == 0 ? warm : bi - 1;
      if (bi != 0 && (b == warm || bounds[b] > best_done)) continue;
      const std::size_t lo = b * kBlock;
      const std::size_t len = std::min(n - lo, kBlock);
      const backend::EctBlockMin r = ops.ect_block_sweep(
          sfree.data() + lo, inv + lo, order + lo, len, task, best_done);
      if (r.value > best_done) continue;
      if (r.value < best_done) {
        best_done = r.value;
        best = r.index;
      } else {
        best = std::min(best, r.index);
      }
    }
    const double days = task * state.inv_rates[best];
    state.busy_days[best] += days;
    state.free_at[best] = best_done;
    totals.total_cpu_days += days;
    totals.makespan_days = std::max(totals.makespan_days, best_done);
    const std::size_t pos = state.ect_pos[best];
    sfree[pos] = best_done;
    const std::size_t blk = pos / kBlock;
    const std::size_t lo = blk * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    bmin_free[blk] = ops.column_min(sfree.data() + lo, hi - lo);
  }
  return totals;
}

DynamicScheduleTotals ect_schedule_reference(ScheduleState& state,
                                             std::span<const double> tasks) {
  const std::size_t n = state.size();
  const double* free_at = state.free_at.data();
  const double* inv = state.inv_rates.data();
  DynamicScheduleTotals totals;
  if (n == 0) return totals;
  for (const double task : tasks) {
    std::size_t best = 0;
    double best_done = std::numeric_limits<double>::infinity();
    for (std::size_t h = 0; h < n; ++h) {
      const double done = free_at[h] + task * inv[h];
      if (done < best_done) {
        best_done = done;
        best = h;
      }
    }
    const double days = task * inv[best];
    state.busy_days[best] += days;
    state.free_at[best] = best_done;
    totals.total_cpu_days += days;
    totals.makespan_days = std::max(totals.makespan_days, best_done);
  }
  return totals;
}

PullHeap::PullHeap(std::size_t hosts) : entries_(hosts) {
  for (std::size_t h = 0; h < hosts; ++h) {
    entries_[h] = {0.0, static_cast<std::uint64_t>(h)};
  }
}

PullHeap::PullHeap(std::span<const double> keys) : entries_(keys.size()) {
  for (std::size_t h = 0; h < keys.size(); ++h) {
    entries_[h] = {keys[h], static_cast<std::uint64_t>(h)};
  }
  if (entries_.size() > 1) {
    for (std::size_t i = (entries_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
}

void PullHeap::sift_up(std::size_t i) noexcept {
  const Entry e = entries_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!less(e, entries_[parent])) break;
    entries_[i] = entries_[parent];
    i = parent;
  }
  entries_[i] = e;
}

void PullHeap::sift_down(std::size_t i) noexcept {
  const std::size_t n = entries_.size();
  const Entry e = entries_[i];
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(n, first_child + kArity);
    std::size_t smallest = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (less(entries_[c], entries_[smallest])) smallest = c;
    }
    if (!less(entries_[smallest], e)) break;
    entries_[i] = entries_[smallest];
    i = smallest;
  }
  entries_[i] = e;
}

void PullHeap::push(double key, std::uint64_t host) {
  entries_.push_back({key, host});
  sift_up(entries_.size() - 1);
}

PullHeap::Entry PullHeap::pop_min() {
  const Entry top = entries_.front();
  entries_.front() = entries_.back();
  entries_.pop_back();
  if (!entries_.empty()) sift_down(0);
  return top;
}

void PullHeap::replace_min(double key, std::uint64_t host) {
  entries_.front() = {key, host};
  sift_down(0);
}

DynamicScheduleTotals pull_schedule_dary(ScheduleState& state,
                                         std::span<const double> tasks) {
  PullHeap heap(std::span<const double>(state.free_at));
  DynamicScheduleTotals totals;
  if (state.size() == 0) return totals;
  for (const double task : tasks) {
    const PullHeap::Entry top = heap.min();
    const auto h = static_cast<std::size_t>(top.host);
    const double days = task * state.inv_rates[h];
    state.busy_days[h] += days;
    totals.total_cpu_days += days;
    const double done = top.key + days;
    state.free_at[h] = done;
    totals.makespan_days = std::max(totals.makespan_days, done);
    heap.replace_min(done, top.host);
  }
  return totals;
}

DynamicScheduleTotals pull_schedule_reference(ScheduleState& state,
                                              std::span<const double> tasks) {
  using Entry = std::pair<double, std::size_t>;  // (free at, host)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t h = 0; h < state.size(); ++h) {
    heap.push({state.free_at[h], h});
  }
  DynamicScheduleTotals totals;
  if (state.size() == 0) return totals;
  for (const double task : tasks) {
    const auto [free_at, h] = heap.top();
    heap.pop();
    const double days = task * state.inv_rates[h];
    state.busy_days[h] += days;
    totals.total_cpu_days += days;
    const double done = free_at + days;
    state.free_at[h] = done;
    totals.makespan_days = std::max(totals.makespan_days, done);
    heap.push({done, h});
  }
  return totals;
}

}  // namespace resmodel::sim

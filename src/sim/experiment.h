// The Figure-15 experiment: for each month from January to September 2010,
// synthesize a host population from each model, allocate it to the four
// Table-IX applications with the greedy round-robin scheduler, and report
// the percent difference of each application's total utility against the
// allocation computed on the actual (trace) hosts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/allocator.h"
#include "sim/baseline_models.h"
#include "trace/trace_store.h"
#include "util/model_date.h"
#include "util/rng.h"

namespace resmodel::sim {

/// Results of the utility-difference experiment.
struct UtilityExperimentResult {
  std::vector<util::ModelDate> dates;
  std::vector<std::string> app_names;
  std::vector<std::string> model_names;
  /// diff_percent[m][a][d]: |U_model - U_actual| / U_actual * 100 for
  /// model m, application a, date d.
  std::vector<std::vector<std::vector<double>>> diff_percent;
  /// actual_utility[a][d]: the reference utility from the trace hosts.
  std::vector<std::vector<double>> actual_utility;
  /// active host counts per date (every model synthesizes this many).
  std::vector<std::size_t> host_counts;
};

/// Default Figure-15 date grid: the first of each month, Jan-Sep 2010.
std::vector<util::ModelDate> default_experiment_dates();

/// Runs the experiment. Throws std::invalid_argument if a snapshot is
/// empty or an actual utility is zero.
UtilityExperimentResult run_utility_experiment(
    const trace::TraceStore& actual,
    const std::vector<const HostSynthesisModel*>& models,
    std::span<const ApplicationSpec> apps,
    const std::vector<util::ModelDate>& dates, util::Rng& rng);

}  // namespace resmodel::sim

#include "sim/baseline_models.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace resmodel::sim {

namespace {
constexpr double kMinMips = 25.0;
constexpr double kMinMemoryMb = 64.0;
constexpr double kMinDiskGb = 0.01;
}  // namespace

std::vector<HostResources> to_host_resources(
    const trace::ResourceSnapshot& snapshot) {
  std::vector<HostResources> out;
  out.reserve(snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    HostResources h;
    h.cores = snapshot.cores[i];
    h.memory_mb = snapshot.memory_mb[i];
    h.whetstone_mips = snapshot.whetstone_mips[i];
    h.dhrystone_mips = snapshot.dhrystone_mips[i];
    h.disk_avail_gb = snapshot.disk_avail_gb[i];
    out.push_back(h);
  }
  return out;
}

std::vector<HostResources> to_host_resources(
    const core::GeneratedHostBatch& batch) {
  std::vector<HostResources> out;
  out.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    HostResources h;
    h.cores = static_cast<double>(batch.n_cores[i]);
    h.memory_mb = batch.memory_mb[i];
    h.whetstone_mips = batch.whetstone_mips[i];
    h.dhrystone_mips = batch.dhrystone_mips[i];
    h.disk_avail_gb = batch.disk_avail_gb[i];
    out.push_back(h);
  }
  return out;
}

// ------------------------------------------------------- CorrelatedModel --

CorrelatedModel::CorrelatedModel(core::ModelParams params)
    : generator_(std::move(params)) {}

CorrelatedModel::CorrelatedModel(
    core::ModelParams params,
    std::shared_ptr<const model::CorrelationModel> correlation,
    std::string display_name)
    : generator_(std::move(params), std::move(correlation)),
      name_(std::move(display_name)) {}

std::vector<HostResources> CorrelatedModel::synthesize(util::ModelDate date,
                                                       std::size_t count,
                                                       util::Rng& rng) const {
  return to_host_resources(generator_.generate_batch(date, count, rng));
}

HostResourcesSoA CorrelatedModel::synthesize_soa(util::ModelDate date,
                                                 std::size_t count,
                                                 util::Rng& rng) const {
  return HostResourcesSoA::from_batch(
      generator_.generate_batch(date, count, rng));
}

// ----------------------------------------------- NormalDistributionModel --

NormalDistributionModel::NormalDistributionModel(LinearTrend cores,
                                                 LinearTrend memory,
                                                 LinearTrend whetstone,
                                                 LinearTrend dhrystone,
                                                 LinearTrend disk)
    : cores_(cores),
      memory_(memory),
      whetstone_(whetstone),
      dhrystone_(dhrystone),
      disk_(disk) {}

NormalDistributionModel NormalDistributionModel::fit(
    const trace::TraceStore& store,
    const std::vector<util::ModelDate>& dates) {
  std::vector<double> ts;
  std::vector<double> mean_series[5];
  std::vector<double> sd_series[5];
  for (const util::ModelDate& d : dates) {
    // The paper's §V-B plausibility filter precedes every analysis step;
    // without it a handful of corrupt records dominates the fitted moments.
    const trace::ResourceSnapshot snap = store.snapshot_plausible(d);
    if (snap.size() < 2) continue;
    ts.push_back(d.t());
    const std::vector<double>* cols[5] = {
        &snap.cores, &snap.memory_mb, &snap.whetstone_mips,
        &snap.dhrystone_mips, &snap.disk_avail_gb};
    for (int i = 0; i < 5; ++i) {
      mean_series[i].push_back(stats::mean(*cols[i]));
      sd_series[i].push_back(stats::stddev(*cols[i]));
    }
  }
  LinearTrend trends[5];
  for (int i = 0; i < 5; ++i) {
    trends[i].mean = stats::ols(ts, mean_series[i]);
    trends[i].stddev = stats::ols(ts, sd_series[i]);
  }
  return NormalDistributionModel(trends[0], trends[1], trends[2], trends[3],
                                 trends[4]);
}

std::vector<HostResources> NormalDistributionModel::synthesize(
    util::ModelDate date, std::size_t count, util::Rng& rng) const {
  return synthesize_columns(date, count, rng).to_hosts();
}

HostResourcesSoA NormalDistributionModel::synthesize_soa(
    util::ModelDate date, std::size_t count, util::Rng& rng) const {
  HostResourcesSoA out = synthesize_columns(date, count, rng);
  out.precompute_logs();
  return out;
}

HostResourcesSoA NormalDistributionModel::synthesize_columns(
    util::ModelDate date, std::size_t count, util::Rng& rng) const {
  const double t = date.t();
  const auto eval = [t](const LinearTrend& trend) {
    const double mean = trend.mean.slope * t + trend.mean.intercept;
    const double sd =
        std::max(1e-6, trend.stddev.slope * t + trend.stddev.intercept);
    return std::pair<double, double>(mean, sd);
  };
  const auto [cores_m, cores_sd] = eval(cores_);
  const auto [mem_m, mem_sd] = eval(memory_);
  const auto [whet_m, whet_sd] = eval(whetstone_);
  const auto [dhry_m, dhry_sd] = eval(dhrystone_);
  const auto [disk_m, disk_sd] = eval(disk_);
  const stats::LogNormalDist disk_dist = stats::LogNormalDist::from_moments(
      std::max(kMinDiskGb, disk_m), std::max(1e-6, disk_sd * disk_sd));

  HostResourcesSoA out;
  out.resize(count);
  // Row loop, column writes: draw order matches the old per-host AoS loop,
  // so the same seed yields the same hosts.
  for (std::size_t i = 0; i < count; ++i) {
    // Cores must be a positive integer; round the normal draw.
    out.cores[i] = std::max(1.0, std::round(rng.normal(cores_m, cores_sd)));
    out.memory_mb[i] = std::max(kMinMemoryMb, rng.normal(mem_m, mem_sd));
    out.whetstone_mips[i] = std::max(kMinMips, rng.normal(whet_m, whet_sd));
    out.dhrystone_mips[i] = std::max(kMinMips, rng.normal(dhry_m, dhry_sd));
    out.disk_avail_gb[i] = disk_dist.sample(rng);
  }
  return out;
}

// ------------------------------------------------------ GridResourceModel --

GridResourceModel::GridResourceModel(core::ModelParams params,
                                     double mean_host_lifetime_years,
                                     double mean_avail_disk_fraction)
    : params_(std::move(params)),
      mean_lifetime_years_(std::max(0.05, mean_host_lifetime_years)),
      mean_avail_fraction_(
          std::clamp(mean_avail_disk_fraction, 0.05, 1.0)) {
  params_.validate();
}

std::vector<HostResources> GridResourceModel::synthesize(
    util::ModelDate date, std::size_t count, util::Rng& rng) const {
  return synthesize_columns(date, count, rng).to_hosts();
}

HostResourcesSoA GridResourceModel::synthesize_soa(util::ModelDate date,
                                                   std::size_t count,
                                                   util::Rng& rng) const {
  HostResourcesSoA out = synthesize_columns(date, count, rng);
  out.precompute_logs();
  return out;
}

HostResourcesSoA GridResourceModel::synthesize_columns(
    util::ModelDate date, std::size_t count, util::Rng& rng) const {
  const double t_now = date.t();
  HostResourcesSoA out;
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Mixture of host ages: exponential with the mean observed lifetime,
    // so the population contains both freshly purchased and old machines.
    const double age = rng.exponential(1.0 / mean_lifetime_years_);
    const double t = t_now - std::min(age, 6.0);

    // Processor count from the composition at the aged date.
    const double cores = params_.cores.quantile(t, rng.uniform());
    out.cores[i] = cores;

    // Log-normal processor speeds with our fitted moments (uncorrelated).
    const auto whet = stats::LogNormalDist::from_moments(
        std::max(kMinMips, params_.whetstone.mean(t)),
        std::max(1.0, params_.whetstone.variance(t)));
    const auto dhry = stats::LogNormalDist::from_moments(
        std::max(kMinMips, params_.dhrystone.mean(t)),
        std::max(1.0, params_.dhrystone.variance(t)));
    out.whetstone_mips[i] = whet.sample(rng);
    out.dhrystone_mips[i] = dhry.sample(rng);

    // Kee-style memory: per-processor memory is a power of two whose
    // exponent is normal around the model's per-core mean at the aged date.
    const double mean_per_core = params_.memory_per_core_mb.mean(t);
    const double k = std::round(
        rng.normal(std::log2(std::max(kMinMemoryMb, mean_per_core)), 0.8));
    const double per_core =
        std::clamp(std::exp2(k), kMinMemoryMb, 8.0 * 1024.0);
    out.memory_mb[i] = per_core * cores;

    // Exponential disk *capacity* growth; dividing the available-space law
    // by the mean available fraction models total capacity, which is what
    // Kee et al. track — hence the systematic overestimate of available
    // space the paper observes for the P2P application.
    const double capacity_mean =
        std::max(kMinDiskGb, params_.disk_gb.mean(t) / mean_avail_fraction_);
    const double capacity_var = std::max(
        1e-6, params_.disk_gb.variance(t) /
                  (mean_avail_fraction_ * mean_avail_fraction_));
    out.disk_avail_gb[i] =
        stats::LogNormalDist::from_moments(capacity_mean, capacity_var)
            .sample(rng);
  }
  return out;
}

}  // namespace resmodel::sim

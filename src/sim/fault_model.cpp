#include "sim/fault_model.h"

#include <cmath>
#include <stdexcept>

namespace resmodel::sim {

void FaultMixConfig::validate() const {
  if (crash_fraction < 0.0 || straggler_fraction < 0.0 ||
      corrupter_fraction < 0.0) {
    throw std::invalid_argument("fault fractions must be non-negative");
  }
  if (!(faulty_fraction() <= 1.0)) {  // !(<=) also rejects NaN
    throw std::invalid_argument("fault fractions must sum to at most 1");
  }
  if (!(straggler_slowdown_min >= 1.0) ||
      !(straggler_slowdown_max >= straggler_slowdown_min) ||
      !std::isfinite(straggler_slowdown_max)) {
    throw std::invalid_argument(
        "straggler slowdown range must satisfy 1 <= min <= max < inf");
  }
}

FaultDraw sample_fault(const FaultMixConfig& mix, util::Rng& rng) {
  FaultDraw draw;
  const double u = rng.uniform();
  if (u < mix.crash_fraction) {
    draw.type = FaultType::kCrash;
  } else if (u < mix.crash_fraction + mix.straggler_fraction) {
    draw.type = FaultType::kStraggler;
    draw.slowdown =
        rng.uniform(mix.straggler_slowdown_min, mix.straggler_slowdown_max);
  } else if (u < mix.faulty_fraction()) {
    draw.type = FaultType::kCorrupter;
  }
  return draw;
}

FaultProfiles sample_fault_profiles(std::size_t hosts,
                                    const FaultMixConfig& mix,
                                    util::Rng& rng) {
  mix.validate();
  FaultProfiles profiles;
  profiles.type.resize(hosts, FaultType::kHonest);
  profiles.slowdown.resize(hosts, 1.0);
  for (std::size_t h = 0; h < hosts; ++h) {
    util::Rng host_rng = rng.fork();
    const FaultDraw draw = sample_fault(mix, host_rng);
    profiles.type[h] = draw.type;
    profiles.slowdown[h] = draw.slowdown;
  }
  return profiles;
}

namespace {

// SplitMix64 finalizer: a 64-bit bijection, so distinct inputs give
// distinct outputs.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t canonical_digest(std::uint64_t payload) noexcept {
  return mix64(payload);
}

std::uint64_t corrupted_digest(std::uint64_t payload,
                               std::uint64_t host_salt) noexcept {
  // XOR with an odd, salt-derived delta: never zero, so the result always
  // differs from the canonical digest; distinct salts yield distinct
  // odd deltas (mix64 is a bijection and |1 only merges even/odd pairs),
  // making inter-corrupter collisions for one payload vanishingly rare.
  return canonical_digest(payload) ^ (mix64(host_salt) | 1ULL);
}

void ReplicationConfig::validate() const {
  if (replicas < 1 || replicas > 32) {
    throw std::invalid_argument("replication: replicas must be in [1, 32]");
  }
  if (quorum < 1 || quorum > replicas) {
    throw std::invalid_argument(
        "replication: quorum must be in [1, replicas]");
  }
  if (!(deadline_days > 0.0)) {  // rejects 0, negatives and NaN; inf ok
    throw std::invalid_argument("replication: deadline_days must be > 0");
  }
  if (!(backoff >= 1.0) || !std::isfinite(backoff)) {
    throw std::invalid_argument("replication: backoff must be >= 1");
  }
  if (max_retries > 32) {
    throw std::invalid_argument("replication: max_retries must be <= 32");
  }
}

}  // namespace resmodel::sim

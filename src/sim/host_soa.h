// Structure-of-arrays host set for the allocation pipeline.
//
// core::GeneratedHostBatch carries the columnar layout through generation;
// HostResourcesSoA carries it the rest of the way into the §VII utility
// allocator. Besides the five raw resource columns it holds the five
// log-domain columns log(max(x, kUtilityFloor)) that the allocator's
// fused-multiply-add scoring sweep consumes: the Cobb-Douglas utility
//   Y_A(H) = C^alpha * M^beta * I^gamma * F^delta * D^epsilon
// becomes, in the log domain,
//   log Y_A(H) = alpha*logC + beta*logM + gamma*logI + delta*logF
//              + epsilon*logD,
// and exp is monotone, so preference *ordering* never needs exp at all.
// The logs are computed once per host set (by the adapters) and amortized
// across every application scored against it.
#pragma once

#include <span>
#include <vector>

#include "core/host_generator.h"
#include "sim/utility.h"
#include "trace/trace_store.h"

namespace resmodel::sim {

/// log(max(x, kUtilityFloor)) over one resource column — the shared
/// clamp+log used by HostResourcesSoA::precompute_logs() and by the
/// allocator's on-the-fly fallback for SoAs without log columns.
std::vector<double> log_utility_column(const std::vector<double>& column);

/// Columnar host set: index i across all columns is one host. Built via
/// the from_* adapters (which also fill the log columns); hand-assembled
/// instances should call precompute_logs() before allocation, though the
/// allocator recomputes locally if they do not.
struct HostResourcesSoA {
  std::vector<double> cores;
  std::vector<double> memory_mb;
  std::vector<double> dhrystone_mips;  // integer speed I
  std::vector<double> whetstone_mips;  // floating point speed F
  std::vector<double> disk_avail_gb;

  /// log(max(column, kUtilityFloor)), same order as the raw columns.
  std::vector<double> log_cores;
  std::vector<double> log_memory_mb;
  std::vector<double> log_dhrystone_mips;
  std::vector<double> log_whetstone_mips;
  std::vector<double> log_disk_avail_gb;

  std::size_t size() const noexcept { return cores.size(); }
  bool empty() const noexcept { return cores.empty(); }

  /// Resizes the five raw columns and clears the log columns (any
  /// previously computed logs are stale once the raw data changes).
  void resize(std::size_t n);

  /// Fills the five log columns from the raw columns.
  void precompute_logs();
  bool logs_ready() const noexcept {
    const std::size_t n = size();
    return log_cores.size() == n && log_memory_mb.size() == n &&
           log_dhrystone_mips.size() == n && log_whetstone_mips.size() == n &&
           log_disk_avail_gb.size() == n;
  }

  /// Row i as an AoS host.
  HostResources host(std::size_t i) const noexcept;

  /// AoS copy for the legacy consumers.
  std::vector<HostResources> to_hosts() const;

  /// Column moves/copies from a generated SoA batch (cores widen to
  /// double; every other column is shared layout already).
  static HostResourcesSoA from_batch(const core::GeneratedHostBatch& batch);

  /// Column copies from a trace snapshot.
  static HostResourcesSoA from_snapshot(const trace::ResourceSnapshot& snap);

  /// Transposes an AoS host list (the compatibility adapter behind the
  /// span<HostResources> allocator entry point).
  static HostResourcesSoA from_hosts(std::span<const HostResources> hosts);
};

}  // namespace resmodel::sim

// Cobb-Douglas host utility (Equation 1 and Table IX of the paper).
//
// The utility an application A derives from host H is
//   Y_A(H) = C^alpha * M^beta * I^gamma * F^delta * D^epsilon
// over cores C, memory M, integer speed I (Dhrystone), floating point
// speed F (Whetstone) and available disk D.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace resmodel::sim {

/// The five host resources entering the utility function.
struct HostResources {
  double cores = 1.0;
  double memory_mb = 0.0;
  double dhrystone_mips = 0.0;  // integer speed I
  double whetstone_mips = 0.0;  // floating point speed F
  double disk_avail_gb = 0.0;
};

/// Utility returns-to-scale exponents for one application.
struct ApplicationSpec {
  std::string name;
  double alpha = 0.0;    ///< cores
  double beta = 0.0;     ///< memory
  double gamma = 0.0;    ///< Dhrystone (integer)
  double delta = 0.0;    ///< Whetstone (floating point)
  double epsilon = 0.0;  ///< disk
};

/// Resource values at or below this floor are clamped before entering the
/// utility product (or its log-domain equivalent) so a single zeroed
/// reading does not annihilate the product.
inline constexpr double kUtilityFloor = 1e-9;

/// Y_A(H). Non-positive resource values contribute as kUtilityFloor.
double cobb_douglas_utility(const ApplicationSpec& app,
                            const HostResources& host) noexcept;

/// The paper's Table IX application set: SETI@home, Folding@home,
/// Climate Prediction and P2P.
std::span<const ApplicationSpec> paper_applications() noexcept;

}  // namespace resmodel::sim

#include "sim/utility.h"

#include <array>
#include <cmath>

namespace resmodel::sim {

double cobb_douglas_utility(const ApplicationSpec& app,
                            const HostResources& host) noexcept {
  const auto term = [](double value, double exponent) {
    if (exponent == 0.0) return 1.0;
    return std::pow(value > kUtilityFloor ? value : kUtilityFloor, exponent);
  };
  return term(host.cores, app.alpha) * term(host.memory_mb, app.beta) *
         term(host.dhrystone_mips, app.gamma) *
         term(host.whetstone_mips, app.delta) *
         term(host.disk_avail_gb, app.epsilon);
}

std::span<const ApplicationSpec> paper_applications() noexcept {
  // Table IX.                     name            alpha beta gamma delta eps
  static const std::array<ApplicationSpec, 4> kApps = {{
      {"SETI@home", 0.05, 0.1, 0.2, 0.4, 0.05},
      {"Folding@home", 0.4, 0.05, 0.2, 0.3, 0.05},
      {"Climate Prediction", 0.2, 0.2, 0.1, 0.35, 0.15},
      {"P2P", 0.05, 0.1, 0.1, 0.05, 0.7},
  }};
  return kApps;
}

}  // namespace resmodel::sim

// A self-contained Dhrystone-2.1-style integer benchmark.
//
// BOINC measures each host's integer speed with Dhrystone 2.1 compiled
// with -O2 (Section V-A of the paper). This implementation reproduces the
// benchmark's characteristic workload — record assignment, string
// copy/compare, pointer chasing, enum/array manipulation, function calls —
// in standard C++ without the original's global-variable style. Scores are
// reported in DMIPS (Dhrystones/second divided by 1757, the VAX 11/780
// baseline), the same unit as the paper's "Dhrystone MIPS".
#pragma once

#include <cstdint>

namespace resmodel::bench_suite {

/// Result of one benchmark run.
struct BenchmarkScore {
  double mips = 0.0;          ///< DMIPS (or MWIPS for Whetstone)
  double elapsed_seconds = 0.0;
  std::uint64_t iterations = 0;
};

/// Runs the Dhrystone loop for approximately `seconds` of wall time
/// (>= a few milliseconds; longer runs give stabler scores).
BenchmarkScore run_dhrystone(double seconds);

}  // namespace resmodel::bench_suite

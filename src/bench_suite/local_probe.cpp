#include "bench_suite/local_probe.h"

#include <sys/statvfs.h>
#include <sys/utsname.h>
#include <unistd.h>

#include "bench_suite/harness.h"
#include "bench_suite/whetstone.h"

namespace resmodel::bench_suite {

LocalHostInfo probe_local_host(const std::string& disk_path) {
  LocalHostInfo info;

  const long cores = sysconf(_SC_NPROCESSORS_ONLN);
  if (cores > 0) info.n_cores = static_cast<int>(cores);

  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page_size = sysconf(_SC_PAGESIZE);
  if (pages > 0 && page_size > 0) {
    info.memory_mb = static_cast<double>(pages) *
                     static_cast<double>(page_size) / (1024.0 * 1024.0);
  }

  struct statvfs fs{};
  if (statvfs(disk_path.c_str(), &fs) == 0) {
    const double frsize = static_cast<double>(fs.f_frsize);
    info.disk_avail_gb = static_cast<double>(fs.f_bavail) * frsize /
                         (1024.0 * 1024.0 * 1024.0);
    info.disk_total_gb = static_cast<double>(fs.f_blocks) * frsize /
                         (1024.0 * 1024.0 * 1024.0);
  }

  struct utsname uts{};
  if (uname(&uts) == 0) {
    info.os_name = std::string(uts.sysname) + " " + uts.release;
  }
  return info;
}

LocalMeasurement measure_local_host(double benchmark_seconds,
                                    const std::string& disk_path) {
  LocalMeasurement m;
  m.info = probe_local_host(disk_path);
  m.dhrystone_mips =
      run_on_all_cores(run_dhrystone, benchmark_seconds).average_mips;
  m.whetstone_mips =
      run_on_all_cores(run_whetstone, benchmark_seconds).average_mips;
  return m;
}

}  // namespace resmodel::bench_suite

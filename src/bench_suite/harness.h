// Multi-core benchmark execution, matching BOINC's procedure: "the
// benchmarks are executed on all available cores simultaneously and the
// average speed is taken" (§V-A) — which is why shared caches and memory
// buses depress multicore per-core scores in the trace.
#pragma once

#include <functional>

#include "bench_suite/dhrystone.h"

namespace resmodel::bench_suite {

/// Aggregate of a simultaneous multi-thread run.
struct MultiCoreScore {
  double average_mips = 0.0;  ///< mean per-core score
  double min_mips = 0.0;
  double max_mips = 0.0;
  int threads = 0;
};

/// Runs `benchmark` simultaneously on `threads` threads (0 = one per
/// hardware core) for ~`seconds` each and averages the per-core scores.
MultiCoreScore run_on_all_cores(
    const std::function<BenchmarkScore(double)>& benchmark, double seconds,
    int threads = 0);

}  // namespace resmodel::bench_suite

#include "bench_suite/whetstone.h"

#include <array>
#include <chrono>
#include <cmath>

namespace resmodel::bench_suite {

namespace {

// Classic Whetstone helpers.
void pa(std::array<double, 4>& e, double t, double t2) {
  for (int j = 0; j < 6; ++j) {
    e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
    e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
    e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
    e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
  }
}

void p3(double x, double y, double& z, double t, double t2) {
  const double x1 = t * (x + y);
  const double y1 = t * (x1 + y);
  z = (x1 + y1) / t2;
}

void p0(std::array<double, 4>& e, int j, int k, int l) {
  e[static_cast<std::size_t>(j)] = e[static_cast<std::size_t>(k)];
  e[static_cast<std::size_t>(k)] = e[static_cast<std::size_t>(l)];
  e[static_cast<std::size_t>(l)] = e[static_cast<std::size_t>(j)];
}

// One "major loop" of the Whetstone mix; returns a fold of the state so
// callers can keep the work alive. Loop counts follow the classic
// distribution scaled for one composite iteration.
double one_major_loop(int scale) {
  constexpr double t = 0.499975;
  constexpr double t1 = 0.50025;
  constexpr double t2 = 2.0;

  const int n1 = 0 * scale;
  const int n2 = 12 * scale;
  const int n3 = 14 * scale;
  const int n4 = 345 * scale;
  const int n6 = 210 * scale;
  const int n7 = 32 * scale;
  const int n8 = 899 * scale;
  const int n9 = 616 * scale;
  const int n10 = 0 * scale;
  const int n11 = 93 * scale;

  double x1 = 1.0, x2 = -1.0, x3 = -1.0, x4 = -1.0;
  // Module 1: simple identifiers (weight 0 in the classic mix).
  for (int i = 0; i < n1; ++i) {
    x1 = (x1 + x2 + x3 - x4) * t;
    x2 = (x1 + x2 - x3 + x4) * t;
    x3 = (x1 - x2 + x3 + x4) * t;
    x4 = (-x1 + x2 + x3 + x4) * t;
  }

  // Module 2: array elements.
  std::array<double, 4> e1 = {1.0, -1.0, -1.0, -1.0};
  for (int i = 0; i < n2; ++i) {
    e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
    e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
    e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
    e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
  }

  // Module 3: array as parameter.
  for (int i = 0; i < n3; ++i) pa(e1, t, t2);

  // Module 4: conditional jumps.
  int j = 1;
  for (int i = 0; i < n4; ++i) {
    j = j == 1 ? 2 : 3;
    j = j > 2 ? 0 : 1;
    j = j < 1 ? 1 : 0;
  }

  // Module 6: integer arithmetic.
  int j6 = 1;
  int k = 2;
  int l = 3;
  for (int i = 0; i < n6; ++i) {
    j6 = j6 * (k - j6) * (l - k);
    k = l * k - (l - j6) * k;
    l = (l - k) * (k + j6);
    e1[static_cast<std::size_t>(l - 2 < 0 ? 0 : (l - 2) % 4)] = j6 + k + l;
    e1[static_cast<std::size_t>(k - 2 < 0 ? 0 : (k - 2) % 4)] = j6 * k * l;
  }

  // Module 7: trigonometric functions.
  double x = 0.5, y = 0.5;
  for (int i = 1; i <= n7; ++i) {
    x = t * std::atan(t2 * std::sin(x) * std::cos(x) /
                      (std::cos(x + y) + std::cos(x - y) - 1.0));
    y = t * std::atan(t2 * std::sin(y) * std::cos(y) /
                      (std::cos(x + y) + std::cos(x - y) - 1.0));
  }

  // Module 8: procedure calls.
  double x8 = 1.0, y8 = 1.0, z8 = 1.0;
  for (int i = 0; i < n8; ++i) p3(x8, y8, z8, t, t2);

  // Module 9: array references / p0.
  e1[0] = 1.0;
  e1[1] = 2.0;
  e1[2] = 3.0;
  for (int i = 0; i < n9; ++i) p0(e1, 0, 1, 2);

  // Module 10: integer arithmetic (weight 0 in the classic mix).
  int j10 = 2, k10 = 3;
  for (int i = 0; i < n10; ++i) {
    j10 = j10 + k10;
    k10 = j10 + k10;
    j10 = k10 - j10;
    k10 = k10 - j10 - j10;
  }

  // Module 11: standard functions.
  double x11 = 0.75;
  for (int i = 0; i < n11; ++i) {
    x11 = std::sqrt(std::exp(std::log(x11) / t1));
  }

  return x1 + x2 + x3 + x4 + e1[0] + e1[1] + e1[2] + e1[3] + x + y + z8 +
         x11 + j + j6 + k + l + j10 + k10;
}

}  // namespace

BenchmarkScore run_whetstone(double seconds) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  std::uint64_t loops = 0;
  double sink_acc = 0.0;
  auto now = start;
  while (now < deadline) {
    sink_acc += one_major_loop(1);
    ++loops;
    now = Clock::now();
  }
  volatile double sink = sink_acc;
  (void)sink;

  BenchmarkScore score;
  score.elapsed_seconds = std::chrono::duration<double>(now - start).count();
  score.iterations = loops;
  if (score.elapsed_seconds > 0.0) {
    // One major loop at scale 1 approximates 1/100 of a classic
    // 10-iteration whetstone run; calibrate so loops/sec maps to MWIPS
    // with the conventional 0.1 factor.
    score.mips = static_cast<double>(loops) / score.elapsed_seconds / 10.0;
  }
  return score;
}

}  // namespace resmodel::bench_suite

#include "bench_suite/dhrystone.h"

#include <array>
#include <chrono>
#include <cstring>

namespace resmodel::bench_suite {

namespace {

// Dhrystone 2.1 structure kinds.
enum Identification : int { kIdent1, kIdent2, kIdent3, kIdent4, kIdent5 };

struct Record {
  Record* next = nullptr;
  Identification discr = kIdent1;
  Identification variant = kIdent1;
  int int_comp = 0;
  char string_comp[31] = {};
};

// The benchmark state that in the original lives in globals.
struct State {
  Record record_a;
  Record record_b;
  int int_glob = 0;
  bool bool_glob = false;
  char char_1 = 'A';
  char char_2 = 'B';
  std::array<int, 50> array_1{};
  std::array<std::array<int, 50>, 50> array_2{};
};

bool func_2(const char* s1, const char* s2, State& st);

int func_1(char ch_1, char ch_2, State& st) {
  const char ch_1_loc = ch_1;
  char ch_2_loc = ch_1_loc;
  if (ch_2_loc != ch_2) return 0;  // Ident_1
  st.char_1 = ch_1_loc;
  return 1;
}

bool func_3(Identification enum_par) { return enum_par == kIdent3; }

bool func_2(const char* s1, const char* s2, State& st) {
  int int_loc = 2;
  char ch_loc = 'A';
  while (int_loc <= 2) {
    if (func_1(s1[int_loc], s2[int_loc + 1], st) == 0) {
      ch_loc = 'A';
      int_loc += 1;
    } else {
      break;
    }
  }
  if (ch_loc >= 'W' && ch_loc < 'Z') int_loc = 7;
  if (ch_loc == 'R') return true;
  if (std::strcmp(s1, s2) > 0) {
    int_loc += 7;
    st.int_glob = int_loc;
    return true;
  }
  return false;
}

void proc_7(int in_1, int in_2, int& out) { out = in_2 + (in_1 + 2); }

void proc_8(std::array<int, 50>& arr_1,
            std::array<std::array<int, 50>, 50>& arr_2, int in_1, int in_2,
            State& st) {
  const int loc = in_1 + 5;
  arr_1[static_cast<std::size_t>(loc)] = in_2;
  arr_1[static_cast<std::size_t>(loc + 1)] =
      arr_1[static_cast<std::size_t>(loc)];
  arr_1[static_cast<std::size_t>(loc + 30)] = loc;
  for (int i = loc; i <= loc + 1; ++i) {
    arr_2[static_cast<std::size_t>(loc)][static_cast<std::size_t>(i)] = loc;
  }
  arr_2[static_cast<std::size_t>(loc)][static_cast<std::size_t>(loc - 1)] += 1;
  arr_2[static_cast<std::size_t>(loc + 20)][static_cast<std::size_t>(loc)] =
      arr_1[static_cast<std::size_t>(loc)];
  st.int_glob = 5;
}

void proc_6(Identification enum_in, Identification& enum_out, State& st) {
  enum_out = enum_in;
  if (!func_3(enum_in)) enum_out = kIdent4;
  switch (enum_in) {
    case kIdent1: enum_out = kIdent1; break;
    case kIdent2: enum_out = st.int_glob > 100 ? kIdent1 : kIdent4; break;
    case kIdent3: enum_out = kIdent2; break;
    case kIdent4: break;
    case kIdent5: enum_out = kIdent3; break;
  }
}

void proc_3(Record*& ptr_out, State& st) {
  ptr_out = st.record_a.next;
  proc_7(10, st.int_glob, st.record_a.int_comp);
}

void proc_1(Record* ptr_in, State& st) {
  Record* next = ptr_in->next;
  *ptr_in->next = st.record_a;
  ptr_in->int_comp = 5;
  next->int_comp = ptr_in->int_comp;
  next->next = ptr_in->next;
  proc_3(next->next, st);
  if (next->discr == kIdent1) {
    next->int_comp = 6;
    proc_6(ptr_in->variant, next->variant, st);
    next->next = st.record_a.next;
    proc_7(next->int_comp, 10, next->int_comp);
  } else {
    *ptr_in = *ptr_in->next;
  }
}

void proc_2(int& int_io, const State& st) {
  int int_loc = int_io + 10;
  for (;;) {
    if (st.char_1 == 'A') {
      int_loc -= 1;
      int_io = int_loc - st.int_glob;
      break;
    }
  }
}

void proc_4(State& st) {
  const bool bool_loc = st.char_1 == 'A';
  st.bool_glob = bool_loc | st.bool_glob;
  st.char_2 = 'B';
}

void proc_5(State& st) {
  st.char_1 = 'A';
  st.bool_glob = false;
}

// One Dhrystone iteration (the body of the original main loop).
void one_iteration(State& st, int run_index) {
  char string_1[31];
  char string_2[31];
  std::strcpy(string_1, "DHRYSTONE PROGRAM, 1'ST STRING");

  proc_5(st);
  proc_4(st);
  int int_1 = 2;
  int int_2 = 3;
  std::strcpy(string_2, "DHRYSTONE PROGRAM, 2'ND STRING");
  Identification enum_loc = kIdent2;
  st.bool_glob = !func_2(string_1, string_2, st);
  int int_3 = 0;
  while (int_1 < int_2) {
    int_3 = 5 * int_1 - int_2;
    proc_7(int_1, int_2, int_3);
    int_1 += 1;
  }
  proc_8(st.array_1, st.array_2, int_1, int_3, st);
  proc_1(&st.record_b, st);
  for (char ch_index = 'A'; ch_index <= st.char_2; ++ch_index) {
    if (enum_loc == (func_3(kIdent3) ? kIdent1 : kIdent2)) {
      proc_6(kIdent1, enum_loc, st);
      std::strcpy(string_2, "DHRYSTONE PROGRAM, 3'RD STRING");
      int_2 = run_index;
      st.int_glob = run_index;
    }
  }
  int_2 = int_2 * int_1;
  int_1 = int_2 / int_3;
  int_2 = 7 * (int_2 - int_3) - int_1;
  proc_2(int_1, st);
}

}  // namespace

BenchmarkScore run_dhrystone(double seconds) {
  State st;
  st.record_a.next = &st.record_b;
  st.record_a.discr = kIdent1;
  st.record_a.variant = kIdent3;
  st.record_a.int_comp = 40;
  std::strcpy(st.record_a.string_comp, "DHRYSTONE PROGRAM, SOME STRING");
  st.record_b = st.record_a;
  st.record_b.next = &st.record_a;

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  std::uint64_t iterations = 0;
  // Check the clock in batches; the batch body must not be optimized away,
  // which the state dependencies already prevent.
  constexpr std::uint64_t kBatch = 2000;
  auto now = start;
  while (now < deadline) {
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      one_iteration(st, static_cast<int>(iterations + i));
    }
    iterations += kBatch;
    now = Clock::now();
  }
  // Fold the state into a volatile sink so the optimizer keeps the work.
  volatile int sink = st.int_glob + st.array_1[7] + st.record_a.int_comp;
  (void)sink;

  BenchmarkScore score;
  score.elapsed_seconds =
      std::chrono::duration<double>(now - start).count();
  score.iterations = iterations;
  if (score.elapsed_seconds > 0.0) {
    const double dhrystones_per_second =
        static_cast<double>(iterations) / score.elapsed_seconds;
    score.mips = dhrystones_per_second / 1757.0;  // VAX 11/780 baseline
  }
  return score;
}

}  // namespace resmodel::bench_suite

#include "bench_suite/harness.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace resmodel::bench_suite {

MultiCoreScore run_on_all_cores(
    const std::function<BenchmarkScore(double)>& benchmark, double seconds,
    int threads) {
  int n = threads;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  std::vector<BenchmarkScore> scores(static_cast<std::size_t>(n));
  {
    std::vector<std::jthread> workers;
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers.emplace_back([&benchmark, &scores, i, seconds] {
        scores[static_cast<std::size_t>(i)] = benchmark(seconds);
      });
    }
  }  // joins

  MultiCoreScore result;
  result.threads = n;
  result.min_mips = scores.front().mips;
  result.max_mips = scores.front().mips;
  double sum = 0.0;
  for (const BenchmarkScore& s : scores) {
    sum += s.mips;
    result.min_mips = std::min(result.min_mips, s.mips);
    result.max_mips = std::max(result.max_mips, s.mips);
  }
  result.average_mips = sum / n;
  return result;
}

}  // namespace resmodel::bench_suite

// Local host measurement — the client-side functions §V-A lists
// (GetSystemInfo / sysconf for cores, GlobalMemoryStatusEx / sysconf for
// memory, GetDiskFreeSpaceEx / statvfs for disk), here the POSIX side.
// Combined with the benchmark suite this measures the machine the library
// itself runs on, completing the measurement path of Section IV.
#pragma once

#include <optional>
#include <string>

namespace resmodel::bench_suite {

/// A local hardware measurement. Fields that could not be determined are
/// zero/empty.
struct LocalHostInfo {
  int n_cores = 0;
  double memory_mb = 0.0;
  double disk_avail_gb = 0.0;
  double disk_total_gb = 0.0;
  std::string os_name;
};

/// Probes core count (sysconf), physical memory (sysconf page counts) and
/// disk space (statvfs on `disk_path`).
LocalHostInfo probe_local_host(const std::string& disk_path = "/");

/// Full BOINC-style measurement: probe + both benchmarks run on all cores
/// simultaneously for `benchmark_seconds` each.
struct LocalMeasurement {
  LocalHostInfo info;
  double dhrystone_mips = 0.0;  ///< per-core average
  double whetstone_mips = 0.0;  ///< per-core average
};
LocalMeasurement measure_local_host(double benchmark_seconds = 0.5,
                                    const std::string& disk_path = "/");

}  // namespace resmodel::bench_suite

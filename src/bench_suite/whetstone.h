// A self-contained Whetstone-style floating point benchmark.
//
// BOINC measures floating point speed with the 1997 C Whetstone (Section
// V-A). This implementation reproduces the classic module mix — array
// element arithmetic, trigonometric identities, procedure calls with
// floating parameters, exp/log/sqrt chains, conditional jumps and integer
// arithmetic — with the standard per-module loop weights. Scores are
// MWIPS, the unit the paper calls "Whetstone MIPS".
#pragma once

#include "bench_suite/dhrystone.h"  // BenchmarkScore

namespace resmodel::bench_suite {

/// Runs the Whetstone module mix for approximately `seconds` of wall time.
BenchmarkScore run_whetstone(double seconds);

}  // namespace resmodel::bench_suite

// Availability–hardware coupling (the paper's §VIII: "the model of
// resources could be tied to ... models of host availability", and the
// ROADMAP's availability-coupled-sampling item).
//
// The stock overlay draws every host's ON/OFF process from the same
// parameters, independent of its hardware — but volunteer populations
// plausibly correlate the two (gaming rigs are fast and nightly-off,
// always-on workstations are slower and steady). This module drives each
// host's availability parameters from an EXTRA copula dimension that is
// rank-coupled to the host's speed column through the pluggable
// model::CorrelationModel layer:
//
//   1. draw one standard-normal pair (z_speed, z_avail) per host from a
//      dimension-2 CorrelationModel (CholeskyGaussian by default);
//   2. rank-match the z_speed marginal to the observed speed column
//      (Iman–Conover style): the host with the r-th fastest speed
//      receives the pair whose z_speed has rank r, carrying its z_avail;
//   3. map z_avail to a mean-preserving log-normal multiplier on the ON
//      Weibull scale: on_lambda_h = base * exp(sigma * z - sigma^2 / 2).
//
// Rank matching makes the coupling distribution-free in the speed
// marginal (only ranks matter) and exact in the copula: the sample
// Spearman correlation between speed and z_avail equals that of the
// drawn (z_speed, z_avail) pairs. With rho > 0 fast hosts get longer ON
// sessions (fast-and-steady); rho < 0 produces the fast-but-flaky
// population that punishes completion-time scheduling hardest.
#pragma once

#include <span>
#include <vector>

#include "model/correlation_model.h"
#include "synth/availability.h"
#include "util/rng.h"

namespace resmodel::churn {

/// Coupling strength knobs. `speed_rho` is the target Spearman rank
/// correlation between host speed and the availability driver, in
/// [-1, 1]; `log_on_sigma` (>= 0) is the dispersion of the per-host ON
/// scale multiplier exp(sigma * z - sigma^2/2) (mean 1, so the
/// population-mean ON session length is preserved for any rho).
struct AvailabilityCoupling {
  double speed_rho = 0.0;
  double log_on_sigma = 0.8;

  /// Throws std::invalid_argument on rho outside [-1, 1] or sigma < 0.
  void validate() const;
};

/// Per-host availability parameters rank-coupled to `speed` through a
/// CholeskyGaussian built from coupling.speed_rho (the Pearson parameter
/// is 2*sin(pi*rho/6), the exact inverse of the Gaussian-copula Spearman
/// map, so the target rho is hit in distribution, not just in sign).
/// Consumes exactly one dimension-2 sample_normals call per host, in host
/// order. Throws std::invalid_argument on invalid coupling parameters.
std::vector<synth::AvailabilityParams> couple_availability_to_speed(
    std::span<const double> speed, const synth::AvailabilityParams& base,
    const AvailabilityCoupling& coupling, util::Rng& rng);

/// The pluggable-engine overload: any dimension-2 CorrelationModel
/// supplies the joint (component 0 = speed proxy, component 1 =
/// availability driver). Throws std::invalid_argument unless
/// joint.dimension() == 2 or on sigma < 0.
std::vector<synth::AvailabilityParams> couple_availability_to_speed(
    std::span<const double> speed, const synth::AvailabilityParams& base,
    const model::CorrelationModel& joint, double log_on_sigma,
    util::Rng& rng);

}  // namespace resmodel::churn

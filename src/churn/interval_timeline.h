// Columnar per-host ON/OFF interval store — the event substrate of the
// churn subsystem.
//
// synth::AvailabilityModel generates one host's alternating-renewal ON
// intervals as a vector<AvailabilityInterval>; a population-scale churn
// simulation needs a hundred thousand of those timelines queried millions
// of times from the scheduling hot loop. IntervalTimeline compiles them
// into a CSR-style columnar layout — per-host offsets into flat
// `start_day` / `end_day` columns — so a host's intervals are one
// contiguous, binary-searchable slice instead of a pointer-chased vector
// of structs:
//
//   offsets_:  [0, n_0, n_0+n_1, ...]          host h owns [offsets_[h], offsets_[h+1])
//   starts_:   [h0.s0, h0.s1, ... h1.s0, ...]  sorted ascending within a host
//   ends_:     [h0.e0, h0.e1, ... h1.e0, ...]  ends_[i] > starts_[i], disjoint
//   cum_ends_: running ON-day total through each interval's end (per host)
//
// The cum_ends column turns checkpoint-style accrual queries into a
// single binary search: "when has this host accumulated T ON-days?" is
// lower_bound over a prefix-sum instead of an interval-by-interval walk.
//
// Generation forks the caller's rng once per host, in host order, BEFORE
// any interval is sampled — the same consumption contract as the scalar
// availability derate in sim::compute_host_rates — so the per-host
// streams are a pure function of (rng state, host index) and the parallel
// fill is bit-identical for any thread count.
//
// Beyond-horizon convention: the timeline covers [start_day, end_day);
// from end_day onward every host counts as permanently ON. Schedules that
// outrun the generated horizon therefore stay finite and well-defined
// (and optimistic — grow the horizon if the tail matters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "synth/availability.h"
#include "util/rng.h"

namespace resmodel::churn {

class IntervalTimeline {
 public:
  IntervalTimeline() = default;

  /// Generates `host_count` timelines over [start_day, end_day) from one
  /// shared availability model. Forks `rng` once per host in host order,
  /// then fills hosts in parallel chunks (threads == 0 uses the hardware
  /// concurrency; the result is identical for any thread count).
  static IntervalTimeline generate(const synth::AvailabilityModel& model,
                                   std::size_t host_count, double start_day,
                                   double end_day, util::Rng& rng,
                                   synth::StartMode mode =
                                       synth::StartMode::kOnAtStart,
                                   int threads = 0);

  /// Per-host-parameter overload (the copula-coupled path): host h's
  /// intervals come from AvailabilityModel(params[h]). Same fork order
  /// and thread-count invariance as the shared-model overload.
  static IntervalTimeline generate(
      std::span<const synth::AvailabilityParams> params, double start_day,
      double end_day, util::Rng& rng,
      synth::StartMode mode = synth::StartMode::kOnAtStart, int threads = 0);

  /// Compiles an already-materialized vector-of-vectors representation
  /// (round-trip adapter; intervals must be sorted and disjoint per host).
  static IntervalTimeline from_intervals(
      const std::vector<std::vector<synth::AvailabilityInterval>>& per_host,
      double start_day, double end_day);

  std::size_t host_count() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t interval_count(std::size_t host) const noexcept {
    return static_cast<std::size_t>(offsets_[host + 1] - offsets_[host]);
  }
  std::size_t total_intervals() const noexcept { return starts_.size(); }
  double start_day() const noexcept { return start_; }
  double end_day() const noexcept { return end_; }

  /// Host h's interval-start / interval-end column slices.
  std::span<const double> starts(std::size_t host) const noexcept {
    return {starts_.data() + offsets_[host],
            starts_.data() + offsets_[host + 1]};
  }
  std::span<const double> ends(std::size_t host) const noexcept {
    return {ends_.data() + offsets_[host], ends_.data() + offsets_[host + 1]};
  }
  /// Cumulative ON days through the end of each of host's intervals
  /// (ascending; the last entry is the host's total generated ON time).
  std::span<const double> cum_ends(std::size_t host) const noexcept {
    return {cum_ends_.data() + offsets_[host],
            cum_ends_.data() + offsets_[host + 1]};
  }

  /// The advance cursor: index (into the host's slice) of the first
  /// interval with end_day > day — the interval containing `day`, or the
  /// next one after it; interval_count(host) when none remains. O(log n)
  /// binary search over the contiguous ends column.
  std::size_t advance(std::size_t host, double day) const noexcept;

  /// Earliest time >= day at which `host` is ON, under the beyond-horizon
  /// convention (always ON from end_day() onward, so the result is never
  /// missing). O(log n).
  double next_on(std::size_t host, double day) const noexcept;

  /// Fraction of [lo, hi) covered by host's ON intervals (0 for a
  /// degenerate window). The columnar twin of synth::availability_fraction.
  double fraction(std::size_t host, double lo, double hi) const noexcept;

  /// Host h's intervals as the AoS representation (round-trip adapter for
  /// tests and legacy consumers).
  std::vector<synth::AvailabilityInterval> host_intervals(
      std::size_t host) const;

 private:
  std::vector<std::uint64_t> offsets_;  ///< host_count + 1 entries
  std::vector<double> starts_;
  std::vector<double> ends_;
  std::vector<double> cum_ends_;
  double start_ = 0.0;
  double end_ = 0.0;
};

}  // namespace resmodel::churn

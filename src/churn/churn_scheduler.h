// Interval-aware ECT scheduling over an IntervalTimeline — the churn
// engine's answer to the scalar availability derate in kDynamicEct.
//
// The derate multiplies each host's rate by its long-run ON fraction and
// schedules as if the host were continuously, fractionally available.
// That erases exactly the structure that makes volunteer churn hard: the
// ON sessions are heavy-tailed Weibull (shape < 1 — many short sessions,
// a few very long ones), so a long task on a typical session is far more
// exposed than the average fraction suggests. This scheduler computes
// TRUE completion times by walking the host's ON intervals from its
// cursor, under three interruption semantics:
//
//  - kCheckpoint: work accrues across OFF gaps (the client checkpoints;
//    an outage only delays). Completion = the instant cumulative ON time
//    since the start equals the task's work.
//  - kRestart: an interrupted task restarts from scratch on the SAME
//    host; every failed attempt burns the remainder of its ON session.
//    Completion = end of the first session long enough to hold the work.
//  - kAbandon: an interrupted task is abandoned by the host and
//    re-enqueued at the back of the global queue — any host may pick it
//    up. Burned attempt time is wasted; the host frees at the
//    interruption instant.
//
// Selection is minimum-completion-time over the rate-sorted blocks of
// sim::ScheduleState, but the derate kernel's plain `ready + task*inv`
// bound is hopeless here: the winner's completion carries OFF-gap
// stretch, so in the leveled steady state that bound admits the whole
// mid-band, and any per-block min over 64 heavy-tailed gaps washes out
// to approximately the gap-free bound. The machinery that actually
// prunes (see churn/README.md for the full derivation):
//
//   - per-host SESSION CURSORS (ready_at, sess_rem, accrued-ON, and
//     kLevels sessions of (cum, phi) lookahead): a checkpoint completion
//     inside session j is exactly `target + phi_j` with phi_j = end_j -
//     cum_j non-decreasing in j, so completions within the lookahead are
//     O(1) formulas over resident columns and anything deeper is
//     bounded by the deepest phi (resolved by one lower_bound over the
//     timeline's cum column);
//   - a FUSED EXACT SWEEP per admitted block: branch-free selects
//     compute every lane's exact completion (fits lanes as the
//     reference's own `ready + work`, spills level-routed as
//     `target + phi`) or a sound bound, then 8-lane chunk minima gate
//     the scalar pass;
//   - TASK-SIZE-BUCKETED block minima: completions are non-decreasing
//     in task size, so per-block minima of edge-sized completions,
//     extended by (task - edge) * block_min_inv, give a gap-aware block
//     gate, with the tightest-bound block evaluated first to warm the
//     incumbent;
//   - every cross-expression skip test deflates its bound by a relative
//     margin orders of magnitude above ulp noise, so pruning stays
//     sound by construction in floating point.
//
// A scalar reference kernel that evaluates EVERY host through the same
// completion expressions is retained as the golden oracle; this file is
// compiled with -ffp-contract=off and -fno-trapping-math (see
// src/CMakeLists.txt), so fast and reference results are bit-identical.
//
// Beyond the timeline's horizon hosts count as permanently ON (see
// interval_timeline.h); schedules that outrun the generated window stay
// finite and optimistic.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "churn/interval_timeline.h"
#include "sim/schedule_state.h"

namespace resmodel::churn {

/// What happens to a task whose host goes OFF mid-computation.
enum class InterruptionPolicy {
  kCheckpoint,
  kRestart,
  kAbandon,
};

std::string to_string(InterruptionPolicy policy);

/// Totals on top of the per-host columns the scheduler updates in place.
struct ChurnScheduleTotals {
  double makespan_days = 0.0;
  double total_cpu_days = 0.0;   ///< useful processing time
  double wasted_cpu_days = 0.0;  ///< ON time burned by interrupted attempts
  std::uint64_t interruptions = 0;
};

/// Walks host `host`'s ON intervals from the ON instant `start_on`
/// (typically timeline.next_on(host, free_at)) until `work` days of ON
/// time have accrued; returns the completion instant. kCheckpoint's
/// completion primitive — exposed for the golden tests.
double checkpoint_completion(const IntervalTimeline& timeline,
                             std::size_t host, double start_on,
                             double work) noexcept;

/// Outcome of placing work on a host under kRestart (and, per attempt,
/// kAbandon): when it completes, how much ON time it consumed (worked ==
/// work + burned failed attempts), and how many sessions died under it.
struct RestartOutcome {
  double completion = 0.0;
  double worked_days = 0.0;
  std::uint64_t interruptions = 0;
};

/// First ON session at or after `start_on` with room for `work`
/// contiguous days; every shorter session before it is burned whole.
RestartOutcome restart_completion(const IntervalTimeline& timeline,
                                  std::size_t host, double start_on,
                                  double work) noexcept;

/// Interval-aware ECT over a sim::ScheduleState and an IntervalTimeline.
/// Borrows the state's columns (rates/inv_rates/free_at/busy_days and the
/// rate-sorted ect_* caches) and maintains its own ready-at cursor column
/// (earliest ON instant >= free_at). run() and run_reference() update the
/// state in place, exactly like the sim/ scheduling kernels.
class ChurnScheduler {
 public:
  /// `state` and `timeline` must describe the same hosts (equal counts —
  /// throws std::invalid_argument otherwise) and outlive the scheduler.
  ChurnScheduler(sim::ScheduleState& state, const IntervalTimeline& timeline);

  /// Blocked, pruned fast path.
  ChurnScheduleTotals run(std::span<const double> tasks,
                          InterruptionPolicy policy);

  /// Scalar full-scan oracle; bit-identical to run().
  ChurnScheduleTotals run_reference(std::span<const double> tasks,
                                    InterruptionPolicy policy);

  /// The ready-at cursor column (exposed for tests).
  const std::vector<double>& ready_at() const noexcept { return ready_; }

 private:
  /// True completion of `work` on `host` starting from its current
  /// cursor, under `policy` (selection only — no accounting). Fits-case
  /// completions are the literal `ready + work` expression (so they equal
  /// the pruning bound bit for bit); checkpoint spills resolve through
  /// one lower_bound over the timeline's cum_ends column, restart spills
  /// through the session walk.
  double completion_for(std::size_t host, double work,
                        InterruptionPolicy policy) const noexcept;

  /// Completion instant at which host's cumulative ON time reaches
  /// `target`, searching strictly after the current session (checkpoint
  /// spill resolution).
  double checkpoint_spill(std::size_t host, double target) const noexcept;

  /// Applies an assignment: busy/free/ready/cursor updates + totals.
  void commit(std::size_t host, double work, InterruptionPolicy policy,
              ChurnScheduleTotals& totals);

  template <bool kBlocked>
  ChurnScheduleTotals run_ect(std::span<const double> tasks,
                              InterruptionPolicy policy);
  template <bool kBlocked>
  ChurnScheduleTotals run_abandon(std::span<const double> tasks);

  /// Re-derives ready_/sess_rem_/next_start_ for `host` from its
  /// free_at (one binary search; the session neighbours are adjacent
  /// columns entries).
  void update_cursor(std::size_t host) noexcept;

  /// (Re)builds the sorted-layout gathers from the cursor columns.
  void rebuild_gathers();
  /// Refreshes the gathers + block minimum after `host`'s cursor moved.
  void update_gathers(std::size_t host);

  /// Derives the log-spaced task-size bucket edges from a workload and
  /// fills bmin_done_ for every block (run_ect setup).
  void setup_buckets(std::span<const double> tasks);
  /// Recomputes block `blk`'s per-bucket completion minima.
  void rebuild_bucket_mins(std::size_t blk);
  /// Largest bucket whose edge does not exceed `task`.
  std::size_t bucket_of(double task) const noexcept;

  /// Session-lookahead levels resident per host. A checkpoint completion
  /// inside session j is `target + phi_j` with phi_j = end_j - cum_j, and
  /// phi is NON-DECREASING in j (every OFF gap adds to it) — so caching
  /// (cum_j, phi_j) for the next kLevels sessions resolves shallow spills
  /// exactly from resident columns, and phi at the deepest level is a
  /// sound, far tighter bound for anything deeper. Layout: kStride
  /// doubles per host — [cum_1..cum_kLevels, phi_1..phi_kLevels].
  static constexpr std::size_t kLevels = 4;
  static constexpr std::size_t kStride = 2 * kLevels;

  sim::ScheduleState& state_;
  const IntervalTimeline& timeline_;
  /// Per-host cursor columns (original host index): earliest ON instant
  /// >= free_at; ON time remaining in that session (+inf once the host is
  /// past the horizon and permanently ON); the next session's start (the
  /// horizon when no generated session remains); cumulative ON days
  /// accrued at the ready instant; the current session's index; and the
  /// lookahead levels (kStride doubles per host).
  std::vector<double> ready_;
  std::vector<double> sess_rem_;
  std::vector<double> next_start_;
  std::vector<double> accr_ready_;
  std::vector<std::uint32_t> sess_idx_;
  std::vector<double> levels_;

  // Blocked-path gathers, rebuilt per run (kernel-local, like the sim/
  // kernels' sfree): the cursor columns in ect_order layout + per-block
  // minima of the ready column. The gathered copies keep the hot band's
  // accesses streaming instead of random across 100k hosts.
  std::vector<double> sready_;
  std::vector<double> ssess_rem_;
  std::vector<double> snext_start_;
  std::vector<double> saccr_;
  /// The lookahead levels as separate sorted-layout columns (cum and phi
  /// per level), so both the bucket sweeps and the selection sweep
  /// stream block stripes instead of striding through an interleaved
  /// layout. (kAbandon ignores them: its selection key is the optimistic
  /// ready + work even for spills.)
  std::vector<double> scum_[kLevels];
  std::vector<double> sphi_[kLevels];
  std::vector<double> bmin_ready_;

  /// Task-size-bucketed block minima — the gate that actually prunes.
  /// Completions are non-decreasing in task size, so the min over a
  /// block of (exact-or-lower-bound) completions evaluated at bucket
  /// edge e lower-bounds every completion for task >= e; extending by
  /// (task - e) * block_min_inv keeps it sound inside the bucket. Unlike
  /// any block-scalar over gaps, the per-lane evaluation at the edge
  /// keeps each host's own OFF structure attached before the min — this
  /// is what a plain min-ready/min-anchor bound washes out. One block's
  /// row is recomputed per assignment (vectorized sweeps per edge).
  static constexpr std::size_t kBuckets = 32;
  std::vector<double> bucket_edges_;  ///< ascending, kBuckets entries
  std::vector<double> bmin_done_;     ///< block_count x kBuckets
  bool buckets_active_ = false;       ///< run_ect sets, run_abandon clears
};

}  // namespace resmodel::churn

// Interval-aware ECT scheduling over an IntervalTimeline — the churn
// engine's answer to the scalar availability derate in kDynamicEct.
//
// The derate multiplies each host's rate by its long-run ON fraction and
// schedules as if the host were continuously, fractionally available.
// That erases exactly the structure that makes volunteer churn hard: the
// ON sessions are heavy-tailed Weibull (shape < 1 — many short sessions,
// a few very long ones), so a long task on a typical session is far more
// exposed than the average fraction suggests. This scheduler computes
// TRUE completion times by walking the host's ON intervals from its
// cursor, under three interruption semantics:
//
//  - kCheckpoint: work accrues across OFF gaps (the client checkpoints;
//    an outage only delays). Completion = the instant cumulative ON time
//    since the start equals the task's work.
//  - kRestart: an interrupted task restarts from scratch on the SAME
//    host; every failed attempt burns the remainder of its ON session.
//    Completion = end of the first session long enough to hold the work.
//  - kAbandon: an interrupted task is abandoned by the host and
//    re-enqueued at the back of the global queue — any host may pick it
//    up. Burned attempt time is wasted; the host frees at the
//    interruption instant.
//
// Selection is minimum-completion-time over the rate-sorted blocks of
// sim::ScheduleState. The derate kernel's plain `ready + task*inv` bound
// is hopeless here (the winner's completion carries OFF-gap stretch, so
// in the leveled steady state that bound admits the whole mid-band), and
// any per-block scalar over 64 heavy-tailed gaps washes out to the
// gap-free bound. What prunes (full derivation in churn/README.md):
//
//   - per-host SESSION CURSORS (ready_at, sess_rem, accrued-ON, and a
//     configurable number of lookahead sessions of (cum, phi)): a
//     checkpoint completion inside session j is exactly `target + phi_j`
//     with phi_j non-decreasing in j, so completions within the
//     lookahead are O(1) formulas over resident columns and anything
//     deeper is bounded by the deepest phi (resolved by one lower_bound
//     over the timeline's cum column);
//   - a churn::BoundGate (block_envelope.h): per-block lower ENVELOPES
//     of the piecewise-affine completion-vs-task-size functions,
//     maintained incrementally (only the winner's knots per assignment,
//     lazy full-rebuild epochs), packed as float32 bound columns, under
//     a bucket-major coarse row for the cheap per-task block scan;
//   - every cross-expression skip test deflates its bound by a relative
//     margin orders of magnitude above the bound chain's rounding noise,
//     so pruning stays sound by construction in floating point.
//
// Survivor lanes are resolved through the EXACT double cursor
// expressions (the same code path the scalar reference runs), which is
// what keeps the blocked kernel bit-identical to the retained full-
// evaluation oracle regardless of gate mode or column precision. This
// file is compiled with -ffp-contract=off and -fno-trapping-math (see
// src/CMakeLists.txt).
//
// Beyond the timeline's horizon hosts count as permanently ON (see
// interval_timeline.h); schedules that outrun the generated window stay
// finite and optimistic.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "churn/block_envelope.h"
#include "churn/interval_timeline.h"
#include "sim/schedule_state.h"

namespace resmodel::churn {

std::string to_string(InterruptionPolicy policy);

/// Totals on top of the per-host columns the scheduler updates in place.
/// The trailing counters are deterministic kernel-shape telemetry
/// (identical across runs of the same inputs — bench/perf_microbench
/// exports them so tools/compare_bench.py can flag pruning regressions
/// machine-independently); they are not part of the scheduling result.
struct ChurnScheduleTotals {
  double makespan_days = 0.0;
  double total_cpu_days = 0.0;   ///< useful processing time
  double wasted_cpu_days = 0.0;  ///< ON time burned by interrupted attempts
  std::uint64_t interruptions = 0;
  std::uint64_t swept_blocks = 0;    ///< blocks whose columns were streamed
  std::uint64_t resolved_lanes = 0;  ///< lanes resolved through exact doubles
};

/// Tuning knobs for the blocked kernel. Every setting returns the same
/// schedule bit for bit — they trade pruning power and swept bytes, not
/// results (the lookahead depth can shift completions by ulps ACROSS
/// depths, because deep spills resolve through a different exact
/// expression, but blocked and reference agree exactly at equal depth).
struct ChurnSchedulerConfig {
  /// Resident (cum, phi) lookahead sessions per host, in [1,
  /// kMaxLookaheadLevels]. More levels resolve deeper checkpoint spills
  /// from columns instead of binary searches and sharpen the deep-spill
  /// bound; fewer levels shrink the swept columns. 8 is the measured
  /// sweet spot at 10k-100k hosts (4 leaves the deep-spill bound so
  /// loose that ~200 blocks and ~350 lanes per task survive the gates;
  /// 8 cuts that to ~25 / ~20; 12 buys no further shape and streams
  /// wider columns).
  std::size_t lookahead_levels = 8;
  GateMode gate_mode = GateMode::kEnvelope;
  /// Pack the swept bound columns as float32 (half the streamed bytes,
  /// twice the SIMD width); commit-time completions stay double.
  bool float32_columns = true;
  /// Compute backend for the column sweeps (src/backend/README.md):
  /// kAuto picks the widest SIMD arm the CPU offers; kScalar routes
  /// run() onto run_reference(). Like every other knob here, the
  /// schedule is bit-identical across settings.
  backend::Backend backend = backend::Backend::kAuto;
};

/// Walks host `host`'s ON intervals from the ON instant `start_on`
/// (typically timeline.next_on(host, free_at)) until `work` days of ON
/// time have accrued; returns the completion instant. kCheckpoint's
/// completion primitive — exposed for the golden tests.
double checkpoint_completion(const IntervalTimeline& timeline,
                             std::size_t host, double start_on,
                             double work) noexcept;

/// Outcome of placing work on a host under kRestart (and, per attempt,
/// kAbandon): when it completes, how much ON time it consumed (worked ==
/// work + burned failed attempts), and how many sessions died under it.
struct RestartOutcome {
  double completion = 0.0;
  double worked_days = 0.0;
  std::uint64_t interruptions = 0;
};

/// First ON session at or after `start_on` with room for `work`
/// contiguous days; every shorter session before it is burned whole.
RestartOutcome restart_completion(const IntervalTimeline& timeline,
                                  std::size_t host, double start_on,
                                  double work) noexcept;

/// Interval-aware ECT over a sim::ScheduleState and an IntervalTimeline.
/// Borrows the state's columns (rates/inv_rates/free_at/busy_days and the
/// rate-sorted ect_* caches) and maintains its own ready-at cursor column
/// (earliest ON instant >= free_at). run() and run_reference() update the
/// state in place, exactly like the sim/ scheduling kernels.
class ChurnScheduler {
 public:
  /// `state` and `timeline` must describe the same hosts (equal counts —
  /// throws std::invalid_argument otherwise, as does an out-of-range
  /// config.lookahead_levels) and outlive the scheduler.
  ChurnScheduler(sim::ScheduleState& state, const IntervalTimeline& timeline,
                 const ChurnSchedulerConfig& config = {});

  /// Warm-start constructor: rebinds `seed`'s timeline and config to a
  /// fresh `state` and COPIES the seed's cursor columns instead of
  /// re-deriving them host by host (one binary search each). `state`
  /// must have the same host count and the same free_at column as the
  /// state `seed` was constructed over — sim::run_policy_sweep uses this
  /// to share one cursor derivation across all cells of a population.
  ChurnScheduler(sim::ScheduleState& state, const ChurnScheduler& seed);

  /// Blocked, pruned fast path.
  ChurnScheduleTotals run(std::span<const double> tasks,
                          InterruptionPolicy policy);

  /// Scalar full-scan oracle; bit-identical to run().
  ChurnScheduleTotals run_reference(std::span<const double> tasks,
                                    InterruptionPolicy policy);

  /// One stepped assignment (the begin_stepping/step driving mode used by
  /// sim/replication.cpp): which host won the selection, when its work
  /// began accruing, when the host freed, how much ON time it burned, and
  /// the two facts the fault layer needs — whether the attempt completed
  /// (false only under kAbandon when the session died first) and whether
  /// the execution crossed at least one ON-session boundary (the crash
  /// model's trigger).
  struct StepOutcome {
    std::uint32_t host = 0;
    double start = 0.0;
    double completion = 0.0;
    double worked_days = 0.0;
    bool completed = true;
    bool session_crossed = false;
  };

  /// Arms the stepped driving mode: step() hands out one assignment at a
  /// time with exactly the selection run()/run_reference() would make
  /// (blocked when the resolved backend is non-scalar and
  /// `force_reference` is off, the full-scan oracle otherwise — same
  /// bit-identity contract). `tasks` is the task population the gate's
  /// bucket edges are built over (it is retained for gate re-resets on
  /// advance_time); individual step() calls may pass any task drawn from
  /// it, in any order and multiplicity. `slowdown`, when non-empty, is a
  /// per-host execution derate column (>= 1, copied): the straggler
  /// model's "benchmarks fast, runs slow" — selection always uses the
  /// NOMINAL rates, commit charges work * slowdown[winner].
  void begin_stepping(std::span<const double> tasks,
                      InterruptionPolicy policy,
                      std::span<const double> slowdown = {},
                      bool force_reference = false);

  /// Selects the minimum-completion host for `task` (nominal rates),
  /// then commits the actual execution at work * slowdown[winner].
  /// Accounting accrues into step_totals().
  StepOutcome step(double task);

  /// Clamps every host's free_at up to `now` (hosts idle before a
  /// re-issue round's start are free AT its start, not before) and
  /// refreshes the cursors and blocked structures. Sound for the
  /// replication engine's use because all work stepped after this call
  /// starts at or after `now`.
  void advance_time(double now);

  /// Host-side accounting accrued by step() since begin_stepping.
  const ChurnScheduleTotals& step_totals() const noexcept {
    return step_totals_;
  }

  const ChurnSchedulerConfig& config() const noexcept { return config_; }

  /// The ready-at cursor column (exposed for tests).
  const std::vector<double>& ready_at() const noexcept { return ready_; }

  /// Test hooks: the exact completion the selection compares (same
  /// expressions commit uses), and gate priming + access so soundness
  /// properties (every gate bound, deflated by gate().margin(), is <=
  /// the exact completion) can be asserted directly — including after
  /// run() advanced the state through staleness epochs.
  double completion_for_test(std::size_t host, double task,
                             InterruptionPolicy policy) const noexcept {
    return completion_for(host, task * state_.inv_rates[host], policy);
  }
  void prime_gate_for_test(std::span<const double> tasks,
                           InterruptionPolicy policy);
  const BoundGate& gate() const noexcept { return gate_; }

 private:
  /// True completion of `work` on `host` starting from its current
  /// cursor, under `policy` (selection only — no accounting). Fits-case
  /// completions are the literal `ready + work` expression; checkpoint
  /// spills resolve through the resident levels or one lower_bound over
  /// the timeline's cum_ends column, restart spills through the session
  /// walk. Shared verbatim by the blocked survivors, the reference scan
  /// and commit — the bit-identity anchor.
  double completion_for(std::size_t host, double work,
                        InterruptionPolicy policy) const noexcept;

  /// Completion instant at which host's cumulative ON time reaches
  /// `target`, searching strictly after the current session (checkpoint
  /// spill resolution).
  double checkpoint_spill(std::size_t host, double target) const noexcept;

  /// Applies an assignment: busy/free/ready/cursor updates + totals.
  void commit(std::size_t host, double work, InterruptionPolicy policy,
              ChurnScheduleTotals& totals);

  /// The per-task minimum-completion selection of run_ect, shared
  /// verbatim with step(): returns the winning host without committing.
  /// `bounds` is the level-A scratch row (blocked arm only).
  template <bool kBlocked>
  std::uint32_t select_ect(double task, InterruptionPolicy policy,
                           ChurnScheduleTotals& totals,
                           std::vector<double>& bounds);
  /// kAbandon's per-task selection (key = ready + task*inv), shared
  /// verbatim between run_abandon and step().
  template <bool kBlocked>
  std::uint32_t select_ready(double task) const;

  template <bool kBlocked>
  ChurnScheduleTotals run_ect(std::span<const double> tasks,
                              InterruptionPolicy policy);
  template <bool kBlocked>
  ChurnScheduleTotals run_abandon(std::span<const double> tasks);

  /// Re-derives ready_/sess_rem_/next_start_ for `host` from its
  /// free_at (one binary search; the session neighbours are adjacent
  /// columns entries).
  void update_cursor(std::size_t host) noexcept;

  /// The gate's view of the cursor columns.
  CursorView cursor_view() const noexcept {
    return {ready_, sess_rem_, next_start_, accr_ready_, levels_,
            config_.lookahead_levels};
  }

  /// (Re)builds kAbandon's sorted ready gather + per-block minima.
  void rebuild_ready_gathers();
  void update_ready_gather(std::size_t host);

  /// (Re)builds / maintains the ECT paths' sorted-layout RESOLUTION
  /// columns: exact double copies of the cursor columns in ect_order
  /// layout, so a surviving lane resolves from the lines the block sweep
  /// just touched instead of a per-host random gather. The levels ride
  /// along interleaved (stride 2 * lookahead_levels per position) so one
  /// survivor's whole route is one or two cache lines.
  void rebuild_sorted_cursors();
  void update_sorted_cursor(std::size_t host);

  sim::ScheduleState& state_;
  const IntervalTimeline& timeline_;
  ChurnSchedulerConfig config_;
  /// config_.backend resolved once against the CPU (declared before
  /// gate_ so the gate can be constructed on the resolved SIMD level).
  backend::ResolvedBackend resolved_;
  const backend::KernelOps* ops_ = nullptr;
  /// Per-host cursor columns (original host index): earliest ON instant
  /// >= free_at; ON time remaining in that session (+inf once the host is
  /// past the horizon and permanently ON); the next session's start (the
  /// horizon when no generated session remains); cumulative ON days
  /// accrued at the ready instant; the current session's index; and the
  /// lookahead levels (2 * lookahead_levels doubles per host:
  /// [cum_1..cum_L, phi_1..phi_L]).
  std::vector<double> ready_;
  std::vector<double> sess_rem_;
  std::vector<double> next_start_;
  std::vector<double> accr_ready_;
  std::vector<std::uint32_t> sess_idx_;
  std::vector<double> levels_;

  /// The pruning gate (packed columns + envelopes + coarse rows),
  /// rebuilt per run_ect run; see block_envelope.h.
  BoundGate gate_;

  // kAbandon's blocked path only needs the ready column in sorted layout
  // (its selection key is the optimistic ready + work even for spills).
  std::vector<double> sready_;
  std::vector<double> bmin_ready_;

  // ECT survivor-resolution columns (see rebuild_sorted_cursors).
  std::vector<double> sres_ready_;
  std::vector<double> sres_sess_;
  std::vector<double> sres_accr_;
  std::vector<double> sres_levels_;

  // Stepped driving mode (begin_stepping/step/advance_time).
  InterruptionPolicy step_policy_ = InterruptionPolicy::kCheckpoint;
  bool step_blocked_ = false;
  std::vector<double> step_tasks_;     ///< retained for advance_time resets
  std::vector<double> step_slowdown_;  ///< per-host derate; empty = all 1
  std::vector<double> step_bounds_;    ///< level-A scratch for select_ect
  ChurnScheduleTotals step_totals_;
};

}  // namespace resmodel::churn

// Per-block lower envelopes of the piecewise-affine completion functions
// — the churn ECT kernel's pruning gate.
//
// Under checkpoint semantics a host's completion time is piecewise affine
// in the task size t: writing w = t * inv for the work, the completion is
//
//   ready + w                        while w fits the current session,
//   (accr + phi_j) + w               while the accrual target accr + w
//                                    lands in lookahead session j
//                                    (phi_j = end_j - cum_j, non-
//                                    decreasing in j),
//
// i.e. slope inv with an intercept that steps UP at the session
// boundaries w = sess_rem and w = cum_j - accr. Restart is the same shape
// with two pieces (ready / next_start intercepts; the deep intercept is a
// sound lower bound because a restart completion can never precede the
// next session's start plus the work). A 64-host block's minimum over
// these functions is therefore queryable through a small set of KNOTS:
// sample positions t_0 = 0 < t_1 < ... taken from the union of the block
// members' breakpoints, each carrying the block-minimum bound v_k
// evaluated at t_k. Because every per-host function satisfies
// f(t) >= f(t_k) + inv * (t - t_k) for t >= t_k,
//
//   envelope(t) = v_k + (t - t_k) * block_min_inv,   t_k = last knot <= t
//
// is a sound lower bound on every completion in the block — one O(log)
// binary search instead of re-streaming the block's columns, and sharp
// wherever the knots track the true breakpoints (rate-sorted blocks are
// near-homogeneous in inv, so the min-inv extension loses almost
// nothing).
//
// INCREMENTAL MAINTENANCE. Only an assignment to a host inside a block
// changes that block's functions, and an assignment moves the host's
// cursor forward, so its completion function only moves UP — every stored
// knot value remains a valid lower bound untouched. Per assignment the
// gate therefore (a) refreshes the winner's packed lane columns, (b)
// re-evaluates only the knots whose recorded argmin lane was the winner
// (the only knots whose stored minimum can be stale-low), and (c) after
// kStaleLimit assignments re-derives the block's knot POSITIONS from the
// current breakpoints — a lazy full-rebuild epoch that restores sharpness
// the drifted positions lost. Soundness never depends on the epoch; only
// pruning power does.
//
// FLOAT-PACKED COLUMNS. The swept bound columns can be stored as float32:
// half the bytes per admitted block and twice the SIMD width. Bounds stay
// sound by construction rather than by exact rounding: all inputs are
// non-negative (no cancellation), so every float32 chain error is
// relative; the comparison columns (sess_rem and the level widths d_k =
// cum_k - accr) are PADDED by kPadF32 before conversion so a lane that
// exactly fits (or exactly routes to level j) still takes the fits (or
// level-j) arm after rounding — the arm whose value cannot exceed the
// true completion — and every consumer deflates gate values by
// kMarginF32, orders of magnitude above the accumulated float32 error,
// before comparing against an exact incumbent. Commit-time completions
// never touch these columns: survivors are resolved through the exact
// double cursor expressions, which is what keeps the blocked kernel
// bit-identical to the scalar reference (see churn_scheduler.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "backend/kernels.h"
#include "sim/schedule_state.h"

namespace resmodel::churn {

/// What happens to a task whose host goes OFF mid-computation. (Defined
/// here so the gate can select its per-policy bound expressions without a
/// circular include; churn_scheduler.h re-exports it.)
enum class InterruptionPolicy {
  kCheckpoint,
  kRestart,
  kAbandon,
};

/// Which block gate prunes the churn ECT scan.
enum class GateMode {
  /// PR-4 style: per-block minima at 32 global log-spaced task-size
  /// edges, the whole row recomputed per assignment (retained as the
  /// ablation baseline).
  kBucket,
  /// Per-block lower envelopes with incremental maintenance (default).
  kEnvelope,
};

/// Upper limit for the runtime-configurable session lookahead depth
/// (BagOfTasksConfig::churn_lookahead_levels / `sweep --churn-levels`).
inline constexpr std::size_t kMaxLookaheadLevels = 12;

/// Relative pad applied to float32 comparison columns and relative
/// deflation applied to float32-derived bounds. The bound chains are at
/// most ~(levels + 3) float32 operations over non-negative data, so every
/// error is relative and below (levels + 5) * 2^-24 < 1.1e-6; 1e-5 gives
/// an order of magnitude of headroom.
inline constexpr double kPadF32 = 1.0 + 1e-5;
inline constexpr double kMarginF32 = 1.0 - 1e-5;
/// Double-precision twin margins (bounds and completions still come from
/// different FP expressions; see churn_scheduler.cpp's kBoundMargin).
inline constexpr double kPadF64 = 1.0 + 1e-12;
inline constexpr double kMarginF64 = 1.0 - 1e-12;

/// Read-only view of the scheduler's per-host double cursor columns (the
/// exact state the gate packs and the breakpoints it samples). `levels`
/// holds `2 * levels_count` doubles per host: [cum_1..cum_L, phi_1..
/// phi_L], exactly ChurnScheduler's resident lookahead layout.
struct CursorView {
  std::span<const double> ready;
  std::span<const double> sess_rem;
  std::span<const double> next_start;
  std::span<const double> accr;
  std::span<const double> levels;
  std::size_t levels_count = 0;
};

/// The pruning gate for one ChurnScheduler run: packed per-lane bound
/// columns in rate-sorted layout, per-block knot envelopes (kEnvelope),
/// and the bucket-major coarse row the per-task block scan reads.
/// reset() builds everything for the run's policy; on_assign() maintains
/// it incrementally. All returned bounds are RAW — callers must deflate
/// by margin() before comparing against exact completions.
class BoundGate {
 public:
  /// Hosts per block — must match sim::ScheduleState::kBlockSize.
  static constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  /// Knot capacity per block (including the mandatory t = 0 knot).
  static constexpr std::size_t kKnotCapacity = 48;
  /// Global coarse-row task-size edges (edge 0 is exactly 0, the rest
  /// log-spaced over the workload's range).
  static constexpr std::size_t kBuckets = 32;
  /// Assignments into a block between knot-position rebuild epochs.
  static constexpr std::size_t kStaleLimit = 16;

  /// `simd` selects the kernel-ops arm the column sweeps run through
  /// (backend::resolve — kNone is the autovectorized blocked baseline).
  /// Every arm produces bit-identical bounds, so gate decisions and the
  /// kernel-shape counters never depend on it.
  explicit BoundGate(GateMode mode, bool float32,
                     backend::SimdLevel simd =
                         backend::SimdLevel::kNone) noexcept
      : mode_(mode),
        float32_(float32),
        ops_(&backend::kernel_ops(simd)) {}

  GateMode mode() const noexcept { return mode_; }
  bool float32() const noexcept { return float32_; }
  /// Deflation factor every consumer applies to gate-derived bounds.
  double margin() const noexcept { return float32_ ? kMarginF32 : kMarginF64; }

  /// (Re)builds the packed columns, envelopes and coarse rows for a run:
  /// `state` supplies the rate-sorted layout (ensure_ect_caches() must
  /// have run), `cursors` the per-host double columns, `tasks` the
  /// workload (coarse edges span its size range). kAbandon never gates;
  /// passing it is an error.
  void reset(const sim::ScheduleState& state, const CursorView& cursors,
             std::span<const double> tasks, InterruptionPolicy policy);

  /// Refreshes host's lane after its cursor moved: packed columns, owned
  /// knots, the block's coarse row — and a full knot rebuild every
  /// kStaleLimit-th assignment into the block.
  void on_assign(std::size_t host, const sim::ScheduleState& state,
                 const CursorView& cursors);

  /// Largest coarse edge <= task (edge 0 is 0, so always valid) and the
  /// bucket-major row for it; the caller's per-task block scan computes
  /// row[b] + (task - edge) * ect_block_min_inv[b].
  std::size_t bucket_of(double task) const noexcept;
  double bucket_edge(std::size_t bucket) const noexcept {
    return bucket_edges_[bucket];
  }
  const double* coarse_row(std::size_t bucket) const noexcept {
    return coarse_.data() + bucket * blocks_;
  }

  /// Envelope query: sound lower bound on every completion in block
  /// `blk` for task size `task` (kBucket mode: the coarse bound, so the
  /// scheduler's two-level gating degrades to one level). RAW — deflate
  /// by margin().
  double block_bound(std::size_t blk, double task) const noexcept;

  /// Streams block `blk`'s packed columns and writes 64 per-lane lower
  /// bounds (padded lanes get +inf). RAW — deflate by margin().
  void sweep_block(std::size_t blk, double task, double* lb) const noexcept;

  /// Single-lane bound at sorted position `pos` (test hook; same
  /// expressions as sweep_block).
  double lane_bound(std::size_t pos, double task) const noexcept;

  /// Knot count of block `blk` (test hook; 0 in kBucket mode).
  std::size_t knot_count(std::size_t blk) const noexcept {
    return mode_ == GateMode::kEnvelope ? knot_count_[blk] : 0;
  }

 private:
  template <typename Real>
  struct Columns {
    // Flat rate-sorted columns, padded to blocks * kBlock lanes (padding:
    // inv = 0, sess/ready/next = +inf — inert lanes that bound to +inf).
    // sess_ and the c_[k] = cum_k level columns are pad-inflated at
    // conversion (see pack_lane).
    std::vector<Real> inv_, sess_, ready_, next_, accr_;
    std::vector<Real> c_[kMaxLookaheadLevels];
    std::vector<Real> phi_[kMaxLookaheadLevels];
    // Per-block knot arrays (kEnvelope): positions ascending, stride
    // kKnotCapacity, values = block-min bound evaluated AT the stored
    // (rounded) position so rounding never breaks the anchor.
    std::vector<Real> knot_t_, knot_v_;
  };

  template <typename Real>
  void pack_lane(Columns<Real>& c, std::size_t pos, std::size_t host,
                 const sim::ScheduleState& state, const CursorView& cursors);
  template <typename Real>
  void eval_block(const Columns<Real>& c, std::size_t blk, double task,
                  Real* lb) const noexcept;
  /// Block-min bound at `task` plus its argmin lane.
  template <typename Real>
  std::pair<double, std::uint8_t> eval_block_min(const Columns<Real>& c,
                                                 std::size_t blk,
                                                 double task) const noexcept;
  template <typename Real>
  void rebuild_knots(Columns<Real>& c, std::size_t blk,
                     const sim::ScheduleState& state,
                     const CursorView& cursors);
  template <typename Real>
  void repair_knots(Columns<Real>& c, std::size_t blk, std::uint8_t lane);
  template <typename Real>
  double envelope_query(const Columns<Real>& c, std::size_t blk,
                        double task) const noexcept;
  template <typename Real>
  void rebuild_coarse_row(const Columns<Real>& c, std::size_t blk);
  template <typename Real>
  void reset_impl(Columns<Real>& c, const sim::ScheduleState& state,
                  const CursorView& cursors, std::span<const double> tasks);
  template <typename Real>
  void on_assign_impl(Columns<Real>& c, std::size_t host,
                      const sim::ScheduleState& state,
                      const CursorView& cursors);

  GateMode mode_;
  bool float32_;
  const backend::KernelOps* ops_;
  InterruptionPolicy policy_ = InterruptionPolicy::kCheckpoint;
  std::size_t levels_ = 0;
  std::size_t blocks_ = 0;
  std::size_t size_ = 0;  ///< real (unpadded) lane count
  const double* bmin_inv_ = nullptr;  ///< state.ect_block_min_inv
  Columns<float> f32_;
  Columns<double> f64_;
  std::vector<std::uint8_t> knot_argmin_;   ///< stride kKnotCapacity
  std::vector<std::uint16_t> knot_count_;   ///< per block
  std::vector<std::uint16_t> stale_;        ///< assignments since epoch
  std::vector<double> bucket_edges_;        ///< kBuckets ascending, [0] = 0
  std::vector<double> coarse_;              ///< kBuckets x blocks_, bucket-major
  std::vector<double> knot_scratch_;        ///< candidate breakpoints
};

}  // namespace resmodel::churn

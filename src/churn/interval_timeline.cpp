#include "churn/interval_timeline.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace resmodel::churn {

namespace {

// Fills per_host[i] for i in chunk-claimed ranges. Each host's stream was
// forked up front in host order, so any thread may fill any host.
void fill_hosts(std::vector<std::vector<synth::AvailabilityInterval>>& per_host,
                std::span<const synth::AvailabilityParams> params,
                bool shared_params, double start_day, double end_day,
                std::vector<util::Rng>& host_rngs, synth::StartMode mode,
                int threads) {
  const std::size_t n = per_host.size();
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  // Interval sampling is ~a hundred distribution draws per host; chunks of
  // 256 keep claim traffic negligible without starving the pool.
  constexpr std::size_t kChunk = 256;
  const std::size_t chunk_count = (n + kChunk - 1) / kChunk;
  std::atomic<std::size_t> next_chunk{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t chunk = next_chunk.fetch_add(1);
      if (chunk >= chunk_count) return;
      const std::size_t begin = chunk * kChunk;
      const std::size_t end = std::min(n, begin + kChunk);
      for (std::size_t i = begin; i < end; ++i) {
        const synth::AvailabilityModel model(
            shared_params ? params[0] : params[i]);
        per_host[i] = model.generate(start_day, end_day, host_rngs[i], mode);
      }
    }
  };
  const std::size_t n_workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads),
                            std::max<std::size_t>(chunk_count, 1));
  if (n_workers <= 1) {
    worker();
  } else {
    // The calling thread is worker zero; only the extras are spawned.
    std::vector<std::jthread> pool;
    pool.reserve(n_workers - 1);
    for (std::size_t i = 1; i < n_workers; ++i) pool.emplace_back(worker);
    worker();
  }
}

IntervalTimeline generate_impl(std::span<const synth::AvailabilityParams> params,
                               bool shared_params, std::size_t host_count,
                               double start_day, double end_day, util::Rng& rng,
                               synth::StartMode mode, int threads) {
  // Validate up front (one model per distinct param set is built again in
  // the fill loop, but a throw must happen here on the calling thread).
  if (shared_params) {
    params[0].validate();
  } else {
    for (const synth::AvailabilityParams& p : params) p.validate();
  }
  // Fork serially, in host order: host h's stream depends only on the
  // caller's rng state and h, never on which thread fills it.
  std::vector<util::Rng> host_rngs;
  host_rngs.reserve(host_count);
  for (std::size_t i = 0; i < host_count; ++i) host_rngs.push_back(rng.fork());

  std::vector<std::vector<synth::AvailabilityInterval>> per_host(host_count);
  fill_hosts(per_host, params, shared_params, start_day, end_day, host_rngs,
             mode, threads);
  return IntervalTimeline::from_intervals(per_host, start_day, end_day);
}

}  // namespace

IntervalTimeline IntervalTimeline::generate(
    const synth::AvailabilityModel& model, std::size_t host_count,
    double start_day, double end_day, util::Rng& rng, synth::StartMode mode,
    int threads) {
  const synth::AvailabilityParams params = model.params();
  return generate_impl({&params, 1}, /*shared_params=*/true, host_count,
                       start_day, end_day, rng, mode, threads);
}

IntervalTimeline IntervalTimeline::generate(
    std::span<const synth::AvailabilityParams> params, double start_day,
    double end_day, util::Rng& rng, synth::StartMode mode, int threads) {
  return generate_impl(params, /*shared_params=*/false, params.size(),
                       start_day, end_day, rng, mode, threads);
}

IntervalTimeline IntervalTimeline::from_intervals(
    const std::vector<std::vector<synth::AvailabilityInterval>>& per_host,
    double start_day, double end_day) {
  IntervalTimeline timeline;
  timeline.start_ = start_day;
  timeline.end_ = end_day;
  timeline.offsets_.resize(per_host.size() + 1);
  std::uint64_t total = 0;
  for (std::size_t h = 0; h < per_host.size(); ++h) {
    timeline.offsets_[h] = total;
    total += per_host[h].size();
  }
  timeline.offsets_[per_host.size()] = total;
  timeline.starts_.resize(total);
  timeline.ends_.resize(total);
  timeline.cum_ends_.resize(total);
  for (std::size_t h = 0; h < per_host.size(); ++h) {
    std::uint64_t at = timeline.offsets_[h];
    double accrued = 0.0;
    for (const synth::AvailabilityInterval& interval : per_host[h]) {
      timeline.starts_[at] = interval.start_day;
      timeline.ends_[at] = interval.end_day;
      accrued += interval.end_day - interval.start_day;
      timeline.cum_ends_[at] = accrued;
      ++at;
    }
  }
  return timeline;
}

std::size_t IntervalTimeline::advance(std::size_t host,
                                      double day) const noexcept {
  const double* lo = ends_.data() + offsets_[host];
  const double* hi = ends_.data() + offsets_[host + 1];
  // First interval whose (exclusive) end lies beyond `day`: either the
  // one containing `day` or the next one to come.
  return static_cast<std::size_t>(std::upper_bound(lo, hi, day) - lo);
}

double IntervalTimeline::next_on(std::size_t host, double day) const noexcept {
  if (day >= end_) return day;  // beyond-horizon: permanently ON
  const std::size_t i = advance(host, day);
  if (i == interval_count(host)) return end_;
  const double start = starts_[offsets_[host] + i];
  return start <= day ? day : start;
}

double IntervalTimeline::fraction(std::size_t host, double lo,
                                  double hi) const noexcept {
  if (!(hi > lo)) return 0.0;
  double covered = 0.0;
  const std::span<const double> s = starts(host);
  const std::span<const double> e = ends(host);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double a = std::max(s[i], lo);
    const double b = std::min(e[i], hi);
    if (b > a) covered += b - a;
  }
  return covered / (hi - lo);
}

std::vector<synth::AvailabilityInterval> IntervalTimeline::host_intervals(
    std::size_t host) const {
  std::vector<synth::AvailabilityInterval> intervals;
  const std::span<const double> s = starts(host);
  const std::span<const double> e = ends(host);
  intervals.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    intervals.push_back({s[i], e[i]});
  }
  return intervals;
}

}  // namespace resmodel::churn

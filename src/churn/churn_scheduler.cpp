// Compiled with -ffp-contract=off (src/CMakeLists.txt): the blocked and
// reference selection loops must produce bit-identical completion times,
// which rules out the compiler fusing a + b * c into an fma in one loop
// but not the other. The interval-walk primitives are shared functions,
// so their results are identical by construction.
#include "churn/churn_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

namespace resmodel::churn {

std::string to_string(InterruptionPolicy policy) {
  switch (policy) {
    case InterruptionPolicy::kCheckpoint: return "checkpoint";
    case InterruptionPolicy::kRestart: return "restart";
    case InterruptionPolicy::kAbandon: return "abandon";
  }
  return "unknown";
}

double checkpoint_completion(const IntervalTimeline& timeline,
                             std::size_t host, double start_on,
                             double work) noexcept {
  if (start_on >= timeline.end_day()) return start_on + work;
  const std::span<const double> s = timeline.starts(host);
  const std::span<const double> e = timeline.ends(host);
  std::size_t i = timeline.advance(host, start_on);
  double cur = start_on;
  double remaining = work;
  while (i < s.size()) {
    if (cur < s[i]) cur = s[i];
    const double avail = e[i] - cur;
    if (remaining <= avail) return cur + remaining;
    remaining -= avail;
    ++i;
  }
  // Out of generated sessions: the region up to the horizon is OFF and
  // the host counts as permanently ON from end_day() onward.
  return std::max(cur, timeline.end_day()) + remaining;
}

RestartOutcome restart_completion(const IntervalTimeline& timeline,
                                  std::size_t host, double start_on,
                                  double work) noexcept {
  RestartOutcome out;
  if (start_on >= timeline.end_day()) {
    out.completion = start_on + work;
    out.worked_days = work;
    return out;
  }
  const std::span<const double> s = timeline.starts(host);
  const std::span<const double> e = timeline.ends(host);
  std::size_t i = timeline.advance(host, start_on);
  double cur = start_on;
  while (i < s.size()) {
    if (cur < s[i]) cur = s[i];
    const double avail = e[i] - cur;
    if (work <= avail) {
      out.completion = cur + work;
      out.worked_days += work;
      return out;
    }
    // The session dies under the task: the attempt burned its remainder.
    out.worked_days += avail;
    ++out.interruptions;
    ++i;
  }
  out.completion = std::max(cur, timeline.end_day()) + work;
  out.worked_days += work;
  return out;
}

namespace {

/// Pruning bounds and true completions are computed by different FP
/// expressions; exact arithmetic guarantees bound <= completion but
/// rounding can violate it by a few ulps (e.g. a final session clipped
/// exactly at the horizon makes a spill completion equal its bound in
/// reals). Every skip test deflates its bound by this relative margin —
/// orders of magnitude above ulp noise, so skips stay sound by
/// construction; the only cost is evaluating a vanishing sliver of
/// borderline hosts the exact bound could have skipped.
constexpr double kBoundMargin = 1.0 - 1e-12;

/// One kAbandon attempt of `work` contiguous days starting at the ON
/// instant `start_on`: either it fits the current session (completed at
/// `at`, `burned` == work) or the session ends first (abandoned at `at`
/// == session end, `burned` == the fruitless ON time).
struct AttemptOutcome {
  bool completed = false;
  double at = 0.0;
  double burned = 0.0;
};

AttemptOutcome abandon_attempt(const IntervalTimeline& timeline,
                               std::size_t host, double start_on,
                               double work) noexcept {
  if (start_on >= timeline.end_day()) return {true, start_on + work, work};
  const std::size_t i = timeline.advance(host, start_on);
  const std::span<const double> s = timeline.starts(host);
  const std::span<const double> e = timeline.ends(host);
  if (i == s.size()) {
    // OFF until the horizon, permanently ON after. (Unreachable when
    // start_on comes from next_on, which snaps this region to end_day().)
    return {true, timeline.end_day() + work, work};
  }
  double cur = start_on;
  if (cur < s[i]) cur = s[i];
  const double avail = e[i] - cur;
  if (work <= avail) return {true, cur + work, work};
  return {false, e[i], avail};
}

}  // namespace

ChurnScheduler::ChurnScheduler(sim::ScheduleState& state,
                               const IntervalTimeline& timeline)
    : state_(state), timeline_(timeline) {
  if (state.size() != timeline.host_count()) {
    throw std::invalid_argument(
        "ChurnScheduler: state and timeline host counts differ");
  }
  const std::size_t n = state_.size();
  ready_.resize(n);
  sess_rem_.resize(n);
  next_start_.resize(n);
  accr_ready_.resize(n);
  sess_idx_.resize(n);
  levels_.resize(n * kStride);
  for (std::size_t h = 0; h < n; ++h) update_cursor(h);
}

void ChurnScheduler::update_cursor(std::size_t host) noexcept {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double free = state_.free_at[host];
  double* lv = levels_.data() + host * kStride;
  if (free >= timeline_.end_day()) {
    // Beyond the horizon: permanently ON.
    ready_[host] = free;
    sess_rem_[host] = kInf;
    next_start_[host] = kInf;
    accr_ready_[host] = 0.0;
    sess_idx_[host] = 0;
    for (std::size_t k = 0; k < kStride; ++k) lv[k] = 0.0;
    return;
  }
  const std::size_t i = timeline_.advance(host, free);
  const std::span<const double> s = timeline_.starts(host);
  const std::span<const double> e = timeline_.ends(host);
  if (i == s.size()) {
    // OFF until the horizon, permanently ON after (next_on's convention).
    ready_[host] = timeline_.end_day();
    sess_rem_[host] = kInf;
    next_start_[host] = kInf;
    accr_ready_[host] = 0.0;
    sess_idx_[host] = 0;
    for (std::size_t k = 0; k < kStride; ++k) lv[k] = 0.0;
    return;
  }
  const std::span<const double> cum = timeline_.cum_ends(host);
  const double ready = s[i] <= free ? free : s[i];
  ready_[host] = ready;
  sess_rem_[host] = e[i] - ready;
  next_start_[host] = i + 1 < s.size() ? s[i + 1] : timeline_.end_day();
  accr_ready_[host] = cum[i] - sess_rem_[host];
  sess_idx_[host] = static_cast<std::uint32_t>(i);
  // Lookahead levels: session i+1+k's (cum, phi). Once the sessions run
  // out, the accrual continues at the horizon — phi jumps to
  // end_day - total_on and stays there (the beyond-sessions completion
  // is target + that phi for every deeper target), with cum = +inf so
  // the first exhausted level catches all remaining targets.
  const double total_on = cum.back();
  const double phi_beyond = timeline_.end_day() - total_on;
  for (std::size_t k = 0; k < kLevels; ++k) {
    const std::size_t j = i + 1 + k;
    if (j < s.size()) {
      lv[k] = cum[j];
      lv[kLevels + k] = e[j] - cum[j];
    } else {
      lv[k] = kInf;
      lv[kLevels + k] = phi_beyond;
    }
  }
}

double ChurnScheduler::checkpoint_spill(std::size_t host,
                                        double target) const noexcept {
  const std::span<const double> cum = timeline_.cum_ends(host);
  const std::span<const double> e = timeline_.ends(host);
  // First session past the current one whose cumulative ON total reaches
  // the target accrual; sessions before it are consumed whole, so the
  // completion lies `cum[j] - target` before its end.
  const double* first = cum.data() + sess_idx_[host] + 1;
  const double* last = cum.data() + cum.size();
  const double* it = std::lower_bound(first, last, target);
  if (it == last) {
    const double total_on = cum.empty() ? 0.0 : cum.back();
    return timeline_.end_day() + (target - total_on);
  }
  return e[static_cast<std::size_t>(it - cum.data())] - (*it - target);
}

double ChurnScheduler::completion_for(
    std::size_t host, double work, InterruptionPolicy policy) const noexcept {
  // Fits the current session (or the host is permanently ON): the
  // completion is the literal `ready + work` — the same expression as
  // the scan's lower bound, so fits-case completions and bounds agree
  // bit for bit in both kernels.
  if (policy == InterruptionPolicy::kAbandon || work <= sess_rem_[host]) {
    return ready_[host] + work;
  }
  if (policy == InterruptionPolicy::kCheckpoint) {
    const double target = accr_ready_[host] + work;
    const double* lv = levels_.data() + host * kStride;
    for (std::size_t k = 0; k < kLevels; ++k) {
      if (target <= lv[k]) return target + lv[kLevels + k];
    }
    return checkpoint_spill(host, target);
  }
  return restart_completion(timeline_, host, ready_[host], work).completion;
}

void ChurnScheduler::commit(std::size_t host, double work,
                            InterruptionPolicy policy,
                            ChurnScheduleTotals& totals) {
  double completion;
  double worked = work;
  if (policy == InterruptionPolicy::kCheckpoint) {
    completion = completion_for(host, work, InterruptionPolicy::kCheckpoint);
  } else {
    const RestartOutcome out =
        restart_completion(timeline_, host, ready_[host], work);
    completion = out.completion;
    worked = out.worked_days;
    totals.interruptions += out.interruptions;
  }
  state_.busy_days[host] += worked;
  state_.free_at[host] = completion;
  totals.total_cpu_days += work;
  totals.wasted_cpu_days += worked - work;
  totals.makespan_days = std::max(totals.makespan_days, completion);
  update_cursor(host);
}

void ChurnScheduler::rebuild_gathers() {
  state_.ensure_ect_caches();
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  const std::size_t n = state_.size();
  const std::size_t blocks = state_.block_count();
  sready_.resize(n);
  ssess_rem_.resize(n);
  snext_start_.resize(n);
  saccr_.resize(n);
  for (std::size_t k = 0; k < kLevels; ++k) {
    scum_[k].resize(n);
    sphi_[k].resize(n);
  }
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t h = state_.ect_order[j];
    sready_[j] = ready_[h];
    ssess_rem_[j] = sess_rem_[h];
    snext_start_[j] = next_start_[h];
    saccr_[j] = accr_ready_[h];
    for (std::size_t k = 0; k < kLevels; ++k) {
      scum_[k][j] = levels_[h * kStride + k];
      sphi_[k][j] = levels_[h * kStride + kLevels + k];
    }
  }
  bmin_ready_.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    double m = sready_[lo];
    for (std::size_t j = lo + 1; j < hi; ++j) m = std::min(m, sready_[j]);
    bmin_ready_[b] = m;
  }
}

void ChurnScheduler::update_gathers(std::size_t host) {
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  const std::size_t n = state_.size();
  const std::size_t pos = state_.ect_pos[host];
  sready_[pos] = ready_[host];
  ssess_rem_[pos] = sess_rem_[host];
  snext_start_[pos] = next_start_[host];
  saccr_[pos] = accr_ready_[host];
  for (std::size_t k = 0; k < kLevels; ++k) {
    scum_[k][pos] = levels_[host * kStride + k];
    sphi_[k][pos] = levels_[host * kStride + kLevels + k];
  }
  const std::size_t blk = pos / kBlock;
  const std::size_t lo = blk * kBlock;
  const std::size_t hi = std::min(n, lo + kBlock);
  double m = sready_[lo];
  for (std::size_t j = lo + 1; j < hi; ++j) m = std::min(m, sready_[j]);
  bmin_ready_[blk] = m;
  if (buckets_active_) rebuild_bucket_mins(blk);
}

std::size_t ChurnScheduler::bucket_of(double task) const noexcept {
  const auto it = std::upper_bound(bucket_edges_.begin(), bucket_edges_.end(),
                                   task);
  if (it == bucket_edges_.begin()) return 0;  // task below every edge
  return static_cast<std::size_t>(it - bucket_edges_.begin()) - 1;
}

void ChurnScheduler::setup_buckets(std::span<const double> tasks) {
  double tmin = std::numeric_limits<double>::infinity();
  double tmax = 0.0;
  for (const double t : tasks) {
    tmin = std::min(tmin, t);
    tmax = std::max(tmax, t);
  }
  if (!(tmin > 0.0) || !(tmax >= tmin)) {
    tmin = 1.0;
    tmax = 1.0;
  }
  bucket_edges_.resize(kBuckets);
  // Log-spaced edges spanning the workload; pow(ratio, 0) == 1 exactly,
  // so edge 0 equals tmin and every task has a bucket at or below it.
  const double ratio = tmax / tmin;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    bucket_edges_[k] =
        tmin * std::pow(ratio, static_cast<double>(k) /
                                   static_cast<double>(kBuckets - 1));
  }
  bmin_done_.resize(state_.block_count() * kBuckets);
  buckets_active_ = true;
  for (std::size_t b = 0; b < state_.block_count(); ++b) {
    rebuild_bucket_mins(b);
  }
}

void ChurnScheduler::rebuild_bucket_mins(std::size_t blk) {
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = state_.size();
  const std::size_t lo = blk * kBlock;
  const std::size_t len = std::min(n - lo, kBlock);
  const double* __restrict binv = state_.ect_sorted_inv.data() + lo;
  const double* __restrict bready = sready_.data() + lo;
  const double* __restrict bsess = ssess_rem_.data() + lo;
  const double* __restrict baccr = saccr_.data() + lo;
  const double* __restrict bcum0 = scum_[0].data() + lo;
  const double* __restrict bcum1 = scum_[1].data() + lo;
  const double* __restrict bcum2 = scum_[2].data() + lo;
  const double* __restrict bphi0 = sphi_[0].data() + lo;
  const double* __restrict bphi1 = sphi_[1].data() + lo;
  const double* __restrict bphi2 = sphi_[2].data() + lo;
  const double* __restrict bphi3 = sphi_[3].data() + lo;
  double v[kBlock];
  for (std::size_t k = 0; k < kBuckets; ++k) {
    const double e = bucket_edges_[k];
    // Exact-or-lower-bound completion of an edge-sized task on each lane
    // (fits and level-routed spills exact, phi_kLevels for deeper), the
    // same blend the selection uses — vectorizable selects over
    // unconditional loads.
    for (std::size_t i = 0; i < len; ++i) {
      const double w = e * binv[i];
      const double sess = bsess[i];
      const double r = bready[i];
      const double c0 = bcum0[i], c1 = bcum1[i], c2 = bcum2[i];
      const double p0 = bphi0[i], p1 = bphi1[i], p2 = bphi2[i],
                   p3 = bphi3[i];
      const double target = baccr[i] + w;
      // Same min-of-candidates routing as the selection sweep (see
      // run_ect): identical values, vectorizable form.
      const double v0 = target <= c0 ? target + p0 : kInf;
      const double v1 = target <= c1 ? target + p1 : kInf;
      const double v2 = target <= c2 ? target + p2 : kInf;
      const double spill =
          std::min(std::min(v0, v1), std::min(v2, target + p3));
      v[i] = w <= sess ? r + w : spill;
    }
    for (std::size_t i = len; i < kBlock; ++i) v[i] = kInf;
    double acc[8];
    for (std::size_t i = 0; i < 8; ++i) acc[i] = v[i];
    for (std::size_t i = 8; i < kBlock; i += 8) {
      for (std::size_t j = 0; j < 8; ++j) {
        acc[j] = std::min(acc[j], v[i + j]);
      }
    }
    double m = acc[0];
    for (std::size_t i = 1; i < 8; ++i) m = std::min(m, acc[i]);
    // Bucket-major layout: the per-task gate and the warm-start argmin
    // scan read one bucket's row contiguously across blocks.
    bmin_done_[k * state_.block_count() + blk] = m;
  }
}

template <bool kBlocked>
ChurnScheduleTotals ChurnScheduler::run_ect(std::span<const double> tasks,
                                            InterruptionPolicy policy) {
  ChurnScheduleTotals totals;
  const std::size_t n = state_.size();
  if (n == 0) return totals;
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  if constexpr (kBlocked) {
    rebuild_gathers();
    setup_buckets(tasks);
  }

  [[maybe_unused]] double lb[kBlock];
  for (const double task : tasks) {
    std::uint32_t best = 0;
    double best_done = std::numeric_limits<double>::infinity();
    if constexpr (!kBlocked) {
      // The oracle: walk EVERY host's intervals, first-strict-improvement
      // pick (== smallest index among the argmin set).
      for (std::size_t h = 0; h < n; ++h) {
        const double work = task * state_.inv_rates[h];
        const double done = completion_for(h, work, policy);
        if (done < best_done) {
          best_done = done;
          best = static_cast<std::uint32_t>(h);
        }
      }
    } else {
      const double* inv = state_.ect_sorted_inv.data();
      const double* bmin_inv = state_.ect_block_min_inv.data();
      const std::uint32_t* order = state_.ect_order.data();
      const std::size_t blocks = state_.block_count();
      // Bucketed block gate: completions are non-decreasing in task
      // size, so the block's precomputed per-lane-exact minimum at the
      // bucket edge, extended by (task - edge) * block_min_inv, is a
      // sound and gap-aware lower bound on every completion in the
      // block. Tasks below every edge (never happens for this run's own
      // workload) fall back to the ready-based bound.
      const std::size_t bucket = bucket_of(task);
      const double edge = bucket_edges_[bucket];
      const bool bucketed = task >= edge;
      const double over_edge = task - edge;
      const double* bucket_row = bmin_done_.data() + bucket * blocks;
      // Warm start: evaluate the block with the tightest bucket bound
      // first. Without it the incumbent stays loose until the scan
      // reaches the winner's block and every earlier block gets swept;
      // with it the main loop's gate culls all but genuine near-ties.
      // (Processing a block is order-independent: pruning only ever
      // skips hosts that cannot win or tie.)
      std::size_t warm_block = blocks;  // sentinel: no warm start
      if (bucketed) {
        double tightest = std::numeric_limits<double>::infinity();
        for (std::size_t b = 0; b < blocks; ++b) {
          const double bound = bucket_row[b] + over_edge * bmin_inv[b];
          if (bound < tightest) {
            tightest = bound;
            warm_block = b;
          }
        }
      }
      for (std::size_t bi = 0; bi <= blocks; ++bi) {
        // Iteration 0 is the warm-start block; the regular pass follows
        // (the warm block re-gates and prunes immediately).
        std::size_t b;
        if (bi == 0) {
          if (warm_block == blocks) continue;
          b = warm_block;
        } else {
          b = bi - 1;
        }
        const double bound =
            bucketed ? bucket_row[b] + over_edge * bmin_inv[b]
                     : bmin_ready_[b] + task * bmin_inv[b];
        if (bi != 0 && bound * kBoundMargin > best_done) continue;
        const std::size_t lo = b * kBlock;
        const std::size_t len = std::min(n - lo, kBlock);
        // The fused sweep (branch-free selects over unconditional loads,
        // vectorizable): per lane the EXACT completion wherever it is
        // resident — fits lanes as `ready + work` (the reference's own
        // expression), checkpoint spills level-routed as `target + phi`
        // exactly as completion_for computes them — and a sound lower
        // bound for the rest (deepest phi for deeper-than-kLevels
        // checkpoint spills; next_start + work for restart spills, which
        // forfeit accrued credit). Keeping each lane's own OFF structure
        // attached is what prunes the leveled mid-band: any block-scalar
        // min over 64 heavy-tailed gaps washes out to ~zero.
        const double* __restrict bready = sready_.data() + lo;
        const double* __restrict bsess = ssess_rem_.data() + lo;
        const double* __restrict binv = inv + lo;
        if (policy == InterruptionPolicy::kCheckpoint) {
          const double* __restrict baccr = saccr_.data() + lo;
          const double* __restrict bcum0 = scum_[0].data() + lo;
          const double* __restrict bcum1 = scum_[1].data() + lo;
          const double* __restrict bcum2 = scum_[2].data() + lo;
          const double* __restrict bphi0 = sphi_[0].data() + lo;
          const double* __restrict bphi1 = sphi_[1].data() + lo;
          const double* __restrict bphi2 = sphi_[2].data() + lo;
          const double* __restrict bphi3 = sphi_[3].data() + lo;
          // Level routing as a min over per-level candidates: phi is
          // non-decreasing across levels, so min(target + p_k) over the
          // levels that can hold the target IS the routed value, bit for
          // bit (fl(+) and fl(min) are monotone). Constant +inf arms
          // if-convert where a dependent select chain does not.
          constexpr double kInf = std::numeric_limits<double>::infinity();
          for (std::size_t i = 0; i < len; ++i) {
            const double work = task * binv[i];
            const double sess = bsess[i];
            const double r = bready[i];
            const double c0 = bcum0[i], c1 = bcum1[i], c2 = bcum2[i];
            const double p0 = bphi0[i], p1 = bphi1[i], p2 = bphi2[i],
                         p3 = bphi3[i];
            const double target = baccr[i] + work;
            const double v0 = target <= c0 ? target + p0 : kInf;
            const double v1 = target <= c1 ? target + p1 : kInf;
            const double v2 = target <= c2 ? target + p2 : kInf;
            const double spill =
                std::min(std::min(v0, v1), std::min(v2, target + p3));
            lb[i] = work <= sess ? r + work : spill;
          }
        } else {
          const double* __restrict bnext = snext_start_.data() + lo;
          for (std::size_t i = 0; i < len; ++i) {
            const double work = task * binv[i];
            const double r = bready[i];
            const double nx = bnext[i];
            lb[i] = (work <= bsess[i] ? r : nx) + work;
          }
        }
        // Reduce to per-8-lane chunk minima (pad the tail with +inf):
        // min is exact and order-free, the fixed-size trees vectorize,
        // and the chunk minima let the scalar pass below skip lanes
        // eight at a time — with ~2 surviving lanes per admitted block,
        // iterating all 64 scalar lanes would dominate the kernel.
        for (std::size_t i = len; i < kBlock; ++i) {
          lb[i] = std::numeric_limits<double>::infinity();
        }
        constexpr std::size_t kChunks = kBlock / 8;
        double cmin[kChunks];
        for (std::size_t c = 0; c < kChunks; ++c) {
          const double* q = lb + c * 8;
          const double m01 = std::min(q[0], q[1]);
          const double m23 = std::min(q[2], q[3]);
          const double m45 = std::min(q[4], q[5]);
          const double m67 = std::min(q[6], q[7]);
          cmin[c] = std::min(std::min(m01, m23), std::min(m45, m67));
        }
        double m = cmin[0];
        for (std::size_t c = 1; c < kChunks; ++c) m = std::min(m, cmin[c]);
        if (m * kBoundMargin > best_done) continue;
        for (std::size_t c = 0; c < kChunks; ++c) {
          if (cmin[c] * kBoundMargin > best_done) continue;
          for (std::size_t i = c * 8; i < c * 8 + 8; ++i) {
          // A lane whose deflated value exceeds the incumbent cannot win
          // or tie: exact lanes carry their completion, bounded lanes a
          // value their completion exceeds in exact arithmetic (the
          // margin absorbs the rounding slack; padded lanes are +inf and
          // stop here before touching any column).
          if (lb[i] * kBoundMargin > best_done) continue;
          const double work = task * inv[lo + i];
          double done;
          if (work <= ssess_rem_[lo + i]) {
            done = lb[i];
          } else if (policy == InterruptionPolicy::kCheckpoint) {
            // The sweep value is already the exact completion unless the
            // spill ran past the resident levels.
            const double target = saccr_[lo + i] + work;
            if (target <= scum_[kLevels - 1][lo + i]) {
              done = lb[i];
            } else {
              done = checkpoint_spill(order[lo + i], target);
            }
          } else {
            // Restart: the sweep value was the next_start + work bound;
            // resolve the surviving lane with the session walk.
            done =
                restart_completion(timeline_, order[lo + i], sready_[lo + i],
                                   work)
                    .completion;
          }
          const std::uint32_t h = order[lo + i];
          if (done < best_done) {
            best_done = done;
            best = h;
          } else if (done == best_done && h < best) {
            best = h;
          }
          }
        }
      }
    }
    commit(best, task * state_.inv_rates[best], policy, totals);
    if constexpr (kBlocked) update_gathers(best);
  }
  return totals;
}

template <bool kBlocked>
ChurnScheduleTotals ChurnScheduler::run_abandon(
    std::span<const double> tasks) {
  ChurnScheduleTotals totals;
  const std::size_t n = state_.size();
  if (n == 0) return totals;
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  buckets_active_ = false;  // abandon's optimistic keys don't use them
  if constexpr (kBlocked) rebuild_gathers();

  // FIFO of task costs: interrupted tasks re-enter at the back, so every
  // queued task is attempted before any retry. Terminates because each
  // failed attempt burns one ON session of one host; past its last
  // generated session a host is permanently ON and every attempt succeeds.
  std::deque<double> queue(tasks.begin(), tasks.end());
  [[maybe_unused]] double done_buf[kBlock];
  while (!queue.empty()) {
    const double task = queue.front();
    queue.pop_front();

    // Selection key = ready + task*inv, the exact optimistic completion
    // of a single attempt — no interval walk needed until the attempt is
    // resolved.
    std::uint32_t best = 0;
    double best_done = std::numeric_limits<double>::infinity();
    if constexpr (!kBlocked) {
      for (std::size_t h = 0; h < n; ++h) {
        const double done = ready_[h] + task * state_.inv_rates[h];
        if (done < best_done) {
          best_done = done;
          best = static_cast<std::uint32_t>(h);
        }
      }
    } else {
      const double* inv = state_.ect_sorted_inv.data();
      const double* bmin_inv = state_.ect_block_min_inv.data();
      const std::uint32_t* order = state_.ect_order.data();
      const std::size_t blocks = state_.block_count();
      for (std::size_t b = 0; b < blocks; ++b) {
        if (bmin_ready_[b] + task * bmin_inv[b] > best_done) continue;
        const std::size_t lo = b * kBlock;
        const std::size_t len = std::min(n - lo, kBlock);
        for (std::size_t i = 0; i < len; ++i) {
          done_buf[i] = sready_[lo + i] + task * inv[lo + i];
        }
        double m = done_buf[0];
        for (std::size_t i = 1; i < len; ++i) m = std::min(m, done_buf[i]);
        if (m > best_done) continue;
        std::uint32_t m_best = std::numeric_limits<std::uint32_t>::max();
        for (std::size_t i = 0; i < len; ++i) {
          if (done_buf[i] == m) m_best = std::min(m_best, order[lo + i]);
        }
        if (m < best_done) {
          best_done = m;
          best = m_best;
        } else {
          best = std::min(best, m_best);
        }
      }
    }

    const double work = task * state_.inv_rates[best];
    const AttemptOutcome attempt =
        abandon_attempt(timeline_, best, ready_[best], work);
    state_.busy_days[best] += attempt.burned;
    state_.free_at[best] = attempt.at;
    if (attempt.completed) {
      totals.total_cpu_days += work;
      totals.makespan_days = std::max(totals.makespan_days, attempt.at);
    } else {
      totals.wasted_cpu_days += attempt.burned;
      ++totals.interruptions;
      queue.push_back(task);
    }
    update_cursor(best);
    if constexpr (kBlocked) update_gathers(best);
  }
  return totals;
}

ChurnScheduleTotals ChurnScheduler::run(std::span<const double> tasks,
                                        InterruptionPolicy policy) {
  if (policy == InterruptionPolicy::kAbandon) return run_abandon<true>(tasks);
  return run_ect<true>(tasks, policy);
}

ChurnScheduleTotals ChurnScheduler::run_reference(
    std::span<const double> tasks, InterruptionPolicy policy) {
  if (policy == InterruptionPolicy::kAbandon) return run_abandon<false>(tasks);
  return run_ect<false>(tasks, policy);
}

}  // namespace resmodel::churn

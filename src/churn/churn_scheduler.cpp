// Compiled with -ffp-contract=off (src/CMakeLists.txt): the blocked and
// reference selection paths must produce bit-identical completion times,
// which rules out the compiler fusing a + b * c into an fma in one loop
// but not the other. The interval-walk primitives are shared functions,
// and every blocked survivor resolves through completion_for — the same
// code the reference runs — so the results are identical by construction
// regardless of the gate's mode or column precision.
#include "churn/churn_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

namespace resmodel::churn {

std::string to_string(InterruptionPolicy policy) {
  switch (policy) {
    case InterruptionPolicy::kCheckpoint: return "checkpoint";
    case InterruptionPolicy::kRestart: return "restart";
    case InterruptionPolicy::kAbandon: return "abandon";
  }
  return "unknown";
}

double checkpoint_completion(const IntervalTimeline& timeline,
                             std::size_t host, double start_on,
                             double work) noexcept {
  if (start_on >= timeline.end_day()) return start_on + work;
  const std::span<const double> s = timeline.starts(host);
  const std::span<const double> e = timeline.ends(host);
  std::size_t i = timeline.advance(host, start_on);
  double cur = start_on;
  double remaining = work;
  while (i < s.size()) {
    if (cur < s[i]) cur = s[i];
    const double avail = e[i] - cur;
    if (remaining <= avail) return cur + remaining;
    remaining -= avail;
    ++i;
  }
  // Out of generated sessions: the region up to the horizon is OFF and
  // the host counts as permanently ON from end_day() onward.
  return std::max(cur, timeline.end_day()) + remaining;
}

RestartOutcome restart_completion(const IntervalTimeline& timeline,
                                  std::size_t host, double start_on,
                                  double work) noexcept {
  RestartOutcome out;
  if (start_on >= timeline.end_day()) {
    out.completion = start_on + work;
    out.worked_days = work;
    return out;
  }
  const std::span<const double> s = timeline.starts(host);
  const std::span<const double> e = timeline.ends(host);
  std::size_t i = timeline.advance(host, start_on);
  double cur = start_on;
  while (i < s.size()) {
    if (cur < s[i]) cur = s[i];
    const double avail = e[i] - cur;
    if (work <= avail) {
      out.completion = cur + work;
      out.worked_days += work;
      return out;
    }
    // The session dies under the task: the attempt burned its remainder.
    out.worked_days += avail;
    ++out.interruptions;
    ++i;
  }
  out.completion = std::max(cur, timeline.end_day()) + work;
  out.worked_days += work;
  return out;
}

namespace {

/// One kAbandon attempt of `work` contiguous days starting at the ON
/// instant `start_on`: either it fits the current session (completed at
/// `at`, `burned` == work) or the session ends first (abandoned at `at`
/// == session end, `burned` == the fruitless ON time).
struct AttemptOutcome {
  bool completed = false;
  double at = 0.0;
  double burned = 0.0;
};

AttemptOutcome abandon_attempt(const IntervalTimeline& timeline,
                               std::size_t host, double start_on,
                               double work) noexcept {
  if (start_on >= timeline.end_day()) return {true, start_on + work, work};
  const std::size_t i = timeline.advance(host, start_on);
  const std::span<const double> s = timeline.starts(host);
  const std::span<const double> e = timeline.ends(host);
  if (i == s.size()) {
    // OFF until the horizon, permanently ON after. (Unreachable when
    // start_on comes from next_on, which snaps this region to end_day().)
    return {true, timeline.end_day() + work, work};
  }
  double cur = start_on;
  if (cur < s[i]) cur = s[i];
  const double avail = e[i] - cur;
  if (work <= avail) return {true, cur + work, work};
  return {false, e[i], avail};
}

}  // namespace

ChurnScheduler::ChurnScheduler(sim::ScheduleState& state,
                               const IntervalTimeline& timeline,
                               const ChurnSchedulerConfig& config)
    : state_(state),
      timeline_(timeline),
      config_(config),
      resolved_(backend::resolve(config.backend)),
      ops_(&backend::kernel_ops(resolved_.simd)),
      gate_(config.gate_mode, config.float32_columns, resolved_.simd) {
  if (state.size() != timeline.host_count()) {
    throw std::invalid_argument(
        "ChurnScheduler: state and timeline host counts differ");
  }
  if (config.lookahead_levels == 0 ||
      config.lookahead_levels > kMaxLookaheadLevels) {
    throw std::invalid_argument(
        "ChurnScheduler: lookahead_levels must be in [1, " +
        std::to_string(kMaxLookaheadLevels) + "]");
  }
  const std::size_t n = state_.size();
  ready_.resize(n);
  sess_rem_.resize(n);
  next_start_.resize(n);
  accr_ready_.resize(n);
  sess_idx_.resize(n);
  levels_.resize(n * 2 * config_.lookahead_levels);
  for (std::size_t h = 0; h < n; ++h) update_cursor(h);
}

ChurnScheduler::ChurnScheduler(sim::ScheduleState& state,
                               const ChurnScheduler& seed)
    : state_(state),
      timeline_(seed.timeline_),
      config_(seed.config_),
      resolved_(backend::resolve(seed.config_.backend)),
      ops_(&backend::kernel_ops(resolved_.simd)),
      ready_(seed.ready_),
      sess_rem_(seed.sess_rem_),
      next_start_(seed.next_start_),
      accr_ready_(seed.accr_ready_),
      sess_idx_(seed.sess_idx_),
      levels_(seed.levels_),
      gate_(seed.config_.gate_mode, seed.config_.float32_columns,
            resolved_.simd) {
  if (state.size() != timeline_.host_count()) {
    throw std::invalid_argument(
        "ChurnScheduler: state and seed host counts differ");
  }
}

void ChurnScheduler::update_cursor(std::size_t host) noexcept {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t L = config_.lookahead_levels;
  const double free = state_.free_at[host];
  double* lv = levels_.data() + host * 2 * L;
  if (free >= timeline_.end_day()) {
    // Beyond the horizon: permanently ON.
    ready_[host] = free;
    sess_rem_[host] = kInf;
    next_start_[host] = kInf;
    accr_ready_[host] = 0.0;
    sess_idx_[host] = 0;
    for (std::size_t k = 0; k < 2 * L; ++k) lv[k] = 0.0;
    return;
  }
  const std::size_t i = timeline_.advance(host, free);
  const std::span<const double> s = timeline_.starts(host);
  const std::span<const double> e = timeline_.ends(host);
  if (i == s.size()) {
    // OFF until the horizon, permanently ON after (next_on's convention).
    ready_[host] = timeline_.end_day();
    sess_rem_[host] = kInf;
    next_start_[host] = kInf;
    accr_ready_[host] = 0.0;
    sess_idx_[host] = 0;
    for (std::size_t k = 0; k < 2 * L; ++k) lv[k] = 0.0;
    return;
  }
  const std::span<const double> cum = timeline_.cum_ends(host);
  const double ready = s[i] <= free ? free : s[i];
  ready_[host] = ready;
  sess_rem_[host] = e[i] - ready;
  next_start_[host] = i + 1 < s.size() ? s[i + 1] : timeline_.end_day();
  accr_ready_[host] = cum[i] - sess_rem_[host];
  sess_idx_[host] = static_cast<std::uint32_t>(i);
  // Lookahead levels: session i+1+k's (cum, phi). Once the sessions run
  // out, the accrual continues at the horizon — phi jumps to
  // end_day - total_on and stays there (the beyond-sessions completion
  // is target + that phi for every deeper target), with cum = +inf so
  // the first exhausted level catches all remaining targets.
  const double total_on = cum.back();
  const double phi_beyond = timeline_.end_day() - total_on;
  for (std::size_t k = 0; k < L; ++k) {
    const std::size_t j = i + 1 + k;
    if (j < s.size()) {
      lv[k] = cum[j];
      lv[L + k] = e[j] - cum[j];
    } else {
      lv[k] = kInf;
      lv[L + k] = phi_beyond;
    }
  }
}

double ChurnScheduler::checkpoint_spill(std::size_t host,
                                        double target) const noexcept {
  const std::span<const double> cum = timeline_.cum_ends(host);
  const std::span<const double> e = timeline_.ends(host);
  // First session past the current one whose cumulative ON total reaches
  // the target accrual; sessions before it are consumed whole, so the
  // completion lies `cum[j] - target` before its end.
  const double* first = cum.data() + sess_idx_[host] + 1;
  const double* last = cum.data() + cum.size();
  const double* it = std::lower_bound(first, last, target);
  if (it == last) {
    const double total_on = cum.empty() ? 0.0 : cum.back();
    return timeline_.end_day() + (target - total_on);
  }
  return e[static_cast<std::size_t>(it - cum.data())] - (*it - target);
}

double ChurnScheduler::completion_for(
    std::size_t host, double work, InterruptionPolicy policy) const noexcept {
  // Fits the current session (or the host is permanently ON): the
  // completion is the literal `ready + work` — the same expression in
  // the blocked and reference kernels, so both agree bit for bit.
  if (policy == InterruptionPolicy::kAbandon || work <= sess_rem_[host]) {
    return ready_[host] + work;
  }
  if (policy == InterruptionPolicy::kCheckpoint) {
    const std::size_t L = config_.lookahead_levels;
    const double target = accr_ready_[host] + work;
    const double* lv = levels_.data() + host * 2 * L;
    for (std::size_t k = 0; k < L; ++k) {
      if (target <= lv[k]) return target + lv[L + k];
    }
    return checkpoint_spill(host, target);
  }
  return restart_completion(timeline_, host, ready_[host], work).completion;
}

void ChurnScheduler::commit(std::size_t host, double work,
                            InterruptionPolicy policy,
                            ChurnScheduleTotals& totals) {
  double completion;
  double worked = work;
  if (policy == InterruptionPolicy::kCheckpoint) {
    completion = completion_for(host, work, InterruptionPolicy::kCheckpoint);
  } else {
    const RestartOutcome out =
        restart_completion(timeline_, host, ready_[host], work);
    completion = out.completion;
    worked = out.worked_days;
    totals.interruptions += out.interruptions;
  }
  state_.busy_days[host] += worked;
  state_.free_at[host] = completion;
  totals.total_cpu_days += work;
  totals.wasted_cpu_days += worked - work;
  totals.makespan_days = std::max(totals.makespan_days, completion);
  update_cursor(host);
}

void ChurnScheduler::rebuild_ready_gathers() {
  state_.ensure_ect_caches();
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  const std::size_t n = state_.size();
  const std::size_t blocks = state_.block_count();
  sready_.resize(n);
  for (std::size_t j = 0; j < n; ++j) sready_[j] = ready_[state_.ect_order[j]];
  bmin_ready_.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    bmin_ready_[b] = ops_->column_min(sready_.data() + lo, hi - lo);
  }
}

void ChurnScheduler::update_ready_gather(std::size_t host) {
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  const std::size_t n = state_.size();
  const std::size_t pos = state_.ect_pos[host];
  sready_[pos] = ready_[host];
  const std::size_t blk = pos / kBlock;
  const std::size_t lo = blk * kBlock;
  const std::size_t hi = std::min(n, lo + kBlock);
  bmin_ready_[blk] = ops_->column_min(sready_.data() + lo, hi - lo);
}

void ChurnScheduler::rebuild_sorted_cursors() {
  const std::size_t n = state_.size();
  const std::size_t stride = 2 * config_.lookahead_levels;
  sres_ready_.resize(n);
  sres_sess_.resize(n);
  sres_accr_.resize(n);
  sres_levels_.resize(n * stride);
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t h = state_.ect_order[j];
    sres_ready_[j] = ready_[h];
    sres_sess_[j] = sess_rem_[h];
    sres_accr_[j] = accr_ready_[h];
    const double* src = levels_.data() + h * stride;
    double* dst = sres_levels_.data() + j * stride;
    for (std::size_t k = 0; k < stride; ++k) dst[k] = src[k];
  }
}

void ChurnScheduler::update_sorted_cursor(std::size_t host) {
  const std::size_t stride = 2 * config_.lookahead_levels;
  const std::size_t pos = state_.ect_pos[host];
  sres_ready_[pos] = ready_[host];
  sres_sess_[pos] = sess_rem_[host];
  sres_accr_[pos] = accr_ready_[host];
  const double* src = levels_.data() + host * stride;
  double* dst = sres_levels_.data() + pos * stride;
  for (std::size_t k = 0; k < stride; ++k) dst[k] = src[k];
}

void ChurnScheduler::prime_gate_for_test(std::span<const double> tasks,
                                         InterruptionPolicy policy) {
  state_.ensure_ect_caches();
  gate_.reset(state_, cursor_view(), tasks, policy);
}

template <bool kBlocked>
std::uint32_t ChurnScheduler::select_ect(double task,
                                         InterruptionPolicy policy,
                                         ChurnScheduleTotals& totals,
                                         std::vector<double>& bounds) {
  const std::size_t n = state_.size();
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  [[maybe_unused]] double lb[kBlock];
  std::uint32_t best = 0;
  double best_done = std::numeric_limits<double>::infinity();
  {
    if constexpr (!kBlocked) {
      // The oracle: walk EVERY host's intervals, first-strict-improvement
      // pick (== smallest index among the argmin set).
      for (std::size_t h = 0; h < n; ++h) {
        const double work = task * state_.inv_rates[h];
        const double done = completion_for(h, work, policy);
        if (done < best_done) {
          best_done = done;
          best = static_cast<std::uint32_t>(h);
        }
      }
    } else {
      const double margin = gate_.margin();
      const double* inv = state_.ect_sorted_inv.data();
      const double* bmin_inv = state_.ect_block_min_inv.data();
      const std::uint32_t* order = state_.ect_order.data();
      const std::size_t blocks = state_.block_count();
      const bool enveloped = gate_.mode() == GateMode::kEnvelope;
      // Level A: the coarse bucket row — one contiguous read per task.
      // Completions are non-decreasing in task size, so the row entry at
      // the anchor edge, extended by (task - edge) * block_min_inv, lower
      // bounds every completion in the block. The tightest block is the
      // warm start: it is evaluated first so the incumbent is near-
      // optimal before any other block is gated. (Processing order is
      // result-neutral: pruning only skips hosts that cannot win or tie.)
      const std::size_t bucket = gate_.bucket_of(task);
      const double edge = gate_.bucket_edge(bucket);
      const double over = task - edge;
      const double* row = gate_.coarse_row(bucket);
      // Vectorized row pass through the dispatch table; returns the
      // FIRST index attaining the row minimum — the block the old
      // first-strict-improvement scan warm-started on, so the sweep
      // order (and with it the swept_blocks counter) is arm-invariant.
      const std::size_t warm =
          ops_->row_bounds_argmin(row, bmin_inv, over, blocks,
                                  bounds.data());
      for (std::size_t bi = 0; bi <= blocks; ++bi) {
        // Iteration 0 is the warm-start block; the regular pass follows
        // (the warm block re-gates and prunes immediately).
        const std::size_t b = bi == 0 ? warm : bi - 1;
        if (bi != 0 && bounds[b] * margin > best_done) continue;
        // Level B: the per-block envelope at the exact task size — an
        // O(log knots) refinement that culls the near-misses the coarse
        // row admits, without streaming the block's columns.
        if (enveloped && bi != 0 &&
            gate_.block_bound(b, task) * margin > best_done) {
          continue;
        }
        gate_.sweep_block(b, task, lb);
        ++totals.swept_blocks;
        const std::size_t lo = b * kBlock;
        // Reduce to per-8-lane chunk minima: min is exact and order-free,
        // the fixed-size trees vectorize, and the chunk minima let the
        // resolution pass skip lanes eight at a time (the gate pads tail
        // lanes to +inf).
        constexpr std::size_t kChunks = kBlock / 8;
        double cmin[kChunks];
        for (std::size_t c = 0; c < kChunks; ++c) {
          const double* q = lb + c * 8;
          const double m01 = std::min(q[0], q[1]);
          const double m23 = std::min(q[2], q[3]);
          const double m45 = std::min(q[4], q[5]);
          const double m67 = std::min(q[6], q[7]);
          cmin[c] = std::min(std::min(m01, m23), std::min(m45, m67));
        }
        double m = cmin[0];
        for (std::size_t c = 1; c < kChunks; ++c) m = std::min(m, cmin[c]);
        if (m * margin > best_done) continue;
        for (std::size_t c = 0; c < kChunks; ++c) {
          if (cmin[c] * margin > best_done) continue;
          for (std::size_t i = c * 8; i < c * 8 + 8; ++i) {
            // A lane whose deflated bound exceeds the incumbent cannot
            // win or tie (the margin absorbs the bound chain's rounding
            // slack). Survivors resolve through the sorted-layout DOUBLE
            // cursor copies — value-identical to completion_for's
            // per-host expressions (exact gathered copies, identical
            // arithmetic), so the selection is bit-identical to the
            // oracle no matter how the bounds were computed, without a
            // per-host random gather on the hot path.
            if (lb[i] * margin > best_done) continue;
            const std::size_t sp = lo + i;
            const std::uint32_t h = order[sp];
            const double work = task * inv[sp];
            double done;
            if (work <= sres_sess_[sp]) {
              done = sres_ready_[sp] + work;
            } else if (policy == InterruptionPolicy::kCheckpoint) {
              const std::size_t L = config_.lookahead_levels;
              const double target = sres_accr_[sp] + work;
              const double* lv = sres_levels_.data() + sp * 2 * L;
              std::size_t k = 0;
              while (k < L && target > lv[k]) ++k;
              done = k < L ? target + lv[L + k]
                           : checkpoint_spill(h, target);
            } else {
              done = restart_completion(timeline_, h, sres_ready_[sp], work)
                         .completion;
            }
            ++totals.resolved_lanes;
            if (done < best_done) {
              best_done = done;
              best = h;
            } else if (done == best_done && h < best) {
              best = h;
            }
          }
        }
      }
    }
  }
  return best;
}

template <bool kBlocked>
ChurnScheduleTotals ChurnScheduler::run_ect(std::span<const double> tasks,
                                            InterruptionPolicy policy) {
  ChurnScheduleTotals totals;
  const std::size_t n = state_.size();
  if (n == 0) return totals;
  std::vector<double> bounds;  // level-A scratch, one entry per block
  if constexpr (kBlocked) {
    state_.ensure_ect_caches();
    gate_.reset(state_, cursor_view(), tasks, policy);
    rebuild_sorted_cursors();
    bounds.resize(state_.block_count());
  }

  for (const double task : tasks) {
    const std::uint32_t best = select_ect<kBlocked>(task, policy, totals,
                                                    bounds);
    commit(best, task * state_.inv_rates[best], policy, totals);
    if constexpr (kBlocked) {
      update_sorted_cursor(best);
      gate_.on_assign(best, state_, cursor_view());
    }
  }
  return totals;
}

template <bool kBlocked>
std::uint32_t ChurnScheduler::select_ready(double task) const {
  const std::size_t n = state_.size();
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  // Selection key = ready + task*inv, the exact optimistic completion
  // of a single attempt — no interval walk needed until the attempt is
  // resolved.
  std::uint32_t best = 0;
  double best_done = std::numeric_limits<double>::infinity();
  {
    if constexpr (!kBlocked) {
      for (std::size_t h = 0; h < n; ++h) {
        const double done = ready_[h] + task * state_.inv_rates[h];
        if (done < best_done) {
          best_done = done;
          best = static_cast<std::uint32_t>(h);
        }
      }
    } else {
      const double* inv = state_.ect_sorted_inv.data();
      const double* bmin_inv = state_.ect_block_min_inv.data();
      const std::uint32_t* order = state_.ect_order.data();
      const std::size_t blocks = state_.block_count();
      // The block bound is monotone-sound without a margin: sready_i >=
      // bmin_ready_b and fl(task*inv_i) >= fl(task*bmin_inv_b), and fl(+)
      // is monotone, so the bound never exceeds any lane's key bitwise.
      for (std::size_t b = 0; b < blocks; ++b) {
        if (bmin_ready_[b] + task * bmin_inv[b] > best_done) continue;
        const std::size_t lo = b * kBlock;
        const std::size_t len = std::min(n - lo, kBlock);
        const backend::EctBlockMin r = ops_->ect_block_sweep(
            sready_.data() + lo, inv + lo, order + lo, len, task,
            best_done);
        if (r.value > best_done) continue;
        if (r.value < best_done) {
          best_done = r.value;
          best = r.index;
        } else {
          best = std::min(best, r.index);
        }
      }
    }
  }
  return best;
}

template <bool kBlocked>
ChurnScheduleTotals ChurnScheduler::run_abandon(
    std::span<const double> tasks) {
  ChurnScheduleTotals totals;
  const std::size_t n = state_.size();
  if (n == 0) return totals;
  if constexpr (kBlocked) rebuild_ready_gathers();

  // FIFO of task costs: interrupted tasks re-enter at the back, so every
  // queued task is attempted before any retry. Terminates because each
  // failed attempt burns one ON session of one host; past its last
  // generated session a host is permanently ON and every attempt succeeds.
  std::deque<double> queue(tasks.begin(), tasks.end());
  while (!queue.empty()) {
    const double task = queue.front();
    queue.pop_front();

    const std::uint32_t best = select_ready<kBlocked>(task);
    const double work = task * state_.inv_rates[best];
    const AttemptOutcome attempt =
        abandon_attempt(timeline_, best, ready_[best], work);
    state_.busy_days[best] += attempt.burned;
    state_.free_at[best] = attempt.at;
    if (attempt.completed) {
      totals.total_cpu_days += work;
      totals.makespan_days = std::max(totals.makespan_days, attempt.at);
    } else {
      totals.wasted_cpu_days += attempt.burned;
      ++totals.interruptions;
      queue.push_back(task);
    }
    update_cursor(best);
    if constexpr (kBlocked) update_ready_gather(best);
  }
  return totals;
}

ChurnScheduleTotals ChurnScheduler::run(std::span<const double> tasks,
                                        InterruptionPolicy policy) {
  // The scalar arm IS the reference oracle (its counters are zero: the
  // full scan streams no gate columns).
  if (resolved_.arm == backend::Backend::kScalar) {
    return run_reference(tasks, policy);
  }
  if (policy == InterruptionPolicy::kAbandon) return run_abandon<true>(tasks);
  return run_ect<true>(tasks, policy);
}

ChurnScheduleTotals ChurnScheduler::run_reference(
    std::span<const double> tasks, InterruptionPolicy policy) {
  if (policy == InterruptionPolicy::kAbandon) return run_abandon<false>(tasks);
  return run_ect<false>(tasks, policy);
}

void ChurnScheduler::begin_stepping(std::span<const double> tasks,
                                    InterruptionPolicy policy,
                                    std::span<const double> slowdown,
                                    bool force_reference) {
  step_policy_ = policy;
  step_totals_ = {};
  step_tasks_.assign(tasks.begin(), tasks.end());
  step_slowdown_.assign(slowdown.begin(), slowdown.end());
  // Same routing rule as run() / run_reference(): the scalar arm (or an
  // explicit reference request) steps through the full-scan oracle
  // selection, every other arm through the blocked one.
  step_blocked_ =
      !force_reference && resolved_.arm != backend::Backend::kScalar;
  if (!step_blocked_) return;
  state_.ensure_ect_caches();
  if (policy == InterruptionPolicy::kAbandon) {
    rebuild_ready_gathers();
  } else {
    gate_.reset(state_, cursor_view(), step_tasks_, policy);
    rebuild_sorted_cursors();
    step_bounds_.resize(state_.block_count());
  }
}

ChurnScheduler::StepOutcome ChurnScheduler::step(double task) {
  StepOutcome out;
  if (step_policy_ == InterruptionPolicy::kAbandon) {
    const std::uint32_t best = step_blocked_ ? select_ready<true>(task)
                                             : select_ready<false>(task);
    const double slowdown =
        step_slowdown_.empty() ? 1.0 : step_slowdown_[best];
    const double work = task * state_.inv_rates[best] * slowdown;
    out.host = best;
    out.start = ready_[best];
    const AttemptOutcome attempt =
        abandon_attempt(timeline_, best, ready_[best], work);
    state_.busy_days[best] += attempt.burned;
    state_.free_at[best] = attempt.at;
    out.completion = attempt.at;
    out.worked_days = attempt.burned;
    out.completed = attempt.completed;
    out.session_crossed = !attempt.completed;
    if (attempt.completed) {
      step_totals_.total_cpu_days += work;
      step_totals_.makespan_days =
          std::max(step_totals_.makespan_days, attempt.at);
    } else {
      step_totals_.wasted_cpu_days += attempt.burned;
      ++step_totals_.interruptions;
    }
    update_cursor(best);
    if (step_blocked_) update_ready_gather(best);
    return out;
  }

  // kCheckpoint / kRestart: select on the nominal rate, commit the
  // slowed-down execution. The gate's bounds cover the nominal
  // completions the selection compares, so pruning soundness is
  // untouched by the commit-side inflation; on_assign re-keys the
  // winner from its post-commit cursor as usual.
  const std::uint32_t best =
      step_blocked_
          ? select_ect<true>(task, step_policy_, step_totals_, step_bounds_)
          : select_ect<false>(task, step_policy_, step_totals_, step_bounds_);
  const double slowdown = step_slowdown_.empty() ? 1.0 : step_slowdown_[best];
  const double work = task * state_.inv_rates[best] * slowdown;
  out.host = best;
  out.start = ready_[best];
  // sess_rem_ is the current session's remaining ON time (+inf past the
  // horizon): the execution crosses a session boundary iff the scaled
  // work overflows it — exactly the checkpoint-spill / restart-burn
  // trigger, and the crash model's loss condition.
  out.session_crossed = work > sess_rem_[best];
  const double busy_before = state_.busy_days[best];
  commit(best, work, step_policy_, step_totals_);
  out.completion = state_.free_at[best];
  out.worked_days = state_.busy_days[best] - busy_before;
  out.completed = true;
  if (step_blocked_) {
    update_sorted_cursor(best);
    gate_.on_assign(best, state_, cursor_view());
  }
  return out;
}

void ChurnScheduler::advance_time(double now) {
  const std::size_t n = state_.size();
  for (std::size_t h = 0; h < n; ++h) {
    if (state_.free_at[h] < now) {
      state_.free_at[h] = now;
      update_cursor(h);
    }
  }
  if (!step_blocked_) return;
  if (step_policy_ == InterruptionPolicy::kAbandon) {
    rebuild_ready_gathers();
  } else {
    gate_.reset(state_, cursor_view(), step_tasks_, step_policy_);
    rebuild_sorted_cursors();
  }
}

}  // namespace resmodel::churn

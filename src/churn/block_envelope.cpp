// Compiled with -ffp-contract=off and -fno-trapping-math (see
// src/CMakeLists.txt): the sweeps are branch-free FP selects that must
// if-convert and vectorize; every value this file produces is a pruning
// BOUND (consumers deflate by margin() before comparing), so contraction
// could not break correctness — the flags are uniform across the churn
// kernels for reproducibility between build configurations.
#include "churn/block_envelope.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace resmodel::churn {

// The dispatch kernels assume the gate's exact block and lookahead
// geometry (backend/kernels.h).
static_assert(backend::kKernelBlock == BoundGate::kBlock,
              "backend kernel block width != gate block width");
static_assert(backend::kGateMaxLevels == kMaxLookaheadLevels,
              "backend gate view level capacity != kMaxLookaheadLevels");

namespace {

template <typename Real>
constexpr double comparison_pad() {
  return std::is_same_v<Real, float> ? kPadF32 : kPadF64;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

template <typename Real>
void BoundGate::pack_lane(Columns<Real>& c, std::size_t pos, std::size_t host,
                          const sim::ScheduleState& state,
                          const CursorView& cursors) {
  constexpr double kPad = comparison_pad<Real>();
  c.inv_[pos] = static_cast<Real>(state.ect_sorted_inv[pos]);
  // The comparison columns are PAD-INFLATED before conversion: a lane
  // that exactly fits its session (or exactly routes to level k) must
  // still take that arm after rounding, because that arm's value can
  // never exceed the true completion while a deeper arm's can. The pad
  // dwarfs both the conversion error and the w/target chain error, so
  // the inclusion direction is guaranteed; the spurious inclusions it
  // admits only lower the bound (sound).
  c.sess_[pos] = static_cast<Real>(cursors.sess_rem[host] * kPad);
  c.ready_[pos] = static_cast<Real>(cursors.ready[host]);
  c.next_[pos] = static_cast<Real>(cursors.next_start[host]);
  const double accr = cursors.accr[host];
  c.accr_[pos] = static_cast<Real>(accr);
  const double* lv = cursors.levels.data() + host * 2 * levels_;
  for (std::size_t k = 0; k < levels_; ++k) {
    c.c_[k][pos] = static_cast<Real>(lv[k] * kPad);
    c.phi_[k][pos] = static_cast<Real>(lv[levels_ + k]);
  }
}

template <typename Real>
void BoundGate::eval_block(const Columns<Real>& c, std::size_t blk,
                           double task, Real* lb) const noexcept {
  // The sweep bodies live behind the backend dispatch table now
  // (src/backend/): the blocked arm is this function's former loop
  // nest, verbatim, in a TU with the same flags; the SIMD arms are
  // intrinsic twins that produce bit-identical lanes (kernels.h has the
  // exactness rules — the level routing and if-conversion notes moved
  // to kernels_blocked.cpp with the loops). This wrapper only assembles
  // the block's column view.
  const std::size_t lo = blk * kBlock;
  backend::GateBlockView<Real> view;
  view.inv = c.inv_.data() + lo;
  view.sess = c.sess_.data() + lo;
  view.ready = c.ready_.data() + lo;
  view.next = c.next_.data() + lo;
  view.accr = c.accr_.data() + lo;
  for (std::size_t k = 0; k < levels_; ++k) {
    view.c[k] = c.c_[k].data() + lo;
    view.phi[k] = c.phi_[k].data() + lo;
  }
  view.levels = levels_;
  view.checkpoint = policy_ == InterruptionPolicy::kCheckpoint;
  if constexpr (std::is_same_v<Real, float>) {
    ops_->gate_sweep_f32(view, static_cast<float>(task), lb);
  } else {
    ops_->gate_sweep_f64(view, task, lb);
  }
}

template <typename Real>
std::pair<double, std::uint8_t> BoundGate::eval_block_min(
    const Columns<Real>& c, std::size_t blk, double task) const noexcept {
  Real lb[kBlock];
  eval_block(c, blk, task, lb);
  Real m = lb[0];
  std::uint8_t arg = 0;
  for (std::size_t i = 1; i < kBlock; ++i) {
    if (lb[i] < m) {
      m = lb[i];
      arg = static_cast<std::uint8_t>(i);
    }
  }
  return {static_cast<double>(m), arg};
}

template <typename Real>
double BoundGate::envelope_query(const Columns<Real>& c, std::size_t blk,
                                 double task) const noexcept {
  const Real* kt = c.knot_t_.data() + blk * kKnotCapacity;
  const Real* kv = c.knot_v_.data() + blk * kKnotCapacity;
  const std::size_t m = knot_count_[blk];
  const Real t = static_cast<Real>(task);
  // Last knot with position <= t. Knot 0 sits at exactly 0, so the
  // invariant kt[lo] <= t holds from the start (tasks are positive).
  std::size_t lo = 0;
  std::size_t hi = m;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (kt[mid] <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // (task - knot) can round a hair negative when Real(task) snapped up
  // onto the knot; that only lowers the bound.
  return static_cast<double>(kv[lo]) +
         (task - static_cast<double>(kt[lo])) * bmin_inv_[blk];
}

template <typename Real>
void BoundGate::rebuild_knots(Columns<Real>& c, std::size_t blk,
                              const sim::ScheduleState& state,
                              const CursorView& cursors) {
  const std::size_t lo = blk * kBlock;
  const std::size_t len = std::min(size_ - lo, kBlock);
  const double tmax = bucket_edges_.back();
  // Candidate knots = the block members' own breakpoints, in task-size
  // units: the fits->spill boundary at sess_rem / inv and (checkpoint
  // only) the level boundaries at (cum_k - accr) / inv. Positions are
  // sample points, nothing more — the values are evaluated at the
  // STORED (Real-rounded) positions, so any rounding here is harmless.
  knot_scratch_.clear();
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t host = state.ect_order[lo + i];
    const double inv = state.ect_sorted_inv[lo + i];
    const double sess = cursors.sess_rem[host];
    if (std::isfinite(sess)) {
      const double t = sess / inv;
      if (t > 0.0 && t <= tmax) knot_scratch_.push_back(t);
    }
    if (policy_ != InterruptionPolicy::kCheckpoint) continue;
    const double accr = cursors.accr[host];
    const double* lv = cursors.levels.data() + host * 2 * levels_;
    for (std::size_t k = 0; k + 1 < levels_; ++k) {
      if (!std::isfinite(lv[k])) break;  // exhausted levels stay exhausted
      const double t = (lv[k] - accr) / inv;
      if (t > 0.0 && t <= tmax) knot_scratch_.push_back(t);
    }
  }
  std::sort(knot_scratch_.begin(), knot_scratch_.end());

  Real* kt = c.knot_t_.data() + blk * kKnotCapacity;
  Real* kv = c.knot_v_.data() + blk * kKnotCapacity;
  std::uint8_t* ka = knot_argmin_.data() + blk * kKnotCapacity;
  std::size_t count = 0;
  kt[count++] = static_cast<Real>(0.0);  // universal anchor: min ready
  const std::size_t cands = knot_scratch_.size();
  const std::size_t take = std::min(cands, kKnotCapacity - 1);
  for (std::size_t j = 0; j < take; ++j) {
    // Even stride through the sorted candidates when over capacity.
    const std::size_t idx = cands <= kKnotCapacity - 1
                                ? j
                                : j * cands / take;
    const Real t = static_cast<Real>(knot_scratch_[idx]);
    if (t <= kt[count - 1]) continue;  // dedupe after rounding
    kt[count++] = t;
  }
  for (std::size_t k = 0; k < count; ++k) {
    const auto [v, arg] =
        eval_block_min(c, blk, static_cast<double>(kt[k]));
    kv[k] = static_cast<Real>(v);
    ka[k] = arg;
  }
  knot_count_[blk] = static_cast<std::uint16_t>(count);
  stale_[blk] = 0;
}

template <typename Real>
void BoundGate::repair_knots(Columns<Real>& c, std::size_t blk,
                             std::uint8_t lane) {
  // Only knots whose recorded minimum came from the reassigned lane can
  // be stale-low (the lane's completion function only moved up; every
  // other knot's stored minimum is untouched and still sound).
  const std::size_t base = blk * kKnotCapacity;
  Real* kt = c.knot_t_.data() + base;
  Real* kv = c.knot_v_.data() + base;
  std::uint8_t* ka = knot_argmin_.data() + base;
  const std::size_t count = knot_count_[blk];
  for (std::size_t k = 0; k < count; ++k) {
    if (ka[k] != lane) continue;
    const auto [v, arg] =
        eval_block_min(c, blk, static_cast<double>(kt[k]));
    kv[k] = static_cast<Real>(v);
    ka[k] = arg;
  }
}

template <typename Real>
void BoundGate::rebuild_coarse_row(const Columns<Real>& c, std::size_t blk) {
  for (std::size_t k = 0; k < kBuckets; ++k) {
    coarse_[k * blocks_ + blk] =
        mode_ == GateMode::kEnvelope
            ? envelope_query(c, blk, bucket_edges_[k])
            : eval_block_min(c, blk, bucket_edges_[k]).first;
  }
}

template <typename Real>
void BoundGate::reset_impl(Columns<Real>& c, const sim::ScheduleState& state,
                           const CursorView& cursors,
                           std::span<const double> tasks) {
  blocks_ = state.block_count();
  size_ = state.size();
  bmin_inv_ = state.ect_block_min_inv.data();
  levels_ = cursors.levels_count;
  const std::size_t padded = blocks_ * kBlock;
  c.inv_.assign(padded, static_cast<Real>(0.0));
  c.sess_.assign(padded, static_cast<Real>(kInf));
  c.ready_.assign(padded, static_cast<Real>(kInf));
  c.next_.assign(padded, static_cast<Real>(kInf));
  c.accr_.assign(padded, static_cast<Real>(0.0));
  for (std::size_t k = 0; k < levels_; ++k) {
    c.c_[k].assign(padded, static_cast<Real>(kInf));
    c.phi_[k].assign(padded, static_cast<Real>(kInf));
  }
  for (std::size_t pos = 0; pos < size_; ++pos) {
    pack_lane(c, pos, state.ect_order[pos], state, cursors);
  }

  // Coarse edges: edge 0 is exactly 0 (its row entry is the min-ready
  // bound, valid for every positive task), the rest log-spaced over the
  // workload's size range.
  double tmin = kInf;
  double tmax = 0.0;
  for (const double t : tasks) {
    tmin = std::min(tmin, t);
    tmax = std::max(tmax, t);
  }
  if (!(tmin > 0.0) || !(tmax >= tmin)) {
    tmin = 1.0;
    tmax = 1.0;
  }
  bucket_edges_.resize(kBuckets);
  bucket_edges_[0] = 0.0;
  const double ratio = tmax / tmin;
  for (std::size_t k = 1; k < kBuckets; ++k) {
    bucket_edges_[k] =
        tmin * std::pow(ratio, static_cast<double>(k - 1) /
                                   static_cast<double>(kBuckets - 2));
  }

  coarse_.resize(kBuckets * blocks_);
  if (mode_ == GateMode::kEnvelope) {
    c.knot_t_.resize(blocks_ * kKnotCapacity);
    c.knot_v_.resize(blocks_ * kKnotCapacity);
    knot_argmin_.resize(blocks_ * kKnotCapacity);
    knot_count_.assign(blocks_, 0);
    stale_.assign(blocks_, 0);
    for (std::size_t b = 0; b < blocks_; ++b) {
      rebuild_knots(c, b, state, cursors);
      rebuild_coarse_row(c, b);
    }
  } else {
    for (std::size_t b = 0; b < blocks_; ++b) rebuild_coarse_row(c, b);
  }
}

template <typename Real>
void BoundGate::on_assign_impl(Columns<Real>& c, std::size_t host,
                               const sim::ScheduleState& state,
                               const CursorView& cursors) {
  const std::size_t pos = state.ect_pos[host];
  pack_lane(c, pos, host, state, cursors);
  const std::size_t blk = pos / kBlock;
  if (mode_ == GateMode::kEnvelope) {
    if (++stale_[blk] >= kStaleLimit) {
      // Lazy epoch: the knot positions have drifted from the block's
      // current breakpoints; re-derive them (values included).
      rebuild_knots(c, blk, state, cursors);
      rebuild_coarse_row(c, blk);
    } else {
      repair_knots(c, blk, static_cast<std::uint8_t>(pos - blk * kBlock));
      rebuild_coarse_row(c, blk);
    }
  } else {
    rebuild_coarse_row(c, blk);
  }
}

void BoundGate::reset(const sim::ScheduleState& state,
                      const CursorView& cursors,
                      std::span<const double> tasks,
                      InterruptionPolicy policy) {
  policy_ = policy;
  if (float32_) {
    reset_impl(f32_, state, cursors, tasks);
  } else {
    reset_impl(f64_, state, cursors, tasks);
  }
}

void BoundGate::on_assign(std::size_t host, const sim::ScheduleState& state,
                          const CursorView& cursors) {
  if (float32_) {
    on_assign_impl(f32_, host, state, cursors);
  } else {
    on_assign_impl(f64_, host, state, cursors);
  }
}

std::size_t BoundGate::bucket_of(double task) const noexcept {
  const auto it =
      std::upper_bound(bucket_edges_.begin(), bucket_edges_.end(), task);
  if (it == bucket_edges_.begin()) return 0;  // negative task: clamp
  return static_cast<std::size_t>(it - bucket_edges_.begin()) - 1;
}

double BoundGate::block_bound(std::size_t blk, double task) const noexcept {
  if (mode_ == GateMode::kEnvelope) {
    return float32_ ? envelope_query(f32_, blk, task)
                    : envelope_query(f64_, blk, task);
  }
  const std::size_t bucket = bucket_of(task);
  return coarse_[bucket * blocks_ + blk] +
         (task - bucket_edges_[bucket]) * bmin_inv_[blk];
}

void BoundGate::sweep_block(std::size_t blk, double task,
                            double* lb) const noexcept {
  if (float32_) {
    float buf[kBlock];
    eval_block(f32_, blk, task, buf);
    for (std::size_t i = 0; i < kBlock; ++i) {
      lb[i] = static_cast<double>(buf[i]);
    }
  } else {
    eval_block(f64_, blk, task, lb);
  }
}

double BoundGate::lane_bound(std::size_t pos, double task) const noexcept {
  double lb[kBlock];
  sweep_block(pos / kBlock, task, lb);
  return lb[pos % kBlock];
}

}  // namespace resmodel::churn

#include "churn/coupled_availability.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "model/cholesky_gaussian.h"
#include "stats/matrix.h"

namespace resmodel::churn {

void AvailabilityCoupling::validate() const {
  if (!(speed_rho >= -1.0 && speed_rho <= 1.0)) {
    throw std::invalid_argument(
        "AvailabilityCoupling: speed_rho must be in [-1, 1]");
  }
  if (!(log_on_sigma >= 0.0)) {
    throw std::invalid_argument(
        "AvailabilityCoupling: log_on_sigma must be >= 0");
  }
}

std::vector<synth::AvailabilityParams> couple_availability_to_speed(
    std::span<const double> speed, const synth::AvailabilityParams& base,
    const AvailabilityCoupling& coupling, util::Rng& rng) {
  coupling.validate();
  // Spearman -> Pearson for the Gaussian copula: rho_s = 6/pi*asin(r/2),
  // inverted. |r| can reach 1.0 only at |rho_s| = 1; Cholesky needs
  // strict positive definiteness, so back off the exact corner slightly.
  double r = 2.0 * std::sin(std::numbers::pi * coupling.speed_rho / 6.0);
  r = std::clamp(r, -0.999999, 0.999999);
  const model::CholeskyGaussian joint(
      stats::Matrix::from_rows({{1.0, r}, {r, 1.0}}));
  return couple_availability_to_speed(speed, base, joint,
                                      coupling.log_on_sigma, rng);
}

std::vector<synth::AvailabilityParams> couple_availability_to_speed(
    std::span<const double> speed, const synth::AvailabilityParams& base,
    const model::CorrelationModel& joint, double log_on_sigma,
    util::Rng& rng) {
  base.validate();
  if (joint.dimension() != 2) {
    throw std::invalid_argument(
        "couple_availability_to_speed: correlation model must have "
        "dimension 2 (speed proxy, availability driver)");
  }
  if (!(log_on_sigma >= 0.0)) {
    throw std::invalid_argument(
        "couple_availability_to_speed: log_on_sigma must be >= 0");
  }
  const std::size_t n = speed.size();
  std::vector<synth::AvailabilityParams> params(n, base);
  if (n == 0) return params;

  // One joint draw per host, in host order (the fixed consumption
  // contract every batched engine in this repo shares).
  std::vector<double> z_speed(n), z_avail(n);
  for (std::size_t i = 0; i < n; ++i) {
    double z[2];
    joint.sample_normals(0.0, rng, z);
    z_speed[i] = z[0];
    z_avail[i] = z[1];
  }

  // Rank-match (Iman–Conover): the host with the r-th smallest speed gets
  // the z_avail of the pair with the r-th smallest z_speed. Ties (floored
  // or duplicated speeds are common) break by index on both sides, so the
  // matching is deterministic.
  std::vector<std::uint32_t> speed_order(n), z_order(n);
  for (std::size_t i = 0; i < n; ++i) {
    speed_order[i] = static_cast<std::uint32_t>(i);
    z_order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(speed_order.begin(), speed_order.end(),
            [&speed](std::uint32_t a, std::uint32_t b) {
              if (speed[a] != speed[b]) return speed[a] < speed[b];
              return a < b;
            });
  std::sort(z_order.begin(), z_order.end(),
            [&z_speed](std::uint32_t a, std::uint32_t b) {
              if (z_speed[a] != z_speed[b]) return z_speed[a] < z_speed[b];
              return a < b;
            });

  // Mean-preserving log-normal multiplier on the ON scale: E[exp(s*z -
  // s^2/2)] = 1, so the population-mean session scale stays `base` while
  // individual hosts spread around it in rank-coupled fashion.
  const double half_var = 0.5 * log_on_sigma * log_on_sigma;
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t host = speed_order[r];
    const double z = z_avail[z_order[r]];
    params[host].on_weibull_lambda =
        base.on_weibull_lambda * std::exp(log_on_sigma * z - half_var);
  }
  return params;
}

}  // namespace resmodel::churn

#include "util/checksum.h"

#include <array>
#include <cstring>

namespace resmodel::util {

namespace {

// Slice-by-8 lookup tables, built once at first use. Table 0 is the plain
// byte-at-a-time CRC32C table; table k folds a byte that sits k positions
// ahead in the stream, letting the hot loop consume 8 bytes per iteration
// with eight independent loads.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Crc32cTables() noexcept {
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Crc32cTables& tables() noexcept {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed) noexcept {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;

  // Head: align to 8 bytes so the slice loop reads aligned words.
  while (size > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --size;
  }
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);  // little-endian hosts only (asserted by store)
    word ^= crc;
    crc = t[7][word & 0xffu] ^ t[6][(word >> 8) & 0xffu] ^
          t[5][(word >> 16) & 0xffu] ^ t[4][(word >> 24) & 0xffu] ^
          t[3][(word >> 32) & 0xffu] ^ t[2][(word >> 40) & 0xffu] ^
          t[1][(word >> 48) & 0xffu] ^ t[0][(word >> 56) & 0xffu];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --size;
  }
  return ~crc;
}

}  // namespace resmodel::util

#include "util/kv_store.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace resmodel::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

KvStore KvStore::parse(const std::string& text) {
  KvStore store;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("KvStore: missing '=' on line " +
                               std::to_string(lineno));
    }
    store.append(trim(stripped.substr(0, eq)), trim(stripped.substr(eq + 1)));
  }
  return store;
}

std::string KvStore::serialize() const {
  std::ostringstream out;
  for (const auto& [key, value] : entries_) {
    out << key << " = " << value << '\n';
  }
  return out.str();
}

void KvStore::set(const std::string& key, const std::string& value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(key, value);
}

void KvStore::set(const std::string& key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  set(key, std::string(buf));
}

void KvStore::set(const std::string& key, long long value) {
  set(key, std::to_string(value));
}

void KvStore::append(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, value);
}

bool KvStore::contains(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

const std::string& KvStore::get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  throw std::out_of_range("KvStore: missing key '" + key + "'");
}

double KvStore::get_double(const std::string& key) const {
  const std::string& s = get(key);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("KvStore: key '" + key + "' is not a number: '" +
                             s + "'");
  }
  return v;
}

long long KvStore::get_int(const std::string& key) const {
  const std::string& s = get(key);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("KvStore: key '" + key +
                             "' is not an integer: '" + s + "'");
  }
  return v;
}

std::vector<std::string> KvStore::get_all(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

std::vector<std::string> KvStore::keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) {
    bool seen = false;
    for (const std::string& existing : out) {
      if (existing == k) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(k);
  }
  return out;
}

}  // namespace resmodel::util

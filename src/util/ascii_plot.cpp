#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace resmodel::util {

namespace {
constexpr char kGlyphs[] = "*o+x#@%&";
}

AsciiChart::AsciiChart(std::string title, std::vector<double> x)
    : title_(std::move(title)), x_(std::move(x)) {
  if (x_.empty()) throw std::invalid_argument("AsciiChart: empty x grid");
}

void AsciiChart::add_series(Series s) {
  if (s.y.size() != x_.size()) {
    throw std::invalid_argument("AsciiChart: series length mismatch");
  }
  series_.push_back(std::move(s));
}

void AsciiChart::set_y_range(double lo, double hi) noexcept {
  fixed_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

void AsciiChart::print(std::ostream& out, int width, int height) const {
  double lo = y_lo_, hi = y_hi_;
  if (!fixed_range_) {
    lo = std::numeric_limits<double>::infinity();
    hi = -lo;
    for (const Series& s : series_) {
      for (double v : s.y) {
        if (log_y_ && v <= 0) continue;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!(lo < hi)) {
      lo = lo - 1.0;
      hi = hi + 1.0;
    }
  }
  const auto transform = [&](double v) { return log_y_ ? std::log10(v) : v; };
  const double tlo = transform(lo), thi = transform(hi);

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const double x_min = x_.front(), x_max = x_.back();
  const double x_span = (x_max > x_min) ? (x_max - x_min) : 1.0;

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    for (std::size_t i = 0; i < x_.size(); ++i) {
      const double v = series_[si].y[i];
      if (log_y_ && v <= 0) continue;
      const double ty = transform(v);
      if (ty < tlo || ty > thi) continue;
      const int col = static_cast<int>(
          std::lround((x_[i] - x_min) / x_span * (width - 1)));
      const int row = static_cast<int>(
          std::lround((thi - ty) / (thi - tlo) * (height - 1)));
      if (col >= 0 && col < width && row >= 0 && row < height) {
        grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
            glyph;
      }
    }
  }

  out << title_ << '\n';
  char label[32];
  for (int r = 0; r < height; ++r) {
    if (r == 0 || r == height - 1) {
      const double ty = thi - (thi - tlo) * r / (height - 1);
      const double v = log_y_ ? std::pow(10.0, ty) : ty;
      std::snprintf(label, sizeof(label), "%10.4g |", v);
    } else {
      std::snprintf(label, sizeof(label), "%10s |", "");
    }
    out << label << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-')
      << '\n';
  std::snprintf(label, sizeof(label), "%-10.6g", x_min);
  out << std::string(12, ' ') << label;
  std::snprintf(label, sizeof(label), "%10.6g", x_max);
  out << std::string(static_cast<std::size_t>(std::max(0, width - 22)), ' ')
      << label << '\n';
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out << "  " << kGlyphs[si % (sizeof(kGlyphs) - 1)] << " = "
        << series_[si].name << '\n';
  }
}

void print_bar_chart(std::ostream& out, const std::string& title,
                     const std::vector<std::pair<std::string, double>>& bars,
                     int max_width) {
  out << title << '\n';
  double max_v = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : bars) {
    max_v = std::max(max_v, v);
    label_w = std::max(label_w, label.size());
  }
  if (max_v <= 0) max_v = 1.0;
  for (const auto& [label, v] : bars) {
    const int n = static_cast<int>(std::lround(v / max_v * max_width));
    out << "  " << label << std::string(label_w - label.size(), ' ') << " | "
        << std::string(static_cast<std::size_t>(std::max(0, n)), '#') << ' ';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    out << buf << '\n';
  }
}

}  // namespace resmodel::util

#include "util/csv.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace resmodel::util {

namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void write_field(std::ostream& out, const std::string& s) {
  if (!needs_quoting(s)) {
    out << s;
    return;
  }
  out << '"';
  for (const char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void CsvWriter::write_row(const CsvRow& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    write_field(*out_, fields[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::field(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CsvWriter::field(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

bool CsvReader::read_row(CsvRow& row) {
  row.clear();
  std::string field;
  bool in_quotes = false;
  bool started = false;  // saw at least one character or delimiter
  int c = 0;
  while ((c = in_->get()) != std::char_traits<char>::eof()) {
    started = true;
    if (in_quotes) {
      if (c == '"') {
        const int peek = in_->peek();
        if (peek == '"') {
          in_->get();
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(static_cast<char>(c));
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          throw std::runtime_error("CsvReader: quote inside unquoted field");
        }
        in_quotes = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        row.push_back(std::move(field));
        return true;
      default:
        field.push_back(static_cast<char>(c));
    }
  }
  if (in_quotes) {
    throw std::runtime_error("CsvReader: unterminated quoted field");
  }
  if (!started) return false;
  row.push_back(std::move(field));
  return true;
}

CsvRow parse_csv_line(const std::string& line) {
  std::istringstream in(line);
  CsvRow row;
  CsvReader reader(in);
  if (!reader.read_row(row)) row.clear();
  return row;
}

}  // namespace resmodel::util

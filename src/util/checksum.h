// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// block of the columnar snapshot format (src/store/).
//
// Chosen over a plain CRC32 for its better error-detection properties on
// storage payloads (it is what iSCSI, ext4 metadata and LevelDB/RocksDB
// block formats use), and implemented in portable C++ (slice-by-8 table
// lookup, no SSE4.2 dependency) so the on-disk format verifies identically
// on every arch the backend dispatch layer supports. ~2-3 GB/s in practice,
// far above the disk bandwidth the snapshot writer can sustain.
#pragma once

#include <cstddef>
#include <cstdint>

namespace resmodel::util {

/// CRC32C of `size` bytes. `seed` chains incremental computations:
/// crc32c(ab) == crc32c(b, len_b, crc32c(a, len_a)).
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0) noexcept;

}  // namespace resmodel::util

#include "util/model_date.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace resmodel::util {

namespace {

constexpr int kEpochYear = 2006;

int days_in_year(int y) noexcept { return is_leap_year(y) ? 366 : 365; }

// Day index (relative to 2006-01-01) of January 1 of year y.
int year_start_day(int y) noexcept {
  int day = 0;
  if (y >= kEpochYear) {
    for (int yy = kEpochYear; yy < y; ++yy) day += days_in_year(yy);
  } else {
    for (int yy = y; yy < kEpochYear; ++yy) day -= days_in_year(yy);
  }
  return day;
}

}  // namespace

bool is_leap_year(int y) noexcept {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int days_in_month(int y, int m) noexcept {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap_year(y)) return 29;
  return kDays[static_cast<std::size_t>(m - 1)];
}

ModelDate ModelDate::from_day_index(int day) noexcept { return ModelDate(day); }

ModelDate ModelDate::from_year(double year) noexcept {
  const int whole = static_cast<int>(std::floor(year));
  const double frac = year - whole;
  const int day =
      year_start_day(whole) +
      static_cast<int>(std::lround(frac * days_in_year(whole)));
  return ModelDate(day);
}

ModelDate ModelDate::from_ymd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    throw std::invalid_argument("ModelDate: month out of range");
  }
  if (day < 1 || day > days_in_month(year, month)) {
    throw std::invalid_argument("ModelDate: day out of range");
  }
  int index = year_start_day(year);
  for (int m = 1; m < month; ++m) index += days_in_month(year, m);
  index += day - 1;
  return ModelDate(index);
}

ModelDate ModelDate::parse(const std::string& iso) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    throw std::invalid_argument("ModelDate: expected YYYY-MM-DD, got '" + iso +
                                "'");
  }
  return from_ymd(y, m, d);
}

double ModelDate::year() const noexcept {
  // Find the calendar year containing this day index.
  int y = kEpochYear;
  int start = 0;
  if (day_ >= 0) {
    while (day_ >= start + days_in_year(y)) {
      start += days_in_year(y);
      ++y;
    }
  } else {
    while (day_ < start) {
      --y;
      start -= days_in_year(y);
    }
  }
  return y + static_cast<double>(day_ - start) / days_in_year(y);
}

ModelDate::Ymd ModelDate::ymd() const noexcept {
  int y = kEpochYear;
  int start = 0;
  if (day_ >= 0) {
    while (day_ >= start + days_in_year(y)) {
      start += days_in_year(y);
      ++y;
    }
  } else {
    while (day_ < start) {
      --y;
      start -= days_in_year(y);
    }
  }
  int rem = day_ - start;
  int m = 1;
  while (rem >= days_in_month(y, m)) {
    rem -= days_in_month(y, m);
    ++m;
  }
  return {y, m, rem + 1};
}

std::string ModelDate::to_string() const {
  const Ymd c = ymd();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

}  // namespace resmodel::util

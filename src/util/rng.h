// Deterministic, seedable pseudo-random number generation.
//
// The generators here (SplitMix64 for seeding, xoshiro256++ for the stream)
// are small, fast, and fully reproducible across platforms — a requirement
// for the paper's experiments, where every table/figure must regenerate the
// same rows on every run. std::mt19937_64 would also work but its
// distribution adaptors (std::normal_distribution etc.) are not
// implementation-portable; we implement our own transforms in stats/.
#pragma once

#include <array>
#include <cstdint>

namespace resmodel::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush when used as a standalone generator; here it only seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna). Period 2^256 - 1.
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// used with standard algorithms (std::shuffle, std::sample).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1). 53-bit resolution.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). n must be > 0. Unbiased (rejection method).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Forks an independent stream: hashes this generator's next output into
  /// a fresh seed. Useful for giving each simulated entity its own stream.
  Rng fork() noexcept;

  /// The complete resumable state of a stream: the four xoshiro256++
  /// state words plus the Box–Muller cache (normal() hands out variates
  /// in pairs — dropping the cached second one would shift every
  /// subsequent draw, so it is part of the stream, not an optimization
  /// detail). Six 64-bit words total; the double is carried as its IEEE
  /// bit pattern so a round trip through storage is exact.
  struct State {
    std::array<std::uint64_t, 4> s{};
    std::uint64_t cached_normal_bits = 0;
    std::uint64_t has_cached_normal = 0;  ///< 0 or 1

    bool operator==(const State&) const = default;
  };

  /// Captures the stream state. save() then restore() on any Rng yields
  /// a generator producing the identical output sequence.
  State save() const noexcept;

  /// Overwrites this generator with a previously captured state.
  void restore(const State& state) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace resmodel::util

// Console table renderer for the bench binaries.
//
// Every table in the paper is reproduced as an aligned text table, usually
// with paired "paper" and "measured" columns. This renderer keeps the bench
// code declarative: add a header, add rows, print.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace resmodel::util {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple fixed-schema text table.
class Table {
 public:
  /// Creates a table with the given column headers. All columns default to
  /// right alignment except the first, which is left-aligned (row labels).
  explicit Table(std::vector<std::string> headers);

  /// Overrides the alignment of a column.
  void set_align(std::size_t column, Align align);

  /// Adds a row. Missing cells render empty; extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator line before the next row.
  void add_separator();

  /// Renders with single-space-padded `|` separators and a header rule.
  void print(std::ostream& out) const;

  /// Formatting helpers used throughout the benches.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);  // 0.12 -> 12.0
  static std::string sci(double v, int precision = 3);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace resmodel::util

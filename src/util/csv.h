// Minimal CSV reader/writer used for trace persistence and bench output.
//
// Supports RFC-4180-style quoting (fields containing commas, quotes or
// newlines are double-quoted; embedded quotes are doubled). No external
// dependencies; streams row-by-row so multi-hundred-MB traces do not need
// to fit in memory twice.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace resmodel::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Writes rows with correct quoting.
class CsvWriter {
 public:
  /// Does not take ownership of the stream; it must outlive the writer.
  explicit CsvWriter(std::ostream& out) noexcept : out_(&out) {}

  void write_row(const CsvRow& fields);

  /// Convenience: formats arithmetic values with enough digits to
  /// round-trip doubles.
  static std::string field(double v);
  static std::string field(long long v);

 private:
  std::ostream* out_;
};

/// Streaming reader. Handles quoted fields spanning lines.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) noexcept : in_(&in) {}

  /// Reads the next row into `row`. Returns false at end of input.
  /// Throws std::runtime_error on malformed quoting.
  bool read_row(CsvRow& row);

 private:
  std::istream* in_;
};

/// Parses a single CSV line (no embedded newlines). Used in tests and for
/// simple config files.
CsvRow parse_csv_line(const std::string& line);

}  // namespace resmodel::util

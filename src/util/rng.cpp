#include "util/rng.h"

#include <bit>
#include <cmath>
#include <numbers>

namespace resmodel::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state is a fixed point for xoshiro; SplitMix64 cannot produce
  // four consecutive zeros, but guard anyway for belt and braces.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // Top 53 bits -> [0, 1) with full double resolution.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. u1 in (0,1] so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

Rng Rng::fork() noexcept {
  return Rng(next() ^ 0x6a09e667f3bcc909ULL);
}

Rng::State Rng::save() const noexcept {
  State state;
  state.s = s_;
  state.cached_normal_bits = std::bit_cast<std::uint64_t>(cached_normal_);
  state.has_cached_normal = has_cached_normal_ ? 1 : 0;
  return state;
}

void Rng::restore(const State& state) noexcept {
  s_ = state.s;
  cached_normal_ = std::bit_cast<double>(state.cached_normal_bits);
  has_cached_normal_ = state.has_cached_normal != 0;
}

}  // namespace resmodel::util

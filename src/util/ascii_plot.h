// ASCII renderings of the paper's figures.
//
// The bench binaries must "print the same rows/series the paper reports".
// For figures, each bench prints both the underlying numeric series (CSV-ish
// rows, machine-readable) and a quick ASCII chart so the shape — growth,
// crossover, spread — is visible in a terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace resmodel::util {

/// One named series on a shared x grid.
struct Series {
  std::string name;
  std::vector<double> y;  ///< same length as the plot's x grid
};

/// A simple multi-series line chart rendered with per-series glyphs.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::vector<double> x);

  /// Adds a series. Length must match the x grid.
  void add_series(Series s);

  /// If set, the y axis is log10-scaled (all values must be > 0).
  void set_log_y(bool log_y) noexcept { log_y_ = log_y; }

  /// Fixes the y range; by default it spans the data.
  void set_y_range(double lo, double hi) noexcept;

  void print(std::ostream& out, int width = 72, int height = 20) const;

 private:
  std::string title_;
  std::vector<double> x_;
  std::vector<Series> series_;
  bool log_y_ = false;
  bool fixed_range_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;
};

/// Horizontal bar histogram: one labelled bar per bin, scaled to max width.
void print_bar_chart(std::ostream& out, const std::string& title,
                     const std::vector<std::pair<std::string, double>>& bars,
                     int max_width = 50);

}  // namespace resmodel::util

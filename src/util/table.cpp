#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace resmodel::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  aligns_.assign(headers_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) {
    throw std::out_of_range("Table::set_align: column out of range");
  }
  aligns_[column] = align;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than columns");
  }
  cells.resize(headers_.size());
  rows_.push_back({std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| ";
      const std::string& s = cells[c];
      const std::size_t pad = widths[c] - s.size();
      if (aligns_[c] == Align::kRight) out << std::string(pad, ' ') << s;
      else out << s << std::string(pad, ' ');
      out << ' ';
    }
    out << "|\n";
  };

  const auto print_rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator_before) print_rule();
    print_cells(row.cells);
  }
  print_rule();
}

std::string Table::num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace resmodel::util

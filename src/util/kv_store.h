// Flat key-value text serialization for model parameters.
//
// ModelParams round-trips through a human-diffable "key = value" format
// (one entry per line, '#' comments, repeated keys form ordered lists).
// This is what the paper's public "tool for automated model generation"
// would emit, and what examples/ consume.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace resmodel::util {

/// Ordered multimap of string keys to string values with typed accessors.
class KvStore {
 public:
  KvStore() = default;

  /// Parses "key = value" lines. Blank lines and '#' comments are skipped.
  /// Throws std::runtime_error on lines without '='.
  static KvStore parse(const std::string& text);

  /// Serializes in insertion order.
  std::string serialize() const;

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);
  void set(const std::string& key, long long value);

  /// Appends a value under a (possibly repeated) key.
  void append(const std::string& key, const std::string& value);

  bool contains(const std::string& key) const;

  /// Typed getters. Throw std::out_of_range if missing,
  /// std::runtime_error if unparsable.
  const std::string& get(const std::string& key) const;
  double get_double(const std::string& key) const;
  long long get_int(const std::string& key) const;

  /// All values stored under `key`, in insertion order.
  std::vector<std::string> get_all(const std::string& key) const;

  /// All keys in first-insertion order (each listed once).
  std::vector<std::string> keys() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace resmodel::util

// Time axis for the host model.
//
// The paper expresses every evolution law as a * exp(b * (year - 2006)), so
// the natural model coordinate is the fractional year. Traces, on the other
// hand, record integer *day indices* (days since 2006-01-01, the start of
// the measurement window). ModelDate provides exact conversions between the
// two plus calendar (y/m/d) parsing for the dates the paper names
// (e.g. "September 1, 2010").
#pragma once

#include <compare>
#include <string>

namespace resmodel::util {

/// Epoch of the measurement window: 2006-01-01 (day 0, year 2006.0).
class ModelDate {
 public:
  ModelDate() noexcept = default;

  /// From a day index relative to 2006-01-01. Negative indices are allowed
  /// (hosts created before the window).
  static ModelDate from_day_index(int day) noexcept;

  /// From a fractional year, e.g. 2010.5. Rounds to the nearest day.
  static ModelDate from_year(double year) noexcept;

  /// From a calendar date. Throws std::invalid_argument on invalid dates.
  static ModelDate from_ymd(int year, int month, int day);

  /// Parses "YYYY-MM-DD". Throws std::invalid_argument on malformed input.
  static ModelDate parse(const std::string& iso);

  int day_index() const noexcept { return day_; }

  /// Fractional year, e.g. 2007.204. Uses the true length of each year
  /// (365 or 366 days) so calendar boundaries land on integer years.
  double year() const noexcept;

  /// Years since 2006.0 — the `t` in the paper's a*e^(b t) laws.
  double t() const noexcept { return year() - 2006.0; }

  /// Calendar components.
  struct Ymd {
    int year;
    int month;  // 1..12
    int day;    // 1..31
  };
  Ymd ymd() const noexcept;

  /// "YYYY-MM-DD".
  std::string to_string() const;

  ModelDate plus_days(int days) const noexcept {
    return from_day_index(day_ + days);
  }

  friend auto operator<=>(const ModelDate&, const ModelDate&) = default;

 private:
  explicit ModelDate(int day) noexcept : day_(day) {}
  int day_ = 0;
};

/// True iff `y` is a Gregorian leap year.
bool is_leap_year(int y) noexcept;

/// Number of days in the given month of the given year.
int days_in_month(int y, int m) noexcept;

}  // namespace resmodel::util

// The AVX2 arm: 4-wide double / 8-wide float intrinsic versions of the
// dispatch kernels, using blends where the AVX-512 arm uses mask
// registers. Compiled with -mavx2 (plus -ffp-contract=off;
// src/CMakeLists.txt) and only called when resolve() selected it — see
// kernels_avx512.cpp for the shared bit-identity notes (mul/add only,
// never fmadd; exact lane-wise min; sentinel-blended index tie-breaks).
#include "backend/kernels_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>

namespace resmodel::backend {

namespace {

inline double reduce_min_pd(__m256d v) noexcept {
  __m128d m = _mm_min_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  m = _mm_min_sd(m, _mm_unpackhi_pd(m, m));
  return _mm_cvtsd_f64(m);
}

EctBlockMin ect_block_sweep_avx2(const double* vals, const double* inv,
                                 const std::uint32_t* order, std::size_t len,
                                 double task, double best_done) {
  if (len != kKernelBlock) {
    return detail::blocked_ops().ect_block_sweep(vals, inv, order, len,
                                                 task, best_done);
  }
  const __m256d vt = _mm256_set1_pd(task);
  alignas(32) double done[kKernelBlock];
  __m256d vm = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  for (std::size_t j = 0; j < kKernelBlock; j += 4) {
    const __m256d d = _mm256_add_pd(
        _mm256_loadu_pd(vals + j),
        _mm256_mul_pd(vt, _mm256_loadu_pd(inv + j)));
    _mm256_store_pd(done + j, d);
    vm = _mm256_min_pd(vm, d);
  }
  const double m = reduce_min_pd(vm);
  if (m > best_done) {
    return {m, std::numeric_limits<std::uint32_t>::max()};
  }
  // Equality pass stays scalar here (the 64-bit lane masks do not line
  // up with the 32-bit order column without a widening shuffle); it
  // only runs for blocks that beat or tie the incumbent.
  std::uint32_t m_best = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t i = 0; i < kKernelBlock; ++i) {
    if (done[i] == m) m_best = std::min(m_best, order[i]);
  }
  return {m, m_best};
}

double column_min_avx2(const double* x, std::size_t len) {
  std::size_t i = 0;
  double m;
  if (len >= 4) {
    __m256d vm = _mm256_loadu_pd(x);
    for (i = 4; i + 4 <= len; i += 4) {
      vm = _mm256_min_pd(vm, _mm256_loadu_pd(x + i));
    }
    m = reduce_min_pd(vm);
  } else {
    m = x[0];
    i = 1;
  }
  for (; i < len; ++i) m = std::min(m, x[i]);
  return m;
}

std::uint32_t row_bounds_argmin_avx2(const double* row,
                                     const double* bmin_inv, double over,
                                     std::size_t n, double* bounds) {
  const __m256d vo = _mm256_set1_pd(over);
  __m256d vm = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d b = _mm256_add_pd(
        _mm256_loadu_pd(row + i),
        _mm256_mul_pd(vo, _mm256_loadu_pd(bmin_inv + i)));
    _mm256_storeu_pd(bounds + i, b);
    vm = _mm256_min_pd(vm, b);
  }
  double tightest = reduce_min_pd(vm);
  for (; i < n; ++i) {
    const double b = row[i] + over * bmin_inv[i];
    bounds[i] = b;
    tightest = std::min(tightest, b);
  }
  const __m256d vt = _mm256_set1_pd(tightest);
  for (i = 0; i + 4 <= n; i += 4) {
    const int eq = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(bounds + i), vt, _CMP_EQ_OQ));
    if (eq != 0) {
      return static_cast<std::uint32_t>(
          i + static_cast<std::size_t>(__builtin_ctz(
                  static_cast<unsigned>(eq))));
    }
  }
  for (; i < n; ++i) {
    if (bounds[i] == tightest) return static_cast<std::uint32_t>(i);
  }
  return 0;  // unreachable: tightest was read from bounds
}

void gate_sweep_f32_avx2(const GateBlockView<float>& v, float t, float* lb) {
  const __m256 vt = _mm256_set1_ps(t);
  const __m256 vinf =
      _mm256_set1_ps(std::numeric_limits<float>::infinity());
  const std::size_t L = v.levels;
  if (v.checkpoint) {
    for (std::size_t j = 0; j < kKernelBlock; j += 8) {
      const __m256 w = _mm256_mul_ps(vt, _mm256_loadu_ps(v.inv + j));
      const __m256 target =
          _mm256_add_ps(_mm256_loadu_ps(v.accr + j), w);
      __m256 spill =
          _mm256_add_ps(target, _mm256_loadu_ps(v.phi[L - 1] + j));
      for (std::size_t k = L - 1; k-- > 0;) {
        const __m256 ck = _mm256_loadu_ps(v.c[k] + j);
        const __m256 pk = _mm256_loadu_ps(v.phi[k] + j);
        const __m256 val = _mm256_add_ps(target, pk);
        const __m256 le = _mm256_cmp_ps(target, ck, _CMP_LE_OQ);
        spill = _mm256_min_ps(spill, _mm256_blendv_ps(vinf, val, le));
      }
      const __m256 fits = _mm256_add_ps(_mm256_loadu_ps(v.ready + j), w);
      const __m256 fm =
          _mm256_cmp_ps(w, _mm256_loadu_ps(v.sess + j), _CMP_LE_OQ);
      _mm256_storeu_ps(lb + j, _mm256_blendv_ps(spill, fits, fm));
    }
  } else {
    for (std::size_t j = 0; j < kKernelBlock; j += 8) {
      const __m256 w = _mm256_mul_ps(vt, _mm256_loadu_ps(v.inv + j));
      const __m256 rw = _mm256_add_ps(_mm256_loadu_ps(v.ready + j), w);
      const __m256 nw = _mm256_add_ps(_mm256_loadu_ps(v.next + j), w);
      const __m256 fm =
          _mm256_cmp_ps(w, _mm256_loadu_ps(v.sess + j), _CMP_LE_OQ);
      const __m256 fits = _mm256_blendv_ps(vinf, rw, fm);
      _mm256_storeu_ps(lb + j, _mm256_min_ps(fits, nw));
    }
  }
}

void gate_sweep_f64_avx2(const GateBlockView<double>& v, double t,
                         double* lb) {
  const __m256d vt = _mm256_set1_pd(t);
  const __m256d vinf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const std::size_t L = v.levels;
  if (v.checkpoint) {
    for (std::size_t j = 0; j < kKernelBlock; j += 4) {
      const __m256d w = _mm256_mul_pd(vt, _mm256_loadu_pd(v.inv + j));
      const __m256d target =
          _mm256_add_pd(_mm256_loadu_pd(v.accr + j), w);
      __m256d spill =
          _mm256_add_pd(target, _mm256_loadu_pd(v.phi[L - 1] + j));
      for (std::size_t k = L - 1; k-- > 0;) {
        const __m256d ck = _mm256_loadu_pd(v.c[k] + j);
        const __m256d pk = _mm256_loadu_pd(v.phi[k] + j);
        const __m256d val = _mm256_add_pd(target, pk);
        const __m256d le = _mm256_cmp_pd(target, ck, _CMP_LE_OQ);
        spill = _mm256_min_pd(spill, _mm256_blendv_pd(vinf, val, le));
      }
      const __m256d fits = _mm256_add_pd(_mm256_loadu_pd(v.ready + j), w);
      const __m256d fm =
          _mm256_cmp_pd(w, _mm256_loadu_pd(v.sess + j), _CMP_LE_OQ);
      _mm256_storeu_pd(lb + j, _mm256_blendv_pd(spill, fits, fm));
    }
  } else {
    for (std::size_t j = 0; j < kKernelBlock; j += 4) {
      const __m256d w = _mm256_mul_pd(vt, _mm256_loadu_pd(v.inv + j));
      const __m256d rw = _mm256_add_pd(_mm256_loadu_pd(v.ready + j), w);
      const __m256d nw = _mm256_add_pd(_mm256_loadu_pd(v.next + j), w);
      const __m256d fm =
          _mm256_cmp_pd(w, _mm256_loadu_pd(v.sess + j), _CMP_LE_OQ);
      const __m256d fits = _mm256_blendv_pd(vinf, rw, fm);
      _mm256_storeu_pd(lb + j, _mm256_min_pd(fits, nw));
    }
  }
}

void score_pack_avx2(const double* log_c, const double* log_m,
                     const double* log_i, const double* log_f,
                     const double* log_d, const ScoreWeights& weights,
                     std::size_t n, double* score, std::uint64_t* pref) {
  const __m256d w0 = _mm256_set1_pd(weights.w[0]);
  const __m256d w1 = _mm256_set1_pd(weights.w[1]);
  const __m256d w2 = _mm256_set1_pd(weights.w[2]);
  const __m256d w3 = _mm256_set1_pd(weights.w[3]);
  const __m256d w4 = _mm256_set1_pd(weights.w[4]);
  const __m256d zero = _mm256_setzero_pd();
  const __m128i ones = _mm_set1_epi32(-1);
  const __m128i mant = _mm_set1_epi32(0x7FFFFFFF);
  const __m256i iota = _mm256_set_epi64x(3, 2, 1, 0);
  std::size_t h = 0;
  for (; h + 4 <= n; h += 4) {
    __m256d s = _mm256_mul_pd(w0, _mm256_loadu_pd(log_c + h));
    s = _mm256_add_pd(s, _mm256_mul_pd(w1, _mm256_loadu_pd(log_m + h)));
    s = _mm256_add_pd(s, _mm256_mul_pd(w2, _mm256_loadu_pd(log_i + h)));
    s = _mm256_add_pd(s, _mm256_mul_pd(w3, _mm256_loadu_pd(log_f + h)));
    s = _mm256_add_pd(s, _mm256_mul_pd(w4, _mm256_loadu_pd(log_d + h)));
    _mm256_storeu_pd(score + h, s);
    const __m128 f = _mm256_cvtpd_ps(_mm256_add_pd(s, zero));
    const __m128i bits = _mm_castps_si128(f);
    const __m128i sign = _mm_srai_epi32(bits, 31);
    const __m128i pos = _mm_and_si128(_mm_xor_si128(bits, ones), mant);
    const __m128i key = _mm_blendv_epi8(pos, bits, sign);
    const __m256i entry = _mm256_or_si256(
        _mm256_slli_epi64(_mm256_cvtepu32_epi64(key), 32),
        _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(h)),
                         iota));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(pref + h), entry);
  }
  for (; h < n; ++h) {
    const double s = weights.w[0] * log_c[h] + weights.w[1] * log_m[h] +
                     weights.w[2] * log_i[h] + weights.w[3] * log_f[h] +
                     weights.w[4] * log_d[h];
    score[h] = s;
    pref[h] = (static_cast<std::uint64_t>(descending_key(s)) << 32) |
              static_cast<std::uint64_t>(h);
  }
}

constexpr KernelOps kAvx2Ops = {
    &ect_block_sweep_avx2, &column_min_avx2, &row_bounds_argmin_avx2,
    &gate_sweep_f32_avx2, &gate_sweep_f64_avx2, &score_pack_avx2,
};

}  // namespace

namespace detail {
const KernelOps& avx2_ops() noexcept { return kAvx2Ops; }
}  // namespace detail

}  // namespace resmodel::backend

#else  // no AVX2 at compile time (non-x86 target): fall back.

namespace resmodel::backend::detail {
const KernelOps& avx2_ops() noexcept { return blocked_ops(); }
}  // namespace resmodel::backend::detail

#endif

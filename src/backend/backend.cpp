#include "backend/backend.h"

#include <cstdlib>
#include <cstring>

namespace resmodel::backend {

CpuFeatures detect_cpu() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  f.avx2 = __builtin_cpu_supports("avx2");
  f.avx512 = __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
#endif
  return f;
}

namespace {

CpuFeatures masked_cpu() noexcept {
  CpuFeatures f = detect_cpu();
  const char* env = std::getenv("RESMODEL_SIMD");
  if (env == nullptr) return f;
  if (std::strcmp(env, "off") == 0) {
    f.avx2 = false;
    f.avx512 = false;
  } else if (std::strcmp(env, "avx2") == 0) {
    f.avx512 = false;
  }
  // "avx512" / "native" / anything else: no cap. The variable can only
  // narrow what CPUID reports — it never fakes a missing extension.
  return f;
}

}  // namespace

CpuFeatures effective_cpu() noexcept {
  static const CpuFeatures cached = masked_cpu();
  return cached;
}

ResolvedBackend resolve(Backend requested) noexcept {
  switch (requested) {
    case Backend::kScalar:
      return {Backend::kScalar, SimdLevel::kNone};
    case Backend::kBlocked:
      return {Backend::kBlocked, SimdLevel::kNone};
    case Backend::kSimd:
    case Backend::kAuto: {
      const CpuFeatures cpu = effective_cpu();
      if (cpu.avx512) return {Backend::kSimd, SimdLevel::kAvx512};
      if (cpu.avx2) return {Backend::kSimd, SimdLevel::kAvx2};
      return {Backend::kBlocked, SimdLevel::kNone};
    }
  }
  return {Backend::kBlocked, SimdLevel::kNone};
}

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kScalar: return "scalar";
    case Backend::kBlocked: return "blocked";
    case Backend::kSimd: return "simd";
  }
  return "unknown";
}

std::string to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kNone: return "none";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

std::string backend_names() { return "auto|scalar|blocked|simd"; }

std::string cpu_feature_string() {
  const CpuFeatures cpu = effective_cpu();
  std::string out;
  if (cpu.avx2) out += "avx2";
  if (cpu.avx512) {
    if (!out.empty()) out += ",";
    out += "avx512f";
  }
  if (out.empty()) out = "none";
  return out;
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "auto") return Backend::kAuto;
  if (name == "scalar") return Backend::kScalar;
  if (name == "blocked") return Backend::kBlocked;
  if (name == "simd") return Backend::kSimd;
  return std::nullopt;
}

}  // namespace resmodel::backend

// Arm accessors behind backend::kernel_ops — one per TU so each arm can
// be compiled with its own -march flags (src/CMakeLists.txt) without
// leaking wide instructions into baseline code. Accessed through
// functions (not extern tables) so there is no cross-TU static
// initialization order to worry about, and so the AVX TUs can fall back
// to blocked_ops() when built for a non-x86 target.
#pragma once

#include "backend/kernels.h"

namespace resmodel::backend::detail {

const KernelOps& blocked_ops() noexcept;
const KernelOps& avx2_ops() noexcept;
const KernelOps& avx512_ops() noexcept;

}  // namespace resmodel::backend::detail

// The AVX-512 arm: 8-wide double / 16-wide float intrinsic versions of
// the dispatch kernels. Compiled with -mavx512f -mavx512dq -mavx512bw
// -mavx512vl (plus the baseline -ffp-contract=off; src/CMakeLists.txt)
// and only ever CALLED when resolve() saw those CPUID bits — nothing in
// this TU runs at static initialization, so linking it into a baseline
// binary is safe.
//
// Bit-identity notes (the contract is in kernels.h):
//  - every a * b + c is _mm512_mul + _mm512_add — NEVER _mm512_fmadd:
//    one rounding per operation, exactly like the -ffp-contract=off
//    scalar and blocked arms;
//  - min/compare/select are exact lane-wise operations, and the data is
//    NaN-free (all inputs finite or +inf with no inf-minus-inf chains),
//    so _mm512_min_* == std::min lane for lane and the horizontal
//    _mm512_reduce_min_* matches any sequential min order;
//  - the smallest-original-index tie-break masks the order column with
//    a UINT32_MAX sentinel (_mm256_mask_mov_epi32 — a blend, NOT a
//    maskz load: 0 is a valid host index) and min-reduces unsigned, so
//    unmatched lanes can never win.
#include "backend/kernels_internal.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>

namespace resmodel::backend {

namespace {

constexpr std::uint32_t kNoIndex = std::numeric_limits<std::uint32_t>::max();

inline std::uint32_t reduce_min_epu32(__m256i v) noexcept {
  __m128i m = _mm_min_epu32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  m = _mm_min_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_min_epu32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(m));
}

EctBlockMin ect_block_sweep_avx512(const double* vals, const double* inv,
                                   const std::uint32_t* order,
                                   std::size_t len, double task,
                                   double best_done) {
  if (len != kKernelBlock) {
    // Only the final partial block lands here; the scalar-epilogue cost
    // is once per task, not per block.
    return detail::blocked_ops().ect_block_sweep(vals, inv, order, len,
                                                 task, best_done);
  }
  const __m512d vt = _mm512_set1_pd(task);
  __m512d done[8];
  __m512d vm = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  for (std::size_t j = 0; j < 8; ++j) {
    const __m512d f = _mm512_loadu_pd(vals + j * 8);
    const __m512d iv = _mm512_loadu_pd(inv + j * 8);
    done[j] = _mm512_add_pd(f, _mm512_mul_pd(vt, iv));
    vm = _mm512_min_pd(vm, done[j]);
  }
  const double m = _mm512_reduce_min_pd(vm);
  if (m > best_done) return {m, kNoIndex};
  const __m512d vmin = _mm512_set1_pd(m);
  const __m256i sentinel = _mm256_set1_epi32(-1);  // kNoIndex
  __m256i best = sentinel;
  for (std::size_t j = 0; j < 8; ++j) {
    const __mmask8 eq = _mm512_cmp_pd_mask(done[j], vmin, _CMP_EQ_OQ);
    const __m256i ord = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(order + j * 8));
    best = _mm256_min_epu32(best, _mm256_mask_mov_epi32(sentinel, eq, ord));
  }
  return {m, reduce_min_epu32(best)};
}

double column_min_avx512(const double* x, std::size_t len) {
  std::size_t i = 0;
  double m;
  if (len >= 8) {
    __m512d vm = _mm512_loadu_pd(x);
    for (i = 8; i + 8 <= len; i += 8) {
      vm = _mm512_min_pd(vm, _mm512_loadu_pd(x + i));
    }
    m = _mm512_reduce_min_pd(vm);
  } else {
    m = x[0];
    i = 1;
  }
  for (; i < len; ++i) m = std::min(m, x[i]);
  return m;
}

std::uint32_t row_bounds_argmin_avx512(const double* row,
                                       const double* bmin_inv, double over,
                                       std::size_t n, double* bounds) {
  const __m512d vo = _mm512_set1_pd(over);
  __m512d vm = _mm512_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d b = _mm512_add_pd(
        _mm512_loadu_pd(row + i),
        _mm512_mul_pd(vo, _mm512_loadu_pd(bmin_inv + i)));
    _mm512_storeu_pd(bounds + i, b);
    vm = _mm512_min_pd(vm, b);
  }
  double tightest = _mm512_reduce_min_pd(vm);
  for (; i < n; ++i) {
    const double b = row[i] + over * bmin_inv[i];
    bounds[i] = b;
    tightest = std::min(tightest, b);
  }
  // Second pass over the just-written (cache-hot) bounds: the first
  // index attaining the minimum — the same block the sequential
  // first-strict-improvement scan picks.
  const __m512d vt = _mm512_set1_pd(tightest);
  for (i = 0; i + 8 <= n; i += 8) {
    const __mmask8 eq =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(bounds + i), vt, _CMP_EQ_OQ);
    if (eq != 0) {
      return static_cast<std::uint32_t>(
          i + static_cast<std::size_t>(__builtin_ctz(eq)));
    }
  }
  for (; i < n; ++i) {
    if (bounds[i] == tightest) return static_cast<std::uint32_t>(i);
  }
  return 0;  // unreachable: tightest was read from bounds
}

void gate_sweep_f32_avx512(const GateBlockView<float>& v, float t,
                           float* lb) {
  const __m512 vt = _mm512_set1_ps(t);
  const std::size_t L = v.levels;
  if (v.checkpoint) {
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t o = j * 16;
      const __m512 w = _mm512_mul_ps(vt, _mm512_loadu_ps(v.inv + o));
      const __m512 target =
          _mm512_add_ps(_mm512_loadu_ps(v.accr + o), w);
      __m512 spill =
          _mm512_add_ps(target, _mm512_loadu_ps(v.phi[L - 1] + o));
      for (std::size_t k = L - 1; k-- > 0;) {
        const __m512 ck = _mm512_loadu_ps(v.c[k] + o);
        const __m512 pk = _mm512_loadu_ps(v.phi[k] + o);
        const __m512 val = _mm512_add_ps(target, pk);
        // spill = min(spill, tg <= ck ? tg + pk : +inf), folded into a
        // masked min (min(spill, +inf) == spill on the false lanes).
        const __mmask16 le = _mm512_cmp_ps_mask(target, ck, _CMP_LE_OQ);
        spill = _mm512_mask_min_ps(spill, le, spill, val);
      }
      const __m512 fits = _mm512_add_ps(_mm512_loadu_ps(v.ready + o), w);
      const __mmask16 fm =
          _mm512_cmp_ps_mask(w, _mm512_loadu_ps(v.sess + o), _CMP_LE_OQ);
      _mm512_storeu_ps(lb + o, _mm512_mask_blend_ps(fm, spill, fits));
    }
  } else {
    for (std::size_t j = 0; j < 4; ++j) {
      const std::size_t o = j * 16;
      const __m512 w = _mm512_mul_ps(vt, _mm512_loadu_ps(v.inv + o));
      const __m512 rw = _mm512_add_ps(_mm512_loadu_ps(v.ready + o), w);
      const __m512 nw = _mm512_add_ps(_mm512_loadu_ps(v.next + o), w);
      // lb = min(w <= sess ? ready + w : +inf, next + w), folded the
      // same way.
      const __mmask16 fm =
          _mm512_cmp_ps_mask(w, _mm512_loadu_ps(v.sess + o), _CMP_LE_OQ);
      _mm512_storeu_ps(lb + o, _mm512_mask_min_ps(nw, fm, nw, rw));
    }
  }
}

void gate_sweep_f64_avx512(const GateBlockView<double>& v, double t,
                           double* lb) {
  const __m512d vt = _mm512_set1_pd(t);
  const std::size_t L = v.levels;
  if (v.checkpoint) {
    for (std::size_t j = 0; j < 8; ++j) {
      const std::size_t o = j * 8;
      const __m512d w = _mm512_mul_pd(vt, _mm512_loadu_pd(v.inv + o));
      const __m512d target =
          _mm512_add_pd(_mm512_loadu_pd(v.accr + o), w);
      __m512d spill =
          _mm512_add_pd(target, _mm512_loadu_pd(v.phi[L - 1] + o));
      for (std::size_t k = L - 1; k-- > 0;) {
        const __m512d ck = _mm512_loadu_pd(v.c[k] + o);
        const __m512d pk = _mm512_loadu_pd(v.phi[k] + o);
        const __m512d val = _mm512_add_pd(target, pk);
        const __mmask8 le = _mm512_cmp_pd_mask(target, ck, _CMP_LE_OQ);
        spill = _mm512_mask_min_pd(spill, le, spill, val);
      }
      const __m512d fits = _mm512_add_pd(_mm512_loadu_pd(v.ready + o), w);
      const __mmask8 fm =
          _mm512_cmp_pd_mask(w, _mm512_loadu_pd(v.sess + o), _CMP_LE_OQ);
      _mm512_storeu_pd(lb + o, _mm512_mask_blend_pd(fm, spill, fits));
    }
  } else {
    for (std::size_t j = 0; j < 8; ++j) {
      const std::size_t o = j * 8;
      const __m512d w = _mm512_mul_pd(vt, _mm512_loadu_pd(v.inv + o));
      const __m512d rw = _mm512_add_pd(_mm512_loadu_pd(v.ready + o), w);
      const __m512d nw = _mm512_add_pd(_mm512_loadu_pd(v.next + o), w);
      const __mmask8 fm =
          _mm512_cmp_pd_mask(w, _mm512_loadu_pd(v.sess + o), _CMP_LE_OQ);
      _mm512_storeu_pd(lb + o, _mm512_mask_min_pd(nw, fm, nw, rw));
    }
  }
}

void score_pack_avx512(const double* log_c, const double* log_m,
                       const double* log_i, const double* log_f,
                       const double* log_d, const ScoreWeights& weights,
                       std::size_t n, double* score, std::uint64_t* pref) {
  const __m512d w0 = _mm512_set1_pd(weights.w[0]);
  const __m512d w1 = _mm512_set1_pd(weights.w[1]);
  const __m512d w2 = _mm512_set1_pd(weights.w[2]);
  const __m512d w3 = _mm512_set1_pd(weights.w[3]);
  const __m512d w4 = _mm512_set1_pd(weights.w[4]);
  const __m512d zero = _mm512_setzero_pd();
  const __m256i ones = _mm256_set1_epi32(-1);
  const __m256i mant = _mm256_set1_epi32(0x7FFFFFFF);
  const __m512i iota = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t h = 0;
  for (; h + 8 <= n; h += 8) {
    // Left-to-right association, exactly the scalar chain:
    // (((w0*c + w1*m) + w2*i) + w3*f) + w4*d — mul/add only, no fma.
    __m512d s = _mm512_mul_pd(w0, _mm512_loadu_pd(log_c + h));
    s = _mm512_add_pd(s, _mm512_mul_pd(w1, _mm512_loadu_pd(log_m + h)));
    s = _mm512_add_pd(s, _mm512_mul_pd(w2, _mm512_loadu_pd(log_i + h)));
    s = _mm512_add_pd(s, _mm512_mul_pd(w3, _mm512_loadu_pd(log_f + h)));
    s = _mm512_add_pd(s, _mm512_mul_pd(w4, _mm512_loadu_pd(log_d + h)));
    _mm512_storeu_pd(score + h, s);
    // descending_key, vectorized: (s + 0.0) normalizes -0.0, cvtpd_ps
    // is the same monotone double->float rounding as static_cast, and
    // key = negative ? bits : ~bits & 0x7FFFFFFF (the complemented
    // sign-flip transform written out per sign).
    const __m256 f = _mm512_cvtpd_ps(_mm512_add_pd(s, zero));
    const __m256i bits = _mm256_castps_si256(f);
    const __m256i sign = _mm256_srai_epi32(bits, 31);
    const __m256i pos = _mm256_and_si256(_mm256_xor_si256(bits, ones), mant);
    const __m256i key = _mm256_blendv_epi8(pos, bits, sign);
    const __m512i entry = _mm512_or_si512(
        _mm512_slli_epi64(_mm512_cvtepu32_epi64(key), 32),
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(h)),
                         iota));
    _mm512_storeu_si512(pref + h, entry);
  }
  for (; h < n; ++h) {
    const double s = weights.w[0] * log_c[h] + weights.w[1] * log_m[h] +
                     weights.w[2] * log_i[h] + weights.w[3] * log_f[h] +
                     weights.w[4] * log_d[h];
    score[h] = s;
    pref[h] = (static_cast<std::uint64_t>(descending_key(s)) << 32) |
              static_cast<std::uint64_t>(h);
  }
}

constexpr KernelOps kAvx512Ops = {
    &ect_block_sweep_avx512, &column_min_avx512,
    &row_bounds_argmin_avx512, &gate_sweep_f32_avx512,
    &gate_sweep_f64_avx512, &score_pack_avx512,
};

}  // namespace

namespace detail {
const KernelOps& avx512_ops() noexcept { return kAvx512Ops; }
}  // namespace detail

}  // namespace resmodel::backend

#else  // no AVX-512 at compile time (non-x86 target): fall back.

namespace resmodel::backend::detail {
const KernelOps& avx512_ops() noexcept { return blocked_ops(); }
}  // namespace resmodel::backend::detail

#endif

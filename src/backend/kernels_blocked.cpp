// The blocked arm: the PR-3/5 kernel loop bodies, verbatim, moved behind
// the dispatch table. Compiled with -ffp-contract=off and
// -fno-trapping-math (src/CMakeLists.txt) — the same flags their
// original homes (schedule_state.cpp / block_envelope.cpp) carry — so
// the autovectorized code generation is unchanged by the move. This TU
// also hosts kernel_ops(), the only consumer of the per-arm accessors.
#include <algorithm>
#include <cstdint>
#include <limits>

#include "backend/kernels.h"
#include "backend/kernels_internal.h"

namespace resmodel::backend {

namespace {

EctBlockMin ect_block_sweep_blocked(const double* vals, const double* inv,
                                    const std::uint32_t* order,
                                    std::size_t len, double task,
                                    double best_done) {
  double done[kKernelBlock];
  for (std::size_t i = 0; i < len; ++i) {
    done[i] = vals[i] + task * inv[i];
  }
  double m = done[0];
  for (std::size_t i = 1; i < len; ++i) m = std::min(m, done[i]);
  EctBlockMin out{m, std::numeric_limits<std::uint32_t>::max()};
  if (m > best_done) return out;
  std::uint32_t m_best = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t i = 0; i < len; ++i) {
    if (done[i] == m) m_best = std::min(m_best, order[i]);
  }
  out.index = m_best;
  return out;
}

double column_min_blocked(const double* x, std::size_t len) {
  double m = x[0];
  for (std::size_t i = 1; i < len; ++i) m = std::min(m, x[i]);
  return m;
}

std::uint32_t row_bounds_argmin_blocked(const double* row,
                                        const double* bmin_inv, double over,
                                        std::size_t n, double* bounds) {
  std::uint32_t warm = 0;
  double tightest = std::numeric_limits<double>::infinity();
  for (std::size_t b = 0; b < n; ++b) {
    const double bound = row[b] + over * bmin_inv[b];
    bounds[b] = bound;
    if (bound < tightest) {
      tightest = bound;
      warm = static_cast<std::uint32_t>(b);
    }
  }
  return warm;
}

// BoundGate::eval_block's former body (block_envelope.h derives the
// bounds). The loop shapes are deliberate: the checkpoint level routing
// is a min of per-level candidates whose unselected arm is the CONSTANT
// +inf — a dependent select between two loads does not if-convert (gcc
// reports "control flow in loop"), the constant arm does, and
// if-conversion is what lets these sweeps autovectorize at all; loads
// are hoisted unconditionally for the same reason (gcc refuses to
// speculate a load that only appears in one ternary arm). The restart
// bound exploits next_start >= ready so min(fits-candidate, next + w)
// equals the routed value while keeping the unselected arm constant.
template <typename Real>
void gate_sweep_blocked(const GateBlockView<Real>& v, Real t, Real* lb) {
  constexpr Real kInfR = std::numeric_limits<Real>::infinity();
  const Real* __restrict inv = v.inv;
  const Real* __restrict sess = v.sess;
  const Real* __restrict ready = v.ready;
  Real w[kKernelBlock];
  for (std::size_t i = 0; i < kKernelBlock; ++i) w[i] = t * inv[i];
  if (v.checkpoint) {
    const Real* __restrict accr = v.accr;
    Real target[kKernelBlock];
    Real spill[kKernelBlock];
    for (std::size_t i = 0; i < kKernelBlock; ++i) {
      target[i] = accr[i] + w[i];
    }
    const Real* __restrict pl = v.phi[v.levels - 1];
    for (std::size_t i = 0; i < kKernelBlock; ++i) {
      spill[i] = target[i] + pl[i];
    }
    for (std::size_t k = v.levels - 1; k-- > 0;) {
      const Real* __restrict ck = v.c[k];
      const Real* __restrict pk = v.phi[k];
      for (std::size_t i = 0; i < kKernelBlock; ++i) {
        const Real tg = target[i];
        const Real val = tg + pk[i];
        const Real cand = tg <= ck[i] ? val : kInfR;
        spill[i] = std::min(spill[i], cand);
      }
    }
    for (std::size_t i = 0; i < kKernelBlock; ++i) {
      const Real fits = ready[i] + w[i];
      const Real sp = spill[i];
      lb[i] = w[i] <= sess[i] ? fits : sp;
    }
  } else {
    const Real* __restrict nx = v.next;
    for (std::size_t i = 0; i < kKernelBlock; ++i) {
      const Real rw = ready[i] + w[i];
      const Real fits = w[i] <= sess[i] ? rw : kInfR;
      lb[i] = std::min(fits, nx[i] + w[i]);
    }
  }
}

void gate_sweep_f32_blocked(const GateBlockView<float>& v, float t,
                            float* lb) {
  gate_sweep_blocked(v, t, lb);
}

void gate_sweep_f64_blocked(const GateBlockView<double>& v, double t,
                            double* lb) {
  gate_sweep_blocked(v, t, lb);
}

void score_pack_blocked(const double* log_c, const double* log_m,
                        const double* log_i, const double* log_f,
                        const double* log_d, const ScoreWeights& weights,
                        std::size_t n, double* score, std::uint64_t* pref) {
  const double w0 = weights.w[0];
  const double w1 = weights.w[1];
  const double w2 = weights.w[2];
  const double w3 = weights.w[3];
  const double w4 = weights.w[4];
  for (std::size_t h = 0; h < n; ++h) {
    const double s = w0 * log_c[h] + w1 * log_m[h] + w2 * log_i[h] +
                     w3 * log_f[h] + w4 * log_d[h];
    score[h] = s;
    pref[h] = (static_cast<std::uint64_t>(descending_key(s)) << 32) |
              static_cast<std::uint64_t>(h);
  }
}

constexpr KernelOps kBlockedOps = {
    &ect_block_sweep_blocked, &column_min_blocked,
    &row_bounds_argmin_blocked, &gate_sweep_f32_blocked,
    &gate_sweep_f64_blocked, &score_pack_blocked,
};

}  // namespace

namespace detail {
const KernelOps& blocked_ops() noexcept { return kBlockedOps; }
}  // namespace detail

const KernelOps& kernel_ops(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx2:
      return detail::avx2_ops();
    case SimdLevel::kAvx512:
      return detail::avx512_ops();
    case SimdLevel::kNone:
      break;
  }
  return kBlockedOps;
}

}  // namespace resmodel::backend

// The kernel-dispatch table behind backend::Backend — one function-
// pointer struct per SIMD level, each implementing the same five hot
// primitives over the columnar layouts the sim/ and churn/ kernels
// already maintain:
//
//   ect_block_sweep   — one pruning block of the MCT scan: materialize
//                       done[i] = vals[i] + task * inv[i], min-reduce,
//                       and (when the minimum can still matter) return
//                       the smallest ORIGINAL host index attaining it.
//   column_min        — plain min over a contiguous double column (the
//                       per-block free_at / ready_at refresh).
//   row_bounds_argmin — the churn level-A pass: bounds[b] = row[b] +
//                       over * bmin_inv[b] for every block, returning
//                       the FIRST index attaining the row minimum (the
//                       warm-start block).
//   gate_sweep_f32/64 — churn::BoundGate::eval_block over one padded
//                       64-lane block (checkpoint level routing or the
//                       restart two-piece bound).
//   score_pack        — the allocator's fused 5-column score sweep plus
//                       the descending_key radix-key pack.
//
// EXACTNESS RULES (what makes every arm bit-identical):
//  - No fused multiply-add, ever: a * b + c is two roundings in every
//    arm (the blocked TU compiles -ffp-contract=off, the SIMD TUs use
//    _mm*_mul + _mm*_add — never fmadd).
//  - Each lane's value is the same expression tree in the same order;
//    lanes never interact except through min, and IEEE min over
//    non-NaN data is exact and associative, so 2/4/8-wide reduction
//    trees agree with the sequential std::min chain bit for bit.
//  - Index reductions (tie-breaks, argmins) are over exact equality
//    with the already-reduced minimum, so they are pure integer min /
//    first-match scans — width changes the schedule, not the answer.
//
// Tail handling: ect_block_sweep / column_min / row_bounds_argmin take
// arbitrary lengths (the SIMD arms run a scalar epilogue); the gate
// sweeps are fixed 64-lane blocks whose tail lanes the gate pads inert
// (inv = 0, sess/ready/next = +inf), so they have no tail path at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "backend/backend.h"

namespace resmodel::backend {

/// Lanes per pruning block — must equal sim::ScheduleState::kBlockSize
/// (static_assert'ed where both are visible, in block_envelope.cpp).
inline constexpr std::size_t kKernelBlock = 64;

/// Must equal churn::kMaxLookaheadLevels (same static_assert).
inline constexpr std::size_t kGateMaxLevels = 12;

/// Result of one block of the MCT scan: the block minimum and, when the
/// caller's incumbent made the equality pass run (value <= best_done),
/// the smallest original host index attaining it. `index` is
/// UINT32_MAX — and must not be read — when value > best_done.
struct EctBlockMin {
  double value = 0.0;
  std::uint32_t index = 0;
};

/// Read-only view of one 64-lane block of a BoundGate's packed columns
/// (pointers pre-offset to the block base; all lanes valid — the gate
/// pads its tails). `levels` of the c/phi arrays are populated;
/// `checkpoint` selects the level-routing bound, else the restart bound.
template <typename Real>
struct GateBlockView {
  const Real* inv = nullptr;
  const Real* sess = nullptr;
  const Real* ready = nullptr;
  const Real* next = nullptr;
  const Real* accr = nullptr;
  const Real* c[kGateMaxLevels] = {};
  const Real* phi[kGateMaxLevels] = {};
  std::size_t levels = 0;
  bool checkpoint = true;
};

/// Cobb-Douglas exponents in column order (cores, memory, dhrystone,
/// whetstone, disk) — the allocator's score weights.
struct ScoreWeights {
  double w[5] = {};
};

/// Maps a score to a 32-bit key whose *ascending* unsigned order is the
/// *descending* float(score) order (sign-flip transform, complemented;
/// -0.0 normalized onto +0.0 first). Shared by every arm — the SIMD
/// score_pack implementations must match this bit for bit.
inline std::uint32_t descending_key(double score) noexcept {
  const float narrowed = static_cast<float>(score + 0.0);
  std::uint32_t bits;
  std::memcpy(&bits, &narrowed, sizeof(bits));
  bits = (bits & 0x80000000u) ? ~bits : (bits | 0x80000000u);
  return ~bits;
}

/// One dispatch arm. All pointers non-null; implementations are
/// stateless and thread-compatible (pure functions over their inputs).
struct KernelOps {
  /// Block MCT sweep over `len` <= kKernelBlock lanes: done[i] =
  /// vals[i] + task * inv[i]. Returns the block minimum; when it is
  /// <= best_done, also the smallest order[i] among the lanes attaining
  /// it (else index = UINT32_MAX, unread by contract).
  EctBlockMin (*ect_block_sweep)(const double* vals, const double* inv,
                                 const std::uint32_t* order, std::size_t len,
                                 double task, double best_done);
  /// min over x[0..len), len >= 1.
  double (*column_min)(const double* x, std::size_t len);
  /// bounds[b] = row[b] + over * bmin_inv[b] for b in [0, n); returns
  /// the first b attaining the minimum (n >= 1).
  std::uint32_t (*row_bounds_argmin)(const double* row,
                                     const double* bmin_inv, double over,
                                     std::size_t n, double* bounds);
  /// BoundGate::eval_block over one padded 64-lane block; writes
  /// kKernelBlock lower bounds (pad lanes produce +inf).
  void (*gate_sweep_f32)(const GateBlockView<float>& view, float task,
                         float* lb);
  void (*gate_sweep_f64)(const GateBlockView<double>& view, double task,
                         double* lb);
  /// score[h] = sum_k w[k] * col_k[h] (left-to-right association);
  /// pref[h] = (descending_key(score[h]) << 32) | h.
  void (*score_pack)(const double* log_c, const double* log_m,
                     const double* log_i, const double* log_f,
                     const double* log_d, const ScoreWeights& weights,
                     std::size_t n, double* score, std::uint64_t* pref);
};

/// The dispatch table for a resolved SIMD level. kNone returns the
/// blocked (autovectorized baseline) arm; kAvx2/kAvx512 return the
/// intrinsic arms — only call those on hardware resolve() selected
/// them for.
const KernelOps& kernel_ops(SimdLevel level) noexcept;

}  // namespace resmodel::backend

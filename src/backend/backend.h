// Compute-backend selection for the three hot columnar kernels.
//
// PRs 1-5 turned the scheduling and allocation hot paths into branch-free
// column sweeps whose vectorization was left to the autovectorizer (at
// the build's baseline -march, i.e. SSE2). This layer names that choice
// and adds an explicit-SIMD alternative:
//
//   kScalar  — the retained reference oracles (full-scan scalar loops; no
//              blocking, no pruning gates). The golden baseline every
//              other arm must match bit for bit.
//   kBlocked — the PR-3/5 blocked kernels as compiled at the tree's
//              baseline flags (autovectorized sweeps over 64-lane
//              blocks). Runs on any x86-64.
//   kSimd    — hand-written AVX2 / AVX-512 intrinsics for the same block
//              sweeps, selected by CPUID at runtime. Falls back to
//              kBlocked when the hardware has neither extension.
//   kAuto    — kSimd when available, else kBlocked (the default).
//
// BIT-IDENTITY CONTRACT. Every arm must produce bit-identical schedules,
// allocations and kernel-shape counters. The kernels are specified as
// contraction-free mul/add/min/select chains in a fixed association
// order: the scalar and blocked arms compile with -ffp-contract=off, and
// the SIMD arms use explicit _mm*_mul/_mm*_add intrinsics — never fused
// multiply-add — so equality holds by construction, not by instruction
// selection. Horizontal min reductions resolve ties as the smallest
// original index via lane-order masks (see kernels.h); exact min over
// NaN-free data is associative, so lane order never leaks into results.
//
// Runtime masking: the RESMODEL_SIMD environment variable caps the
// detected features — "off" (pretend neither AVX2 nor AVX-512 exists),
// "avx2" (cap at AVX2), "avx512" / "native" (no cap). CI's forced-scalar
// leg sets RESMODEL_SIMD=off so the dispatch-and-fallback path is
// exercised on machines that do have the extensions.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace resmodel::backend {

/// Requested backend (configs, CLI). kAuto resolves at runtime.
enum class Backend {
  kAuto,
  kScalar,
  kBlocked,
  kSimd,
};

/// Instruction-set arm the SIMD backend dispatches to.
enum class SimdLevel {
  kNone,    ///< blocked fallback (baseline autovectorized kernels)
  kAvx2,    ///< 256-bit: 4 doubles / 8 floats per op
  kAvx512,  ///< 512-bit: 8 doubles / 16 floats per op (F+DQ+BW+VL)
};

/// What the CPU offers for the kSimd arm.
struct CpuFeatures {
  bool avx2 = false;
  bool avx512 = false;  ///< AVX-512 F, DQ, BW and VL all present
};

/// Raw CPUID detection (no environment masking).
CpuFeatures detect_cpu() noexcept;

/// detect_cpu() capped by the RESMODEL_SIMD environment variable (read
/// once per process): "off" masks both, "avx2" masks avx512, anything
/// else ("native", "avx512", unset) masks nothing.
CpuFeatures effective_cpu() noexcept;

/// A fully resolved selection: `arm` is never kAuto, and `simd` is
/// kNone unless arm == kSimd.
struct ResolvedBackend {
  Backend arm = Backend::kBlocked;
  SimdLevel simd = SimdLevel::kNone;
};

/// Resolves a request against effective_cpu(): kScalar and kBlocked pass
/// through; kSimd picks the widest available level and falls back to
/// kBlocked when there is none; kAuto is kSimd-else-kBlocked.
ResolvedBackend resolve(Backend requested) noexcept;

std::string to_string(Backend backend);
std::string to_string(SimdLevel level);
/// "auto|scalar|blocked|simd" — for usage strings.
std::string backend_names();
/// e.g. "avx2,avx512f" or "none"; reflects effective_cpu().
std::string cpu_feature_string();

/// Parses a --backend= value; std::nullopt on anything unknown.
std::optional<Backend> parse_backend(std::string_view name);

}  // namespace resmodel::backend

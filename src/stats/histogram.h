// Fixed-bin histograms with PDF/CDF export, used to reproduce the paper's
// figure panels (Figs 1, 6, 8, 9, 10).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace resmodel::stats {

/// Equal-width or explicit-edge histogram over doubles.
class Histogram {
 public:
  /// `nbins` equal-width bins spanning [lo, hi). Values outside the range
  /// are counted in `underflow()` / `overflow()`.
  Histogram(double lo, double hi, std::size_t nbins);

  /// Explicit, strictly increasing bin edges (edges.size() >= 2).
  explicit Histogram(std::vector<double> edges);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  double bin_lo(std::size_t bin) const { return edges_.at(bin); }
  double bin_hi(std::size_t bin) const { return edges_.at(bin + 1); }
  double bin_center(std::size_t bin) const;

  /// Fraction of in-range samples per bin (sums to 1 over bins).
  std::vector<double> fractions() const;

  /// Probability density estimate: fraction / bin width.
  std::vector<double> density() const;

  /// Cumulative fraction at each bin's upper edge.
  std::vector<double> cumulative() const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  bool uniform_ = false;
  double lo_ = 0.0, width_ = 1.0;  // fast path for equal-width bins
};

/// Empirical CDF evaluated at each sorted sample point:
/// pairs (x_(i), (i+1)/n). Useful for plotting CDF figures.
std::vector<std::pair<double, double>> empirical_cdf(
    std::span<const double> xs);

}  // namespace resmodel::stats

#include "stats/qq.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resmodel::stats {

namespace {

// Empirical quantile over a pre-sorted sample (linear interpolation).
double sorted_quantile(const std::vector<double>& sorted, double p) {
  if (p <= 0.0) return sorted.front();
  if (p >= 1.0) return sorted.back();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

std::vector<double> sorted_copy(std::span<const double> xs,
                                const char* what) {
  if (xs.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty sample");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

std::vector<std::pair<double, double>> qq_points(std::span<const double> xs,
                                                 const Distribution& dist,
                                                 std::size_t points) {
  const std::vector<double> sorted = sorted_copy(xs, "qq_points");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    out.emplace_back(dist.quantile(p), sorted_quantile(sorted, p));
  }
  return out;
}

std::vector<std::pair<double, double>> qq_points_two_sample(
    std::span<const double> a, std::span<const double> b,
    std::size_t points) {
  const std::vector<double> sa = sorted_copy(a, "qq_points_two_sample");
  const std::vector<double> sb = sorted_copy(b, "qq_points_two_sample");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        (static_cast<double>(i) + 0.5) / static_cast<double>(points);
    out.emplace_back(sorted_quantile(sa, p), sorted_quantile(sb, p));
  }
  return out;
}

double qq_max_relative_deviation(
    const std::vector<std::pair<double, double>>& points) noexcept {
  if (points.empty()) return 0.0;
  // Normalize by the spread of the model quantiles (not per-point |x|,
  // which blows up where the quantile crosses zero).
  double x_lo = points.front().first, x_hi = points.front().first;
  double max_abs_x = 0.0;
  for (const auto& [x, y] : points) {
    x_lo = std::min(x_lo, x);
    x_hi = std::max(x_hi, x);
    max_abs_x = std::max(max_abs_x, std::fabs(x));
  }
  const double scale = std::max({x_hi - x_lo, max_abs_x, 1e-12});
  double max_dev = 0.0;
  for (const auto& [x, y] : points) {
    max_dev = std::max(max_dev, std::fabs(y - x) / scale);
  }
  return max_dev;
}

}  // namespace resmodel::stats

#include "stats/kstest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace resmodel::stats {

double ks_statistic(std::span<const double> xs,
                    const std::function<double(double)>& cdf) {
  if (xs.empty()) {
    throw std::invalid_argument("ks_statistic: empty sample");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double hi = static_cast<double>(i + 1) / n - f;  // D+
    const double lo = f - static_cast<double>(i) / n;      // D-
    d = std::max({d, hi, lo});
  }
  return d;
}

double ks_p_value(double d_statistic, std::size_t n) noexcept {
  if (n == 0) return 0.0;
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d_statistic;
  if (lambda <= 0.0) return 1.0;
  // Q_KS(lambda) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 lambda^2).
  double sum = 0.0;
  double sign = 1.0;
  const double l2 = lambda * lambda;
  for (int k = 1; k <= 100; ++k) {
    const double term = sign * std::exp(-2.0 * k * k * l2);
    sum += term;
    if (std::fabs(term) < 1e-12) break;
    sign = -sign;
  }
  const double p = 2.0 * sum;
  return std::clamp(p, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> xs, const Distribution& dist) {
  KsResult result;
  result.statistic =
      ks_statistic(xs, [&dist](double x) { return dist.cdf(x); });
  result.p_value = ks_p_value(result.statistic, xs.size());
  return result;
}

double subsampled_ks_p_value(std::span<const double> xs,
                             const Distribution& dist, int rounds,
                             std::size_t subsample_size, util::Rng& rng) {
  if (xs.empty()) {
    throw std::invalid_argument("subsampled_ks_p_value: empty sample");
  }
  if (xs.size() <= subsample_size) {
    return ks_test(xs, dist).p_value;
  }
  // Partial Fisher–Yates per round draws each subsample without
  // replacement; re-shuffling an already-permuted index array with fresh
  // randomness keeps every round uniform.
  std::vector<std::size_t> indices(xs.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  std::vector<double> subsample(subsample_size);
  double p_sum = 0.0;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < subsample_size; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.uniform_index(indices.size() - i));
      std::swap(indices[i], indices[j]);
      subsample[i] = xs[indices[i]];
    }
    p_sum += ks_test(subsample, dist).p_value;
  }
  return p_sum / rounds;
}

}  // namespace resmodel::stats

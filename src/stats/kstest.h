// One-sample Kolmogorov–Smirnov test.
//
// The paper notes KS on a large n rejects any model for tiny discrepancies,
// so p-values are computed as the mean over 100 tests on random 50-value
// subsamples (the same procedure as Javadi et al., MASCOTS'09). Both the
// raw test and the subsampled procedure are provided.
#pragma once

#include <functional>
#include <span>

#include "stats/distributions.h"
#include "util/rng.h"

namespace resmodel::stats {

/// KS statistic D = sup_x |F_emp(x) - F(x)| against a model CDF.
double ks_statistic(std::span<const double> xs,
                    const std::function<double(double)>& cdf);

/// Asymptotic two-sided p-value for the one-sample test, using Stephens'
/// finite-n correction: lambda = (sqrt(n) + 0.12 + 0.11/sqrt(n)) * D.
double ks_p_value(double d_statistic, std::size_t n) noexcept;

/// Convenience: statistic and p-value in one call.
struct KsResult {
  double statistic = 0.0;
  double p_value = 0.0;
};
KsResult ks_test(std::span<const double> xs, const Distribution& dist);

/// The paper's subsampled procedure: mean p-value of `rounds` KS tests,
/// each on `subsample_size` values drawn without replacement.
/// If xs.size() <= subsample_size, a single full-sample test is used.
double subsampled_ks_p_value(std::span<const double> xs,
                             const Distribution& dist, int rounds,
                             std::size_t subsample_size, util::Rng& rng);

}  // namespace resmodel::stats

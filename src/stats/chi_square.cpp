#include "stats/chi_square.h"

#include <stdexcept>
#include <vector>

#include "stats/special_functions.h"

namespace resmodel::stats {

namespace {

// Pools adjacent categories until every expected count >= min_expected.
// Returns pooled (observed, expected) pairs.
struct Pooled {
  std::vector<double> observed;
  std::vector<double> expected;
};

Pooled pool_categories(std::span<const std::uint64_t> observed,
                       const std::vector<double>& expected,
                       double min_expected) {
  Pooled out;
  double acc_obs = 0.0, acc_exp = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_obs += static_cast<double>(observed[i]);
    acc_exp += expected[i];
    if (acc_exp >= min_expected) {
      out.observed.push_back(acc_obs);
      out.expected.push_back(acc_exp);
      acc_obs = acc_exp = 0.0;
    }
  }
  // Fold any remainder into the last pooled bucket.
  if (acc_exp > 0.0 || acc_obs > 0.0) {
    if (out.expected.empty()) {
      out.observed.push_back(acc_obs);
      out.expected.push_back(acc_exp);
    } else {
      out.observed.back() += acc_obs;
      out.expected.back() += acc_exp;
    }
  }
  return out;
}

ChiSquareResult from_pooled(const Pooled& pooled, int df_reduction) {
  ChiSquareResult result;
  for (std::size_t i = 0; i < pooled.observed.size(); ++i) {
    if (pooled.expected[i] <= 0.0) continue;
    const double d = pooled.observed[i] - pooled.expected[i];
    result.statistic += d * d / pooled.expected[i];
  }
  result.degrees_of_freedom =
      static_cast<int>(pooled.observed.size()) - df_reduction;
  result.p_value =
      chi_square_p_value(result.statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace

double chi_square_p_value(double statistic, int degrees_of_freedom) noexcept {
  if (degrees_of_freedom <= 0) return 1.0;
  if (!(statistic > 0.0)) return 1.0;
  return gamma_q(degrees_of_freedom / 2.0, statistic / 2.0);
}

ChiSquareResult chi_square_test(std::span<const std::uint64_t> observed,
                                std::span<const double> expected_probs,
                                double min_expected) {
  if (observed.empty() || observed.size() != expected_probs.size()) {
    throw std::invalid_argument("chi_square_test: bad input sizes");
  }
  double total = 0.0;
  for (std::uint64_t o : observed) total += static_cast<double>(o);
  double prob_mass = 0.0;
  for (double p : expected_probs) {
    if (p < 0.0) {
      throw std::invalid_argument("chi_square_test: negative probability");
    }
    prob_mass += p;
  }
  if (!(prob_mass > 0.0) || !(total > 0.0)) {
    throw std::invalid_argument("chi_square_test: zero mass");
  }
  std::vector<double> expected(expected_probs.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = expected_probs[i] / prob_mass * total;
  }
  return from_pooled(pool_categories(observed, expected, min_expected), 1);
}

ChiSquareResult chi_square_two_sample(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b,
                                      double min_expected) {
  if (a.empty() || a.size() != b.size()) {
    throw std::invalid_argument("chi_square_two_sample: bad input sizes");
  }
  double total_a = 0.0, total_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total_a += static_cast<double>(a[i]);
    total_b += static_cast<double>(b[i]);
  }
  if (!(total_a > 0.0) || !(total_b > 0.0)) {
    throw std::invalid_argument("chi_square_two_sample: empty sample");
  }
  // Homogeneity: expected split of each category's pooled count follows
  // the sample-size proportions. Statistic over both rows; df = k - 1
  // over the categories dense enough to test.
  const double grand = total_a + total_b;
  // Compute the statistic directly over the 2 x k table.
  double statistic = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double col = static_cast<double>(a[i]) + static_cast<double>(b[i]);
    if (col <= 0.0) continue;
    const double exp_a = col * total_a / grand;
    const double exp_b = col * total_b / grand;
    if (exp_a < min_expected || exp_b < min_expected) {
      // Conservative: skip sparse categories (equivalent to pooling them
      // away for the test's purposes at our sample sizes).
      continue;
    }
    const double da = static_cast<double>(a[i]) - exp_a;
    const double db = static_cast<double>(b[i]) - exp_b;
    statistic += da * da / exp_a + db * db / exp_b;
    ++used;
  }
  ChiSquareResult result;
  result.statistic = statistic;
  result.degrees_of_freedom = used > 0 ? static_cast<int>(used) - 1 : 0;
  result.p_value =
      chi_square_p_value(result.statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace resmodel::stats

#include "stats/fitting.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "stats/descriptive.h"
#include "stats/kstest.h"
#include "stats/special_functions.h"

namespace resmodel::stats {

namespace {

bool all_positive(std::span<const double> xs) noexcept {
  for (double x : xs) {
    if (!(x > 0.0)) return false;
  }
  return true;
}

bool all_greater_than_one(std::span<const double> xs) noexcept {
  for (double x : xs) {
    if (!(x > 1.0)) return false;
  }
  return true;
}

std::vector<double> logs_of(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(std::log(x));
  return out;
}

// Gamma MLE: solve ln(k) - psi(k) = s with s = ln(mean) - mean(ln x),
// starting from the standard closed-form approximation, refined by Newton.
std::optional<double> gamma_shape_mle(double s) {
  if (!(s > 0.0)) return std::nullopt;  // zero-variance (all equal) data
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
             (12.0 * s);
  if (!(k > 0.0) || !std::isfinite(k)) return std::nullopt;
  for (int i = 0; i < 100; ++i) {
    const double f = std::log(k) - digamma(k) - s;
    const double fp = 1.0 / k - trigamma(k);
    if (fp == 0.0) break;
    double next = k - f / fp;
    if (!(next > 0.0)) next = k / 2.0;
    if (std::fabs(next - k) < 1e-12 * (1.0 + k)) {
      k = next;
      break;
    }
    k = next;
  }
  if (!(k > 0.0) || !std::isfinite(k)) return std::nullopt;
  return k;
}

double log_likelihood(const Distribution& dist, std::span<const double> xs) {
  double sum = 0.0;
  for (double x : xs) sum += dist.log_pdf(x);
  return sum;
}

}  // namespace

std::optional<NormalDist> fit_normal(std::span<const double> xs) {
  if (xs.size() < 2) return std::nullopt;
  const double m = mean(xs);
  // MLE uses the n denominator; with the paper's sample sizes the
  // distinction is immaterial, but be faithful to MLE.
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  const double sigma = std::sqrt(ss / static_cast<double>(xs.size()));
  if (!(sigma > 0.0)) return std::nullopt;
  return NormalDist(m, sigma);
}

std::optional<LogNormalDist> fit_lognormal(std::span<const double> xs) {
  if (xs.size() < 2 || !all_positive(xs)) return std::nullopt;
  const std::vector<double> ln = logs_of(xs);
  const auto inner = fit_normal(ln);
  if (!inner) return std::nullopt;
  return LogNormalDist(inner->mean(), inner->sigma());
}

std::optional<ExponentialDist> fit_exponential(std::span<const double> xs) {
  if (xs.empty()) return std::nullopt;
  for (double x : xs) {
    if (x < 0.0) return std::nullopt;
  }
  const double m = mean(xs);
  if (!(m > 0.0)) return std::nullopt;
  return ExponentialDist(1.0 / m);
}

std::optional<WeibullDist> fit_weibull(std::span<const double> xs) {
  if (xs.size() < 2 || !all_positive(xs)) return std::nullopt;
  const std::vector<double> ln = logs_of(xs);
  const double mean_ln = mean(ln);

  // Newton on g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0.
  // Start from the method-of-moments-style estimate via log variance:
  // Var[ln X] = pi^2 / (6 k^2).
  const double var_ln = variance(ln);
  double k = var_ln > 0.0 ? std::numbers::pi / std::sqrt(6.0 * var_ln) : 1.0;
  if (!(k > 0.0) || !std::isfinite(k)) k = 1.0;

  for (int iter = 0; iter < 100; ++iter) {
    double sum_xk = 0.0, sum_xk_ln = 0.0, sum_xk_ln2 = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double xk = std::pow(xs[i], k);
      sum_xk += xk;
      sum_xk_ln += xk * ln[i];
      sum_xk_ln2 += xk * ln[i] * ln[i];
    }
    if (!(sum_xk > 0.0)) return std::nullopt;
    const double ratio = sum_xk_ln / sum_xk;
    const double g = ratio - 1.0 / k - mean_ln;
    const double gp = (sum_xk_ln2 / sum_xk) - ratio * ratio + 1.0 / (k * k);
    if (!(gp != 0.0) || !std::isfinite(gp)) break;
    double next = k - g / gp;
    if (!(next > 0.0)) next = k / 2.0;
    if (std::fabs(next - k) < 1e-10 * (1.0 + k)) {
      k = next;
      break;
    }
    k = next;
  }
  if (!(k > 0.0) || !std::isfinite(k)) return std::nullopt;

  double sum_xk = 0.0;
  for (double x : xs) sum_xk += std::pow(x, k);
  const double lambda =
      std::pow(sum_xk / static_cast<double>(xs.size()), 1.0 / k);
  if (!(lambda > 0.0) || !std::isfinite(lambda)) return std::nullopt;
  return WeibullDist(k, lambda);
}

std::optional<ParetoDist> fit_pareto(std::span<const double> xs) {
  if (xs.size() < 2 || !all_positive(xs)) return std::nullopt;
  const double xm = minimum(xs);
  double sum_log_ratio = 0.0;
  for (double x : xs) sum_log_ratio += std::log(x / xm);
  if (!(sum_log_ratio > 0.0)) return std::nullopt;  // all equal
  const double alpha = static_cast<double>(xs.size()) / sum_log_ratio;
  return ParetoDist(alpha, xm);
}

std::optional<GammaDist> fit_gamma(std::span<const double> xs) {
  if (xs.size() < 2 || !all_positive(xs)) return std::nullopt;
  const double m = mean(xs);
  const double mean_ln = mean(logs_of(xs));
  const auto k = gamma_shape_mle(std::log(m) - mean_ln);
  if (!k) return std::nullopt;
  return GammaDist(*k, m / *k);
}

std::optional<LogGammaDist> fit_loggamma(std::span<const double> xs) {
  if (xs.size() < 2 || !all_greater_than_one(xs)) return std::nullopt;
  const std::vector<double> ln = logs_of(xs);
  const auto inner = fit_gamma(ln);
  if (!inner) return std::nullopt;
  return LogGammaDist(inner->k(), inner->theta());
}

std::span<const Family> all_families() noexcept {
  static constexpr std::array<Family, 7> kAll = {
      Family::kNormal,  Family::kLogNormal, Family::kExponential,
      Family::kWeibull, Family::kPareto,    Family::kGamma,
      Family::kLogGamma};
  return kAll;
}

std::string family_name(Family f) {
  switch (f) {
    case Family::kNormal: return "normal";
    case Family::kLogNormal: return "log-normal";
    case Family::kExponential: return "exponential";
    case Family::kWeibull: return "weibull";
    case Family::kPareto: return "pareto";
    case Family::kGamma: return "gamma";
    case Family::kLogGamma: return "log-gamma";
  }
  return "unknown";
}

std::unique_ptr<Distribution> fit_family(Family f,
                                         std::span<const double> xs) {
  switch (f) {
    case Family::kNormal: {
      if (auto d = fit_normal(xs)) return d->clone();
      return nullptr;
    }
    case Family::kLogNormal: {
      if (auto d = fit_lognormal(xs)) return d->clone();
      return nullptr;
    }
    case Family::kExponential: {
      if (auto d = fit_exponential(xs)) return d->clone();
      return nullptr;
    }
    case Family::kWeibull: {
      if (auto d = fit_weibull(xs)) return d->clone();
      return nullptr;
    }
    case Family::kPareto: {
      if (auto d = fit_pareto(xs)) return d->clone();
      return nullptr;
    }
    case Family::kGamma: {
      if (auto d = fit_gamma(xs)) return d->clone();
      return nullptr;
    }
    case Family::kLogGamma: {
      if (auto d = fit_loggamma(xs)) return d->clone();
      return nullptr;
    }
  }
  return nullptr;
}

std::vector<FitResult> select_best_distribution(
    std::span<const double> xs, const SelectionOptions& options) {
  std::vector<FitResult> results;
  util::Rng rng(options.seed);
  for (Family f : all_families()) {
    std::unique_ptr<Distribution> dist = fit_family(f, xs);
    if (!dist) continue;
    FitResult r;
    r.family = f;
    r.ks_statistic =
        ks_statistic(xs, [&dist](double x) { return dist->cdf(x); });
    r.avg_p_value = subsampled_ks_p_value(xs, *dist, options.subsamples,
                                          options.subsample_size, rng);
    r.log_likelihood = log_likelihood(*dist, xs);
    r.dist = std::move(dist);
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) {
              return a.avg_p_value > b.avg_p_value;
            });
  return results;
}

}  // namespace resmodel::stats

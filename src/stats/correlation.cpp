#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace resmodel::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Mid-ranks (average rank for ties), 1-based.
std::vector<double> mid_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double pearson(std::span<const double> xs,
               std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return kNaN;
  const double n = static_cast<double>(xs.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (!(sxx > 0.0) || !(syy > 0.0)) return kNaN;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return kNaN;
  const std::vector<double> rx = mid_ranks(xs);
  const std::vector<double> ry = mid_ranks(ys);
  return pearson(rx, ry);
}

Matrix correlation_matrix(std::span<const NamedColumn> columns) {
  const std::size_t k = columns.size();
  for (const NamedColumn& col : columns) {
    if (col.values.size() != columns.front().values.size()) {
      throw std::invalid_argument(
          "correlation_matrix: columns must be equally sized");
    }
  }
  Matrix m(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    m(i, i) = 1.0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const double r = pearson(columns[i].values, columns[j].values);
      m(i, j) = r;
      m(j, i) = r;
    }
  }
  return m;
}

Matrix spearman_matrix(std::span<const std::vector<double>> columns) {
  const std::size_t k = columns.size();
  for (const std::vector<double>& col : columns) {
    if (col.size() != columns.front().size()) {
      throw std::invalid_argument(
          "spearman_matrix: columns must be equally sized");
    }
  }
  Matrix m(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    m(i, i) = 1.0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const double r = spearman(columns[i], columns[j]);
      m(i, j) = r;
      m(j, i) = r;
    }
  }
  return m;
}

}  // namespace resmodel::stats

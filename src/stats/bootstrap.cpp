#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.h"

namespace resmodel::stats {

namespace {

BootstrapInterval interval_from(double point, std::vector<double> resampled,
                                double confidence) {
  std::sort(resampled.begin(), resampled.end());
  const double alpha = (1.0 - confidence) / 2.0;
  BootstrapInterval out;
  out.point = point;
  out.lo = quantile(resampled, alpha);
  out.hi = quantile(resampled, 1.0 - alpha);
  return out;
}

void check_args(std::size_t n, int rounds, double confidence) {
  if (n == 0) throw std::invalid_argument("bootstrap: empty sample");
  if (rounds < 2) throw std::invalid_argument("bootstrap: rounds < 2");
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence must be in (0, 1)");
  }
}

}  // namespace

BootstrapInterval bootstrap_ci(std::span<const double> xs,
                               const SampleStatistic& statistic, int rounds,
                               double confidence, util::Rng& rng) {
  check_args(xs.size(), rounds, confidence);
  std::vector<double> resampled_stats;
  resampled_stats.reserve(static_cast<std::size_t>(rounds));
  std::vector<double> resample(xs.size());
  for (int round = 0; round < rounds; ++round) {
    for (double& v : resample) v = xs[rng.uniform_index(xs.size())];
    resampled_stats.push_back(statistic(resample));
  }
  return interval_from(statistic(xs), std::move(resampled_stats), confidence);
}

BootstrapInterval bootstrap_ci_paired(std::span<const double> xs,
                                      std::span<const double> ys,
                                      const PairedStatistic& statistic,
                                      int rounds, double confidence,
                                      util::Rng& rng) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("bootstrap: paired size mismatch");
  }
  check_args(xs.size(), rounds, confidence);
  std::vector<double> resampled_stats;
  resampled_stats.reserve(static_cast<std::size_t>(rounds));
  std::vector<double> rx(xs.size()), ry(ys.size());
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t j = rng.uniform_index(xs.size());
      rx[i] = xs[j];
      ry[i] = ys[j];
    }
    resampled_stats.push_back(statistic(rx, ry));
  }
  return interval_from(statistic(xs, ys), std::move(resampled_stats),
                       confidence);
}

}  // namespace resmodel::stats

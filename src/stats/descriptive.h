// Descriptive statistics over double samples.
#pragma once

#include <span>
#include <vector>

namespace resmodel::stats {

/// Arithmetic mean. Returns NaN for empty input.
double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance (n-1 denominator). NaN for n < 2.
double variance(std::span<const double> xs) noexcept;

/// sqrt(variance).
double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile, q in [0, 1]. Copies + sorts internally.
/// NaN for empty input.
double quantile(std::span<const double> xs, double q);

/// quantile(xs, 0.5).
double median(std::span<const double> xs);

/// Min / max. NaN for empty input.
double minimum(std::span<const double> xs) noexcept;
double maximum(std::span<const double> xs) noexcept;

/// One-pass summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double variance = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes all Summary fields. Empty input yields count = 0 and NaNs.
Summary summarize(std::span<const double> xs);

}  // namespace resmodel::stats

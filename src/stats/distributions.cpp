#include "stats/distributions.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "stats/special_functions.h"

namespace resmodel::stats {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kInf = std::numeric_limits<double>::infinity();

void require_positive(double v, const char* what) {
  if (!(v > 0.0)) {
    throw std::invalid_argument(std::string(what) + " must be > 0");
  }
}
}  // namespace

// ---------------------------------------------------------------- Normal --

NormalDist::NormalDist(double mean, double sigma) : mean_(mean), sigma_(sigma) {
  require_positive(sigma, "NormalDist sigma");
}

double NormalDist::pdf(double x) const noexcept {
  const double z = (x - mean_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double NormalDist::log_pdf(double x) const noexcept {
  const double z = (x - mean_) / sigma_;
  return -0.5 * z * z - std::log(sigma_) -
         0.5 * std::log(2.0 * std::numbers::pi);
}

double NormalDist::cdf(double x) const noexcept {
  return normal_cdf((x - mean_) / sigma_);
}

double NormalDist::quantile(double p) const noexcept {
  return mean_ + sigma_ * normal_quantile(p);
}

double NormalDist::sample(util::Rng& rng) const noexcept {
  return rng.normal(mean_, sigma_);
}

std::unique_ptr<Distribution> NormalDist::clone() const {
  return std::make_unique<NormalDist>(*this);
}

// ------------------------------------------------------------- LogNormal --

LogNormalDist::LogNormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require_positive(sigma, "LogNormalDist sigma");
}

LogNormalDist LogNormalDist::from_moments(double mean, double variance) {
  require_positive(mean, "LogNormalDist mean");
  require_positive(variance, "LogNormalDist variance");
  const double sigma2 = std::log(1.0 + variance / (mean * mean));
  const double mu = std::log(mean) - sigma2 / 2.0;
  return LogNormalDist(mu, std::sqrt(sigma2));
}

double LogNormalDist::pdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (x * sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double LogNormalDist::log_pdf(double x) const noexcept {
  if (x <= 0.0) return kNegInf;
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x) - std::log(sigma_) -
         0.5 * std::log(2.0 * std::numbers::pi);
}

double LogNormalDist::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormalDist::quantile(double p) const noexcept {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormalDist::sample(util::Rng& rng) const noexcept {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormalDist::mean() const noexcept {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

double LogNormalDist::variance() const noexcept {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::unique_ptr<Distribution> LogNormalDist::clone() const {
  return std::make_unique<LogNormalDist>(*this);
}

// ----------------------------------------------------------- Exponential --

ExponentialDist::ExponentialDist(double lambda) : lambda_(lambda) {
  require_positive(lambda, "ExponentialDist lambda");
}

double ExponentialDist::pdf(double x) const noexcept {
  if (x < 0.0) return 0.0;
  return lambda_ * std::exp(-lambda_ * x);
}

double ExponentialDist::log_pdf(double x) const noexcept {
  if (x < 0.0) return kNegInf;
  return std::log(lambda_) - lambda_ * x;
}

double ExponentialDist::cdf(double x) const noexcept {
  if (x < 0.0) return 0.0;
  return 1.0 - std::exp(-lambda_ * x);
}

double ExponentialDist::quantile(double p) const noexcept {
  if (p >= 1.0) return kInf;
  if (p <= 0.0) return 0.0;
  return -std::log1p(-p) / lambda_;
}

double ExponentialDist::sample(util::Rng& rng) const noexcept {
  return rng.exponential(lambda_);
}

std::unique_ptr<Distribution> ExponentialDist::clone() const {
  return std::make_unique<ExponentialDist>(*this);
}

// --------------------------------------------------------------- Weibull --

WeibullDist::WeibullDist(double k, double lambda) : k_(k), lambda_(lambda) {
  require_positive(k, "WeibullDist k");
  require_positive(lambda, "WeibullDist lambda");
}

double WeibullDist::pdf(double x) const noexcept {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (k_ < 1.0) return kInf;
    if (k_ == 1.0) return 1.0 / lambda_;
    return 0.0;
  }
  const double z = x / lambda_;
  return (k_ / lambda_) * std::pow(z, k_ - 1.0) * std::exp(-std::pow(z, k_));
}

double WeibullDist::log_pdf(double x) const noexcept {
  if (x <= 0.0) return kNegInf;
  const double z = x / lambda_;
  return std::log(k_ / lambda_) + (k_ - 1.0) * std::log(z) - std::pow(z, k_);
}

double WeibullDist::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / lambda_, k_));
}

double WeibullDist::quantile(double p) const noexcept {
  if (p >= 1.0) return kInf;
  if (p <= 0.0) return 0.0;
  return lambda_ * std::pow(-std::log1p(-p), 1.0 / k_);
}

double WeibullDist::sample(util::Rng& rng) const noexcept {
  return quantile(rng.uniform());
}

double WeibullDist::mean() const noexcept {
  return lambda_ * std::exp(std::lgamma(1.0 + 1.0 / k_));
}

double WeibullDist::variance() const noexcept {
  const double g1 = std::exp(std::lgamma(1.0 + 1.0 / k_));
  const double g2 = std::exp(std::lgamma(1.0 + 2.0 / k_));
  return lambda_ * lambda_ * (g2 - g1 * g1);
}

std::unique_ptr<Distribution> WeibullDist::clone() const {
  return std::make_unique<WeibullDist>(*this);
}

// ---------------------------------------------------------------- Pareto --

ParetoDist::ParetoDist(double alpha, double xm) : alpha_(alpha), xm_(xm) {
  require_positive(alpha, "ParetoDist alpha");
  require_positive(xm, "ParetoDist xm");
}

double ParetoDist::pdf(double x) const noexcept {
  if (x < xm_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double ParetoDist::log_pdf(double x) const noexcept {
  if (x < xm_) return kNegInf;
  return std::log(alpha_) + alpha_ * std::log(xm_) -
         (alpha_ + 1.0) * std::log(x);
}

double ParetoDist::cdf(double x) const noexcept {
  if (x <= xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double ParetoDist::quantile(double p) const noexcept {
  if (p >= 1.0) return kInf;
  if (p <= 0.0) return xm_;
  return xm_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double ParetoDist::sample(util::Rng& rng) const noexcept {
  return quantile(rng.uniform());
}

double ParetoDist::mean() const noexcept {
  if (alpha_ <= 1.0) return kInf;
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double ParetoDist::variance() const noexcept {
  if (alpha_ <= 2.0) return kInf;
  const double d = alpha_ - 1.0;
  return xm_ * xm_ * alpha_ / (d * d * (alpha_ - 2.0));
}

std::unique_ptr<Distribution> ParetoDist::clone() const {
  return std::make_unique<ParetoDist>(*this);
}

// ----------------------------------------------------------------- Gamma --

GammaDist::GammaDist(double k, double theta) : k_(k), theta_(theta) {
  require_positive(k, "GammaDist k");
  require_positive(theta, "GammaDist theta");
}

double GammaDist::pdf(double x) const noexcept {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (k_ < 1.0) return kInf;
    if (k_ == 1.0) return 1.0 / theta_;
    return 0.0;
  }
  return std::exp(log_pdf(x));
}

double GammaDist::log_pdf(double x) const noexcept {
  if (x <= 0.0) return kNegInf;
  return (k_ - 1.0) * std::log(x) - x / theta_ - std::lgamma(k_) -
         k_ * std::log(theta_);
}

double GammaDist::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  return gamma_p(k_, x / theta_);
}

double GammaDist::quantile(double p) const noexcept {
  return theta_ * gamma_p_inverse(k_, p);
}

double GammaDist::sample(util::Rng& rng) const noexcept {
  return sample_gamma(rng, k_, theta_);
}

std::unique_ptr<Distribution> GammaDist::clone() const {
  return std::make_unique<GammaDist>(*this);
}

// -------------------------------------------------------------- LogGamma --

LogGammaDist::LogGammaDist(double k, double theta) : inner_(k, theta) {}

double LogGammaDist::pdf(double x) const noexcept {
  if (x < 1.0) return 0.0;
  return inner_.pdf(std::log(x)) / x;
}

double LogGammaDist::log_pdf(double x) const noexcept {
  if (x < 1.0) return kNegInf;
  return inner_.log_pdf(std::log(x)) - std::log(x);
}

double LogGammaDist::cdf(double x) const noexcept {
  if (x <= 1.0) return 0.0;
  return inner_.cdf(std::log(x));
}

double LogGammaDist::quantile(double p) const noexcept {
  return std::exp(inner_.quantile(p));
}

double LogGammaDist::sample(util::Rng& rng) const noexcept {
  return std::exp(inner_.sample(rng));
}

double LogGammaDist::mean() const noexcept {
  // E[exp(G)] = (1 - theta)^(-k) for theta < 1, else infinite.
  if (inner_.theta() >= 1.0) return kInf;
  return std::pow(1.0 - inner_.theta(), -inner_.k());
}

double LogGammaDist::variance() const noexcept {
  if (inner_.theta() >= 0.5) return kInf;
  const double m1 = std::pow(1.0 - inner_.theta(), -inner_.k());
  const double m2 = std::pow(1.0 - 2.0 * inner_.theta(), -inner_.k());
  return m2 - m1 * m1;
}

std::unique_ptr<Distribution> LogGammaDist::clone() const {
  return std::make_unique<LogGammaDist>(*this);
}

// ---------------------------------------------------------- gamma sample --

double sample_gamma(util::Rng& rng, double k, double theta) noexcept {
  // Marsaglia & Tsang (2000). For k < 1, sample with shape k+1 and apply
  // the U^(1/k) boost.
  if (k < 1.0) {
    const double u = std::max(rng.uniform(), 1e-300);
    return sample_gamma(rng, k + 1.0, theta) * std::pow(u, 1.0 / k);
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0, v = 0.0;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * theta;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * theta;
    }
  }
}

}  // namespace resmodel::stats

// Pearson chi-square goodness-of-fit for discrete compositions.
//
// The KS machinery (§V-F) covers the continuous resources; core counts and
// per-core memory are discrete, so generated-vs-expected composition checks
// use the chi-square statistic instead. Used by the validation bench to
// test the Figure-12 "Cores" panel quantitatively.
#pragma once

#include <cstdint>
#include <span>

namespace resmodel::stats {

/// Result of a chi-square test.
struct ChiSquareResult {
  double statistic = 0.0;
  int degrees_of_freedom = 0;
  double p_value = 0.0;
};

/// Tests observed category counts against expected probabilities.
/// Categories whose expected count falls below `min_expected` are pooled
/// into the following category (standard practice; default 5).
/// Throws std::invalid_argument on size mismatch, empty input, or
/// non-positive probability mass.
ChiSquareResult chi_square_test(std::span<const std::uint64_t> observed,
                                std::span<const double> expected_probs,
                                double min_expected = 5.0);

/// Two-sample chi-square homogeneity test over the same categories
/// (e.g. generated vs actual core-count compositions).
ChiSquareResult chi_square_two_sample(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b,
                                      double min_expected = 5.0);

/// Upper-tail p-value of the chi-square distribution: Q(df/2, x/2).
double chi_square_p_value(double statistic, int degrees_of_freedom) noexcept;

}  // namespace resmodel::stats

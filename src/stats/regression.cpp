#include "stats/regression.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/correlation.h"

namespace resmodel::stats {

LinearFit ols(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("ols: size mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("ols: need at least 2 points");
  }
  const double n = static_cast<double>(xs.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  if (!(sxx > 0.0)) {
    throw std::invalid_argument("ols: x has zero variance");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r = pearson(xs, ys);
  return fit;
}

double ExponentialLaw::operator()(double t) const noexcept {
  return a * std::exp(b * t);
}

ExponentialLaw ExponentialLaw::fit(std::span<const double> ts,
                                   std::span<const double> ys) {
  if (ts.size() != ys.size()) {
    throw std::invalid_argument("ExponentialLaw::fit: size mismatch");
  }
  std::vector<double> log_ys;
  log_ys.reserve(ys.size());
  for (double y : ys) {
    if (!(y > 0.0)) {
      throw std::invalid_argument("ExponentialLaw::fit: y must be > 0");
    }
    log_ys.push_back(std::log(y));
  }
  const LinearFit lin = ols(ts, log_ys);
  ExponentialLaw law;
  law.a = std::exp(lin.intercept);
  law.b = lin.slope;
  law.r = lin.r;
  return law;
}

}  // namespace resmodel::stats

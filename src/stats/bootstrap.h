// Nonparametric bootstrap confidence intervals.
//
// The paper reports point estimates (a, b, r) for every law; bootstrap
// percentile intervals quantify how tight those estimates are at a given
// trace scale — used by the bench binaries to print a +/- band next to
// each fitted value.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace resmodel::stats {

/// A percentile bootstrap interval around a point estimate.
struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< (1-confidence)/2 percentile of the resamples
  double hi = 0.0;     ///< 1-(1-confidence)/2 percentile
};

/// Statistic over a sample.
using SampleStatistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap over `rounds` resamples (with replacement).
/// Throws std::invalid_argument on empty input, rounds < 2, or
/// confidence outside (0, 1).
BootstrapInterval bootstrap_ci(std::span<const double> xs,
                               const SampleStatistic& statistic, int rounds,
                               double confidence, util::Rng& rng);

/// Paired bootstrap for statistics of (x, y) pairs — used for regression
/// slopes: resamples index pairs jointly.
using PairedStatistic = std::function<double(std::span<const double>,
                                             std::span<const double>)>;
BootstrapInterval bootstrap_ci_paired(std::span<const double> xs,
                                      std::span<const double> ys,
                                      const PairedStatistic& statistic,
                                      int rounds, double confidence,
                                      util::Rng& rng);

}  // namespace resmodel::stats

// The seven candidate distributions from the paper (§V-F):
// normal, log-normal, exponential, Weibull, Pareto, gamma, log-gamma.
//
// Each provides pdf/log-pdf/cdf/quantile/sampling behind one interface so
// the Kolmogorov–Smirnov model-selection step can iterate over them
// uniformly. Parameterizations:
//   Normal(mean, sigma)          sigma > 0
//   LogNormal(mu, sigma)         parameters of ln X; sigma > 0
//   Exponential(lambda)          rate; lambda > 0
//   Weibull(k, lambda)           shape k > 0, scale lambda > 0
//   Pareto(alpha, xm)            shape alpha > 0, minimum xm > 0
//   Gamma(k, theta)              shape k > 0, scale theta > 0
//   LogGamma(k, theta)           X = exp(G), G ~ Gamma(k, theta); support x>=1
#pragma once

#include <memory>
#include <string>

#include "util/rng.h"

namespace resmodel::stats {

/// Abstract continuous univariate distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual double pdf(double x) const noexcept = 0;
  virtual double log_pdf(double x) const noexcept = 0;
  virtual double cdf(double x) const noexcept = 0;

  /// Inverse CDF; p in [0, 1]. May return ±infinity at the boundaries.
  virtual double quantile(double p) const noexcept = 0;

  virtual double sample(util::Rng& rng) const noexcept = 0;

  virtual double mean() const noexcept = 0;
  virtual double variance() const noexcept = 0;

  /// Short family name, e.g. "normal", "log-normal".
  virtual std::string name() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Distribution> clone() const = 0;
};

class NormalDist final : public Distribution {
 public:
  NormalDist(double mean, double sigma);
  double pdf(double x) const noexcept override;
  double log_pdf(double x) const noexcept override;
  double cdf(double x) const noexcept override;
  double quantile(double p) const noexcept override;
  double sample(util::Rng& rng) const noexcept override;
  double mean() const noexcept override { return mean_; }
  double variance() const noexcept override { return sigma_ * sigma_; }
  double sigma() const noexcept { return sigma_; }
  std::string name() const override { return "normal"; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double mean_, sigma_;
};

class LogNormalDist final : public Distribution {
 public:
  LogNormalDist(double mu, double sigma);

  /// Constructs the log-normal whose *linear-scale* mean/variance match the
  /// given values (moment matching) — the paper predicts disk-space mean and
  /// variance with exponential laws and then samples a log-normal with those
  /// moments.
  static LogNormalDist from_moments(double mean, double variance);

  double pdf(double x) const noexcept override;
  double log_pdf(double x) const noexcept override;
  double cdf(double x) const noexcept override;
  double quantile(double p) const noexcept override;
  double sample(util::Rng& rng) const noexcept override;
  double mean() const noexcept override;
  double variance() const noexcept override;
  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }
  std::string name() const override { return "log-normal"; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double mu_, sigma_;
};

class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double lambda);
  double pdf(double x) const noexcept override;
  double log_pdf(double x) const noexcept override;
  double cdf(double x) const noexcept override;
  double quantile(double p) const noexcept override;
  double sample(util::Rng& rng) const noexcept override;
  double mean() const noexcept override { return 1.0 / lambda_; }
  double variance() const noexcept override { return 1.0 / (lambda_ * lambda_); }
  double lambda() const noexcept { return lambda_; }
  std::string name() const override { return "exponential"; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double lambda_;
};

class WeibullDist final : public Distribution {
 public:
  WeibullDist(double k, double lambda);
  double pdf(double x) const noexcept override;
  double log_pdf(double x) const noexcept override;
  double cdf(double x) const noexcept override;
  double quantile(double p) const noexcept override;
  double sample(util::Rng& rng) const noexcept override;
  double mean() const noexcept override;
  double variance() const noexcept override;
  double k() const noexcept { return k_; }
  double lambda() const noexcept { return lambda_; }
  std::string name() const override { return "weibull"; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double k_, lambda_;
};

class ParetoDist final : public Distribution {
 public:
  ParetoDist(double alpha, double xm);
  double pdf(double x) const noexcept override;
  double log_pdf(double x) const noexcept override;
  double cdf(double x) const noexcept override;
  double quantile(double p) const noexcept override;
  double sample(util::Rng& rng) const noexcept override;
  double mean() const noexcept override;
  double variance() const noexcept override;
  double alpha() const noexcept { return alpha_; }
  double xm() const noexcept { return xm_; }
  std::string name() const override { return "pareto"; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double alpha_, xm_;
};

class GammaDist final : public Distribution {
 public:
  GammaDist(double k, double theta);
  double pdf(double x) const noexcept override;
  double log_pdf(double x) const noexcept override;
  double cdf(double x) const noexcept override;
  double quantile(double p) const noexcept override;
  double sample(util::Rng& rng) const noexcept override;
  double mean() const noexcept override { return k_ * theta_; }
  double variance() const noexcept override { return k_ * theta_ * theta_; }
  double k() const noexcept { return k_; }
  double theta() const noexcept { return theta_; }
  std::string name() const override { return "gamma"; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double k_, theta_;
};

/// X = exp(G) with G ~ Gamma(k, theta). Support [1, inf).
class LogGammaDist final : public Distribution {
 public:
  LogGammaDist(double k, double theta);
  double pdf(double x) const noexcept override;
  double log_pdf(double x) const noexcept override;
  double cdf(double x) const noexcept override;
  double quantile(double p) const noexcept override;
  double sample(util::Rng& rng) const noexcept override;
  double mean() const noexcept override;
  double variance() const noexcept override;
  double k() const noexcept { return inner_.k(); }
  double theta() const noexcept { return inner_.theta(); }
  std::string name() const override { return "log-gamma"; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  GammaDist inner_;
};

/// Samples Gamma(k, theta) by Marsaglia–Tsang (with the k < 1 boost).
double sample_gamma(util::Rng& rng, double k, double theta) noexcept;

}  // namespace resmodel::stats

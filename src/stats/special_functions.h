// Special functions needed by the distribution library.
//
// Everything is implemented from standard series/continued-fraction
// expansions (no external math libraries): the regularized incomplete gamma
// functions P(a,x)/Q(a,x), the inverse standard normal CDF (Acklam's
// rational approximation refined with one Halley step), and digamma /
// trigamma (asymptotic series with recurrence shift) for gamma MLE.
#pragma once

namespace resmodel::stats {

/// Standard normal CDF Φ(x).
double normal_cdf(double x) noexcept;

/// Inverse standard normal CDF Φ⁻¹(p), p in (0, 1).
/// Accurate to ~1e-15 after the Halley refinement step.
/// Returns ±infinity at p = 0 / 1; NaN outside [0, 1].
double normal_quantile(double p) noexcept;

/// Regularized lower incomplete gamma P(a, x) = γ(a,x) / Γ(a), a > 0, x >= 0.
/// Series expansion for x < a + 1, continued fraction otherwise.
double gamma_p(double a, double x) noexcept;

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x) noexcept;

/// Inverse of P(a, ·): returns x with P(a, x) = p. Newton iteration from a
/// Wilson–Hilferty starting point.
double gamma_p_inverse(double a, double p) noexcept;

/// ψ(x) = d/dx ln Γ(x), x > 0.
double digamma(double x) noexcept;

/// ψ'(x) = d²/dx² ln Γ(x), x > 0.
double trigamma(double x) noexcept;

}  // namespace resmodel::stats

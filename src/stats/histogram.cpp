#include "stats/histogram.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace resmodel::stats {

Histogram::Histogram(double lo, double hi, std::size_t nbins)
    : uniform_(true), lo_(lo) {
  if (!(hi > lo) || nbins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and nbins > 0");
  }
  width_ = (hi - lo) / static_cast<double>(nbins);
  edges_.reserve(nbins + 1);
  for (std::size_t i = 0; i <= nbins; ++i) {
    edges_.push_back(lo + width_ * static_cast<double>(i));
  }
  counts_.assign(nbins, 0);
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) {
    throw std::invalid_argument("Histogram: need at least 2 edges");
  }
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (!(edges_[i] > edges_[i - 1])) {
      throw std::invalid_argument("Histogram: edges must strictly increase");
    }
  }
  counts_.assign(edges_.size() - 1, 0);
}

void Histogram::add(double x) noexcept {
  if (x < edges_.front()) {
    ++underflow_;
    return;
  }
  if (x >= edges_.back()) {
    ++overflow_;
    return;
  }
  std::size_t bin = 0;
  if (uniform_) {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge case
  } else {
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

std::vector<double> Histogram::fractions() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

std::vector<double> Histogram::density() const {
  std::vector<double> out = fractions();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] /= (edges_[i + 1] - edges_[i]);
  }
  return out;
}

std::vector<double> Histogram::cumulative() const {
  std::vector<double> out = fractions();
  double acc = 0.0;
  for (double& v : out) {
    acc += v;
    v = acc;
  }
  return out;
}

std::vector<std::pair<double, double>> empirical_cdf(
    std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> out;
  out.reserve(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out.emplace_back(sorted[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

}  // namespace resmodel::stats

// Maximum-likelihood fitting for the seven candidate distributions and the
// paper's model-selection procedure: rank families by the average p-value
// of 100 Kolmogorov–Smirnov tests on random 50-sample subsets (§V-F).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stats/distributions.h"
#include "util/rng.h"

namespace resmodel::stats {

/// Closed-form or iterative MLE fitters. Each returns std::nullopt when the
/// data is outside the family's support or degenerate (e.g. < 2 points,
/// zero variance, non-positive values for log families).
std::optional<NormalDist> fit_normal(std::span<const double> xs);
std::optional<LogNormalDist> fit_lognormal(std::span<const double> xs);
std::optional<ExponentialDist> fit_exponential(std::span<const double> xs);
std::optional<WeibullDist> fit_weibull(std::span<const double> xs);
std::optional<ParetoDist> fit_pareto(std::span<const double> xs);
std::optional<GammaDist> fit_gamma(std::span<const double> xs);
std::optional<LogGammaDist> fit_loggamma(std::span<const double> xs);

/// Identifier for the candidate families.
enum class Family {
  kNormal,
  kLogNormal,
  kExponential,
  kWeibull,
  kPareto,
  kGamma,
  kLogGamma,
};

/// All seven families, in the order the paper lists them.
std::span<const Family> all_families() noexcept;

std::string family_name(Family f);

/// Fits one family. nullptr when fitting fails.
std::unique_ptr<Distribution> fit_family(Family f, std::span<const double> xs);

/// Result of evaluating one candidate family against the data.
struct FitResult {
  Family family{};
  std::unique_ptr<Distribution> dist;  ///< fitted distribution (never null)
  double ks_statistic = 0.0;           ///< KS D on the full sample
  double avg_p_value = 0.0;            ///< paper's subsampled mean p-value
  double log_likelihood = 0.0;
};

/// Options for the selection procedure. Defaults are the paper's:
/// 100 subsamples of 50 values each.
struct SelectionOptions {
  int subsamples = 100;
  std::size_t subsample_size = 50;
  std::uint64_t seed = 2011;  ///< for subsample selection (deterministic)
};

/// Fits every family that admits the data, scores each with the subsampled
/// KS procedure, and returns results sorted by avg_p_value (best first).
std::vector<FitResult> select_best_distribution(
    std::span<const double> xs, const SelectionOptions& options = {});

}  // namespace resmodel::stats

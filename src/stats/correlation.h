// Pearson and Spearman correlation, plus correlation matrices over named
// resource columns — the machinery behind Tables III and VIII.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/matrix.h"

namespace resmodel::stats {

/// Pearson product-moment correlation coefficient. NaN if either input has
/// zero variance or the lengths differ / are < 2.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Spearman rank correlation (Pearson on mid-ranks; ties averaged).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// A named sample column.
struct NamedColumn {
  std::string name;
  std::vector<double> values;
};

/// Pairwise Pearson correlation matrix over equally sized columns.
/// Diagonal is exactly 1.
Matrix correlation_matrix(std::span<const NamedColumn> columns);

/// Pairwise Spearman rank-correlation matrix over equally sized columns —
/// the estimator the empirical rank copula is fitted from. Diagonal is
/// exactly 1.
Matrix spearman_matrix(std::span<const std::vector<double>> columns);

}  // namespace resmodel::stats

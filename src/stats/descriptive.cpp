#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace resmodel::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return kNaN;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return kNaN;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  const double v = variance(xs);
  return std::isnan(v) ? kNaN : std::sqrt(v);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return kNaN;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double minimum(std::span<const double> xs) noexcept {
  if (xs.empty()) return kNaN;
  return *std::min_element(xs.begin(), xs.end());
}

double maximum(std::span<const double> xs) noexcept {
  if (xs.empty()) return kNaN;
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) {
    s.mean = s.stddev = s.variance = s.median = s.min = s.max = kNaN;
    return s;
  }
  s.mean = mean(xs);
  s.variance = variance(xs);
  s.stddev = xs.size() < 2 ? 0.0 : std::sqrt(s.variance);
  s.median = median(xs);
  s.min = minimum(xs);
  s.max = maximum(xs);
  return s;
}

}  // namespace resmodel::stats

// Quantile-quantile comparison points.
//
// §VI-B of the paper: "We also generated QQ-plots for the data and
// visually confirmed the fit of the generated hosts. These plots are not
// included in this paper for space reasons." — here they are.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "stats/distributions.h"

namespace resmodel::stats {

/// QQ points of a sample against a model distribution: for `points`
/// plotting positions p = (i + 0.5) / points, returns
/// (model quantile(p), empirical quantile(p)). A perfect fit lies on y=x.
std::vector<std::pair<double, double>> qq_points(std::span<const double> xs,
                                                 const Distribution& dist,
                                                 std::size_t points = 100);

/// Two-sample QQ points: (quantile of a, quantile of b) at the shared
/// plotting positions. Used to compare generated against actual hosts.
std::vector<std::pair<double, double>> qq_points_two_sample(
    std::span<const double> a, std::span<const double> b,
    std::size_t points = 100);

/// Max deviation of the QQ points from the diagonal, normalized by the
/// spread of the model quantiles: max |y - x| / max(range(x), max|x|).
/// A rough "visual confirmation" statistic — small values mean the QQ
/// plot hugs y = x. Returns 0 for empty input.
double qq_max_relative_deviation(
    const std::vector<std::pair<double, double>>& points) noexcept;

}  // namespace resmodel::stats

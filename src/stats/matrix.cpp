#include "stats/matrix.h"

#include <cmath>
#include <stdexcept>

namespace resmodel::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::multiply: shape mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += v * rhs(k, c);
      }
    }
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double d = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    d = std::max(d, std::fabs(data_[i] - other.data_[i]));
  }
  return d;
}

std::optional<Matrix> cholesky(const Matrix& a) {
  if (!a.is_square()) return std::nullopt;
  const std::size_t n = a.rows();
  // Require symmetry up to a loose tolerance (correlation matrices
  // estimated from data can carry rounding noise).
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r + 1; c < n; ++c) {
      if (std::fabs(a(r, c) - a(c, r)) > 1e-9) return std::nullopt;
    }
  }
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0)) return std::nullopt;  // not positive definite
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

std::vector<double> correlated_normals(util::Rng& rng, const Matrix& lower) {
  const std::size_t n = lower.rows();
  std::vector<double> z(n);
  for (double& v : z) v = rng.normal();
  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j <= i; ++j) sum += lower(i, j) * z[j];
    x[i] = sum;
  }
  return x;
}

}  // namespace resmodel::stats

// Small dense matrices and the Cholesky decomposition used for correlated
// host-resource generation (§V-F of the paper).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace resmodel::stats {

/// Row-major dense matrix of doubles. Sized for the paper's use (3x3 to
/// 6x6 correlation matrices); no attempt at BLAS-level performance.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer-style data; all rows must have equal
  /// length. Throws std::invalid_argument otherwise.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  Matrix transpose() const;
  Matrix multiply(const Matrix& rhs) const;

  /// Max |a - b| over entries; matrices must be the same shape.
  double max_abs_diff(const Matrix& other) const;

  bool is_square() const noexcept { return rows_ == cols_; }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor L with A = L * L^T.
/// Returns std::nullopt if A is not (numerically) symmetric positive
/// definite. The input must be square and symmetric.
std::optional<Matrix> cholesky(const Matrix& a);

/// Generates one vector of standard-normal variates correlated according
/// to the lower factor L (from cholesky(R)): x = L * z, z ~ N(0, I).
/// Marginal variances equal the diagonal of R (1 for a correlation matrix).
std::vector<double> correlated_normals(util::Rng& rng, const Matrix& lower);

}  // namespace resmodel::stats

#include "stats/special_functions.h"

#include <cmath>
#include <limits>
#include <numbers>

namespace resmodel::stats {

namespace {

constexpr double kEps = 1e-15;
constexpr int kMaxIter = 300;

// Lower incomplete gamma by power series: P(a,x) converges quickly for
// x < a + 1.
double gamma_p_series(double a, double x) noexcept {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper incomplete gamma by Lentz continued fraction: Q(a,x) for x >= a + 1.
double gamma_q_cf(double a, double x) noexcept {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double normal_quantile(double p) noexcept {
  if (std::isnan(p) || p < 0.0 || p > 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p == 0.0) return -std::numeric_limits<double>::infinity();
  if (p == 1.0) return std::numeric_limits<double>::infinity();

  // Acklam's rational approximation (relative error < 1.15e-9).
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley step against the true CDF brings the error near machine eps.
  const double e = normal_cdf(x) - p;
  const double u = e * std::numbers::sqrt2 * std::sqrt(std::numbers::pi) *
                   std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double gamma_p(double a, double x) noexcept {
  if (!(a > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) noexcept {
  if (!(a > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double gamma_p_inverse(double a, double p) noexcept {
  if (!(a > 0.0) || p < 0.0 || p > 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return std::numeric_limits<double>::infinity();

  // Wilson–Hilferty: gamma quantile from a normal quantile.
  const double z = normal_quantile(p);
  const double g = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
  double x = a * g * g * g;
  if (x <= 0.0) x = a * std::exp((std::log(p) + std::lgamma(a + 1.0)) / a);

  // Newton on P(a,x) - p with the analytic derivative (gamma pdf).
  for (int i = 0; i < 60; ++i) {
    const double err = gamma_p(a, x) - p;
    const double pdf =
        std::exp((a - 1.0) * std::log(x) - x - std::lgamma(a));
    if (pdf <= 0.0) break;
    double step = err / pdf;
    // Damp steps that would leave the support.
    if (x - step <= 0.0) step = x / 2.0;
    x -= step;
    if (std::fabs(step) < 1e-12 * (1.0 + x)) break;
  }
  return x;
}

double digamma(double x) noexcept {
  if (!(x > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  double result = 0.0;
  // Shift to x >= 10 where the asymptotic series reaches ~1e-13.
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

double trigamma(double x) noexcept {
  if (!(x > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result +=
      inv * (1.0 + 0.5 * inv +
             inv2 * (1.0 / 6.0 -
                     inv2 * (1.0 / 30.0 -
                             inv2 * (1.0 / 42.0 - inv2 / 30.0))));
  return result;
}

}  // namespace resmodel::stats

// Ordinary least squares and the paper's exponential evolution law
// y = a * exp(b * t), fitted by linear regression on (t, ln y).
//
// Every time-dependent quantity in the model — core-count ratios,
// per-core-memory ratios, benchmark means/variances, disk-space moments —
// follows this law with t = year - 2006 (Tables IV, V, VI, X).
#pragma once

#include <span>

namespace resmodel::stats {

/// Result of a simple linear regression y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;  ///< Pearson correlation of x and y (signed)
};

/// OLS fit. Throws std::invalid_argument for size mismatch or n < 2.
LinearFit ols(std::span<const double> xs, std::span<const double> ys);

/// y = a * exp(b * t). `r` is the correlation of t with ln(y) — the value
/// the paper reports in Tables IV-VI (negative for decaying ratios).
struct ExponentialLaw {
  double a = 1.0;
  double b = 0.0;
  double r = 0.0;

  double operator()(double t) const noexcept;

  /// Fits from (t, y) samples; all y must be > 0.
  /// Throws std::invalid_argument on bad input.
  static ExponentialLaw fit(std::span<const double> ts,
                            std::span<const double> ys);
};

}  // namespace resmodel::stats

#include "model/factory.h"

#include <algorithm>
#include <stdexcept>

#include "model/cholesky_gaussian.h"
#include "model/empirical_rank_copula.h"
#include "model/independent.h"

namespace resmodel::model {

std::optional<CorrelationKind> parse_correlation_kind(std::string_view name) {
  if (name == "cholesky") return CorrelationKind::kCholesky;
  if (name == "independent") return CorrelationKind::kIndependent;
  if (name == "empirical") return CorrelationKind::kEmpirical;
  return std::nullopt;
}

std::string correlation_kind_names() {
  return "cholesky|independent|empirical";
}

std::vector<util::ModelDate> spanning_fit_dates(
    const trace::TraceStore& store, std::size_t count) {
  if (store.empty() || count == 0) return {};
  std::int32_t lo = store.host(0).created_day;
  std::int32_t hi = store.host(0).last_contact_day;
  for (const trace::HostRecord& h : store.hosts()) {
    lo = std::min(lo, h.created_day);
    hi = std::max(hi, h.last_contact_day);
  }
  // Interior points of the window: endpoints tend to have thin snapshots.
  std::vector<util::ModelDate> dates;
  dates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double frac =
        (static_cast<double>(i) + 1.0) / (static_cast<double>(count) + 1.0);
    dates.push_back(util::ModelDate::from_day_index(
        lo + static_cast<std::int32_t>(frac * static_cast<double>(hi - lo))));
  }
  return dates;
}

std::unique_ptr<CorrelationModel> make_correlation_model(
    CorrelationKind kind, const stats::Matrix& pearson,
    const trace::TraceStore* fit_trace,
    const std::vector<util::ModelDate>& fit_dates) {
  switch (kind) {
    case CorrelationKind::kCholesky:
      return std::make_unique<CholeskyGaussian>(pearson);
    case CorrelationKind::kIndependent:
      return std::make_unique<Independent>(pearson.rows());
    case CorrelationKind::kEmpirical: {
      if (fit_trace == nullptr) {
        throw std::invalid_argument(
            "make_correlation_model: the empirical model needs a trace to "
            "fit from");
      }
      return std::make_unique<EmpiricalRankCopula>(EmpiricalRankCopula::fit(
          *fit_trace,
          fit_dates.empty() ? spanning_fit_dates(*fit_trace) : fit_dates));
    }
  }
  throw std::invalid_argument("make_correlation_model: unknown kind");
}

}  // namespace resmodel::model

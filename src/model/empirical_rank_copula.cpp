#include "model/empirical_rank_copula.h"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "stats/correlation.h"

namespace resmodel::model {

stats::Matrix gaussian_correlation_from_spearman(const stats::Matrix& s) {
  const std::size_t n = s.rows();
  stats::Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    r(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v =
          2.0 * std::sin(std::numbers::pi * s(i, j) / 6.0);
      r(i, j) = r(j, i) = v;
    }
  }
  // Shrink toward the identity until Cholesky succeeds. The loop always
  // terminates: at lambda = 1 the matrix is exactly I.
  for (double lambda = 0.0; lambda <= 1.0; lambda += 0.05) {
    stats::Matrix shrunk(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        shrunk(i, j) = i == j ? 1.0 : (1.0 - lambda) * r(i, j);
      }
    }
    if (stats::cholesky(shrunk)) return shrunk;
  }
  return stats::Matrix::identity(n);
}

EmpiricalRankCopula EmpiricalRankCopula::fit(
    std::span<const std::vector<double>> columns) {
  if (columns.size() < 2) {
    throw std::invalid_argument(
        "EmpiricalRankCopula::fit: need at least two columns");
  }
  const std::size_t n_obs = columns[0].size();
  for (const std::vector<double>& c : columns) {
    if (c.size() != n_obs) {
      throw std::invalid_argument(
          "EmpiricalRankCopula::fit: ragged columns");
    }
  }
  if (n_obs < 3) {
    throw std::invalid_argument(
        "EmpiricalRankCopula::fit: need >= 3 observations, got " +
        std::to_string(n_obs));
  }
  const stats::Matrix s = stats::spearman_matrix(columns);
  for (std::size_t i = 0; i < s.rows(); ++i) {
    for (std::size_t j = i + 1; j < s.cols(); ++j) {
      if (std::isnan(s(i, j))) {
        throw std::invalid_argument(
            "EmpiricalRankCopula::fit: degenerate column (zero rank "
            "variance)");
      }
    }
  }
  return EmpiricalRankCopula(
      s, CholeskyGaussian(gaussian_correlation_from_spearman(s)));
}

EmpiricalRankCopula EmpiricalRankCopula::fit(
    const trace::TraceStore& store,
    const std::vector<util::ModelDate>& dates) {
  std::vector<std::vector<double>> columns(kTripleDim);
  for (const util::ModelDate& date : dates) {
    const trace::ResourceSnapshot snap = store.snapshot(date);
    columns[kMemPerCore].insert(columns[kMemPerCore].end(),
                                snap.memory_per_core_mb.begin(),
                                snap.memory_per_core_mb.end());
    columns[kWhetstone].insert(columns[kWhetstone].end(),
                               snap.whetstone_mips.begin(),
                               snap.whetstone_mips.end());
    columns[kDhrystone].insert(columns[kDhrystone].end(),
                               snap.dhrystone_mips.begin(),
                               snap.dhrystone_mips.end());
  }
  return fit(columns);
}

void EmpiricalRankCopula::sample_normals(double t, util::Rng& rng,
                                         std::span<double> z) const {
  sampler_.sample_normals(t, rng, z);
}

std::unique_ptr<CorrelationModel> EmpiricalRankCopula::clone() const {
  return std::make_unique<EmpiricalRankCopula>(*this);
}

}  // namespace resmodel::model

#include "model/correlation_model.h"

#include "stats/special_functions.h"

namespace resmodel::model {

void CorrelationModel::sample_uniforms(double t, util::Rng& rng,
                                       std::span<double> u) const {
  sample_normals(t, rng, u);
  for (std::size_t i = 0; i < dimension(); ++i) {
    u[i] = stats::normal_cdf(u[i]);
  }
}

}  // namespace resmodel::model

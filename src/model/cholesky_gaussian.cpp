#include "model/cholesky_gaussian.h"

#include <stdexcept>

namespace resmodel::model {

CholeskyGaussian::CholeskyGaussian(const stats::Matrix& correlation)
    : correlation_(correlation), dim_(correlation.rows()) {
  if (dim_ == 0 || dim_ > kMaxDim) {
    throw std::invalid_argument(
        "CholeskyGaussian: correlation matrix must be 1x1..8x8");
  }
  const auto lower = stats::cholesky(correlation_);
  if (!lower) {
    throw std::invalid_argument(
        "CholeskyGaussian: correlation matrix is not positive definite");
  }
  lower_ = *lower;
}

void CholeskyGaussian::sample_normals(double /*t*/, util::Rng& rng,
                                      std::span<double> z) const {
  // Same draw order as stats::correlated_normals, but in place: the
  // generator's per-host and batched paths stay bit-identical to the
  // pre-refactor stream.
  std::array<double, kMaxDim> raw;
  for (std::size_t i = 0; i < dim_; ++i) raw[i] = rng.normal();
  for (std::size_t i = 0; i < dim_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j <= i; ++j) sum += lower_(i, j) * raw[j];
    z[i] = sum;
  }
}

std::unique_ptr<CorrelationModel> CholeskyGaussian::clone() const {
  return std::make_unique<CholeskyGaussian>(*this);
}

}  // namespace resmodel::model

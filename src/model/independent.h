// The "no copula" ablation: identity correlation, every component drawn
// independently. Shares all marginal laws with the full model — the exact
// variant (b) the ablation bench used to hand-roll.
#pragma once

#include "model/correlation_model.h"

namespace resmodel::model {

class Independent final : public CorrelationModel {
 public:
  explicit Independent(std::size_t dimension = kTripleDim)
      : dim_(dimension) {}

  std::string name() const override { return "independent"; }
  std::size_t dimension() const noexcept override { return dim_; }
  void sample_normals(double t, util::Rng& rng,
                      std::span<double> z) const override;
  std::unique_ptr<CorrelationModel> clone() const override;

 private:
  std::size_t dim_;
};

}  // namespace resmodel::model

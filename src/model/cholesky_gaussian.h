// The paper's dependence structure: a Gaussian copula driven by the
// Cholesky factor of a Pearson correlation matrix (§V-F). This is the
// code that used to live inline in core::HostGenerator.
#pragma once

#include <array>

#include "model/correlation_model.h"
#include "stats/matrix.h"

namespace resmodel::model {

class CholeskyGaussian final : public CorrelationModel {
 public:
  /// `correlation` must be symmetric positive definite with a unit
  /// diagonal, at most 8x8. Throws std::invalid_argument otherwise.
  explicit CholeskyGaussian(const stats::Matrix& correlation);

  std::string name() const override { return "cholesky"; }
  std::size_t dimension() const noexcept override { return dim_; }
  void sample_normals(double t, util::Rng& rng,
                      std::span<double> z) const override;
  std::unique_ptr<CorrelationModel> clone() const override;

  const stats::Matrix& correlation() const noexcept { return correlation_; }
  const stats::Matrix& lower_factor() const noexcept { return lower_; }

 private:
  /// Fixed capacity keeps sample_normals allocation-free on the hot path;
  /// every correlation matrix in the paper is 3x3 to 6x6.
  static constexpr std::size_t kMaxDim = 8;

  stats::Matrix correlation_;
  stats::Matrix lower_;
  std::size_t dim_ = 0;
};

}  // namespace resmodel::model

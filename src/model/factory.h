// String-keyed construction of CorrelationModels — the single place the
// CLI (`--correlation=`), the benches and the simulation baselines resolve
// a model name to an implementation.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/correlation_model.h"
#include "stats/matrix.h"
#include "trace/trace_store.h"
#include "util/model_date.h"

namespace resmodel::model {

enum class CorrelationKind {
  kCholesky,     ///< the paper's Gaussian copula with the published R
  kIndependent,  ///< identity R — the "no copula" ablation
  kEmpirical,    ///< Gaussian copula refitted from trace rank correlations
};

/// Parses "cholesky" / "independent" / "empirical"; nullopt otherwise.
std::optional<CorrelationKind> parse_correlation_kind(std::string_view name);

/// "cholesky|independent|empirical" — for usage strings.
std::string correlation_kind_names();

/// Builds the requested model.
///  - kCholesky uses `pearson` (the params' resource_correlation matrix);
///  - kIndependent needs nothing beyond the dimension of `pearson`;
///  - kEmpirical refits from `fit_trace` at `fit_dates` and throws
///    std::invalid_argument when `fit_trace` is null. An empty `fit_dates`
///    fits from snapshots spanning the trace's own active window — the
///    right default when generating for dates outside the trace (the
///    extrapolation case the generator exists for).
std::unique_ptr<CorrelationModel> make_correlation_model(
    CorrelationKind kind, const stats::Matrix& pearson,
    const trace::TraceStore* fit_trace = nullptr,
    const std::vector<util::ModelDate>& fit_dates = {});

/// Snapshot dates evenly spanning the trace's active window (used by
/// make_correlation_model when no fit dates are given).
std::vector<util::ModelDate> spanning_fit_dates(
    const trace::TraceStore& store, std::size_t count = 4);

}  // namespace resmodel::model

#include "model/independent.h"

namespace resmodel::model {

void Independent::sample_normals(double /*t*/, util::Rng& rng,
                                 std::span<double> z) const {
  for (std::size_t i = 0; i < dim_; ++i) z[i] = rng.normal();
}

std::unique_ptr<CorrelationModel> Independent::clone() const {
  return std::make_unique<Independent>(*this);
}

}  // namespace resmodel::model

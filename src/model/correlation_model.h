// The pluggable dependence structure of the host model (§V-F).
//
// The paper couples per-core memory, Whetstone and Dhrystone through a
// Gaussian copula: draw a correlated standard-normal triple, push the first
// component through Φ to a uniform, and renormalize the other two to the
// date's predicted benchmark moments. A CorrelationModel abstracts exactly
// that first step — "give me one standard-normal triple with your
// dependence structure" — so the host generator, the simulation baselines
// and the ablation benches can swap the copula without touching the
// marginal laws. See README.md in this directory for the full contract.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "util/rng.h"

namespace resmodel::model {

/// Order of the correlated triple; matches the R matrix printed in §V-F
/// and core::CorrelatedIndex.
inline constexpr std::size_t kMemPerCore = 0;
inline constexpr std::size_t kWhetstone = 1;
inline constexpr std::size_t kDhrystone = 2;

/// Dimension of the paper's correlated triple.
inline constexpr std::size_t kTripleDim = 3;

/// A joint dependence structure over standard-normal marginals.
///
/// Contract:
///  - sample_normals writes exactly dimension() values, each marginally
///    ~ N(0, 1); only the *dependence* between components varies by model.
///  - The number and order of rng draws for a given model must be a pure
///    function of dimension(), never of previous samples — the batched
///    engine relies on this for its chunk-seeded deterministic parallelism.
///  - `t` is the model time (years since 2006) so future models can carry
///    time-varying dependence; all current models ignore it.
///  - Implementations are immutable after construction and safe to share
///    across threads as long as each thread uses its own Rng.
class CorrelationModel {
 public:
  virtual ~CorrelationModel() = default;

  /// Short selector-friendly name, e.g. "cholesky", "independent".
  virtual std::string name() const = 0;

  virtual std::size_t dimension() const noexcept = 0;

  /// Fills z (size >= dimension()) with one correlated standard-normal
  /// vector.
  virtual void sample_normals(double t, util::Rng& rng,
                              std::span<double> z) const = 0;

  /// Correlated uniforms on (0, 1): Φ applied componentwise to
  /// sample_normals. Routed through stats/special_functions.h.
  void sample_uniforms(double t, util::Rng& rng, std::span<double> u) const;

  virtual std::unique_ptr<CorrelationModel> clone() const = 0;
};

}  // namespace resmodel::model

// A dependence structure fitted from data instead of taken from the
// paper's published Pearson matrix: compute the Spearman rank correlation
// of the observed triple, map it to the correlation of the underlying
// Gaussian copula with the exact relation r = 2 sin(π ρ_s / 6), and sample
// through the Cholesky factor of that matrix.
//
// Rank correlation is invariant under the monotone marginal transforms the
// generator applies afterwards (Φ, discrete quantile, affine moment
// renormalization), so the fitted model reproduces the *rank* dependence
// of the input data regardless of marginal shape — the property the
// rank-recovery test in tests/model/ asserts.
#pragma once

#include <span>
#include <vector>

#include "model/cholesky_gaussian.h"
#include "model/correlation_model.h"
#include "stats/matrix.h"
#include "trace/trace_store.h"
#include "util/model_date.h"

namespace resmodel::model {

class EmpiricalRankCopula final : public CorrelationModel {
 public:
  /// Fits from equally sized sample columns (one per component, at least
  /// two of them, each with >= 3 observations). Throws std::invalid_argument
  /// on ragged or degenerate input.
  static EmpiricalRankCopula fit(
      std::span<const std::vector<double>> columns);

  /// Fits the paper's triple {mem/core, Whetstone, Dhrystone} from the
  /// hosts active at the given dates (pooled). Throws if no date yields
  /// enough active hosts.
  static EmpiricalRankCopula fit(const trace::TraceStore& store,
                                 const std::vector<util::ModelDate>& dates);

  std::string name() const override { return "empirical"; }
  std::size_t dimension() const noexcept override {
    return sampler_.dimension();
  }
  void sample_normals(double t, util::Rng& rng,
                      std::span<double> z) const override;
  std::unique_ptr<CorrelationModel> clone() const override;

  /// The Spearman matrix estimated from the data.
  const stats::Matrix& fitted_spearman() const noexcept { return spearman_; }

  /// The Gaussian-copula correlation actually sampled (after the
  /// 2 sin(π ρ/6) map and, if needed, shrinkage to positive definiteness).
  const stats::Matrix& gaussian_correlation() const noexcept {
    return sampler_.correlation();
  }

 private:
  EmpiricalRankCopula(stats::Matrix spearman, CholeskyGaussian sampler)
      : spearman_(std::move(spearman)), sampler_(std::move(sampler)) {}

  stats::Matrix spearman_;
  CholeskyGaussian sampler_;
};

/// Maps a Spearman matrix to the Gaussian-copula Pearson matrix via
/// r = 2 sin(π ρ_s / 6), then shrinks toward the identity just enough to be
/// positive definite (rank estimates from finite samples can stray outside
/// the PD cone). Exposed for tests.
stats::Matrix gaussian_correlation_from_spearman(const stats::Matrix& s);

}  // namespace resmodel::model

// On-disk constants and typed errors of the columnar snapshot format.
//
// Layout (all integers little-endian; the writer refuses to run on a
// big-endian host, see SnapshotWriter):
//
//   [file header]                  magic, version, endian tag, kind,
//                                  column table (names + dtypes)
//   [block]*                       one per (shard, column), in shard-major
//                                  order: block header, payload, CRC32C
//   [footer]                       block index + totals + metadata, CRC'd
//   [trailer]  (last 24 bytes)     footer offset, footer length, magic
//
// The trailer lets a reader locate the footer with one seek and detect
// truncation without scanning; each block is additionally self-delimiting
// (own magic + lengths + checksum) so a reader that finds the footer
// damaged can still recover every intact block by a forward scan.
// See src/store/README.md for the full recovery contract.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace resmodel::store {

/// File magic, first 8 bytes: "RESMSNP1".
inline constexpr std::uint64_t kFileMagic = 0x31504E534D534552ull;
/// Trailer magic, last 8 bytes of the file: "RESMFTR1".
inline constexpr std::uint64_t kTrailerMagic = 0x31525446'4D534552ull;
/// Per-block magic ("RSBK").
inline constexpr std::uint32_t kBlockMagic = 0x4B425352u;
/// Current format version. Readers reject anything newer.
inline constexpr std::uint32_t kFormatVersion = 1;
/// Endianness tag: written as the native u32 0x01020304; a little-endian
/// file therefore starts the field with byte 0x04. A reader seeing the
/// byteswapped value knows the file came from (or is being read on) an
/// incompatible host.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

/// Fixed sizes (bytes) of the framing pieces.
inline constexpr std::size_t kTrailerBytes = 24;  // offset + length + magic
inline constexpr std::size_t kBlockHeaderBytes = 32;  // magic, col, shard,
                                                      // rows, payload len

/// Element types a column block can carry.
enum class DType : std::uint32_t {
  kF64 = 0,
  kF32 = 1,
  kI32 = 2,
  kI64 = 3,
  kU64 = 4,
  kU8 = 5,
};

inline std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::kF64: return 8;
    case DType::kF32: return 4;
    case DType::kI32: return 4;
    case DType::kI64: return 8;
    case DType::kU64: return 8;
    case DType::kU8: return 1;
  }
  throw std::invalid_argument("store: unknown dtype " +
                              std::to_string(static_cast<std::uint32_t>(t)));
}

std::string to_string(DType t);

/// Every way a snapshot operation can fail, as a closed enum so callers
/// (and the recovery report) can branch on the cause instead of parsing
/// message strings.
enum class StoreErrc {
  kCannotOpen,        ///< open/create failed (missing file, permissions)
  kIoError,           ///< read/write/sync failed mid-operation (EIO)
  kNoSpace,           ///< write failed with no space (ENOSPC)
  kBadMagic,          ///< file does not start with the snapshot magic
  kBadVersion,        ///< written by a future format version
  kBadEndianness,     ///< endian tag mismatches this host
  kHeaderCorrupt,     ///< header frame fails its checksum / is malformed
  kTruncated,         ///< file ends before the trailer / inside a block
  kFooterCorrupt,     ///< trailer or footer present but fails its checksum
  kBlockCorrupt,      ///< a block header or payload fails its checksum
  kSchemaMismatch,    ///< column names/dtypes/kind differ from expectation
  kInvalidArgument,   ///< caller error (bad shard shape, empty schema, ...)
  kSimulatedCrash,    ///< fault injection: process "died" mid-write
};

std::string to_string(StoreErrc errc);

/// The typed exception of the store layer. `errc()` identifies the cause;
/// `path()` the file involved (may be empty for in-memory operations).
class StoreError : public std::runtime_error {
 public:
  StoreError(StoreErrc errc, std::string path, const std::string& detail)
      : std::runtime_error("store[" + store::to_string(errc) + "] " +
                           (path.empty() ? "" : path + ": ") + detail),
        errc_(errc),
        path_(std::move(path)) {}

  StoreErrc errc() const noexcept { return errc_; }
  const std::string& path() const noexcept { return path_; }

 private:
  StoreErrc errc_;
  std::string path_;
};

}  // namespace resmodel::store

#include "store/format.h"

namespace resmodel::store {

std::string to_string(DType t) {
  switch (t) {
    case DType::kF64: return "f64";
    case DType::kF32: return "f32";
    case DType::kI32: return "i32";
    case DType::kI64: return "i64";
    case DType::kU64: return "u64";
    case DType::kU8: return "u8";
  }
  return "dtype(" + std::to_string(static_cast<std::uint32_t>(t)) + ")";
}

std::string to_string(StoreErrc errc) {
  switch (errc) {
    case StoreErrc::kCannotOpen: return "cannot-open";
    case StoreErrc::kIoError: return "io-error";
    case StoreErrc::kNoSpace: return "no-space";
    case StoreErrc::kBadMagic: return "bad-magic";
    case StoreErrc::kBadVersion: return "bad-version";
    case StoreErrc::kBadEndianness: return "bad-endianness";
    case StoreErrc::kHeaderCorrupt: return "header-corrupt";
    case StoreErrc::kTruncated: return "truncated";
    case StoreErrc::kFooterCorrupt: return "footer-corrupt";
    case StoreErrc::kBlockCorrupt: return "block-corrupt";
    case StoreErrc::kSchemaMismatch: return "schema-mismatch";
    case StoreErrc::kInvalidArgument: return "invalid-argument";
    case StoreErrc::kSimulatedCrash: return "simulated-crash";
  }
  return "errc(" + std::to_string(static_cast<int>(errc)) + ")";
}

}  // namespace resmodel::store

// Deterministic I/O fault injection for the snapshot store.
//
// Two fault families mirror the two ways real storage betrays a writer:
//
//  1. Writer-visible faults (FaultPlan + FaultyFileSystem): the file API
//     itself fails mid-write — ENOSPC, EIO, or a process/power "crash" at
//     a byte offset (appends past the offset silently vanish, then the
//     operation dies). These drive the crash-safety half of the recovery
//     contract: the writer must surface a typed error and the destination
//     file must stay byte-for-byte what it was before.
//
//  2. Published-file corruption (CorruptionPlan + corrupt_file): damage
//     that lands after a successful publication — a torn tail the disk
//     never persisted, a truncation, a flipped bit of rot. These drive
//     the reader half: every damaged block must be detected and
//     accounted, every intact block must still load.
//
// Determinism rule (same contract as sim/fault_model): plans are sampled
// from an explicit util::Rng the caller forks per scenario, consume a
// fixed number of draws, and contain plain offsets — so a (seed,
// scenario-index) pair replays the identical fault on any machine and
// thread count, and the CI grid is reproducible bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "store/io.h"
#include "util/rng.h"

namespace resmodel::store {

/// One writer-visible fault. kind == kNone is a clean passthrough.
struct FaultPlan {
  enum class Kind : std::uint8_t {
    kNone,       ///< no fault
    kNoSpace,    ///< append crossing at_byte: short-writes then ENOSPC
    kIoError,    ///< append crossing at_byte: short-writes then EIO
    kCrash,      ///< bytes past at_byte vanish; the op then "dies"
                 ///< (StoreErrc::kSimulatedCrash). If the writer reaches
                 ///< commit first, the crash fires before the rename.
  };

  Kind kind = Kind::kNone;
  std::uint64_t at_byte = 0;  ///< trigger offset within the written stream

  /// Samples a plan: kind uniform over the three faulting kinds,
  /// at_byte uniform in [0, expected_bytes]. Consumes exactly two draws.
  static FaultPlan sample(util::Rng& rng, std::uint64_t expected_bytes);
};

/// Wraps a real FileSystem; the next create() returns a file that
/// enacts `plan`. rename() also crashes when a kCrash plan's offset was
/// never reached during appends (crash-at-commit). One plan applies per
/// FaultyFileSystem instance — scenarios construct a fresh one each.
class FaultyFileSystem final : public FileSystem {
 public:
  FaultyFileSystem(FileSystem& base, FaultPlan plan)
      : base_(&base), plan_(plan) {}

  std::unique_ptr<WritableFile> create(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) noexcept override;

  /// True once the plan's fault actually fired (a clean run under a
  /// large at_byte never triggers).
  bool fault_fired() const noexcept { return fired_; }

 private:
  FileSystem* base_;
  FaultPlan plan_;
  std::uint64_t appended_ = 0;
  bool fired_ = false;
};

/// One post-publication corruption applied to an existing file's bytes.
struct CorruptionPlan {
  enum class Kind : std::uint8_t {
    kTruncate,  ///< drop everything from byte `at` on (torn/short write)
    kZeroTail,  ///< keep the length, zero bytes [at, end) (lost sectors)
    kBitFlip,   ///< flip bit (at % 8) of byte (at / 8 % file size)
  };

  Kind kind = Kind::kTruncate;
  std::uint64_t at = 0;

  /// Kind uniform over the three, position uniform over the file (for
  /// kBitFlip, over its bits). Consumes exactly two draws.
  static CorruptionPlan sample(util::Rng& rng, std::uint64_t file_bytes);
};

/// Applies `plan` in place. Throws StoreError(kCannotOpen / kIoError) if
/// the file cannot be rewritten.
void corrupt_file(const std::string& path, const CorruptionPlan& plan);

}  // namespace resmodel::store

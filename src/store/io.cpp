#include "store/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace resmodel::store {

namespace {

std::string errno_detail(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

/// POSIX fd-backed file. Appends retry on EINTR and loop over short
/// writes; ENOSPC is surfaced as its own errc because the snapshot
/// property suite injects it specifically.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override { PosixWritableFile::close(); }

  void append(const void* data, std::size_t n) override {
    const char* p = static_cast<const char*>(data);
    std::size_t remaining = n;
    while (remaining > 0) {
      const ssize_t written = ::write(fd_, p, remaining);
      if (written < 0) {
        if (errno == EINTR) continue;
        const StoreErrc errc =
            errno == ENOSPC ? StoreErrc::kNoSpace : StoreErrc::kIoError;
        throw StoreError(errc, path_, errno_detail("write"));
      }
      p += written;
      remaining -= static_cast<std::size_t>(written);
    }
    logical_ += n;
  }

  void sync() override {
    if (::fsync(fd_) != 0) {
      throw StoreError(StoreErrc::kIoError, path_, errno_detail("fsync"));
    }
  }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::uint64_t logical_size() const noexcept override { return logical_; }

 private:
  int fd_;
  std::string path_;
  std::uint64_t logical_ = 0;
};

class RealFileSystem final : public FileSystem {
 public:
  std::unique_ptr<WritableFile> create(const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      throw StoreError(StoreErrc::kCannotOpen, path, errno_detail("open"));
    }
    return std::make_unique<PosixWritableFile>(fd, path);
  }

  void rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      throw StoreError(StoreErrc::kIoError, to, errno_detail("rename"));
    }
    // Durability of the rename itself: fsync the containing directory,
    // else a crash can roll the directory entry back even though the
    // data blocks were synced.
    const std::size_t slash = to.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : to.substr(0, slash == 0 ? 1 : slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      ::fsync(dfd);  // best effort: some filesystems reject directory fsync
      ::close(dfd);
    }
  }

  void remove(const std::string& path) noexcept override {
    ::unlink(path.c_str());
  }
};

}  // namespace

FileSystem& FileSystem::real() {
  static RealFileSystem fs;
  return fs;
}

AtomicFileWriter::AtomicFileWriter(std::string path, FileSystem& fs)
    : fs_(&fs), path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  file_ = fs_->create(tmp_path_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!done_) abort();
}

void AtomicFileWriter::append(const void* data, std::size_t n) {
  file_->append(data, n);
}

std::uint64_t AtomicFileWriter::offset() const noexcept {
  return file_->logical_size();
}

void AtomicFileWriter::commit() {
  try {
    file_->sync();
    file_->close();
    fs_->rename(tmp_path_, path_);
  } catch (...) {
    abort();
    throw;
  }
  done_ = true;
}

void AtomicFileWriter::abort() noexcept {
  if (done_) return;
  file_->close();
  fs_->remove(tmp_path_);
  done_ = true;
}

}  // namespace resmodel::store

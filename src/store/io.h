// The file-API seam of the store layer, and the crash-safe writer built
// on it.
//
// Every byte the snapshot writer emits goes through a WritableFile
// obtained from a FileSystem. Production code uses FileSystem::real()
// (POSIX fd I/O with genuine fsync); the fault-injection layer
// (store/fault_injection.h) substitutes a wrapper that fails writes,
// drops tails, or "crashes" at a seeded byte offset — which is what lets
// the recovery property suite drive thousands of deterministic failure
// scenarios through the exact production write path.
//
// AtomicFileWriter generalizes the write-to-.tmp / validate / atomic-mv
// discipline tools/run_bench.sh adopted in PR 7 into a reusable C++
// primitive: appends accumulate in `<path>.tmp`; commit() fsyncs the
// data, renames over `<path>`, and fsyncs the parent directory; any
// abandonment (exception, injected crash, early destruction) removes the
// .tmp and leaves the destination byte-for-byte untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "store/format.h"

namespace resmodel::store {

/// Append-only file handle. All failures are reported as StoreError
/// (kIoError / kNoSpace / kSimulatedCrash) — never errno side channels.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `n` bytes. On failure, bytes up to the failure point may
  /// have been written (a short write) — the typed error tells the
  /// caller the operation did not complete.
  virtual void append(const void* data, std::size_t n) = 0;

  /// Durability barrier (fsync).
  virtual void sync() = 0;

  /// Closes the handle; idempotent. Further appends are a caller bug.
  virtual void close() = 0;

  /// Logical bytes appended so far (what the caller handed in, which
  /// under fault injection can exceed what physically reached the file).
  virtual std::uint64_t logical_size() const noexcept = 0;
};

/// The operations the snapshot writer needs from a filesystem. The
/// interface is deliberately tiny — create, atomic rename, remove — so a
/// fault-injecting implementation can interpose on every durability-
/// relevant transition.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Creates (truncating) `path` for appending.
  /// Throws StoreError(kCannotOpen) on failure.
  virtual std::unique_ptr<WritableFile> create(const std::string& path) = 0;

  /// Atomically renames `from` onto `to` and fsyncs the parent directory.
  virtual void rename(const std::string& from, const std::string& to) = 0;

  /// Best-effort unlink; missing files are not an error.
  virtual void remove(const std::string& path) noexcept = 0;

  /// The production POSIX implementation (process-wide singleton).
  static FileSystem& real();
};

/// Crash-safe publication of one file. See the header comment.
class AtomicFileWriter {
 public:
  /// Starts writing to `path + ".tmp"`. `fs` must outlive the writer.
  explicit AtomicFileWriter(std::string path,
                            FileSystem& fs = FileSystem::real());

  /// Removes the .tmp if commit() was never reached.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  void append(const void* data, std::size_t n);

  /// Bytes appended so far == the offset the next append lands at.
  std::uint64_t offset() const noexcept;

  /// fsync + close + rename onto the destination. After this returns the
  /// new content is durably in place; after it throws, the destination
  /// is guaranteed untouched (the partial .tmp is removed).
  void commit();

  /// Explicitly abandon: close and remove the .tmp. Idempotent.
  void abort() noexcept;

  const std::string& path() const noexcept { return path_; }
  const std::string& tmp_path() const noexcept { return tmp_path_; }

 private:
  FileSystem* fs_;
  std::string path_;
  std::string tmp_path_;
  std::unique_ptr<WritableFile> file_;
  bool done_ = false;
};

}  // namespace resmodel::store

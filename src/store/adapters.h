// Pack/unpack adapters: the repo's two durable artifact families —
// trace::TraceStore host records and core::GeneratedHostBatch synthetic
// populations — mapped onto snapshot column blocks (SoA columns map 1:1
// onto column blocks, so packing is a columnarization pass and unpacking
// is a couple of memcpys per column).
//
// Kinds are versioned strings checked on unpack: a snapshot of the wrong
// kind or with a mangled schema produces StoreError(kSchemaMismatch),
// never a misinterpreted column.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/host_generator.h"
#include "store/snapshot.h"
#include "trace/trace_store.h"

namespace resmodel::store {

inline constexpr const char* kTraceKind = "trace.v1";
inline constexpr const char* kPopulationKind = "population.v1";
/// Engine checkpoint (src/engine/checkpoint.h): one self-framed state
/// blob per snapshot shard — shard 0 the run header, shards 1..S the
/// engine's ClientShards, one optional trailing shard the quorum
/// coordinator. A single u8 column carries the blobs, so the store's
/// per-(shard, column) CRC32C blocks give shard-granular damage
/// itemization on recovery. See src/store/README.md.
inline constexpr const char* kEngineStateKind = "engine_state.v1";

/// The column schemas (fixed order; names are part of the format).
std::vector<ColumnSpec> trace_schema();
std::vector<ColumnSpec> population_schema();
std::vector<ColumnSpec> engine_state_schema();

/// Whole-store materialization (small/medium artifacts).
Snapshot pack_trace(const trace::TraceStore& store);
trace::TraceStore unpack_trace(const Snapshot& snapshot);

Snapshot pack_population(const core::GeneratedHostBatch& batch);
core::GeneratedHostBatch unpack_population(const Snapshot& snapshot);

/// Streaming append of one shard to a writer opened with the matching
/// schema — the bounded-RSS path generators use (see `resmodel pack
/// --generate`). Throws StoreError(kInvalidArgument) on schema mismatch
/// or an empty shard.
void append_trace_shard(SnapshotWriter& writer,
                        std::span<const trace::HostRecord> hosts);
void append_population_shard(SnapshotWriter& writer,
                             const core::GeneratedHostBatch& batch);

/// File round-trips. shard_rows == 0 writes one shard; otherwise the
/// data is split into ceil(n / shard_rows) shards so readers can stream.
void write_trace_snapshot(const std::string& path,
                          const trace::TraceStore& store,
                          std::uint64_t shard_rows = 0,
                          WriterOptions opts = {});
trace::TraceStore read_trace_snapshot(const std::string& path);

void write_population_snapshot(const std::string& path,
                               const core::GeneratedHostBatch& batch,
                               std::uint64_t shard_rows = 0,
                               WriterOptions opts = {});
core::GeneratedHostBatch read_population_snapshot(const std::string& path);

}  // namespace resmodel::store

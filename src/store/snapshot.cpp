#include "store/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <limits>

#include "util/checksum.h"

namespace resmodel::store {

namespace {

// ---- little-endian (de)serialization helpers -------------------------

/// Growable byte buffer with explicit little-endian puts. All multi-byte
/// integers in the format go through here (or through the writer's block
/// header builder), so the on-disk encoding is fixed regardless of host
/// compiler padding rules.
struct ByteBuffer {
  std::vector<std::byte> bytes;

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
    }
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
    }
  }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    bytes.insert(bytes.end(), p, p + s.size());
  }
};

/// Bounds-checked cursor over a byte span. ok() goes false (sticky) on
/// any overrun instead of throwing, so callers can turn the failure into
/// the typed error appropriate to what they were parsing.
struct BufReader {
  const std::byte* p;
  std::size_t remaining;
  bool overrun = false;

  std::uint32_t u32() {
    if (remaining < 4) { overrun = true; return 0; }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(std::to_integer<unsigned>(p[i]))
           << (8 * i);
    }
    p += 4; remaining -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (remaining < 8) { overrun = true; return 0; }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(std::to_integer<unsigned>(p[i]))
           << (8 * i);
    }
    p += 8; remaining -= 8;
    return v;
  }
  std::string str(std::size_t max_len) {
    const std::uint32_t len = u32();
    if (overrun || len > max_len || remaining < len) {
      overrun = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len; remaining -= len;
    return s;
  }
  bool ok() const { return !overrun; }
};

// Sanity ceilings for header/footer fields: far above anything the
// writer produces, low enough that a corrupted length cannot drive a
// multi-gigabyte allocation before the checksum verdict is in.
constexpr std::uint32_t kMaxKindLen = 256;
constexpr std::uint32_t kMaxColumnName = 256;
constexpr std::uint32_t kMaxColumns = 4096;
constexpr std::uint32_t kMaxMetadataEntries = 4096;
constexpr std::uint32_t kMaxMetadataLen = 1 << 20;

/// 32-byte block header as raw bytes (magic, column, shard, rows,
/// payload length), shared by writer and reader so the CRC covers the
/// identical encoding on both sides.
std::array<std::byte, kBlockHeaderBytes> encode_block_header(
    std::uint32_t column, std::uint64_t shard, std::uint64_t rows,
    std::uint64_t payload_bytes) {
  ByteBuffer b;
  b.put_u32(kBlockMagic);
  b.put_u32(column);
  b.put_u64(shard);
  b.put_u64(rows);
  b.put_u64(payload_bytes);
  std::array<std::byte, kBlockHeaderBytes> out;
  std::memcpy(out.data(), b.bytes.data(), kBlockHeaderBytes);
  return out;
}

bool host_is_little_endian() {
  return std::endian::native == std::endian::little;
}

}  // namespace

const Column* Snapshot::find(std::string_view name) const noexcept {
  for (const Column& c : columns) {
    if (c.spec.name == name) return &c;
  }
  return nullptr;
}

// ---- writer ----------------------------------------------------------

SnapshotWriter::SnapshotWriter(std::string path, std::string kind,
                               std::vector<ColumnSpec> schema,
                               WriterOptions opts)
    : kind_(std::move(kind)),
      schema_(std::move(schema)),
      fs_(opts.fs ? opts.fs : &FileSystem::real()),
      file_(std::move(path), *fs_) {
  // The endianness guard the format header advertises: columns are
  // written as raw native element bytes, so a big-endian host would
  // silently produce byte-swapped files — refuse at write time instead.
  if (!host_is_little_endian()) {
    throw StoreError(StoreErrc::kBadEndianness, file_.path(),
                     "snapshot writer requires a little-endian host");
  }
  if (schema_.empty()) {
    throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                     "empty column schema");
  }
  if (kind_.size() > kMaxKindLen) {
    throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                     "kind string too long");
  }
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name.empty() || schema_[i].name.size() > kMaxColumnName) {
      throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                       "bad column name at index " + std::to_string(i));
    }
    dtype_size(schema_[i].dtype);  // validates the enum value
    for (std::size_t j = 0; j < i; ++j) {
      if (schema_[j].name == schema_[i].name) {
        throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                         "duplicate column name '" + schema_[i].name + "'");
      }
    }
  }
  digests_.assign(schema_.size(), 0);

  ByteBuffer header;
  header.put_u64(kFileMagic);
  header.put_u32(kFormatVersion);
  header.put_u32(kEndianTag);
  header.put_string(kind_);
  header.put_u32(static_cast<std::uint32_t>(schema_.size()));
  for (const ColumnSpec& c : schema_) {
    header.put_string(c.name);
    header.put_u32(static_cast<std::uint32_t>(c.dtype));
  }
  const std::uint32_t crc =
      util::crc32c(header.bytes.data(), header.bytes.size());
  header.put_u32(crc);
  file_.append(header.bytes.data(), header.bytes.size());
}

SnapshotWriter::~SnapshotWriter() = default;

void SnapshotWriter::append_shard(
    std::span<const std::span<const std::byte>> columns, std::uint64_t rows) {
  if (finished_) {
    throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                     "append_shard after finish");
  }
  if (columns.size() != schema_.size()) {
    throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                     "shard has " + std::to_string(columns.size()) +
                         " columns, schema has " +
                         std::to_string(schema_.size()));
  }
  if (rows == 0) {
    throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                     "empty shard");
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].size() != rows * dtype_size(schema_[i].dtype)) {
      throw StoreError(
          StoreErrc::kInvalidArgument, file_.path(),
          "column '" + schema_[i].name + "' has " +
              std::to_string(columns[i].size()) + " bytes, expected " +
              std::to_string(rows * dtype_size(schema_[i].dtype)));
    }
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const auto header = encode_block_header(static_cast<std::uint32_t>(i),
                                            shards_, rows,
                                            columns[i].size());
    std::uint32_t crc = util::crc32c(header.data(), header.size());
    crc = util::crc32c(columns[i].data(), columns[i].size(), crc);

    BlockRecord rec;
    rec.column = static_cast<std::uint32_t>(i);
    rec.shard = shards_;
    rec.offset = file_.offset();
    rec.rows = rows;
    rec.payload_bytes = columns[i].size();
    rec.crc = crc;

    file_.append(header.data(), header.size());
    file_.append(columns[i].data(), columns[i].size());
    // 8-byte checksum frame: the CRC and its complement (a cheap guard
    // against the frame itself being zeroed along with the payload).
    ByteBuffer tail;
    tail.put_u32(crc);
    tail.put_u32(~crc);
    file_.append(tail.bytes.data(), tail.bytes.size());

    blocks_.push_back(rec);
    digests_[i] = util::crc32c(columns[i].data(), columns[i].size(),
                               digests_[i]);
  }
  rows_ += rows;
  ++shards_;
}

void SnapshotWriter::finish(
    std::vector<std::pair<std::string, std::string>> metadata) {
  if (finished_) {
    throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                     "finish called twice");
  }
  if (metadata.size() > kMaxMetadataEntries) {
    throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                     "too many metadata entries");
  }
  const std::uint64_t footer_offset = file_.offset();
  ByteBuffer footer;
  footer.put_u64(rows_);
  footer.put_u64(shards_);
  footer.put_u32(static_cast<std::uint32_t>(blocks_.size()));
  footer.put_u32(static_cast<std::uint32_t>(metadata.size()));
  for (const BlockRecord& b : blocks_) {
    footer.put_u32(b.column);
    footer.put_u64(b.shard);
    footer.put_u64(b.offset);
    footer.put_u64(b.rows);
    footer.put_u64(b.payload_bytes);
    footer.put_u32(b.crc);
  }
  for (const auto& [key, value] : metadata) {
    if (key.size() > kMaxMetadataLen || value.size() > kMaxMetadataLen) {
      throw StoreError(StoreErrc::kInvalidArgument, file_.path(),
                       "metadata entry too large");
    }
    footer.put_string(key);
    footer.put_string(value);
  }
  const std::uint32_t footer_crc =
      util::crc32c(footer.bytes.data(), footer.bytes.size());
  file_.append(footer.bytes.data(), footer.bytes.size());

  ByteBuffer trailer;
  trailer.put_u64(footer_offset);
  trailer.put_u32(static_cast<std::uint32_t>(footer.bytes.size()));
  trailer.put_u32(footer_crc);
  trailer.put_u64(kTrailerMagic);
  file_.append(trailer.bytes.data(), trailer.bytes.size());

  file_.commit();
  finished_ = true;
}

void write_snapshot_file(const std::string& path, const Snapshot& snapshot,
                         WriterOptions opts) {
  std::vector<ColumnSpec> schema;
  schema.reserve(snapshot.columns.size());
  for (const Column& c : snapshot.columns) schema.push_back(c.spec);
  SnapshotWriter writer(path, snapshot.kind, std::move(schema), opts);
  if (snapshot.rows > 0) {
    std::vector<std::span<const std::byte>> spans;
    spans.reserve(snapshot.columns.size());
    for (const Column& c : snapshot.columns) {
      if (c.rows != snapshot.rows) {
        throw StoreError(StoreErrc::kInvalidArgument, path,
                         "column '" + c.spec.name + "' has " +
                             std::to_string(c.rows) + " rows, snapshot has " +
                             std::to_string(snapshot.rows));
      }
      spans.emplace_back(c.data.data(), c.data.size());
    }
    writer.append_shard(spans, snapshot.rows);
  }
  writer.finish(snapshot.metadata);
}

// ---- reader ----------------------------------------------------------

SnapshotReader::SnapshotReader(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "rb");
  if (!file_) {
    throw StoreError(StoreErrc::kCannotOpen, path_,
                     "cannot open snapshot for reading");
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    throw StoreError(StoreErrc::kIoError, path_, "seek failed");
  }
  const long end = std::ftell(file_);
  if (end < 0) {
    throw StoreError(StoreErrc::kIoError, path_, "tell failed");
  }
  file_bytes_ = static_cast<std::uint64_t>(end);
  load_header();
  probe_footer();
}

SnapshotReader::~SnapshotReader() {
  if (file_) std::fclose(file_);
}

bool SnapshotReader::read_at(std::uint64_t offset, void* out, std::size_t n) {
  if (offset + n > file_bytes_) return false;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return false;
  }
  return std::fread(out, 1, n, file_) == n;
}

void SnapshotReader::load_header() {
  // Fixed prelude first, so magic/version/endianness produce their own
  // errors before the variable-length part is trusted at all.
  std::byte prelude[16];
  if (!read_at(0, prelude, sizeof prelude)) {
    throw StoreError(StoreErrc::kTruncated, path_,
                     "file too short for a snapshot header (" +
                         std::to_string(file_bytes_) + " bytes)");
  }
  BufReader pre{prelude, sizeof prelude};
  const std::uint64_t magic = pre.u64();
  if (magic != kFileMagic) {
    throw StoreError(StoreErrc::kBadMagic, path_,
                     "not a resmodel snapshot (bad magic)");
  }
  const std::uint32_t version = pre.u32();
  if (version > kFormatVersion) {
    throw StoreError(StoreErrc::kBadVersion, path_,
                     "written by future format version " +
                         std::to_string(version) + " (this reader supports <= " +
                         std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t endian = pre.u32();
  if (endian != kEndianTag) {
    throw StoreError(StoreErrc::kBadEndianness, path_,
                     endian == 0x04030201u
                         ? "byte-swapped endian tag: file written on an "
                           "incompatible (big-endian) host"
                         : "corrupt endian tag");
  }

  // Variable part: read generously (schemas are small), parse, verify CRC.
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(file_bytes_ - 16, 1u << 20));
  std::vector<std::byte> rest(want);
  if (want > 0 && !read_at(16, rest.data(), want)) {
    throw StoreError(StoreErrc::kIoError, path_, "header read failed");
  }
  BufReader r{rest.data(), rest.size()};
  kind_ = r.str(kMaxKindLen);
  const std::uint32_t columns = r.u32();
  if (!r.ok() || columns == 0 || columns > kMaxColumns) {
    throw StoreError(StoreErrc::kHeaderCorrupt, path_,
                     "malformed header (kind/column count)");
  }
  schema_.clear();
  for (std::uint32_t i = 0; i < columns; ++i) {
    ColumnSpec spec;
    spec.name = r.str(kMaxColumnName);
    const std::uint32_t dtype = r.u32();
    if (!r.ok() || dtype > static_cast<std::uint32_t>(DType::kU8)) {
      throw StoreError(StoreErrc::kHeaderCorrupt, path_,
                       "malformed header (column " + std::to_string(i) + ")");
    }
    spec.dtype = static_cast<DType>(dtype);
    schema_.push_back(std::move(spec));
  }
  const std::size_t parsed = rest.size() - r.remaining;
  const std::uint32_t stored_crc = r.u32();
  if (!r.ok()) {
    throw StoreError(StoreErrc::kTruncated, path_,
                     "file ends inside the header");
  }
  // The header CRC covers the prelude plus the parsed variable part.
  std::uint32_t crc = util::crc32c(prelude, sizeof prelude);
  crc = util::crc32c(rest.data(), parsed, crc);
  if (crc != stored_crc) {
    throw StoreError(StoreErrc::kHeaderCorrupt, path_,
                     "header checksum mismatch");
  }
  data_begin_ = 16 + parsed + 4;
}

void SnapshotReader::probe_footer() {
  footer_intact_ = false;
  if (file_bytes_ < data_begin_ + kTrailerBytes) {
    footer_errc_ = StoreErrc::kTruncated;
    footer_detail_ = "no room for a trailer: file truncated";
    return;
  }
  std::byte trailer[kTrailerBytes];
  if (!read_at(file_bytes_ - kTrailerBytes, trailer, kTrailerBytes)) {
    footer_errc_ = StoreErrc::kIoError;
    footer_detail_ = "trailer read failed";
    return;
  }
  BufReader t{trailer, kTrailerBytes};
  const std::uint64_t footer_offset = t.u64();
  const std::uint32_t footer_len = t.u32();
  const std::uint32_t footer_crc = t.u32();
  const std::uint64_t magic = t.u64();
  if (magic != kTrailerMagic) {
    footer_errc_ = StoreErrc::kTruncated;
    footer_detail_ =
        "trailer magic missing: file truncated or never finished";
    return;
  }
  if (footer_offset < data_begin_ ||
      footer_offset + footer_len + kTrailerBytes != file_bytes_) {
    footer_errc_ = StoreErrc::kFooterCorrupt;
    footer_detail_ = "trailer frame inconsistent with file size";
    return;
  }
  std::vector<std::byte> footer(footer_len);
  if (footer_len > 0 && !read_at(footer_offset, footer.data(), footer_len)) {
    footer_errc_ = StoreErrc::kIoError;
    footer_detail_ = "footer read failed";
    return;
  }
  if (util::crc32c(footer.data(), footer.size()) != footer_crc) {
    footer_errc_ = StoreErrc::kFooterCorrupt;
    footer_detail_ = "footer checksum mismatch";
    return;
  }
  BufReader r{footer.data(), footer.size()};
  const std::uint64_t rows = r.u64();
  const std::uint64_t shards = r.u64();
  const std::uint32_t block_count = r.u32();
  const std::uint32_t metadata_count = r.u32();
  std::vector<BlockRef> blocks;
  blocks.reserve(block_count);
  bool sane = r.ok() && metadata_count <= kMaxMetadataEntries;
  for (std::uint32_t i = 0; sane && i < block_count; ++i) {
    BlockRef b;
    b.column = r.u32();
    b.shard = r.u64();
    b.offset = r.u64();
    b.rows = r.u64();
    b.payload_bytes = r.u64();
    b.crc = r.u32();
    sane = r.ok() && b.column < schema_.size() && b.shard < shards &&
           b.offset >= data_begin_ &&
           b.offset + kBlockHeaderBytes + b.payload_bytes + 8 <=
               footer_offset &&
           b.payload_bytes == b.rows * dtype_size(schema_[b.column].dtype);
    blocks.push_back(b);
  }
  std::vector<std::pair<std::string, std::string>> metadata;
  for (std::uint32_t i = 0; sane && i < metadata_count; ++i) {
    std::string key = r.str(kMaxMetadataLen);
    std::string value = r.str(kMaxMetadataLen);
    sane = r.ok();
    metadata.emplace_back(std::move(key), std::move(value));
  }
  if (!sane) {
    footer_errc_ = StoreErrc::kFooterCorrupt;
    footer_detail_ = "footer parses but its entries are out of bounds";
    return;
  }
  rows_ = rows;
  shards_ = shards;
  blocks_ = std::move(blocks);
  metadata_ = std::move(metadata);
  footer_intact_ = true;
}

std::uint64_t SnapshotReader::rows() const {
  if (!footer_intact_) {
    throw StoreError(footer_errc_, path_, footer_detail_);
  }
  return rows_;
}

std::uint64_t SnapshotReader::shard_count() const {
  if (!footer_intact_) {
    throw StoreError(footer_errc_, path_, footer_detail_);
  }
  return shards_;
}

std::vector<std::pair<std::string, std::string>> SnapshotReader::metadata()
    const {
  if (!footer_intact_) {
    throw StoreError(footer_errc_, path_, footer_detail_);
  }
  return metadata_;
}

bool SnapshotReader::block_payload(const BlockRef& ref,
                                   std::vector<std::byte>& out) {
  std::byte header[kBlockHeaderBytes];
  if (!read_at(ref.offset, header, sizeof header)) return false;
  const auto expected = encode_block_header(ref.column, ref.shard, ref.rows,
                                            ref.payload_bytes);
  if (std::memcmp(header, expected.data(), sizeof header) != 0) return false;
  out.resize(ref.payload_bytes);
  if (ref.payload_bytes > 0 &&
      !read_at(ref.offset + kBlockHeaderBytes, out.data(),
               ref.payload_bytes)) {
    return false;
  }
  std::byte tail[8];
  if (!read_at(ref.offset + kBlockHeaderBytes + ref.payload_bytes, tail,
               sizeof tail)) {
    return false;
  }
  BufReader t{tail, sizeof tail};
  const std::uint32_t stored = t.u32();
  const std::uint32_t complement = t.u32();
  if (complement != ~stored) return false;
  std::uint32_t crc = util::crc32c(header, sizeof header);
  crc = util::crc32c(out.data(), out.size(), crc);
  return crc == stored && crc == ref.crc;
}

Snapshot SnapshotReader::read_all() {
  if (!footer_intact_) {
    throw StoreError(footer_errc_, path_, footer_detail_);
  }
  Snapshot snap;
  snap.kind = kind_;
  snap.rows = rows_;
  snap.metadata = metadata_;
  snap.columns.resize(schema_.size());
  std::vector<std::uint64_t> write_offsets(schema_.size(), 0);
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    snap.columns[i].spec = schema_[i];
    snap.columns[i].rows = rows_;
    snap.columns[i].data.resize(rows_ * dtype_size(schema_[i].dtype));
  }
  std::vector<std::byte> payload;
  for (const BlockRef& b : blocks_) {
    if (!block_payload(b, payload)) {
      throw StoreError(StoreErrc::kBlockCorrupt, path_,
                       "column '" + schema_[b.column].name + "' shard " +
                           std::to_string(b.shard) +
                           " fails its checksum or is truncated");
    }
    Column& col = snap.columns[b.column];
    if (write_offsets[b.column] + payload.size() > col.data.size()) {
      throw StoreError(StoreErrc::kFooterCorrupt, path_,
                       "block index overflows column '" +
                           schema_[b.column].name + "'");
    }
    std::memcpy(col.data.data() + write_offsets[b.column], payload.data(),
                payload.size());
    write_offsets[b.column] += payload.size();
  }
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (write_offsets[i] != snap.columns[i].data.size()) {
      throw StoreError(StoreErrc::kFooterCorrupt, path_,
                       "block index leaves column '" + schema_[i].name +
                           "' short");
    }
  }
  return snap;
}

Snapshot SnapshotReader::read_shard(std::uint64_t shard) {
  if (!footer_intact_) {
    throw StoreError(footer_errc_, path_, footer_detail_);
  }
  if (shard >= shards_) {
    throw StoreError(StoreErrc::kInvalidArgument, path_,
                     "shard " + std::to_string(shard) + " out of range (" +
                         std::to_string(shards_) + " shards)");
  }
  Snapshot snap;
  snap.kind = kind_;
  snap.metadata = metadata_;
  snap.columns.resize(schema_.size());
  std::vector<bool> seen(schema_.size(), false);
  std::vector<std::byte> payload;
  for (const BlockRef& b : blocks_) {
    if (b.shard != shard) continue;
    if (!block_payload(b, payload)) {
      throw StoreError(StoreErrc::kBlockCorrupt, path_,
                       "column '" + schema_[b.column].name + "' shard " +
                           std::to_string(b.shard) +
                           " fails its checksum or is truncated");
    }
    Column& col = snap.columns[b.column];
    col.spec = schema_[b.column];
    col.rows = b.rows;
    col.data = payload;
    seen[b.column] = true;
    snap.rows = b.rows;
  }
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (!seen[i]) {
      throw StoreError(StoreErrc::kFooterCorrupt, path_,
                       "shard " + std::to_string(shard) +
                           " lacks a block for column '" + schema_[i].name +
                           "'");
    }
  }
  return snap;
}

std::vector<SnapshotReader::BlockRef> SnapshotReader::scan_blocks(
    ReadReport& report) {
  // Footerless fallback: blocks were written sequentially from the end
  // of the header, each self-delimiting. Walk forward while everything
  // checks out; the first inconsistent header or failed checksum ends
  // the scan (a torn tail takes everything after it — the remaining
  // bytes are accounted, not guessed at).
  std::vector<BlockRef> recovered;
  std::uint64_t offset = data_begin_;
  std::uint64_t expected_shard = 0;
  std::uint32_t expected_column = 0;
  std::uint64_t shard_rows = 0;
  std::vector<std::byte> payload;
  while (offset + kBlockHeaderBytes + 8 <= file_bytes_) {
    std::byte header[kBlockHeaderBytes];
    if (!read_at(offset, header, sizeof header)) break;
    BufReader h{header, sizeof header};
    BlockRef b;
    const std::uint32_t magic = h.u32();
    b.column = h.u32();
    b.shard = h.u64();
    b.rows = h.u64();
    b.payload_bytes = h.u64();
    b.offset = offset;
    if (magic != kBlockMagic || b.column != expected_column ||
        b.shard != expected_shard || b.rows == 0 ||
        b.payload_bytes !=
            b.rows * dtype_size(schema_[b.column].dtype) ||
        (b.column > 0 && b.rows != shard_rows)) {
      break;
    }
    if (offset + kBlockHeaderBytes + b.payload_bytes + 8 > file_bytes_) {
      break;
    }
    std::byte tail[8];
    if (!read_at(offset + kBlockHeaderBytes + b.payload_bytes, tail, 8)) {
      break;
    }
    BufReader t{tail, sizeof tail};
    b.crc = t.u32();
    const std::uint32_t complement = t.u32();
    if (complement != ~b.crc) break;
    if (!block_payload(b, payload)) break;
    if (b.column == 0) shard_rows = b.rows;
    recovered.push_back(b);
    offset += kBlockHeaderBytes + b.payload_bytes + 8;
    if (++expected_column == schema_.size()) {
      expected_column = 0;
      ++expected_shard;
    }
  }
  // An incomplete shard (scan died mid-shard) is dropped: its recovered
  // blocks are real, but materializing a shard some columns lack would
  // misalign rows across columns. They are accounted as lost instead.
  while (!recovered.empty() && recovered.back().shard == expected_shard) {
    const BlockRef& b = recovered.back();
    report.lost.push_back(
        {b.column, b.shard, b.rows, StoreErrc::kTruncated});
    report.rows_lost += b.rows;
    offset = b.offset;
    recovered.pop_back();
  }
  report.tail_bytes_unscanned = file_bytes_ - offset;
  return recovered;
}

Snapshot SnapshotReader::read_recovering(ReadReport& report) {
  report = ReadReport{};
  report.footer_intact = footer_intact_;

  std::vector<BlockRef> blocks;
  std::uint64_t total_rows = 0;
  std::uint64_t shard_count = 0;
  if (footer_intact_) {
    blocks = blocks_;
    total_rows = rows_;
    shard_count = shards_;
    report.blocks_expected = blocks.size();
  } else {
    report.complete = false;  // totals unknowable without the footer
    blocks = scan_blocks(report);
    report.blocks_expected = blocks.size() + report.lost.size();
    for (const BlockRef& b : blocks) {
      if (b.column == 0) {
        total_rows += b.rows;
        ++shard_count;
      }
    }
  }

  Snapshot snap;
  snap.kind = kind_;
  snap.rows = total_rows;
  if (footer_intact_) snap.metadata = metadata_;
  snap.columns.resize(schema_.size());
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    snap.columns[i].spec = schema_[i];
    snap.columns[i].rows = total_rows;
    snap.columns[i].data.assign(total_rows * dtype_size(schema_[i].dtype),
                                std::byte{0});
  }

  std::vector<std::uint64_t> write_offsets(schema_.size(), 0);
  std::vector<std::byte> payload;
  for (const BlockRef& b : blocks) {
    Column& col = snap.columns[b.column];
    const std::uint64_t at = write_offsets[b.column];
    if (at + b.payload_bytes > col.data.size()) {
      // Footer lied about the layout (corrupt but checksum-colliding
      // entries are astronomically unlikely; a defensive bound, not a
      // code path tests can reach deterministically).
      report.complete = false;
      report.lost.push_back({b.column, b.shard, b.rows,
                             StoreErrc::kFooterCorrupt});
      report.rows_lost += b.rows;
      continue;
    }
    if (block_payload(b, payload)) {
      std::memcpy(col.data.data() + at, payload.data(), payload.size());
      ++report.blocks_loaded;
    } else {
      report.complete = false;
      report.lost.push_back({b.column, b.shard, b.rows,
                             StoreErrc::kBlockCorrupt});
      report.rows_lost += b.rows;
      // The hole stays zero-filled; the report is the record of it.
    }
    write_offsets[b.column] = at + b.payload_bytes;
  }
  (void)shard_count;
  return snap;
}

SnapshotReader::VerifyResult SnapshotReader::verify() {
  VerifyResult result;
  result.report.footer_intact = footer_intact_;
  result.column_digests.assign(schema_.size(), 0);
  result.column_intact.assign(schema_.size(), footer_intact_);

  std::vector<BlockRef> blocks;
  if (footer_intact_) {
    blocks = blocks_;
    result.report.blocks_expected = blocks.size();
  } else {
    result.report.complete = false;
    blocks = scan_blocks(result.report);
    result.report.blocks_expected =
        blocks.size() + result.report.lost.size();
    for (const LostBlock& lost : result.report.lost) {
      result.column_intact[lost.column] = false;
    }
  }

  std::vector<std::byte> payload;
  for (const BlockRef& b : blocks) {
    if (block_payload(b, payload)) {
      ++result.report.blocks_loaded;
      result.column_digests[b.column] = util::crc32c(
          payload.data(), payload.size(), result.column_digests[b.column]);
    } else {
      result.report.complete = false;
      result.report.lost.push_back({b.column, b.shard, b.rows,
                                    StoreErrc::kBlockCorrupt});
      result.report.rows_lost += b.rows;
      result.column_intact[b.column] = false;
    }
  }
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (!result.column_intact[i]) result.column_digests[i] = 0;
  }
  return result;
}

}  // namespace resmodel::store

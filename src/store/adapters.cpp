#include "store/adapters.h"

#include <cstring>

#include "trace/host_record.h"

namespace resmodel::store {

namespace {

static_assert(sizeof(int) == 4, "population n_cores column assumes 32-bit int");

template <typename T>
std::span<const std::byte> bytes_of(const std::vector<T>& v) {
  return std::as_bytes(std::span<const T>(v));
}

/// Locates `name` in `snapshot`, enforcing dtype and row count. Unpack
/// never guesses: a missing/mistyped/short column is kSchemaMismatch.
const Column& require_column(const Snapshot& snapshot, std::string_view name,
                             DType dtype) {
  const Column* col = snapshot.find(name);
  if (!col) {
    throw StoreError(StoreErrc::kSchemaMismatch, "",
                     "missing column '" + std::string(name) + "' in kind '" +
                         snapshot.kind + "'");
  }
  if (col->spec.dtype != dtype) {
    throw StoreError(StoreErrc::kSchemaMismatch, "",
                     "column '" + std::string(name) + "' has dtype " +
                         to_string(col->spec.dtype) + ", expected " +
                         to_string(dtype));
  }
  if (col->rows != snapshot.rows ||
      col->data.size() != col->rows * dtype_size(dtype)) {
    throw StoreError(StoreErrc::kSchemaMismatch, "",
                     "column '" + std::string(name) + "' has " +
                         std::to_string(col->rows) + " rows, snapshot has " +
                         std::to_string(snapshot.rows));
  }
  return *col;
}

void require_kind(const Snapshot& snapshot, std::string_view kind) {
  if (snapshot.kind != kind) {
    throw StoreError(StoreErrc::kSchemaMismatch, "",
                     "snapshot kind '" + snapshot.kind + "', expected '" +
                         std::string(kind) + "'");
  }
}

template <typename E>
E checked_enum(std::uint8_t raw, int count, const char* what,
               std::uint64_t row) {
  if (raw >= count) {
    throw StoreError(StoreErrc::kSchemaMismatch, "",
                     std::string(what) + " value " + std::to_string(raw) +
                         " out of range at row " + std::to_string(row));
  }
  return static_cast<E>(raw);
}

/// The 13 trace columns materialized for one span of hosts, in
/// trace_schema() order.
struct TraceColumns {
  std::vector<std::uint64_t> id;
  std::vector<std::int32_t> created_day;
  std::vector<std::int32_t> last_contact_day;
  std::vector<std::int32_t> n_cores;
  std::vector<double> memory_mb;
  std::vector<double> dhrystone_mips;
  std::vector<double> whetstone_mips;
  std::vector<double> disk_avail_gb;
  std::vector<double> disk_total_gb;
  std::vector<std::uint8_t> cpu;
  std::vector<std::uint8_t> os;
  std::vector<std::uint8_t> gpu;
  std::vector<double> gpu_memory_mb;

  explicit TraceColumns(std::span<const trace::HostRecord> hosts) {
    const std::size_t n = hosts.size();
    id.reserve(n);
    created_day.reserve(n);
    last_contact_day.reserve(n);
    n_cores.reserve(n);
    memory_mb.reserve(n);
    dhrystone_mips.reserve(n);
    whetstone_mips.reserve(n);
    disk_avail_gb.reserve(n);
    disk_total_gb.reserve(n);
    cpu.reserve(n);
    os.reserve(n);
    gpu.reserve(n);
    gpu_memory_mb.reserve(n);
    for (const trace::HostRecord& h : hosts) {
      id.push_back(h.id);
      created_day.push_back(h.created_day);
      last_contact_day.push_back(h.last_contact_day);
      n_cores.push_back(h.n_cores);
      memory_mb.push_back(h.memory_mb);
      dhrystone_mips.push_back(h.dhrystone_mips);
      whetstone_mips.push_back(h.whetstone_mips);
      disk_avail_gb.push_back(h.disk_avail_gb);
      disk_total_gb.push_back(h.disk_total_gb);
      cpu.push_back(static_cast<std::uint8_t>(h.cpu));
      os.push_back(static_cast<std::uint8_t>(h.os));
      gpu.push_back(static_cast<std::uint8_t>(h.gpu));
      gpu_memory_mb.push_back(h.gpu_memory_mb);
    }
  }

  std::vector<std::span<const std::byte>> spans() const {
    return {bytes_of(id),          bytes_of(created_day),
            bytes_of(last_contact_day), bytes_of(n_cores),
            bytes_of(memory_mb),   bytes_of(dhrystone_mips),
            bytes_of(whetstone_mips),   bytes_of(disk_avail_gb),
            bytes_of(disk_total_gb),    bytes_of(cpu),
            bytes_of(os),          bytes_of(gpu),
            bytes_of(gpu_memory_mb)};
  }
};

std::vector<std::span<const std::byte>> population_spans(
    const core::GeneratedHostBatch& batch) {
  return {bytes_of(batch.n_cores),        bytes_of(batch.memory_per_core_mb),
          bytes_of(batch.memory_mb),      bytes_of(batch.whetstone_mips),
          bytes_of(batch.dhrystone_mips), bytes_of(batch.disk_avail_gb)};
}

Snapshot pack_from_writerless(std::string kind,
                              std::vector<ColumnSpec> schema,
                              std::vector<std::span<const std::byte>> spans,
                              std::uint64_t rows) {
  Snapshot snap;
  snap.kind = std::move(kind);
  snap.rows = rows;
  snap.columns.reserve(schema.size());
  for (std::size_t i = 0; i < schema.size(); ++i) {
    Column col;
    col.spec = schema[i];
    col.rows = rows;
    col.data.assign(spans[i].begin(), spans[i].end());
    snap.columns.push_back(std::move(col));
  }
  return snap;
}

}  // namespace

std::vector<ColumnSpec> trace_schema() {
  return {{"id", DType::kU64},
          {"created_day", DType::kI32},
          {"last_contact_day", DType::kI32},
          {"n_cores", DType::kI32},
          {"memory_mb", DType::kF64},
          {"dhrystone_mips", DType::kF64},
          {"whetstone_mips", DType::kF64},
          {"disk_avail_gb", DType::kF64},
          {"disk_total_gb", DType::kF64},
          {"cpu", DType::kU8},
          {"os", DType::kU8},
          {"gpu", DType::kU8},
          {"gpu_memory_mb", DType::kF64}};
}

std::vector<ColumnSpec> population_schema() {
  return {{"n_cores", DType::kI32},
          {"memory_per_core_mb", DType::kF64},
          {"memory_mb", DType::kF64},
          {"whetstone_mips", DType::kF64},
          {"dhrystone_mips", DType::kF64},
          {"disk_avail_gb", DType::kF64}};
}

std::vector<ColumnSpec> engine_state_schema() {
  // One opaque byte blob per snapshot shard (rows == blob bytes). The
  // framing inside the blob belongs to src/engine/state_codec.h; the
  // store only guarantees each blob round-trips bit-identically or is
  // itemized as lost.
  return {{"shard_state", DType::kU8}};
}

Snapshot pack_trace(const trace::TraceStore& store) {
  TraceColumns cols(store.hosts());
  return pack_from_writerless(kTraceKind, trace_schema(), cols.spans(),
                              store.size());
}

trace::TraceStore unpack_trace(const Snapshot& snapshot) {
  require_kind(snapshot, kTraceKind);
  const auto id = require_column(snapshot, "id", DType::kU64)
                      .as<std::uint64_t>();
  const auto created =
      require_column(snapshot, "created_day", DType::kI32).as<std::int32_t>();
  const auto last = require_column(snapshot, "last_contact_day", DType::kI32)
                        .as<std::int32_t>();
  const auto cores =
      require_column(snapshot, "n_cores", DType::kI32).as<std::int32_t>();
  const auto mem =
      require_column(snapshot, "memory_mb", DType::kF64).as<double>();
  const auto dhry =
      require_column(snapshot, "dhrystone_mips", DType::kF64).as<double>();
  const auto whet =
      require_column(snapshot, "whetstone_mips", DType::kF64).as<double>();
  const auto disk_a =
      require_column(snapshot, "disk_avail_gb", DType::kF64).as<double>();
  const auto disk_t =
      require_column(snapshot, "disk_total_gb", DType::kF64).as<double>();
  const auto cpu =
      require_column(snapshot, "cpu", DType::kU8).as<std::uint8_t>();
  const auto os = require_column(snapshot, "os", DType::kU8).as<std::uint8_t>();
  const auto gpu =
      require_column(snapshot, "gpu", DType::kU8).as<std::uint8_t>();
  const auto gpu_mem =
      require_column(snapshot, "gpu_memory_mb", DType::kF64).as<double>();

  trace::TraceStore store;
  store.reserve(snapshot.rows);
  for (std::uint64_t i = 0; i < snapshot.rows; ++i) {
    trace::HostRecord h;
    h.id = id[i];
    h.created_day = created[i];
    h.last_contact_day = last[i];
    h.n_cores = cores[i];
    h.memory_mb = mem[i];
    h.dhrystone_mips = dhry[i];
    h.whetstone_mips = whet[i];
    h.disk_avail_gb = disk_a[i];
    h.disk_total_gb = disk_t[i];
    h.cpu = checked_enum<trace::CpuFamily>(cpu[i], trace::kCpuFamilyCount,
                                           "cpu family", i);
    h.os = checked_enum<trace::OsFamily>(os[i], trace::kOsFamilyCount,
                                         "os family", i);
    h.gpu = checked_enum<trace::GpuType>(gpu[i], trace::kGpuTypeCount,
                                         "gpu type", i);
    h.gpu_memory_mb = gpu_mem[i];
    store.add(h);
  }
  return store;
}

Snapshot pack_population(const core::GeneratedHostBatch& batch) {
  return pack_from_writerless(kPopulationKind, population_schema(),
                              population_spans(batch), batch.size());
}

core::GeneratedHostBatch unpack_population(const Snapshot& snapshot) {
  require_kind(snapshot, kPopulationKind);
  const auto cores =
      require_column(snapshot, "n_cores", DType::kI32).as<std::int32_t>();
  const auto mem_pc =
      require_column(snapshot, "memory_per_core_mb", DType::kF64).as<double>();
  const auto mem =
      require_column(snapshot, "memory_mb", DType::kF64).as<double>();
  const auto whet =
      require_column(snapshot, "whetstone_mips", DType::kF64).as<double>();
  const auto dhry =
      require_column(snapshot, "dhrystone_mips", DType::kF64).as<double>();
  const auto disk =
      require_column(snapshot, "disk_avail_gb", DType::kF64).as<double>();

  core::GeneratedHostBatch batch;
  batch.n_cores.assign(cores.begin(), cores.end());
  batch.memory_per_core_mb.assign(mem_pc.begin(), mem_pc.end());
  batch.memory_mb.assign(mem.begin(), mem.end());
  batch.whetstone_mips.assign(whet.begin(), whet.end());
  batch.dhrystone_mips.assign(dhry.begin(), dhry.end());
  batch.disk_avail_gb.assign(disk.begin(), disk.end());
  return batch;
}

void append_trace_shard(SnapshotWriter& writer,
                        std::span<const trace::HostRecord> hosts) {
  if (hosts.empty()) {
    throw StoreError(StoreErrc::kInvalidArgument, "",
                     "append_trace_shard: empty shard");
  }
  if (writer.schema() != trace_schema()) {
    throw StoreError(StoreErrc::kInvalidArgument, "",
                     "append_trace_shard: writer schema is not trace.v1");
  }
  TraceColumns cols(hosts);
  writer.append_shard(cols.spans(), hosts.size());
}

void append_population_shard(SnapshotWriter& writer,
                             const core::GeneratedHostBatch& batch) {
  if (batch.empty()) {
    throw StoreError(StoreErrc::kInvalidArgument, "",
                     "append_population_shard: empty shard");
  }
  if (writer.schema() != population_schema()) {
    throw StoreError(
        StoreErrc::kInvalidArgument, "",
        "append_population_shard: writer schema is not population.v1");
  }
  writer.append_shard(population_spans(batch), batch.size());
}

void write_trace_snapshot(const std::string& path,
                          const trace::TraceStore& store,
                          std::uint64_t shard_rows, WriterOptions opts) {
  SnapshotWriter writer(path, kTraceKind, trace_schema(), opts);
  const std::span<const trace::HostRecord> hosts = store.hosts();
  const std::uint64_t step = shard_rows == 0 ? hosts.size() : shard_rows;
  for (std::uint64_t at = 0; at < hosts.size(); at += step) {
    const std::uint64_t n = std::min<std::uint64_t>(step, hosts.size() - at);
    append_trace_shard(writer, hosts.subspan(at, n));
  }
  writer.finish();
}

trace::TraceStore read_trace_snapshot(const std::string& path) {
  SnapshotReader reader(path);
  return unpack_trace(reader.read_all());
}

void write_population_snapshot(const std::string& path,
                               const core::GeneratedHostBatch& batch,
                               std::uint64_t shard_rows, WriterOptions opts) {
  SnapshotWriter writer(path, kPopulationKind, population_schema(), opts);
  const std::uint64_t n = batch.size();
  const std::uint64_t step = shard_rows == 0 ? n : shard_rows;
  for (std::uint64_t at = 0; at < n; at += step) {
    const std::uint64_t len = std::min<std::uint64_t>(step, n - at);
    core::GeneratedHostBatch shard;
    shard.n_cores.assign(batch.n_cores.begin() + at,
                         batch.n_cores.begin() + at + len);
    shard.memory_per_core_mb.assign(batch.memory_per_core_mb.begin() + at,
                                    batch.memory_per_core_mb.begin() + at + len);
    shard.memory_mb.assign(batch.memory_mb.begin() + at,
                           batch.memory_mb.begin() + at + len);
    shard.whetstone_mips.assign(batch.whetstone_mips.begin() + at,
                                batch.whetstone_mips.begin() + at + len);
    shard.dhrystone_mips.assign(batch.dhrystone_mips.begin() + at,
                                batch.dhrystone_mips.begin() + at + len);
    shard.disk_avail_gb.assign(batch.disk_avail_gb.begin() + at,
                               batch.disk_avail_gb.begin() + at + len);
    append_population_shard(writer, shard);
  }
  writer.finish();
}

core::GeneratedHostBatch read_population_snapshot(const std::string& path) {
  SnapshotReader reader(path);
  return unpack_population(reader.read_all());
}

}  // namespace resmodel::store

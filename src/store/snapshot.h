// Binary columnar snapshot store: crash-safe writer, recovering reader.
//
// A snapshot is a set of named, typed columns over `rows` rows, written
// shard-at-a-time: each append_shard() call emits one checksummed block
// per column, so generators can stream multi-million-host populations
// with bounded memory and readers can stream them back out shard by
// shard. The full on-disk layout and recovery contract are documented in
// src/store/format.h and src/store/README.md.
//
// Failure semantics (the whole point of this layer):
//  - SnapshotWriter publishes through AtomicFileWriter: until finish()
//    returns, the destination file is byte-for-byte untouched; any
//    failure (real or injected) surfaces as a typed StoreError.
//  - SnapshotReader::read_all()/read_shard() are strict: the first
//    damaged byte throws a typed StoreError — no partial or silently
//    wrong data escapes.
//  - SnapshotReader::read_recovering() degrades gracefully: every intact
//    block loads (bit-identical to what was written), every damaged one
//    is zero-filled and itemized in the ReadReport — exact lost-block
//    accounting, never a silently wrong value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "store/format.h"
#include "store/io.h"

namespace resmodel::store {

/// Name + element type of one column.
struct ColumnSpec {
  std::string name;
  DType dtype = DType::kF64;

  bool operator==(const ColumnSpec&) const = default;
};

/// One materialized column: `rows` elements of `spec.dtype`, stored as
/// raw little-endian bytes.
struct Column {
  ColumnSpec spec;
  std::uint64_t rows = 0;
  std::vector<std::byte> data;

  template <typename T>
  std::span<const T> as() const {
    return {reinterpret_cast<const T*>(data.data()), data.size() / sizeof(T)};
  }
};

/// A fully materialized snapshot (or one shard of one).
struct Snapshot {
  std::string kind;  ///< adapter tag, e.g. "trace.v1" (see store/adapters.h)
  std::uint64_t rows = 0;
  std::vector<Column> columns;
  std::vector<std::pair<std::string, std::string>> metadata;

  const Column* find(std::string_view name) const noexcept;
};

/// One damaged (or missing) block in a recovering read / verify walk.
struct LostBlock {
  std::uint32_t column = 0;   ///< schema index
  std::uint64_t shard = 0;
  std::uint64_t rows = 0;     ///< rows the block carried (0 when unknown)
  StoreErrc reason = StoreErrc::kBlockCorrupt;
};

/// Exact accounting of a recovering read or a verify walk.
struct ReadReport {
  bool complete = true;        ///< every expected block loaded intact
  bool footer_intact = true;   ///< false: forward-scan recovery was used
  std::uint64_t blocks_expected = 0;  ///< footer count, or recovered count
                                      ///< when the footer itself was lost
  std::uint64_t blocks_loaded = 0;
  std::uint64_t rows_lost = 0;        ///< sum over lost blocks of each
                                      ///< block's rows (block-level, so one
                                      ///< lost shard counts once per column)
  std::uint64_t tail_bytes_unscanned = 0;  ///< bytes after the point where a
                                           ///< footerless forward scan died
  std::vector<LostBlock> lost;
};

struct WriterOptions {
  /// Substitute filesystem (fault injection); nullptr = the real one.
  FileSystem* fs = nullptr;
};

/// Streaming writer. Usage:
///   SnapshotWriter w(path, "population.v1", schema);
///   for each shard: w.append_shard(column_byte_spans, shard_rows);
///   w.finish(metadata);
/// finish() is the only call that can publish; destruction without it
/// removes the .tmp and leaves any previous file at `path` untouched.
class SnapshotWriter {
 public:
  /// Validates the schema (non-empty, unique names) and the host's
  /// endianness (little-endian required — checked at write time so a
  /// port to a big-endian host fails loudly at the first write, not with
  /// byte-swapped files), then opens `<path>.tmp` and writes the header.
  SnapshotWriter(std::string path, std::string kind,
                 std::vector<ColumnSpec> schema, WriterOptions opts = {});

  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Appends one shard: `columns[i]` holds `rows` elements of
  /// `schema()[i]`'s dtype as raw bytes, in schema order. Throws
  /// StoreError(kInvalidArgument) on shape mismatch.
  void append_shard(std::span<const std::span<const std::byte>> columns,
                    std::uint64_t rows);

  /// Footer + trailer + fsync + atomic rename.
  void finish(
      std::vector<std::pair<std::string, std::string>> metadata = {});

  const std::vector<ColumnSpec>& schema() const noexcept { return schema_; }
  std::uint64_t rows_written() const noexcept { return rows_; }
  std::uint64_t shards_written() const noexcept { return shards_; }

  /// Running CRC32C of each column's payload bytes across shards — the
  /// logical content digest `resmodel pack/unpack` compare (and
  /// SnapshotReader recomputes) to prove bit-identical round trips.
  const std::vector<std::uint32_t>& column_digests() const noexcept {
    return digests_;
  }

 private:
  struct BlockRecord {
    std::uint32_t column;
    std::uint64_t shard;
    std::uint64_t offset;
    std::uint64_t rows;
    std::uint64_t payload_bytes;
    std::uint32_t crc;
  };

  std::string kind_;
  std::vector<ColumnSpec> schema_;
  FileSystem* fs_;
  AtomicFileWriter file_;
  std::vector<BlockRecord> blocks_;
  std::vector<std::uint32_t> digests_;
  std::uint64_t rows_ = 0;
  std::uint64_t shards_ = 0;
  bool finished_ = false;
};

/// Convenience: one-shot single-shard write of a materialized snapshot.
void write_snapshot_file(const std::string& path, const Snapshot& snapshot,
                         WriterOptions opts = {});

/// Reader. The constructor validates the fixed-size header frame (magic,
/// version, endian tag, schema checksum) and probes the footer; it
/// throws typed StoreErrors for an unopenable file or a damaged header,
/// but a damaged/absent footer is NOT fatal to construction — strict
/// reads will then throw kFooterCorrupt/kTruncated while
/// read_recovering() falls back to a forward block scan.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string path);
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  const std::string& kind() const noexcept { return kind_; }
  const std::vector<ColumnSpec>& schema() const noexcept { return schema_; }
  bool footer_intact() const noexcept { return footer_intact_; }

  /// Totals from the footer. Throw the footer's damage (typed) when it
  /// could not be loaded.
  std::uint64_t rows() const;
  std::uint64_t shard_count() const;
  std::vector<std::pair<std::string, std::string>> metadata() const;

  /// Strict whole-file read: any damage throws a typed StoreError.
  Snapshot read_all();

  /// Strict single-shard read (bounded-RSS streaming). Requires an
  /// intact footer.
  Snapshot read_shard(std::uint64_t shard);

  /// Graceful degradation: loads every intact block, zero-fills and
  /// itemizes the rest. Only throws for faults outside the recovery
  /// contract (the file vanishing mid-read).
  Snapshot read_recovering(ReadReport& report);

  /// Checksum walk of every block without materializing columns.
  /// `column_digests[i]` is the chained payload CRC32C of column i —
  /// comparable against SnapshotWriter::column_digests() — valid only
  /// for columns with no lost blocks (position holds 0 otherwise).
  struct VerifyResult {
    ReadReport report;
    std::vector<std::uint32_t> column_digests;
    std::vector<bool> column_intact;
  };
  VerifyResult verify();

 private:
  struct BlockRef {
    std::uint32_t column;
    std::uint64_t shard;
    std::uint64_t offset;
    std::uint64_t rows;
    std::uint64_t payload_bytes;
    std::uint32_t crc;
  };

  void load_header();
  void probe_footer();
  /// Footerless fallback: walk blocks forward from the header, CRC each.
  std::vector<BlockRef> scan_blocks(ReadReport& report);
  bool read_at(std::uint64_t offset, void* out, std::size_t n);
  bool block_payload(const BlockRef& ref, std::vector<std::byte>& out);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t data_begin_ = 0;  ///< first byte after the header frame

  std::string kind_;
  std::vector<ColumnSpec> schema_;

  bool footer_intact_ = false;
  StoreErrc footer_errc_ = StoreErrc::kTruncated;
  std::string footer_detail_;
  std::uint64_t rows_ = 0;
  std::uint64_t shards_ = 0;
  std::vector<BlockRef> blocks_;  ///< from the footer, when intact
  std::vector<std::pair<std::string, std::string>> metadata_;
};

}  // namespace resmodel::store

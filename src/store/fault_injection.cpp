#include "store/fault_injection.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace resmodel::store {

FaultPlan FaultPlan::sample(util::Rng& rng, std::uint64_t expected_bytes) {
  FaultPlan plan;
  switch (rng.uniform_index(3)) {
    case 0: plan.kind = Kind::kNoSpace; break;
    case 1: plan.kind = Kind::kIoError; break;
    default: plan.kind = Kind::kCrash; break;
  }
  plan.at_byte = rng.uniform_index(expected_bytes + 1);
  return plan;
}

namespace {

/// Enacts one FaultPlan on top of a real file. The fault triggers on the
/// append whose byte range crosses plan.at_byte: the prefix up to the
/// trigger offset is genuinely written (that is the torn tail), the rest
/// never reaches the disk.
class FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<WritableFile> base, std::string path,
                     const FaultPlan& plan, bool* fired,
                     std::uint64_t* appended)
      : base_(std::move(base)),
        path_(std::move(path)),
        plan_(plan),
        fired_(fired),
        appended_(appended) {}

  void append(const void* data, std::size_t n) override {
    if (*fired_ && plan_.kind == FaultPlan::Kind::kCrash) {
      // A "dead" process writes nothing more; callers that swallowed the
      // crash exception and kept appending must not resurrect the file.
      logical_ += n;
      return;
    }
    const std::uint64_t begin = *appended_;
    const std::uint64_t end = begin + n;
    if (plan_.kind == FaultPlan::Kind::kNone || end <= plan_.at_byte) {
      base_->append(data, n);
      *appended_ = end;
      logical_ += n;
      return;
    }
    // This append crosses the trigger: short-write the surviving prefix.
    const std::size_t prefix =
        static_cast<std::size_t>(plan_.at_byte > begin ? plan_.at_byte - begin
                                                       : 0);
    if (prefix > 0) base_->append(data, prefix);
    *appended_ = begin + prefix;
    logical_ += n;
    *fired_ = true;
    switch (plan_.kind) {
      case FaultPlan::Kind::kNoSpace:
        throw StoreError(StoreErrc::kNoSpace, path_,
                         "injected ENOSPC after " +
                             std::to_string(*appended_) + " bytes");
      case FaultPlan::Kind::kIoError:
        throw StoreError(StoreErrc::kIoError, path_,
                         "injected EIO after " + std::to_string(*appended_) +
                             " bytes");
      default:
        throw StoreError(StoreErrc::kSimulatedCrash, path_,
                         "injected crash after " +
                             std::to_string(*appended_) + " bytes");
    }
  }

  void sync() override {
    if (!(*fired_ && plan_.kind == FaultPlan::Kind::kCrash)) base_->sync();
  }

  void close() override { base_->close(); }

  std::uint64_t logical_size() const noexcept override { return logical_; }

 private:
  std::unique_ptr<WritableFile> base_;
  std::string path_;
  FaultPlan plan_;
  bool* fired_;
  std::uint64_t* appended_;
  std::uint64_t logical_ = 0;
};

}  // namespace

std::unique_ptr<WritableFile> FaultyFileSystem::create(
    const std::string& path) {
  return std::make_unique<FaultyWritableFile>(base_->create(path), path,
                                              plan_, &fired_, &appended_);
}

void FaultyFileSystem::rename(const std::string& from, const std::string& to) {
  if (plan_.kind == FaultPlan::Kind::kCrash && !fired_ &&
      plan_.at_byte >= appended_) {
    // The appends never reached the trigger offset; the crash lands at
    // the commit boundary instead — after the data was synced but before
    // the rename published it. The .tmp survives, the destination must
    // not change.
    fired_ = true;
    throw StoreError(StoreErrc::kSimulatedCrash, to,
                     "injected crash at commit (before rename)");
  }
  if (fired_ && plan_.kind == FaultPlan::Kind::kCrash) {
    throw StoreError(StoreErrc::kSimulatedCrash, to,
                     "injected crash: process already dead");
  }
  base_->rename(from, to);
}

void FaultyFileSystem::remove(const std::string& path) noexcept {
  if (fired_ && plan_.kind == FaultPlan::Kind::kCrash) {
    // A crashed process cannot clean up its .tmp either; leaving it
    // behind is exactly the litter a real crash leaves.
    return;
  }
  base_->remove(path);
}

CorruptionPlan CorruptionPlan::sample(util::Rng& rng,
                                      std::uint64_t file_bytes) {
  CorruptionPlan plan;
  switch (rng.uniform_index(3)) {
    case 0: plan.kind = Kind::kTruncate; break;
    case 1: plan.kind = Kind::kZeroTail; break;
    default: plan.kind = Kind::kBitFlip; break;
  }
  if (plan.kind == Kind::kBitFlip) {
    plan.at = rng.uniform_index(std::max<std::uint64_t>(1, file_bytes * 8));
  } else {
    // Positions 0 and file_bytes-1 are both legal: truncate-to-zero and
    // drop-last-byte are the extreme torn writes.
    plan.at = rng.uniform_index(std::max<std::uint64_t>(1, file_bytes));
  }
  return plan;
}

void corrupt_file(const std::string& path, const CorruptionPlan& plan) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw StoreError(StoreErrc::kCannotOpen, path, "corrupt_file: open");
  }
  std::vector<unsigned char> bytes;
  unsigned char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);

  switch (plan.kind) {
    case CorruptionPlan::Kind::kTruncate:
      bytes.resize(std::min<std::uint64_t>(plan.at, bytes.size()));
      break;
    case CorruptionPlan::Kind::kZeroTail:
      if (plan.at < bytes.size()) {
        std::fill(bytes.begin() + static_cast<std::ptrdiff_t>(plan.at),
                  bytes.end(), 0);
      }
      break;
    case CorruptionPlan::Kind::kBitFlip:
      if (!bytes.empty()) {
        const std::uint64_t byte = (plan.at / 8) % bytes.size();
        bytes[byte] ^= static_cast<unsigned char>(1u << (plan.at % 8));
      }
      break;
  }

  f = std::fopen(path.c_str(), "wb");
  if (!f) {
    throw StoreError(StoreErrc::kCannotOpen, path, "corrupt_file: reopen");
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    throw StoreError(StoreErrc::kIoError, path, "corrupt_file: rewrite");
  }
  std::fclose(f);
}

}  // namespace resmodel::store
